// Ablation (Sec 4.3 design note): RelGo with GLogue high-order statistics
// vs RelGo restricted to low-order statistics. The paper notes RelGo
// "remains functional with only low-order statistics, but the efficiency
// of the generated plan may decrease" — this bench quantifies that on the
// cyclic queries, where triangle counts matter most.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.5);
  bench::Banner("Ablation", "GLogue high-order vs low-order statistics");

  Database* db = bench::MakeLdbc(args.scale);
  auto queries = workload::LdbcCyclicQueries(*db);
  auto interactive = workload::LdbcInteractiveQueries(*db);
  for (auto& wq : interactive) {
    if (wq.cyclic) queries.push_back(std::move(wq));
  }

  workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
  auto runs = harness.RunGrid(
      queries, {OptimizerMode::kRelGo, OptimizerMode::kRelGoLowOrder});
  std::printf("execution time (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf("avg RelGo vs low-order-only: %.2fx\n",
              workload::Harness::AverageSpeedup(runs, "RelGoLowOrd",
                                                "RelGo"));
  delete db;
  return 0;
}
