// Dataset statistics table (full-version appendix of the paper): per-table
// tuple counts for both benchmarks, graph index footprint, and statistics
// build cost.

#include <cstdio>

#include "bench_util.h"

namespace {

void Describe(const relgo::Database& db, const char* title) {
  std::printf("--- %s ---\n", title);
  std::printf("%-18s %12s\n", "table", "tuples");
  for (const auto& name : db.catalog().ListTables()) {
    auto t = db.catalog().GetTable(name);
    if (!t.ok()) continue;
    std::printf("%-18s %12llu\n", name.c_str(),
                static_cast<unsigned long long>((*t)->num_rows()));
  }
  std::printf("%-18s %12llu\n", "TOTAL",
              static_cast<unsigned long long>(db.catalog().TotalRows()));
  std::printf("vertices: %llu   edges: %llu\n",
              static_cast<unsigned long long>(db.graph_stats().TotalVertices()),
              static_cast<unsigned long long>(db.graph_stats().TotalEdges()));
  std::printf("graph index: %.2f MiB\n",
              static_cast<double>(db.index().MemoryBytes()) / (1 << 20));
  std::printf("GLogue: %zu patterns, built in %.1f ms\n\n",
              db.glogue().size(), db.glogue().build_time_ms());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relgo;
  auto args = bench::ParseArgs(argc, argv, 1.0);
  bench::Banner("Dataset statistics", "generator output summary");
  {
    Database* db = bench::MakeLdbc(args.scale);
    Describe(*db, "LDBC-like social network");
    delete db;
  }
  {
    Database* db = bench::MakeImdb(args.scale);
    Describe(*db, "IMDB-like movie database");
    delete db;
  }
  return 0;
}
