// Reproduces Fig 10: join-order efficiency on JOB1..10 — RelGo, GRainDB,
// RelGoHash (converged ordering without the graph index), DuckDB.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.5);
  bench::Banner("Fig 10", "join order efficiency on JOB1..10");

  Database* db = bench::MakeImdb(args.scale);
  auto all = workload::JobQueries(*db);
  std::vector<workload::WorkloadQuery> subset(
      std::make_move_iterator(all.begin()),
      std::make_move_iterator(all.begin() + 10));

  workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
  auto runs = harness.RunGrid(
      subset, {OptimizerMode::kRelGo, OptimizerMode::kGRainDB,
               OptimizerMode::kRelGoHash, OptimizerMode::kDuckDB});
  std::printf("execution time (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf("avg RelGo vs GRainDB:   %.2fx\n",
              workload::Harness::AverageSpeedup(runs, "GRainDB", "RelGo"));
  std::printf("avg RelGoHash vs DuckDB: %.2fx\n",
              workload::Harness::AverageSpeedup(runs, "DuckDB",
                                                "RelGoHash"));
  std::printf(
      "\nShape check (paper): RelGo beats GRainDB on all ten (avg 4.1x);\n"
      "RelGoHash is at least as good as DuckDB (avg 1.6x) — good join\n"
      "orders pay off with or without the index.\n");
  delete db;
  return 0;
}
