// Reproduces Fig 10: join-order efficiency on JOB1..10 — RelGo, GRainDB,
// RelGoHash (converged ordering without the graph index), DuckDB — under
// both execution engines, recording BENCH_pipeline.json.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using exec::EngineKind;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.5);
  bench::Banner("Fig 10", "join order efficiency on JOB1..10");

  Database* db = bench::MakeImdb(args.scale);
  auto all = workload::JobQueries(*db);
  std::vector<workload::WorkloadQuery> subset(
      std::make_move_iterator(all.begin()),
      std::make_move_iterator(all.begin() + 10));
  const std::vector<OptimizerMode> modes = {
      OptimizerMode::kRelGo, OptimizerMode::kGRainDB,
      OptimizerMode::kRelGoHash, OptimizerMode::kDuckDB};

  workload::Harness mat_harness(db, bench::BenchExecOptions(), args.reps);
  auto mat_runs = mat_harness.RunGrid(subset, modes);
  workload::Harness pipe_harness(
      db,
      bench::EngineOptions(bench::BenchExecOptions(), EngineKind::kPipeline,
                           args.threads),
      args.reps);
  auto pipe_runs = pipe_harness.RunGrid(subset, modes);

  std::printf("execution time (ms), engine=materialize:\n%s\n",
              workload::Harness::FormatTable(mat_runs, false).c_str());
  std::printf("execution time (ms), engine=pipeline (%d threads):\n%s\n",
              args.threads,
              workload::Harness::FormatTable(pipe_runs, false).c_str());
  std::printf("avg RelGo vs GRainDB:   %.2fx\n",
              workload::Harness::AverageSpeedup(mat_runs, "GRainDB", "RelGo"));
  std::printf("avg RelGoHash vs DuckDB: %.2fx\n",
              workload::Harness::AverageSpeedup(mat_runs, "DuckDB",
                                                "RelGoHash"));
  std::printf("pipeline-vs-materialize engine speedup: %.2fx\n",
              bench::EngineSpeedup(mat_runs, pipe_runs));

  auto& json = bench::BenchJson::Global();
  json.AddGrid("fig10_join_order", "imdb", args.scale, mat_runs,
               EngineKind::kMaterialize, 1);
  json.AddGrid("fig10_join_order", "imdb", args.scale, pipe_runs,
               EngineKind::kPipeline, args.threads);
  json.Write();

  std::printf(
      "\nShape check (paper): RelGo beats GRainDB on all ten (avg 4.1x);\n"
      "RelGoHash is at least as good as DuckDB (avg 1.6x) — good join\n"
      "orders pay off with or without the index.\n");
  delete db;
  return 0;
}
