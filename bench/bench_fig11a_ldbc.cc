// Reproduces Fig 11a: comprehensive LDBC evaluation — speedup of RelGo,
// UmbraPlans, GRainDB and the GDBMS stand-in (the paper used Kùzu) over
// the DuckDB graph-agnostic baseline, on all IC query variants.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.6);
  bench::Banner("Fig 11a", "speedup vs DuckDB on LDBC IC queries");

  Database* db = bench::MakeLdbc(args.scale);
  workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
  auto runs = harness.RunGrid(
      workload::LdbcInteractiveQueries(*db),
      {OptimizerMode::kDuckDB, OptimizerMode::kRelGo,
       OptimizerMode::kUmbraLike, OptimizerMode::kGRainDB,
       OptimizerMode::kGdbmsSim});
  std::printf("execution time (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf("speedup vs DuckDB:\n%s\n",
              workload::Harness::FormatSpeedups(runs, "DuckDB").c_str());
  std::printf("estimator accuracy (geomean per-operator q-error):\n%s\n",
              workload::Harness::FormatQErrors(runs).c_str());
  for (const char* mode : {"RelGo", "UmbraPlans", "GRainDB", "GdbmsSim"}) {
    std::printf("avg %-10s vs DuckDB: %.2fx\n", mode,
                workload::Harness::AverageSpeedup(runs, "DuckDB", mode));
  }
  bench::BenchJson::Global().AddGrid("fig11a_ldbc", "ldbc", args.scale, runs,
                                     exec::EngineKind::kMaterialize, 1);

  // Adaptive-statistics loop (warm-up -> feedback -> re-plan; runs after
  // the baseline grid so those numbers stay uncontaminated): each record's
  // qerror is its own cold-corrections first run (the grid resets keyed
  // corrections between cells), qerror_after the re-planned one.
  auto adaptive = harness.RunAdaptiveGrid(
      workload::LdbcInteractiveQueries(*db),
      {OptimizerMode::kRelGo, OptimizerMode::kDuckDB}, 2);
  std::printf("adaptive feedback (q-error first run -> after feedback):\n%s\n",
              workload::Harness::FormatAdaptiveQErrors(adaptive).c_str());
  bench::BenchJson::Global().AddGrid("fig11a_ldbc_adaptive", "ldbc",
                                     args.scale, adaptive,
                                     exec::EngineKind::kMaterialize, 1);
  bench::BenchJson::Global().Write();
  std::printf(
      "\nShape check (paper, LDBC100): RelGo 21.9x, GRainDB ~4x (RelGo 5.4x\n"
      "over GRainDB), Umbra below RelGo, Kuzu slowest; cyclic IC7 shows the\n"
      "largest RelGo advantage.\n");
  delete db;
  return 0;
}
