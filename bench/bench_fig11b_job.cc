// Reproduces Fig 11b: comprehensive JOB evaluation — speedup of RelGo,
// UmbraPlans, GRainDB and the GDBMS stand-in over DuckDB on JOB1..33.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.35);
  bench::Banner("Fig 11b", "speedup vs DuckDB on JOB1..33");

  Database* db = bench::MakeImdb(args.scale);
  workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
  auto runs = harness.RunGrid(
      workload::JobQueries(*db),
      {OptimizerMode::kDuckDB, OptimizerMode::kRelGo,
       OptimizerMode::kUmbraLike, OptimizerMode::kGRainDB,
       OptimizerMode::kGdbmsSim});
  std::printf("execution time (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf("speedup vs DuckDB:\n%s\n",
              workload::Harness::FormatSpeedups(runs, "DuckDB").c_str());
  std::printf("estimator accuracy (geomean per-operator q-error):\n%s\n",
              workload::Harness::FormatQErrors(runs).c_str());
  for (const char* mode : {"RelGo", "UmbraPlans", "GRainDB", "GdbmsSim"}) {
    std::printf("avg %-10s vs DuckDB: %.2fx\n", mode,
                workload::Harness::AverageSpeedup(runs, "DuckDB", mode));
  }
  bench::BenchJson::Global().AddGrid("fig11b_job", "imdb", args.scale, runs,
                                     exec::EngineKind::kMaterialize, 1);

  // Adaptive-statistics loop over the JOB grid (after the baseline grid so
  // its numbers stay uncontaminated): qerror records each cell's own
  // cold-corrections first run (keyed corrections reset between cells),
  // qerror_after the re-planned run after feedback.
  auto adaptive = harness.RunAdaptiveGrid(
      workload::JobQueries(*db),
      {OptimizerMode::kRelGo, OptimizerMode::kDuckDB}, 2);
  std::printf("adaptive feedback (q-error first run -> after feedback):\n%s\n",
              workload::Harness::FormatAdaptiveQErrors(adaptive).c_str());
  bench::BenchJson::Global().AddGrid("fig11b_job_adaptive", "imdb",
                                     args.scale, adaptive,
                                     exec::EngineKind::kMaterialize, 1);
  bench::BenchJson::Global().Write();
  std::printf(
      "\nShape check (paper): RelGo 8.2x and GRainDB ~2x over DuckDB\n"
      "(RelGo 4.0x over GRainDB); RelGo ~1.7x over Umbra with occasional\n"
      "Umbra wins (JOB30); the GDBMS baseline trails far behind.\n");
  delete db;
  return 0;
}
