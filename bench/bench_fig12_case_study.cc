// Reproduces Fig 12: the JOB17 case study — the optimized plans of RelGo,
// GRainDB and the Umbra-like optimizer side by side, plus measured
// execution times. RelGo's plan expands from the filtered keyword scan
// through the graph index; the relational baselines order joins without
// the graph view and (partially) miss the predefined joins.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.5);
  bench::Banner("Fig 12", "JOB17 case study: optimized plans");

  Database* db = bench::MakeImdb(args.scale);
  auto all = workload::JobQueries(*db);
  const workload::WorkloadQuery* job17 = nullptr;
  for (const auto& wq : all) {
    if (wq.query.name == "JOB17") job17 = &wq;
  }
  if (job17 == nullptr) {
    std::fprintf(stderr, "JOB17 not found\n");
    return 1;
  }

  for (OptimizerMode mode : {OptimizerMode::kRelGo, OptimizerMode::kGRainDB,
                             OptimizerMode::kUmbraLike}) {
    auto explain = db->Explain(job17->query, mode);
    if (!explain.ok()) {
      std::printf("%s: %s\n", optimizer::ModeName(mode),
                  explain.status().ToString().c_str());
      continue;
    }
    std::printf("--- %s plan ---\n%s\n", optimizer::ModeName(mode),
                explain->c_str());
  }

  workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
  auto runs = harness.RunGrid(
      {*job17}, {OptimizerMode::kRelGo, OptimizerMode::kGRainDB,
                 OptimizerMode::kUmbraLike});
  std::printf("execution time (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf(
      "Shape check (paper): RelGo 4.3x over GRainDB and 1.8x over Umbra on\n"
      "JOB17; RelGo's plan is a chain of EXPANDs from the keyword scan.\n");
  delete db;
  return 0;
}
