// Fig 13 (extension; no paper counterpart): concurrent query serving.
// N client threads replay an LDBC query mix against one shared Database —
// all pipelines interleave on the process-wide worker pool, and filtered
// scans amortize across queries through the cross-query scan cache. For
// each client count the mix runs twice, cache-cold (cleared first) and
// cache-warm, so the JSON trajectory records both the QPS scaling curve
// and the steady-state cache hit rate heavy traffic would see.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.3);
  bench::Banner("Fig 13", "concurrent serving: QPS + scan-cache hit rate");

  Database* db = bench::MakeLdbc(args.scale);
  auto mix = workload::LdbcInteractiveQueries(*db);
  exec::ExecutionOptions options = bench::EngineOptions(
      bench::BenchExecOptions(), exec::EngineKind::kPipeline, args.threads);
  // This bench measures cache amortization, so it opts back into the
  // scan cache and plan cache that BenchExecOptions disables for the
  // figure benches.
  options.scan_cache = true;
  options.plan_cache = true;
  workload::Harness harness(db, options, args.reps);

  const int kQueriesPerClient = 2 * static_cast<int>(mix.size());
  std::printf("%8s %10s %10s %10s %10s %10s %8s %8s %8s\n", "clients",
              "queries", "wall ms", "QPS", "hits", "hit rate", "p50 ms",
              "p95 ms", "p99 ms");
  for (int clients : {1, 2, 4, 8}) {
    for (bool warm : {false, true}) {
      if (!warm) db->ClearScanCache();
      auto m = harness.RunConcurrent(mix, OptimizerMode::kRelGo, clients,
                                     kQueriesPerClient);
      std::printf("%5d %s %10llu %10.1f %10.1f %10llu %9.1f%% %8.2f %8.2f "
                  "%8.2f\n",
                  clients, warm ? "warm" : "cold",
                  static_cast<unsigned long long>(m.queries_ok), m.wall_ms,
                  m.qps, static_cast<unsigned long long>(m.scan_cache_hits),
                  100.0 * m.cache_hit_rate, m.latency_p50_ms,
                  m.latency_p95_ms, m.latency_p99_ms);
      if (m.queries_failed != 0) {
        std::printf("  (%llu queries failed)\n",
                    static_cast<unsigned long long>(m.queries_failed));
      }
      bench::BenchJson::Global().AddConcurrent(
          warm ? "fig13_concurrency_warm" : "fig13_concurrency_cold", "ldbc",
          args.scale, m, exec::EngineKind::kPipeline, args.threads);
    }
  }
  // Shed-load sweep: the same storm at 8 clients, but with admission
  // control capping concurrency and a chaos controller cancelling a
  // fraction of queries mid-flight — the JSON then shows how much load
  // the lifecycle layer sheds (cancelled / rejected) while the surviving
  // queries keep completing. Tight queue bounds make rejection visible.
  std::printf("\nshed load (8 clients, admission cap + chaos cancels):\n");
  std::printf("%18s %10s %10s %10s %10s %10s\n", "config", "ok", "cancel",
              "reject", "timeout", "QPS");
  struct ShedConfig {
    const char* name;
    int max_concurrent;  // 0 = admission off
    double cancel_fraction;
  };
  for (const ShedConfig& cfg :
       {ShedConfig{"baseline", 0, 0.0}, ShedConfig{"cap2", 2, 0.0},
        ShedConfig{"cap2+cancel25", 2, 0.25}}) {
    exec::pipeline::AdmissionOptions admission;
    admission.max_concurrent_queries = cfg.max_concurrent;
    admission.max_queued = 2;
    admission.max_wait_ms = 50;
    db->worker_pool().SetAdmission(admission);
    workload::ChaosOptions chaos;
    chaos.cancel_fraction = cfg.cancel_fraction;
    auto m = harness.RunConcurrent(mix, OptimizerMode::kRelGo, 8,
                                   kQueriesPerClient, chaos);
    std::printf("%18s %10llu %10llu %10llu %10llu %10.1f\n", cfg.name,
                static_cast<unsigned long long>(m.queries_ok),
                static_cast<unsigned long long>(m.queries_cancelled),
                static_cast<unsigned long long>(m.queries_rejected),
                static_cast<unsigned long long>(m.queries_timeout), m.qps);
    bench::BenchJson::Global().AddConcurrent(
        std::string("fig13_shed_") + cfg.name, "ldbc", args.scale, m,
        exec::EngineKind::kPipeline, args.threads);
  }
  db->worker_pool().SetAdmission({});  // restore: admission off

  // Hot-template sweep: the parameterized-query steady state. Every
  // interactive template runs once cold (plan cache cleared), then warm
  // rounds replay the set — with the cache on, warm optimization_ms
  // collapses to a lookup + rebind while execution stays bit-identical.
  // A cache-off sweep records the re-optimization baseline next to it.
  std::printf("\nhot templates (%zu templates, cold + %d warm rounds):\n",
              mix.size(), 3);
  std::printf("%12s %10s %12s %12s %10s %10s\n", "plan cache", "ok",
              "cold opt ms", "warm opt ms", "hits", "hit rate");
  for (bool cache_on : {false, true}) {
    exec::ExecutionOptions sweep_options = options;
    sweep_options.plan_cache = cache_on;
    workload::Harness sweep(db, sweep_options, args.reps);
    auto m = sweep.RunHotTemplates(mix, OptimizerMode::kRelGo, 3);
    std::printf("%12s %10llu %12.3f %12.3f %10llu %9.1f%%\n",
                cache_on ? "on" : "off",
                static_cast<unsigned long long>(m.queries_ok),
                m.cold_optimization_ms, m.warm_optimization_ms,
                static_cast<unsigned long long>(m.plan_cache_hits),
                100.0 * m.plan_cache_hit_rate);
    if (m.queries_failed != 0) {
      std::printf("  (%llu queries failed)\n",
                  static_cast<unsigned long long>(m.queries_failed));
    }
    const std::string tag = cache_on ? "fig13_plan_cache" : "fig13_reopt";
    bench::BenchJson::Global().AddHotTemplates(
        tag, "ldbc", args.scale, m, exec::EngineKind::kPipeline,
        args.threads, "cold");
    bench::BenchJson::Global().AddHotTemplates(
        tag, "ldbc", args.scale, m, exec::EngineKind::kPipeline,
        args.threads, "warm");
  }

  std::printf("\nshared pool threads spawned: %d\n",
              db->worker_pool().pool_threads());

  bench::BenchJson::Global().Write();
  delete db;
  return 0;
}
