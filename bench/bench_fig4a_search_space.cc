// Reproduces Fig 4a: optimizer search-space size, graph-agnostic vs
// graph-aware, for path patterns with m = 1..10 edges (Sec 3.1.3 /
// Theorem 1). Exact enumeration, no execution involved.

#include <cstdio>

#include "bench_util.h"
#include "pattern/search_space.h"
#include "pattern/shapes.h"

int main() {
  using namespace relgo;
  bench::Banner("Fig 4a", "search space: graph-agnostic vs graph-aware");

  std::printf("%-6s %18s %18s %14s\n", "edges", "Graph-Agnostic",
              "Graph-Aware", "Agnostic/Aware");
  for (int m = 1; m <= 10; ++m) {
    pattern::PatternGraph p = pattern::MakePathPattern(m, 0, 0);
    auto agnostic = pattern::CountAgnosticSearchSpace(p);
    auto aware = pattern::CountAwareSearchSpace(p);
    if (!agnostic.ok() || !aware.ok()) {
      std::printf("%-6d enumeration failed\n", m);
      continue;
    }
    std::printf("%-6d %18.3e %18.3e %14.3e\n", m, *agnostic, *aware,
                *agnostic / *aware);
  }
  std::printf(
      "\nShape check (paper): agnostic reaches ~1e15 at m=10 and the ratio\n"
      "grows exponentially with m.\n");
  return 0;
}
