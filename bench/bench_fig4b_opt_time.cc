// Reproduces Fig 4b: query optimization time on the LDBC IC queries —
// the graph-agnostic optimizer (stand-in for Calcite's Volcano planner
// on the flattened join graph) vs RelGo's converged optimizer.
//
// Note on scale: our graph-agnostic baseline memoizes its DP, so it never
// hits the paper's 10-minute Calcite timeouts; the per-query gap is smaller
// but the ordering (RelGo optimizes faster, most queries within 10-100 ms)
// is preserved. The per-query search-space sizes from the Fig 4a
// enumerators are printed alongside to show what a transformation-based
// planner would face.

#include <cstdio>

#include "bench_util.h"
#include "pattern/search_space.h"

int main(int argc, char** argv) {
  using namespace relgo;
  auto args = bench::ParseArgs(argc, argv, 0.3);
  bench::Banner("Fig 4b", "optimization time on LDBC IC queries");

  Database* db = bench::MakeLdbc(args.scale);
  auto queries = workload::LdbcInteractiveQueries(*db);

  std::printf("%-8s %14s %14s %16s %16s\n", "query", "Agnostic(ms)",
              "RelGo(ms)", "agnostic-space", "aware-space");
  for (const auto& wq : queries) {
    double agnostic_ms = 0, relgo_ms = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      auto a = db->Optimize(wq.query, optimizer::OptimizerMode::kDuckDB);
      auto r = db->Optimize(wq.query, optimizer::OptimizerMode::kRelGo);
      if (!a.ok() || !r.ok()) {
        std::printf("%-8s optimization failed\n", wq.query.name.c_str());
        agnostic_ms = relgo_ms = -1;
        break;
      }
      agnostic_ms += a->optimization_ms;
      relgo_ms += r->optimization_ms;
    }
    if (agnostic_ms < 0) continue;
    auto agnostic_space =
        pattern::CountAgnosticSearchSpace(wq.query.pattern);
    auto aware_space = pattern::CountAwareSearchSpace(wq.query.pattern);
    std::printf("%-8s %14.3f %14.3f %16.3e %16.3e\n", wq.query.name.c_str(),
                agnostic_ms / args.reps, relgo_ms / args.reps,
                agnostic_space.ok() ? *agnostic_space : -1.0,
                aware_space.ok() ? *aware_space : -1.0);
  }
  delete db;
  return 0;
}
