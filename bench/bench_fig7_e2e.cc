// Reproduces Fig 7: end-to-end time (optimization + execution), RelGo vs
// GRainDB, on (a) LDBC queries IC1-3, IC2, IC4, IC7 and (b) JOB1..4 — and
// additionally compares the two execution engines (materializing oracle vs
// morsel-driven pipeline) on the same plans, reporting per-query engine
// speedups and recording everything into BENCH_pipeline.json.

#include <cstdio>

#include "bench_util.h"

namespace {

using relgo::exec::EngineKind;

void RunSide(const relgo::Database* db, const char* workload, double scale,
             const std::vector<relgo::workload::WorkloadQuery>& queries,
             const relgo::bench::BenchArgs& args) {
  using relgo::optimizer::OptimizerMode;
  const std::vector<OptimizerMode> modes = {OptimizerMode::kRelGo,
                                            OptimizerMode::kGRainDB};

  // Engine A: the materializing reference executor.
  relgo::workload::Harness mat_harness(db, relgo::bench::BenchExecOptions(),
                                       args.reps);
  auto mat_runs = mat_harness.RunGrid(queries, modes);
  // Engine B: the pipeline engine at --threads workers.
  relgo::workload::Harness pipe_harness(
      db,
      relgo::bench::EngineOptions(relgo::bench::BenchExecOptions(),
                                  EngineKind::kPipeline, args.threads),
      args.reps);
  auto pipe_runs = pipe_harness.RunGrid(queries, modes);

  std::printf("%-8s %12s %12s %12s %12s %10s\n", "query", "RelGo Opt",
              "RelGo Exe", "GRainDB Opt", "GRainDB Exe", "engine");
  for (const auto* runs : {&mat_runs, &pipe_runs}) {
    const char* engine =
        runs == &mat_runs
            ? relgo::bench::EngineLabel(EngineKind::kMaterialize)
            : relgo::bench::EngineLabel(EngineKind::kPipeline);
    for (size_t i = 0; i + 1 < runs->size(); i += 2) {
      const auto& relgo_run = (*runs)[i];
      const auto& graindb_run = (*runs)[i + 1];
      std::printf("%-8s %12.2f %12.2f %12.2f %12.2f %10s\n",
                  relgo_run.query.c_str(), relgo_run.optimization_ms,
                  relgo_run.execution_ms, graindb_run.optimization_ms,
                  graindb_run.execution_ms, engine);
    }
  }

  double mode_speedup =
      relgo::workload::Harness::AverageSpeedup(mat_runs, "GRainDB", "RelGo");
  double engine_speedup = relgo::bench::EngineSpeedup(mat_runs, pipe_runs);
  std::printf("average RelGo-vs-GRainDB execution speedup: %.2fx\n",
              mode_speedup);
  std::printf(
      "average pipeline-vs-materialize engine speedup (%d threads): %.2fx\n\n",
      args.threads, engine_speedup);
  std::printf("estimator accuracy (geomean per-operator q-error):\n%s\n",
              relgo::workload::Harness::FormatQErrors(mat_runs).c_str());

  auto& json = relgo::bench::BenchJson::Global();
  json.AddGrid("fig7_e2e", workload, scale, mat_runs, EngineKind::kMaterialize,
               1);
  json.AddGrid("fig7_e2e", workload, scale, pipe_runs, EngineKind::kPipeline,
               args.threads);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relgo;
  auto args = bench::ParseArgs(argc, argv, 0.4);
  bench::Banner("Fig 7", "end-to-end optimization + execution time");

  {
    std::printf("--- (a) LDBC-like, IC{1-3, 2, 4, 7} ---\n");
    Database* db = bench::MakeLdbc(args.scale);
    auto all = workload::LdbcInteractiveQueries(*db);
    std::vector<workload::WorkloadQuery> subset;
    for (auto& wq : all) {
      if (wq.query.name == "IC1-3" || wq.query.name == "IC2" ||
          wq.query.name == "IC4" || wq.query.name == "IC7") {
        subset.push_back(std::move(wq));
      }
    }
    RunSide(db, "ldbc", args.scale, subset, args);
    delete db;
  }
  {
    std::printf("--- (b) IMDB-like, JOB1..4 ---\n");
    Database* db = bench::MakeImdb(args.scale);
    auto all = workload::JobQueries(*db);
    std::vector<workload::WorkloadQuery> subset(
        std::make_move_iterator(all.begin()),
        std::make_move_iterator(all.begin() + 4));
    RunSide(db, "imdb", args.scale, subset, args);
    delete db;
  }
  bench::BenchJson::Global().Write();
  std::printf(
      "Shape check (paper): RelGo end-to-end beats GRainDB (7.5x LDBC30,\n"
      "3.8x IMDB) despite slightly higher optimization cost.\n");
  return 0;
}
