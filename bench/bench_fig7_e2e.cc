// Reproduces Fig 7: end-to-end time (optimization + execution), RelGo vs
// GRainDB, on (a) LDBC queries IC1-3, IC2, IC4, IC7 and (b) JOB1..4.

#include <cstdio>

#include "bench_util.h"

namespace {

void RunSide(const relgo::Database* db,
             const std::vector<relgo::workload::WorkloadQuery>& queries,
             int reps) {
  using relgo::optimizer::OptimizerMode;
  relgo::workload::Harness harness(db, relgo::bench::BenchExecOptions(),
                                   reps);
  auto runs = harness.RunGrid(
      queries, {OptimizerMode::kRelGo, OptimizerMode::kGRainDB});
  std::printf("%-8s %12s %12s %12s %12s\n", "query", "RelGo Opt",
              "RelGo Exe", "GRainDB Opt", "GRainDB Exe");
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    const auto& relgo_run = runs[i];
    const auto& graindb_run = runs[i + 1];
    std::printf("%-8s %12.2f %12.2f %12.2f %12.2f\n",
                relgo_run.query.c_str(), relgo_run.optimization_ms,
                relgo_run.execution_ms, graindb_run.optimization_ms,
                graindb_run.execution_ms);
  }
  double speedup = relgo::workload::Harness::AverageSpeedup(
      runs, "GRainDB", "RelGo");
  std::printf("average RelGo-vs-GRainDB execution speedup: %.2fx\n\n",
              speedup);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relgo;
  auto args = bench::ParseArgs(argc, argv, 0.4);
  bench::Banner("Fig 7", "end-to-end optimization + execution time");

  {
    std::printf("--- (a) LDBC-like, IC{1-3, 2, 4, 7} ---\n");
    Database* db = bench::MakeLdbc(args.scale);
    auto all = workload::LdbcInteractiveQueries(*db);
    std::vector<workload::WorkloadQuery> subset;
    for (auto& wq : all) {
      if (wq.query.name == "IC1-3" || wq.query.name == "IC2" ||
          wq.query.name == "IC4" || wq.query.name == "IC7") {
        subset.push_back(std::move(wq));
      }
    }
    RunSide(db, subset, args.reps);
    delete db;
  }
  {
    std::printf("--- (b) IMDB-like, JOB1..4 ---\n");
    Database* db = bench::MakeImdb(args.scale);
    auto all = workload::JobQueries(*db);
    std::vector<workload::WorkloadQuery> subset(
        std::make_move_iterator(all.begin()),
        std::make_move_iterator(all.begin() + 4));
    RunSide(db, subset, args.reps);
    delete db;
  }
  std::printf(
      "Shape check (paper): RelGo end-to-end beats GRainDB (7.5x LDBC30,\n"
      "3.8x IMDB) despite slightly higher optimization cost.\n");
  return 0;
}
