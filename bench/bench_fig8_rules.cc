// Reproduces Fig 8: effectiveness of the heuristic rules. QR1/QR2 probe
// FilterIntoMatchRule, QR3/QR4 probe TrimAndFuseRule; RelGo runs with the
// rules, RelGoNoRule without, on two dataset scales (the paper's LDBC10
// and LDBC30).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.4);
  bench::Banner("Fig 8", "RelGo vs RelGoNoRule on QR1..4");

  for (double scale : {args.scale, args.scale * 2.0}) {
    Database* db = bench::MakeLdbc(scale);
    workload::Harness harness(db, bench::BenchExecOptions(), args.reps);
    auto queries = workload::LdbcRuleQueries(*db);
    // QR1/QR2: with vs without FilterIntoMatchRule.
    std::vector<workload::WorkloadQuery> filter_queries(
        std::make_move_iterator(queries.begin()),
        std::make_move_iterator(queries.begin() + 2));
    auto filter_runs = harness.RunGrid(
        filter_queries, {OptimizerMode::kRelGo, OptimizerMode::kRelGoNoRule});
    std::printf("%s", workload::Harness::FormatTable(filter_runs, true)
                          .c_str());
    std::printf("FilterIntoMatchRule speedup:\n%s\n",
                workload::Harness::FormatSpeedups(filter_runs, "RelGoNoRule")
                    .c_str());
    // QR3/QR4: with vs without TrimAndFuseRule (FilterIntoMatch stays on).
    std::vector<workload::WorkloadQuery> fuse_queries(
        std::make_move_iterator(queries.begin() + 2),
        std::make_move_iterator(queries.end()));
    auto fuse_runs = harness.RunGrid(
        fuse_queries, {OptimizerMode::kRelGo, OptimizerMode::kRelGoNoFuse});
    std::printf("%s", workload::Harness::FormatTable(fuse_runs, true)
                          .c_str());
    std::printf("TrimAndFuseRule speedup:\n%s\n",
                workload::Harness::FormatSpeedups(fuse_runs, "RelGoNoFuse")
                    .c_str());
    delete db;
  }
  std::printf(
      "Shape check (paper): FilterIntoMatchRule dominates (hundreds-fold on\n"
      "QR1/2); TrimAndFuseRule contributes ~2x on QR3/4.\n");
  return 0;
}
