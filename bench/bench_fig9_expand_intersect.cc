// Reproduces Fig 9: EXPAND_INTERSECT effectiveness on cyclic patterns.
// QC1 (triangle), QC2 (square), QC3 (4-clique); RelGo vs RelGoNoEI, two
// scales. A bounded memory budget reproduces the paper's OOM of RelGoNoEI
// on the 4-clique. Both execution engines run; the wco intersection is the
// hottest loop in the system, so this is the primary scaling probe for the
// morsel-driven pipeline.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using exec::EngineKind;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.6);
  bench::Banner("Fig 9", "RelGo vs RelGoNoEI on QC1..3 (cyclic patterns)");

  for (double scale : {args.scale, args.scale * 2.0}) {
    Database* db = bench::MakeLdbc(scale);
    exec::ExecutionOptions exec_options = bench::BenchExecOptions();
    exec_options.max_total_rows = 30'000'000;  // paper-style memory bound
    auto queries = workload::LdbcCyclicQueries(*db);
    const std::vector<OptimizerMode> modes = {OptimizerMode::kRelGo,
                                              OptimizerMode::kRelGoNoEI};

    workload::Harness mat_harness(db, exec_options, args.reps);
    auto mat_runs = mat_harness.RunGrid(queries, modes);
    workload::Harness pipe_harness(
        db,
        bench::EngineOptions(exec_options, EngineKind::kPipeline,
                             args.threads),
        args.reps);
    auto pipe_runs = pipe_harness.RunGrid(queries, modes);

    std::printf("engine=materialize:\n%s",
                workload::Harness::FormatTable(mat_runs, true).c_str());
    std::printf("engine=pipeline (%d threads):\n%s", args.threads,
                workload::Harness::FormatTable(pipe_runs, true).c_str());
    std::printf("speedups (materialize engine):\n%s",
                workload::Harness::FormatSpeedups(mat_runs, "RelGoNoEI")
                    .c_str());
    std::printf("pipeline-vs-materialize engine speedup: %.2fx\n\n",
                bench::EngineSpeedup(mat_runs, pipe_runs));

    auto& json = bench::BenchJson::Global();
    json.AddGrid("fig9_expand_intersect", "ldbc", scale, mat_runs,
                 EngineKind::kMaterialize, 1);
    json.AddGrid("fig9_expand_intersect", "ldbc", scale, pipe_runs,
                 EngineKind::kPipeline, args.threads);
    delete db;
  }
  bench::BenchJson::Global().Write();
  std::printf(
      "Shape check (paper): RelGo wins moderately on QC1/QC2 (1.2-1.3x) and\n"
      "RelGoNoEI hits OOM on the 4-clique QC3.\n");
  return 0;
}
