// Reproduces Fig 9: EXPAND_INTERSECT effectiveness on cyclic patterns.
// QC1 (triangle), QC2 (square), QC3 (4-clique); RelGo vs RelGoNoEI, two
// scales. A bounded memory budget reproduces the paper's OOM of RelGoNoEI
// on the 4-clique.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace relgo;
  using optimizer::OptimizerMode;
  auto args = bench::ParseArgs(argc, argv, 0.6);
  bench::Banner("Fig 9", "RelGo vs RelGoNoEI on QC1..3 (cyclic patterns)");

  for (double scale : {args.scale, args.scale * 2.0}) {
    Database* db = bench::MakeLdbc(scale);
    exec::ExecutionOptions exec_options = bench::BenchExecOptions();
    exec_options.max_total_rows = 30'000'000;  // paper-style memory bound
    workload::Harness harness(db, exec_options, args.reps);
    auto runs = harness.RunGrid(
        workload::LdbcCyclicQueries(*db),
        {OptimizerMode::kRelGo, OptimizerMode::kRelGoNoEI});
    std::printf("%s", workload::Harness::FormatTable(runs, true).c_str());
    std::printf("speedups:\n%s\n",
                workload::Harness::FormatSpeedups(runs, "RelGoNoEI").c_str());
    delete db;
  }
  std::printf(
      "Shape check (paper): RelGo wins moderately on QC1/QC2 (1.2-1.3x) and\n"
      "RelGoNoEI hits OOM on the 4-clique QC3.\n");
  return 0;
}
