// google-benchmark micro-benchmarks for the physical building blocks:
// graph index construction, EXPAND (index vs hash), EXPAND_INTERSECT,
// pattern hash join, and the naive matcher, on a fixed LDBC-like dataset.

#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "exec/naive_matcher.h"
#include "workload/ldbc.h"

namespace {

using namespace relgo;

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    workload::LdbcOptions options;
    options.scale_factor = 0.3;
    Status st = workload::GenerateLdbc(d, options);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

exec::ExecutionContext MakeContext(Database* db) {
  exec::ExecutionOptions options;
  options.max_total_rows = 500'000'000;
  return exec::ExecutionContext(&db->catalog(), &db->mapping(), &db->index(),
                                options);
}

void BM_GraphIndexBuild(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    graph::GraphIndex index;
    Status st = index.Build(db->catalog(), db->mapping());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
}
BENCHMARK(BM_GraphIndexBuild)->Unit(benchmark::kMillisecond);

std::unique_ptr<plan::PhysicalOp> KnowsExpandPlan(Database* db,
                                                  bool use_index) {
  int person = db->mapping().FindVertexLabel("Person");
  int knows = db->mapping().FindEdgeLabel("knows");
  auto scan = std::make_unique<plan::PhysScanVertex>();
  scan->vertex_label = person;
  scan->var = "a";
  auto expand = std::make_unique<plan::PhysExpand>();
  expand->edge_label = knows;
  expand->dir = graph::Direction::kOut;
  expand->from_var = "a";
  expand->to_var = "b";
  expand->use_index = use_index;
  expand->children.push_back(std::move(scan));
  return expand;
}

void BM_ExpandIndexed(benchmark::State& state) {
  Database* db = SharedDb();
  auto plan = KnowsExpandPlan(db, true);
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*plan, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandIndexed)->Unit(benchmark::kMillisecond);

void BM_ExpandHash(benchmark::State& state) {
  Database* db = SharedDb();
  auto plan = KnowsExpandPlan(db, false);
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*plan, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandHash)->Unit(benchmark::kMillisecond);

void BM_ExpandIntersectTriangle(benchmark::State& state) {
  Database* db = SharedDb();
  int knows = db->mapping().FindEdgeLabel("knows");
  auto base = KnowsExpandPlan(db, true);
  auto ei = std::make_unique<plan::PhysExpandIntersect>();
  ei->edge_labels = {knows, knows};
  ei->dirs = {graph::Direction::kOut, graph::Direction::kOut};
  ei->from_vars = {"a", "b"};
  ei->edge_vars = {"", ""};
  ei->to_var = "c";
  ei->children.push_back(std::move(base));
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*ei, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandIntersectTriangle)->Unit(benchmark::kMillisecond);

void BM_TriangleViaExpandVerify(benchmark::State& state) {
  Database* db = SharedDb();
  int knows = db->mapping().FindEdgeLabel("knows");
  auto base = KnowsExpandPlan(db, true);
  auto expand = std::make_unique<plan::PhysExpand>();
  expand->edge_label = knows;
  expand->dir = graph::Direction::kOut;
  expand->from_var = "b";
  expand->to_var = "c";
  expand->children.push_back(std::move(base));
  auto verify = std::make_unique<plan::PhysEdgeVerify>();
  verify->edge_label = knows;
  verify->dir = graph::Direction::kOut;
  verify->src_var = "a";
  verify->dst_var = "c";
  verify->children.push_back(std::move(expand));
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*verify, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_TriangleViaExpandVerify)->Unit(benchmark::kMillisecond);

void BM_PatternHashJoin(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    auto left = KnowsExpandPlan(db, true);
    auto right = KnowsExpandPlan(db, true);
    // Rename right side vars to join on the shared "a".
    auto* right_expand = static_cast<plan::PhysExpand*>(right.get());
    right_expand->to_var = "c";
    auto join = std::make_unique<plan::PhysPatternJoin>();
    join->common_vars = {"a"};
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*join, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_PatternHashJoin)->Unit(benchmark::kMillisecond);

void BM_NaiveMatchTriangle(benchmark::State& state) {
  Database* db = SharedDb();
  auto pattern = db->ParsePattern(
      "(a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), "
      "(a)-[:knows]->(c)");
  if (!pattern.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::NaiveMatch(*pattern, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_NaiveMatchTriangle)->Unit(benchmark::kMillisecond);

void BM_GloguBuild(benchmark::State& state) {
  Database* db = SharedDb();
  graph::GraphStats stats;
  (void)stats.Build(db->catalog(), db->mapping(), db->index());
  for (auto _ : state) {
    optimizer::Glogue glogue;
    Status st = glogue.Build(db->catalog(), db->mapping(), db->index(), stats,
                             {});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(glogue.size());
  }
}
BENCHMARK(BM_GloguBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
