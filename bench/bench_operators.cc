// google-benchmark micro-benchmarks for the physical building blocks:
// graph index construction, EXPAND (index vs hash), EXPAND_INTERSECT,
// pattern hash join, and the naive matcher, on a fixed LDBC-like dataset —
// plus kernel-vs-row microbenches of the vectorized expression layer
// (filter selectivity sweep, join-key hashing, group-key build), whose
// results are also appended to BENCH_pipeline.json so the boxing-removal
// speedup is recorded in the perf trajectory.

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <random>

#include "bench_util.h"
#include "common/hash.h"
#include "exec/executor.h"
#include "exec/join_hash_table.h"
#include "exec/naive_matcher.h"
#include "exec/vector/compiled_expr.h"
#include "exec/vector/typed_keys.h"
#include "storage/expression.h"
#include "workload/ldbc.h"

namespace {

using namespace relgo;

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    workload::LdbcOptions options;
    options.scale_factor = 0.3;
    Status st = workload::GenerateLdbc(d, options);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

exec::ExecutionContext MakeContext(Database* db) {
  exec::ExecutionOptions options;
  options.max_total_rows = 500'000'000;
  return exec::ExecutionContext(&db->catalog(), &db->mapping(), &db->index(),
                                options);
}

void BM_GraphIndexBuild(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    graph::GraphIndex index;
    Status st = index.Build(db->catalog(), db->mapping());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
}
BENCHMARK(BM_GraphIndexBuild)->Unit(benchmark::kMillisecond);

std::unique_ptr<plan::PhysicalOp> KnowsExpandPlan(Database* db,
                                                  bool use_index) {
  int person = db->mapping().FindVertexLabel("Person");
  int knows = db->mapping().FindEdgeLabel("knows");
  auto scan = std::make_unique<plan::PhysScanVertex>();
  scan->vertex_label = person;
  scan->var = "a";
  auto expand = std::make_unique<plan::PhysExpand>();
  expand->edge_label = knows;
  expand->dir = graph::Direction::kOut;
  expand->from_var = "a";
  expand->to_var = "b";
  expand->use_index = use_index;
  expand->children.push_back(std::move(scan));
  return expand;
}

void BM_ExpandIndexed(benchmark::State& state) {
  Database* db = SharedDb();
  auto plan = KnowsExpandPlan(db, true);
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*plan, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandIndexed)->Unit(benchmark::kMillisecond);

void BM_ExpandHash(benchmark::State& state) {
  Database* db = SharedDb();
  auto plan = KnowsExpandPlan(db, false);
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*plan, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandHash)->Unit(benchmark::kMillisecond);

void BM_ExpandIntersectTriangle(benchmark::State& state) {
  Database* db = SharedDb();
  int knows = db->mapping().FindEdgeLabel("knows");
  auto base = KnowsExpandPlan(db, true);
  auto ei = std::make_unique<plan::PhysExpandIntersect>();
  ei->edge_labels = {knows, knows};
  ei->dirs = {graph::Direction::kOut, graph::Direction::kOut};
  ei->from_vars = {"a", "b"};
  ei->edge_vars = {"", ""};
  ei->to_var = "c";
  ei->children.push_back(std::move(base));
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*ei, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_ExpandIntersectTriangle)->Unit(benchmark::kMillisecond);

void BM_TriangleViaExpandVerify(benchmark::State& state) {
  Database* db = SharedDb();
  int knows = db->mapping().FindEdgeLabel("knows");
  auto base = KnowsExpandPlan(db, true);
  auto expand = std::make_unique<plan::PhysExpand>();
  expand->edge_label = knows;
  expand->dir = graph::Direction::kOut;
  expand->from_var = "b";
  expand->to_var = "c";
  expand->children.push_back(std::move(base));
  auto verify = std::make_unique<plan::PhysEdgeVerify>();
  verify->edge_label = knows;
  verify->dir = graph::Direction::kOut;
  verify->src_var = "a";
  verify->dst_var = "c";
  verify->children.push_back(std::move(expand));
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*verify, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_TriangleViaExpandVerify)->Unit(benchmark::kMillisecond);

void BM_PatternHashJoin(benchmark::State& state) {
  Database* db = SharedDb();
  for (auto _ : state) {
    auto left = KnowsExpandPlan(db, true);
    auto right = KnowsExpandPlan(db, true);
    // Rename right side vars to join on the shared "a".
    auto* right_expand = static_cast<plan::PhysExpand*>(right.get());
    right_expand->to_var = "c";
    auto join = std::make_unique<plan::PhysPatternJoin>();
    join->common_vars = {"a"};
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    auto ctx = MakeContext(db);
    auto result = exec::Executor::Run(*join, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_PatternHashJoin)->Unit(benchmark::kMillisecond);

void BM_NaiveMatchTriangle(benchmark::State& state) {
  Database* db = SharedDb();
  auto pattern = db->ParsePattern(
      "(a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), "
      "(a)-[:knows]->(c)");
  if (!pattern.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  for (auto _ : state) {
    auto ctx = MakeContext(db);
    auto result = exec::NaiveMatch(*pattern, &ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize((*result)->num_rows());
  }
}
BENCHMARK(BM_NaiveMatchTriangle)->Unit(benchmark::kMillisecond);

void BM_GloguBuild(benchmark::State& state) {
  Database* db = SharedDb();
  graph::GraphStats stats;
  (void)stats.Build(db->catalog(), db->mapping(), db->index());
  for (auto _ : state) {
    optimizer::Glogue glogue;
    Status st = glogue.Build(db->catalog(), db->mapping(), db->index(), stats,
                             {});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(glogue.size());
  }
}
BENCHMARK(BM_GloguBuild)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel vs row-at-a-time microbenches (vectorized expression layer)
// ---------------------------------------------------------------------------

constexpr uint64_t kMicroRows = 1 << 20;

/// Fixed 1M-row table: two uniform int64 columns in [0, 100) (so an
/// `v < T` predicate has selectivity T%) and a small-domain string column.
const storage::Table& MicroTable() {
  static storage::TablePtr table = [] {
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> pct(0, 99);
    const char* pool[] = {"alpha", "beta", "gamma", "delta", "omega"};
    auto t = std::make_shared<storage::Table>(
        "micro", storage::Schema({{"v", LogicalType::kInt64},
                                  {"w", LogicalType::kInt64},
                                  {"s", LogicalType::kString}}));
    for (size_t c = 0; c < 3; ++c) t->column(c).Reserve(kMicroRows);
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      t->column(0).AppendInt(pct(rng));
      t->column(1).AppendInt(pct(rng));
      t->column(2).AppendString(pool[rng() % 5]);
    }
    t->FinishBulkAppend();
    return t;
  }();
  return *table;
}

storage::ExprPtr BoundMicroPredicate(storage::ExprPtr expr) {
  Status st = expr->Bind(MicroTable().schema());
  if (!st.ok()) std::abort();
  return expr;
}

std::vector<const storage::Column*> MicroColumns() {
  std::vector<const storage::Column*> cols;
  for (size_t c = 0; c < MicroTable().num_columns(); ++c) {
    cols.push_back(&MicroTable().column(c));
  }
  return cols;
}

/// `v < T` at T% selectivity, row-at-a-time oracle (the pre-kernel path).
void BM_FilterInt64RowLoop(benchmark::State& state) {
  auto expr = BoundMicroPredicate(storage::Expr::Compare(
      storage::CompareOp::kLt, storage::Expr::Column("v"),
      storage::Expr::Constant(Value::Int(state.range(0)))));
  auto cols = MicroColumns();
  std::vector<uint64_t> sel;
  sel.reserve(kMicroRows);
  for (auto _ : state) {
    sel.clear();
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      if (expr->EvaluateBool(cols.data(), r)) sel.push_back(r);
    }
    benchmark::DoNotOptimize(sel.size());
  }
  state.counters["rows"] = static_cast<double>(sel.size());
}
BENCHMARK(BM_FilterInt64RowLoop)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

/// Same predicate lowered to a typed kernel program.
void BM_FilterInt64Kernel(benchmark::State& state) {
  auto expr = BoundMicroPredicate(storage::Expr::Compare(
      storage::CompareOp::kLt, storage::Expr::Column("v"),
      storage::Expr::Constant(Value::Int(state.range(0)))));
  auto compiled =
      exec::vector::CompiledPredicate::Compile(*expr, MicroTable().schema());
  if (compiled == nullptr) {
    state.SkipWithError("predicate did not lower");
    return;
  }
  auto cols = MicroColumns();
  std::vector<uint64_t> sel;
  sel.reserve(kMicroRows);
  for (auto _ : state) {
    sel.clear();
    compiled->FilterRange(cols.data(), 0, kMicroRows, &sel);
    benchmark::DoNotOptimize(sel.size());
  }
  state.counters["rows"] = static_cast<double>(sel.size());
}
BENCHMARK(BM_FilterInt64Kernel)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

/// String CONTAINS filter, row loop vs kernel (memmem-style inner loop).
void BM_FilterStringRowLoop(benchmark::State& state) {
  auto expr = BoundMicroPredicate(
      storage::Expr::Contains(storage::Expr::Column("s"), "amm"));
  auto cols = MicroColumns();
  std::vector<uint64_t> sel;
  sel.reserve(kMicroRows);
  for (auto _ : state) {
    sel.clear();
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      if (expr->EvaluateBool(cols.data(), r)) sel.push_back(r);
    }
    benchmark::DoNotOptimize(sel.size());
  }
  state.counters["rows"] = static_cast<double>(sel.size());
}
BENCHMARK(BM_FilterStringRowLoop)->Unit(benchmark::kMillisecond);

void BM_FilterStringKernel(benchmark::State& state) {
  auto expr = BoundMicroPredicate(
      storage::Expr::Contains(storage::Expr::Column("s"), "amm"));
  auto compiled =
      exec::vector::CompiledPredicate::Compile(*expr, MicroTable().schema());
  if (compiled == nullptr) {
    state.SkipWithError("predicate did not lower");
    return;
  }
  auto cols = MicroColumns();
  std::vector<uint64_t> sel;
  sel.reserve(kMicroRows);
  for (auto _ : state) {
    sel.clear();
    compiled->FilterRange(cols.data(), 0, kMicroRows, &sel);
    benchmark::DoNotOptimize(sel.size());
  }
  state.counters["rows"] = static_cast<double>(sel.size());
}
BENCHMARK(BM_FilterStringKernel)->Unit(benchmark::kMillisecond);

/// Two-column join-key hashing: boxed Value::Hash per row (the pre-kernel
/// JoinHashTable path) vs the typed payload-span chain it uses now.
void BM_JoinKeyHashBoxed(benchmark::State& state) {
  const storage::Table& t = MicroTable();
  for (auto _ : state) {
    size_t acc = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      size_t h = kHashSeed;
      h = HashCombine(h, t.GetValue(r, 0).Hash());
      h = HashCombine(h, t.GetValue(r, 1).Hash());
      acc ^= h;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_JoinKeyHashBoxed)->Unit(benchmark::kMillisecond);

void BM_JoinKeyHashTyped(benchmark::State& state) {
  const storage::Table& t = MicroTable();
  const int64_t* keys[2] = {t.column(0).data_int64(),
                            t.column(1).data_int64()};
  for (auto _ : state) {
    size_t acc = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      size_t h = kHashSeed;
      h = HashCombine(h, static_cast<size_t>(keys[0][r]));
      h = HashCombine(h, static_cast<size_t>(keys[1][r]));
      acc ^= h;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_JoinKeyHashTyped)->Unit(benchmark::kMillisecond);

/// GROUP BY key build over (int64, string): boxed Value-vector key + hash
/// chain vs KeyEncoder's byte-encoded key (same hash, no boxing).
void BM_GroupKeyBuildBoxed(benchmark::State& state) {
  const storage::Table& t = MicroTable();
  for (auto _ : state) {
    size_t acc = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      std::vector<Value> key;
      key.reserve(2);
      key.push_back(t.GetValue(r, 0));
      key.push_back(t.GetValue(r, 2));
      size_t h = kHashSeed;
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      acc ^= h;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_GroupKeyBuildBoxed)->Unit(benchmark::kMillisecond);

void BM_GroupKeyBuildEncoded(benchmark::State& state) {
  const storage::Table& t = MicroTable();
  auto encoder = exec::vector::KeyEncoder::Make(
      {LogicalType::kInt64, LogicalType::kString});
  if (encoder == nullptr) {
    state.SkipWithError("encoder unavailable");
    return;
  }
  const storage::Column* cols[2] = {&t.column(0), &t.column(2)};
  exec::vector::EncodedGroupKey key;
  for (auto _ : state) {
    size_t acc = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      encoder->Encode(cols, r, &key);
      acc ^= key.hash;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_GroupKeyBuildEncoded)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Dictionary-encoding microbenches (bench "operators_dict"): the same
// operation on the same data, payload bytes vs int32 dictionary codes.
// ---------------------------------------------------------------------------

/// 1M-row table whose string column draws from 64 same-length values
/// sharing a long common prefix (the worst case for byte-wise equality,
/// the shape LDBC attribute columns actually have); dictionary built.
const storage::Table& DictMicroTable() {
  static storage::TablePtr table = [] {
    std::mt19937 rng(23);
    std::vector<std::string> pool;
    for (int i = 0; i < 64; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "category_value_%03d", i);
      pool.push_back(buf);
    }
    auto t = std::make_shared<storage::Table>(
        "dict_micro", storage::Schema({{"s", LogicalType::kString}}));
    t->column(0).Reserve(kMicroRows);
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      t->column(0).AppendString(pool[rng() % pool.size()]);
    }
    t->FinishBulkAppend();
    t->column(0).BuildDictionary();
    return t;
  }();
  return *table;
}

/// String-equality filter: payload byte-compare kernel vs the int32
/// code-compare kernel (constant translated to a code at compile time).
void DictFilterStringEq(benchmark::State& state, bool use_dictionaries) {
  const storage::Table& t = DictMicroTable();
  auto expr = storage::Expr::Compare(
      storage::CompareOp::kEq, storage::Expr::Column("s"),
      storage::Expr::Constant(Value::String("category_value_031")));
  if (!expr->Bind(t.schema()).ok()) {
    state.SkipWithError("bind failed");
    return;
  }
  auto compiled = exec::vector::CompiledPredicate::Compile(
      *expr, t.schema(), &t, use_dictionaries);
  if (compiled == nullptr) {
    state.SkipWithError("predicate did not lower");
    return;
  }
  const storage::Column* cols[1] = {&t.column(0)};
  std::vector<uint64_t> sel;
  sel.reserve(kMicroRows);
  for (auto _ : state) {
    sel.clear();
    compiled->FilterRange(cols, 0, kMicroRows, &sel);
    benchmark::DoNotOptimize(sel.size());
  }
  state.counters["rows"] = static_cast<double>(sel.size());
}
void BM_DictFilterStringEqPayload(benchmark::State& state) {
  DictFilterStringEq(state, false);
}
void BM_DictFilterStringEqDict(benchmark::State& state) {
  DictFilterStringEq(state, true);
}
BENCHMARK(BM_DictFilterStringEqPayload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DictFilterStringEqDict)->Unit(benchmark::kMillisecond);

/// Build side (100K unique string keys, dictionary built) and a 1M-row
/// probe side derived from it, so the probe column shares the build
/// dictionary — the planner-join shape after a base-table scan.
struct DictJoinData {
  storage::TablePtr build;
  storage::TablePtr probe;
};

const DictJoinData& DictJoinTables() {
  static DictJoinData data = [] {
    constexpr uint64_t kBuildRows = 100'000;
    DictJoinData d;
    d.build = std::make_shared<storage::Table>(
        "dict_build", storage::Schema({{"k", LogicalType::kString}}));
    d.build->column(0).Reserve(kBuildRows);
    for (uint64_t r = 0; r < kBuildRows; ++r) {
      // Email-shaped keys (shared prefix AND suffix): string join keys
      // in the wild are long, and byte-wise hash + compare pays for
      // every byte — exactly what code-valued keys sidestep.
      char buf[48];
      std::snprintf(buf, sizeof(buf), "person_email_%06llu@example.org",
                    static_cast<unsigned long long>(r));
      d.build->column(0).AppendString(buf);
    }
    d.build->FinishBulkAppend();
    d.build->column(0).BuildDictionary();
    d.probe = std::make_shared<storage::Table>(
        "dict_probe", storage::Schema({{"k", LogicalType::kString}}));
    std::mt19937 rng(29);
    d.probe->column(0).Reserve(kMicroRows);
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      d.probe->column(0).AppendFrom(d.build->column(0), rng() % kBuildRows);
    }
    d.probe->FinishBulkAppend();
    return d;
  }();
  return data;
}

/// String join-key hash probe: byte hashing + memcmp on the payload path
/// vs int64 code hashing + int32 compare on the dictionary path.
void DictJoinProbeString(benchmark::State& state, bool use_dictionaries) {
  const DictJoinData& d = DictJoinTables();
  exec::JoinHashTable ht;
  Status st = ht.Build(*d.build, {"k"}, use_dictionaries);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  exec::JoinHashTable::ProbeView view;
  st = ht.BindProbe(*d.probe, {0}, &view);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::vector<uint64_t> matches;
  for (auto _ : state) {
    uint64_t hits = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      matches.clear();
      ht.Probe(view, r, &matches);
      hits += matches.size();
    }
    benchmark::DoNotOptimize(hits);
  }
}
void BM_DictJoinProbeStringPayload(benchmark::State& state) {
  DictJoinProbeString(state, false);
}
void BM_DictJoinProbeStringDict(benchmark::State& state) {
  DictJoinProbeString(state, true);
}
BENCHMARK(BM_DictJoinProbeStringPayload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DictJoinProbeStringDict)->Unit(benchmark::kMillisecond);

/// GROUP BY key build over a dictionary string column: length-prefixed
/// byte append + byte hash vs fixed32 code append + int64 hash.
void DictGroupKeyString(benchmark::State& state, bool use_dictionaries) {
  const storage::Table& t = DictMicroTable();
  auto encoder = exec::vector::KeyEncoder::Make({LogicalType::kString},
                                                use_dictionaries);
  if (encoder == nullptr) {
    state.SkipWithError("encoder unavailable");
    return;
  }
  const storage::Column* cols[1] = {&t.column(0)};
  exec::vector::EncodedGroupKey key;
  for (auto _ : state) {
    size_t acc = 0;
    for (uint64_t r = 0; r < kMicroRows; ++r) {
      encoder->Encode(cols, r, &key);
      acc ^= key.hash;
    }
    benchmark::DoNotOptimize(acc);
  }
}
void BM_DictGroupKeyStringPayload(benchmark::State& state) {
  DictGroupKeyString(state, false);
}
void BM_DictGroupKeyStringDict(benchmark::State& state) {
  DictGroupKeyString(state, true);
}
BENCHMARK(BM_DictGroupKeyStringPayload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DictGroupKeyStringDict)->Unit(benchmark::kMillisecond);

/// Forwards finished kernel-vs-row runs into BENCH_pipeline.json (bench
/// "operators_kernel") and remembers per-benchmark timings so main() can
/// print the row/kernel speedup table the acceptance bar reads.
class KernelJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      std::string name = run.benchmark_name();
      const bool dict_bench = name.rfind("BM_Dict", 0) == 0;
      if (!dict_bench && name.rfind("BM_Filter", 0) != 0 &&
          name.rfind("BM_JoinKey", 0) != 0 &&
          name.rfind("BM_GroupKey", 0) != 0) {
        continue;
      }
      double ms =
          run.real_accumulated_time / std::max<int64_t>(run.iterations, 1) *
          1e3;
      ms_by_name_[name] = ms;
      bench::BenchRecord rec;
      rec.bench = dict_bench ? "operators_dict" : "operators_kernel";
      rec.workload = "micro";
      rec.scale = 0.0;
      rec.query = name;
      if (dict_bench) {
        rec.mode = name.find("Payload") != std::string::npos ? "payload"
                                                             : "dict";
      } else {
        rec.mode = (name.find("RowLoop") != std::string::npos ||
                    name.find("Boxed") != std::string::npos)
                       ? "row"
                       : "kernel";
      }
      rec.engine = "materialize";
      rec.threads = 1;
      rec.execution_ms = ms;
      auto rows = run.counters.find("rows");
      rec.rows = rows == run.counters.end()
                     ? kMicroRows
                     : static_cast<uint64_t>(rows->second.value);
      rec.status = "ok";
      bench::BenchJson::Global().Add(std::move(rec));
    }
  }

  /// Prints kernel-vs-row speedups for every (row, kernel) name pair.
  void PrintSpeedups() const {
    const char* pairs[][2] = {
        {"BM_FilterInt64RowLoop", "BM_FilterInt64Kernel"},
        {"BM_FilterStringRowLoop", "BM_FilterStringKernel"},
        {"BM_JoinKeyHashBoxed", "BM_JoinKeyHashTyped"},
        {"BM_GroupKeyBuildBoxed", "BM_GroupKeyBuildEncoded"},
        {"BM_DictFilterStringEqPayload", "BM_DictFilterStringEqDict"},
        {"BM_DictJoinProbeStringPayload", "BM_DictJoinProbeStringDict"},
        {"BM_DictGroupKeyStringPayload", "BM_DictGroupKeyStringDict"},
    };
    std::printf("\nkernel-vs-row speedups (1M rows)\n");
    for (const auto& pair : pairs) {
      for (const auto& [name, row_ms] : ms_by_name_) {
        if (name.rfind(pair[0], 0) != 0) continue;
        std::string kernel_name = pair[1] + name.substr(strlen(pair[0]));
        auto it = ms_by_name_.find(kernel_name);
        if (it == ms_by_name_.end() || it->second <= 0.0) continue;
        std::printf("  %-28s %8.3f ms -> %8.3f ms  (%.2fx)\n",
                    kernel_name.c_str(), row_ms, it->second,
                    row_ms / it->second);
      }
    }
  }

 private:
  std::map<std::string, double> ms_by_name_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  KernelJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.PrintSpeedups();
  relgo::bench::BenchJson::Global().Write();
  return 0;
}
