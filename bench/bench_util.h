#ifndef RELGO_BENCH_BENCH_UTIL_H_
#define RELGO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/harness.h"
#include "workload/imdb.h"
#include "workload/ldbc.h"

namespace relgo {
namespace bench {

/// Shared CLI convention for the figure benches:
///   --scale <f>   dataset scale factor (default per bench)
///   --reps <n>    timed repetitions per query (default 2)
struct BenchArgs {
  double scale = 1.0;
  int reps = 2;
};

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--scale" && i + 1 < argc) {
      args.scale = std::atof(argv[++i]);
    } else if (a == "--reps" && i + 1 < argc) {
      args.reps = std::atoi(argv[++i]);
    }
  }
  return args;
}

inline void Banner(const char* figure, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("=============================================================\n");
}

inline Database* MakeLdbc(double scale) {
  auto* db = new Database();
  workload::LdbcOptions options;
  options.scale_factor = scale;
  Status st = workload::GenerateLdbc(db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "LDBC generation failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  std::printf("LDBC-like dataset, scale %.2f: %llu tuples total\n", scale,
              static_cast<unsigned long long>(db->catalog().TotalRows()));
  return db;
}

inline Database* MakeImdb(double scale) {
  auto* db = new Database();
  workload::ImdbOptions options;
  options.scale_factor = scale;
  Status st = workload::GenerateImdb(db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "IMDB generation failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  std::printf("IMDB-like dataset, scale %.2f: %llu tuples total\n", scale,
              static_cast<unsigned long long>(db->catalog().TotalRows()));
  return db;
}

/// Bench-wide execution limits: a 30s per-query timeout (the paper used 10
/// minutes at server scale; timeouts are reported as OT) and the default
/// row budget.
inline exec::ExecutionOptions BenchExecOptions() {
  exec::ExecutionOptions options;
  options.timeout_ms = 30'000.0;
  return options;
}

}  // namespace bench
}  // namespace relgo

#endif  // RELGO_BENCH_BENCH_UTIL_H_
