#ifndef RELGO_BENCH_BENCH_UTIL_H_
#define RELGO_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "workload/harness.h"
#include "workload/imdb.h"
#include "workload/ldbc.h"

namespace relgo {
namespace bench {

/// Shared CLI convention for the figure benches:
///   --scale <f>    dataset scale factor (default per bench)
///   --reps <n>     timed repetitions per query (default 2)
///   --threads <n>  pipeline-engine worker threads (default 4)
///   --dict on|off  string dictionary encoding (default on); the off leg
///                  of a same-machine A/B pair — its records land in the
///                  JSON under "<bench>_nodict" so the two legs stay
///                  separable in the accumulated trajectory
struct BenchArgs {
  double scale = 1.0;
  int reps = 2;
  int threads = 4;
  bool dictionary = true;
};

/// Process-wide mirror of BenchArgs::dictionary, set by ParseArgs; read
/// by BenchExecOptions (so every harness leg of a bench inherits it) and
/// by BenchJson::Add (record tagging).
inline bool g_dictionary_encoding = true;

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--scale" && i + 1 < argc) {
      args.scale = std::atof(argv[++i]);
    } else if (a == "--reps" && i + 1 < argc) {
      args.reps = std::atoi(argv[++i]);
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
    } else if (a == "--dict" && i + 1 < argc) {
      args.dictionary = std::string(argv[++i]) != "off";
    }
  }
  g_dictionary_encoding = args.dictionary;
  if (args.threads <= 0) {
    // 0 (or garbage) means hardware concurrency, like
    // ExecutionOptions::num_threads; resolve it here so tables and JSON
    // records show the actual worker count.
    exec::ExecutionOptions probe;
    probe.num_threads = args.threads;
    args.threads = exec::ResolveNumThreads(probe);
  }
  return args;
}

/// Human-readable engine tag used in tables and in the JSON records.
inline const char* EngineLabel(exec::EngineKind engine) {
  return engine == exec::EngineKind::kPipeline ? "pipeline" : "materialize";
}

/// ExecutionOptions for one engine configuration on top of the bench-wide
/// limits (see BenchExecOptions below).
inline exec::ExecutionOptions EngineOptions(exec::ExecutionOptions base,
                                            exec::EngineKind engine,
                                            int threads) {
  base.engine = engine;
  base.num_threads = threads;
  return base;
}

/// One measurement tagged with engine + thread count, serialized into
/// BENCH_pipeline.json so the perf trajectory across PRs is recorded
/// machine-readably.
struct BenchRecord {
  std::string bench;     ///< e.g. "fig7_e2e"
  std::string workload;  ///< "ldbc" / "imdb"
  double scale = 0.0;
  std::string query;
  std::string mode;    ///< optimizer mode name
  std::string engine;  ///< "materialize" / "pipeline"
  int threads = 1;
  double optimization_ms = 0.0;
  double execution_ms = 0.0;
  uint64_t rows = 0;
  std::string status;  ///< "ok" / "OOM" / "OT" / "ERR"
  /// Estimator accuracy of the plan (geomean / max per-operator Q-error
  /// from the profiled warm-up); 0 when not measured.
  double qerror = 0.0;
  double qerror_max = 0.0;
  /// Breaker serial sections of the profiled warm-up (pipeline engine):
  /// hash-join build and sort/top-k finish wall time. Tracks how much of a
  /// query the breakers still serialize across PRs.
  double build_ms = 0.0;
  double sort_ms = 0.0;
  /// Adaptive-statistics loop (Harness::RunAdaptive records): Q-error
  /// geomean / worst-operator Q-error after `feedback_rounds` warm-up ->
  /// feedback -> re-plan rounds; all 0 on non-adaptive records. Compare
  /// qerror_after against qerror (always the first run) to read the
  /// feedback gain.
  double qerror_after = 0.0;
  double qerror_max_after = 0.0;
  int feedback_rounds = 0;
  /// Concurrent-serving fields (fig13 records; defaults on the rest):
  /// client threads replaying the mix, completed queries per second, and
  /// cross-query scan-cache activity during the run. Per-query records
  /// reuse scan_cache_hits for the profiled warm-up's replayed scans.
  int clients = 0;
  double qps = 0.0;
  uint64_t scan_cache_hits = 0;
  double cache_hit_rate = 0.0;
  /// Per-query latency tail of the storm (fig13 records; 0 on the rest):
  /// exact nearest-rank percentiles over every completed query's
  /// end-to-end milliseconds — the serving metric QPS alone hides.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Lifecycle shed-load breakdown of a storm's failed queries (fig13
  /// chaos/admission records; 0 on the rest): cancelled mid-flight,
  /// rejected by admission control, timed out.
  uint64_t queries_cancelled = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_timeout = 0;
  /// Cross-query plan-cache activity (fig13 storm and hot-template
  /// records; 0 on the rest — the per-query figure benches run with
  /// BenchExecOptions' plan_cache off). On hot-template records,
  /// optimization_ms holds the warm mean and execution_ms the warm mean
  /// execution time, so a warm record with hits ~100% shows
  /// optimization_ms collapsing toward 0.
  uint64_t plan_cache_hits = 0;
  double plan_cache_hit_rate = 0.0;
};

/// Process-wide collector; call Write() once at the end of main(). Every
/// record is stamped with a per-process run id (unix time at startup) so
/// accumulated files from repeated runs can be ordered and deduplicated.
class BenchJson {
 public:
  static BenchJson& Global() {
    static BenchJson instance;
    return instance;
  }

  void Add(BenchRecord record) {
    // The dictionary-off A/B leg gets its own bench tag so on/off pairs
    // never interleave within one bench name across accumulated runs.
    if (!g_dictionary_encoding) record.bench += "_nodict";
    records_.push_back(std::move(record));
  }

  /// Tags and records a harness grid run under one engine configuration.
  void AddGrid(const std::string& bench, const std::string& workload,
               double scale, const std::vector<workload::RunMeasurement>& runs,
               exec::EngineKind engine, int threads) {
    for (const auto& r : runs) {
      BenchRecord rec;
      rec.bench = bench;
      rec.workload = workload;
      rec.scale = scale;
      rec.query = r.query;
      rec.mode = r.mode;
      rec.engine = EngineLabel(engine);
      rec.threads = engine == exec::EngineKind::kPipeline ? threads : 1;
      rec.optimization_ms = r.optimization_ms;
      rec.execution_ms = r.execution_ms;
      rec.rows = r.result_rows;
      rec.status = r.out_of_memory ? "OOM"
                   : r.timed_out   ? "OT"
                   : r.failed      ? "ERR"
                                   : "ok";
      rec.qerror = r.qerror_geomean;
      rec.qerror_max = r.qerror_max;
      rec.build_ms = r.build_ms;
      rec.sort_ms = r.sort_ms;
      rec.qerror_after = r.qerror_geomean_after;
      rec.qerror_max_after = r.qerror_max_after;
      rec.feedback_rounds = r.feedback_rounds;
      rec.scan_cache_hits = r.scan_cache_hits;
      Add(std::move(rec));
    }
  }

  /// Tags and records one multi-client throughput measurement
  /// (Harness::RunConcurrent) under one engine configuration.
  void AddConcurrent(const std::string& bench, const std::string& workload,
                     double scale,
                     const relgo::workload::ConcurrentMeasurement& m,
                     exec::EngineKind engine, int threads) {
    BenchRecord rec;
    rec.bench = bench;
    rec.workload = workload;
    rec.scale = scale;
    rec.query = "mix";
    rec.mode = m.mode;
    rec.engine = EngineLabel(engine);
    rec.threads = engine == exec::EngineKind::kPipeline ? threads : 1;
    rec.execution_ms = m.wall_ms;
    rec.rows = m.queries_ok;
    rec.status = m.queries_failed == 0 ? "ok" : "ERR";
    rec.clients = m.clients;
    rec.qps = m.qps;
    rec.scan_cache_hits = m.scan_cache_hits;
    rec.cache_hit_rate = m.cache_hit_rate;
    rec.latency_p50_ms = m.latency_p50_ms;
    rec.latency_p95_ms = m.latency_p95_ms;
    rec.latency_p99_ms = m.latency_p99_ms;
    rec.queries_cancelled = m.queries_cancelled;
    rec.queries_rejected = m.queries_rejected;
    rec.queries_timeout = m.queries_timeout;
    rec.plan_cache_hits = m.plan_cache_hits;
    rec.plan_cache_hit_rate = m.plan_cache_hit_rate;
    // A storm whose only failures are deliberately shed load (cancelled /
    // rejected / timed out) is a healthy serving-tier record, not an ERR.
    if (m.queries_failed > 0 &&
        m.queries_cancelled + m.queries_rejected + m.queries_timeout ==
            m.queries_failed) {
      rec.status = "shed";
    }
    Add(std::move(rec));
  }

  /// Tags and records one hot-template sweep (Harness::RunHotTemplates)
  /// under one engine configuration. `phase` is "cold" or "warm": the
  /// cold record carries the cold mean optimization time, the warm record
  /// the warm means plus the sweep's plan-cache hit counters.
  void AddHotTemplates(const std::string& bench, const std::string& workload,
                       double scale,
                       const relgo::workload::HotTemplateMeasurement& m,
                       exec::EngineKind engine, int threads,
                       const std::string& phase) {
    BenchRecord rec;
    rec.bench = bench;
    rec.workload = workload;
    rec.scale = scale;
    rec.query = "hot_templates_" + phase;
    rec.mode = m.mode;
    rec.engine = EngineLabel(engine);
    rec.threads = engine == exec::EngineKind::kPipeline ? threads : 1;
    rec.rows = m.queries_ok;
    rec.status = m.queries_failed == 0 ? "ok" : "ERR";
    rec.qps = m.qps;
    if (phase == "cold") {
      rec.optimization_ms = m.cold_optimization_ms;
    } else {
      rec.optimization_ms = m.warm_optimization_ms;
      rec.execution_ms = m.warm_execution_ms;
      rec.plan_cache_hits = m.plan_cache_hits;
      rec.plan_cache_hit_rate = m.plan_cache_hit_rate;
    }
    Add(std::move(rec));
  }

  /// Writes all records as a JSON array to `path`. If the file already
  /// holds an array written by a previous bench binary, the new records are
  /// appended to it — running the whole figure suite accumulates one
  /// trajectory file instead of each binary clobbering the last.
  void Write(const std::string& path = "BENCH_pipeline.json") const {
    std::string existing;
    if (std::FILE* in = std::fopen(path.c_str(), "r")) {
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        existing.append(buf, n);
      }
      std::fclose(in);
      // Strip trailing whitespace and the closing ']' of our own format;
      // anything unrecognized is treated as absent (overwritten).
      while (!existing.empty() &&
             (existing.back() == '\n' || existing.back() == ' ')) {
        existing.pop_back();
      }
      if (existing.empty() || existing.front() != '[' ||
          existing.back() != ']') {
        existing.clear();
      } else {
        existing.pop_back();  // drop ']'
        while (!existing.empty() && existing.back() == '\n') {
          existing.pop_back();
        }
      }
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    bool has_prior = existing.find('{') != std::string::npos;
    if (existing.empty()) {
      std::fprintf(f, "[\n");
    } else {
      std::fprintf(f, "%s%s\n", existing.c_str(),
                   has_prior && !records_.empty() ? "," : "");
    }
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(
          f,
          "  {\"run_ts\": %lld, \"bench\": \"%s\", \"workload\": \"%s\", "
          "\"scale\": %.3f, \"query\": \"%s\", \"mode\": \"%s\", "
          "\"engine\": \"%s\", \"threads\": %d, \"optimization_ms\": %.3f, "
          "\"execution_ms\": %.3f, \"rows\": %llu, \"status\": \"%s\", "
          "\"qerror\": %.3f, \"qerror_max\": %.3f, \"build_ms\": %.3f, "
          "\"sort_ms\": %.3f, \"qerror_after\": %.3f, "
          "\"qerror_max_after\": %.3f, \"feedback_rounds\": %d, "
          "\"clients\": %d, \"qps\": %.3f, \"scan_cache_hits\": %llu, "
          "\"cache_hit_rate\": %.4f, \"latency_p50_ms\": %.3f, "
          "\"latency_p95_ms\": %.3f, \"latency_p99_ms\": %.3f, "
          "\"queries_cancelled\": %llu, \"queries_rejected\": %llu, "
          "\"queries_timeout\": %llu, \"plan_cache_hits\": %llu, "
          "\"plan_cache_hit_rate\": %.4f}%s\n",
          static_cast<long long>(run_ts_), r.bench.c_str(),
          r.workload.c_str(), r.scale, r.query.c_str(), r.mode.c_str(),
          r.engine.c_str(), r.threads, r.optimization_ms, r.execution_ms,
          static_cast<unsigned long long>(r.rows), r.status.c_str(),
          r.qerror, r.qerror_max, r.build_ms, r.sort_ms, r.qerror_after,
          r.qerror_max_after, r.feedback_rounds, r.clients, r.qps,
          static_cast<unsigned long long>(r.scan_cache_hits),
          r.cache_hit_rate, r.latency_p50_ms, r.latency_p95_ms,
          r.latency_p99_ms,
          static_cast<unsigned long long>(r.queries_cancelled),
          static_cast<unsigned long long>(r.queries_rejected),
          static_cast<unsigned long long>(r.queries_timeout),
          static_cast<unsigned long long>(r.plan_cache_hits),
          r.plan_cache_hit_rate, i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu records to %s\n", records_.size(), path.c_str());
  }

 private:
  BenchJson() : run_ts_(std::time(nullptr)) {}

  std::time_t run_ts_;
  std::vector<BenchRecord> records_;
};

/// Geometric-mean execution speedup of `b` over `a` for runs matched by
/// (query, mode); used to report pipeline-vs-materialize engine gains.
inline double EngineSpeedup(const std::vector<workload::RunMeasurement>& a,
                            const std::vector<workload::RunMeasurement>& b) {
  double log_sum = 0.0;
  int n = 0;
  for (const auto& ra : a) {
    for (const auto& rb : b) {
      if (ra.query != rb.query || ra.mode != rb.mode) continue;
      if (ra.failed || ra.timed_out || ra.out_of_memory) continue;
      if (rb.failed || rb.timed_out || rb.out_of_memory) continue;
      log_sum += std::log(std::max(ra.execution_ms, 1e-3) /
                          std::max(rb.execution_ms, 1e-3));
      ++n;
    }
  }
  return n == 0 ? 1.0 : std::exp(log_sum / n);
}

inline void Banner(const char* figure, const char* what) {
  std::printf("===========================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("===========================================================\n");
}

inline Database* MakeLdbc(double scale) {
  auto* db = new Database();
  workload::LdbcOptions options;
  options.scale_factor = scale;
  Status st = workload::GenerateLdbc(db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "LDBC generation failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  std::printf("LDBC-like dataset, scale %.2f: %llu tuples total\n", scale,
              static_cast<unsigned long long>(db->catalog().TotalRows()));
  return db;
}

inline Database* MakeImdb(double scale) {
  auto* db = new Database();
  workload::ImdbOptions options;
  options.scale_factor = scale;
  Status st = workload::GenerateImdb(db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "IMDB generation failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  std::printf("IMDB-like dataset, scale %.2f: %llu tuples total\n", scale,
              static_cast<unsigned long long>(db->catalog().TotalRows()));
  return db;
}

/// Bench-wide execution limits: a 30s per-query timeout (the paper used 10
/// minutes at server scale; timeouts are reported as OT) and the default
/// row budget. The cross-query scan cache and the plan cache are OFF here
/// so every figure bench's execution_ms / optimization_ms keeps measuring
/// real filter evaluation and real optimization — the accumulated
/// BENCH_pipeline.json trajectory stays comparable across PRs, and cache
/// amortization is measured by the one bench built for it
/// (bench_fig13_concurrency, which opts back in).
inline exec::ExecutionOptions BenchExecOptions() {
  exec::ExecutionOptions options;
  options.timeout_ms = 30'000.0;
  options.scan_cache = false;
  options.plan_cache = false;
  options.dictionary_encoding = g_dictionary_encoding;
  return options;
}

}  // namespace bench
}  // namespace relgo

#endif  // RELGO_BENCH_BENCH_UTIL_H_
