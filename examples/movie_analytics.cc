// Movie-database analytics on the IMDB-like dataset: runs the paper's
// JOB17 case study (Fig 12) end to end, printing the plans produced by
// the converged optimizer and both relational baselines, then sweeps a
// few more JOB-analog queries.

#include <cstdio>

#include "core/database.h"
#include "workload/harness.h"
#include "workload/imdb.h"

using namespace relgo;

int main() {
  Database db;
  workload::ImdbOptions options;
  options.scale_factor = 0.3;
  Status st = workload::GenerateImdb(&db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("movie database ready: %llu tuples across %zu tables\n\n",
              static_cast<unsigned long long>(db.catalog().TotalRows()),
              db.catalog().ListTables().size());

  auto queries = workload::JobQueries(db);

  // --- JOB17 case study -------------------------------------------------------
  for (const auto& wq : queries) {
    if (wq.query.name != "JOB17") continue;
    std::printf("=== JOB17 (Fig 12 case study) ===\nMATCH %s\n\n",
                wq.query.pattern.ToString(&db.mapping()).c_str());
    for (auto mode : {optimizer::OptimizerMode::kRelGo,
                      optimizer::OptimizerMode::kGRainDB,
                      optimizer::OptimizerMode::kUmbraLike}) {
      auto explain = db.Explain(wq.query, mode);
      if (explain.ok()) {
        std::printf("--- %s ---\n%s\n", optimizer::ModeName(mode),
                    explain->c_str());
      }
    }
  }

  // --- A small sweep with the harness ----------------------------------------
  std::vector<workload::WorkloadQuery> subset;
  for (auto& wq : queries) {
    if (wq.query.name == "JOB2" || wq.query.name == "JOB6" ||
        wq.query.name == "JOB17" || wq.query.name == "JOB29") {
      subset.push_back(std::move(wq));
    }
  }
  workload::Harness harness(&db, {}, 3);
  auto runs = harness.RunGrid(subset, {optimizer::OptimizerMode::kDuckDB,
                                       optimizer::OptimizerMode::kGRainDB,
                                       optimizer::OptimizerMode::kRelGo});
  std::printf("execution times (ms):\n%s\n",
              workload::Harness::FormatTable(runs, false).c_str());
  std::printf("speedups vs the graph-agnostic baseline:\n%s",
              workload::Harness::FormatSpeedups(runs, "DuckDB").c_str());
  return 0;
}
