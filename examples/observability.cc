// Observability tour: the process-wide metrics registry, query-lifecycle
// tracing, and the slow-query log (docs/ARCHITECTURE.md "Observability").
//
// Builds the paper's Fig 2 graph, serves a small query mix on both
// engines with tracing enabled and a (deliberately hair-trigger)
// slow-query threshold, then dumps the three observability surfaces:
//
//   1. db.metrics().RenderText()   — Prometheus-style text exposition
//   2. db.DumpTrace("relgo_trace.json") — Chrome trace-event JSON;
//      load it in chrome://tracing or https://ui.perfetto.dev
//   3. db.slow_query_log().records() — structured slow-query lines

#include <cstdio>

#include "core/database.h"
#include "plan/spjm_query.h"

using namespace relgo;

namespace {

// The four graph tables of Fig 2 (same data as examples/quickstart.cc).
Status BuildFigure2(Database* db) {
  using storage::ColumnDef;
  using storage::Schema;
  RELGO_ASSIGN_OR_RETURN(
      auto person,
      db->CreateTable("Person",
                      Schema({ColumnDef{"person_id", LogicalType::kInt64},
                              {"name", LogicalType::kString},
                              {"place_id", LogicalType::kInt64}})));
  RELGO_ASSIGN_OR_RETURN(
      auto message,
      db->CreateTable("Message",
                      Schema({ColumnDef{"message_id", LogicalType::kInt64},
                              {"content", LogicalType::kString}})));
  RELGO_ASSIGN_OR_RETURN(
      auto likes,
      db->CreateTable("Likes",
                      Schema({ColumnDef{"likes_id", LogicalType::kInt64},
                              {"pid", LogicalType::kInt64},
                              {"mid", LogicalType::kInt64},
                              {"date", LogicalType::kDate}})));
  RELGO_ASSIGN_OR_RETURN(
      auto knows,
      db->CreateTable("Knows",
                      Schema({ColumnDef{"knows_id", LogicalType::kInt64},
                              {"pid1", LogicalType::kInt64},
                              {"pid2", LogicalType::kInt64}})));

  auto d = [](const char* iso) { return Value::Date(*ParseDate(iso)); };
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(1), Value::String("Tom"), Value::Int(100)}));
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(2), Value::String("Bob"), Value::Int(200)}));
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(3), Value::String("David"), Value::Int(300)}));
  RELGO_RETURN_NOT_OK(
      message->AppendRow({Value::Int(10), Value::String("m1")}));
  RELGO_RETURN_NOT_OK(
      message->AppendRow({Value::Int(20), Value::String("m2")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(1), Value::Int(1), Value::Int(10), d("2024-03-31")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(2), Value::Int(2), Value::Int(10), d("2024-03-28")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(3), Value::Int(2), Value::Int(20), d("2024-03-20")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(4), Value::Int(3), Value::Int(20), d("2024-03-21")}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(1), Value::Int(1), Value::Int(2)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(2), Value::Int(2), Value::Int(1)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(3), Value::Int(2), Value::Int(3)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(4), Value::Int(3), Value::Int(2)}));

  RELGO_RETURN_NOT_OK(db->AddVertexTable("Person", "person_id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Message", "message_id"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Likes", "Person", "pid", "Message", "mid"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Knows", "Person", "pid1", "Person", "pid2"));
  return db->Finalize();
}

Status RunObservabilityTour() {
  Database db;
  RELGO_RETURN_NOT_OK(BuildFigure2(&db));

  // --- 1. Turn the observability surfaces on. --------------------------------
  // Metrics are always on (ExecutionOptions::metrics opts out per query);
  // tracing and the slow-query log are opt-in. SetTracing records spans
  // for every subsequent query; slow_query_ms = 0.001 classifies nearly
  // everything as slow so this example has records to show — production
  // thresholds live in the tens-to-thousands of milliseconds.
  db.SetTracing(true);
  exec::ExecutionOptions options;
  options.slow_query_ms = 0.001;

  // --- 2. Serve a small mix: triangle + two-hop, both engines. ---------------
  RELGO_ASSIGN_OR_RETURN(
      auto triangle_pattern,
      db.ParsePattern("(p1:Person)-[:Likes]->(m:Message), "
                      "(p2:Person)-[:Likes]->(m), (p1)-[:Knows]->(p2)"));
  auto triangle = plan::SpjmQueryBuilder("triangle")
                      .Match(std::move(triangle_pattern))
                      .Column("p1", "name", "p1_name")
                      .Column("p2", "name", "p2_name")
                      .Select("p1_name")
                      .Select("p2_name")
                      .Build();
  RELGO_ASSIGN_OR_RETURN(
      auto two_hop_pattern,
      db.ParsePattern("(a:Person)-[:Knows]->(b:Person)-[:Knows]->"
                      "(c:Person)"));
  auto two_hop = plan::SpjmQueryBuilder("two_hop")
                     .Match(std::move(two_hop_pattern))
                     .Column("a", "name", "a_name")
                     .Column("c", "name", "c_name")
                     .Select("a_name")
                     .Select("c_name")
                     .Build();

  for (auto engine :
       {exec::EngineKind::kMaterialize, exec::EngineKind::kPipeline}) {
    options.engine = engine;
    for (const auto* query : {&triangle, &two_hop}) {
      RELGO_ASSIGN_OR_RETURN(
          auto result, db.Run(*query, optimizer::OptimizerMode::kRelGo,
                              options));
      std::printf("%s on %s engine: %llu rows in %.3f ms\n",
                  query->name.c_str(),
                  engine == exec::EngineKind::kPipeline ? "pipeline"
                                                        : "materialize",
                  static_cast<unsigned long long>(result.table->num_rows()),
                  result.execution_ms);
    }
  }

  // --- 3. Metrics: Prometheus-style text exposition. -------------------------
  // Counter totals are exact (thread-sharded adds, summed at snapshot);
  // histogram quantiles are log-bucket upper bounds (≤ 19% relative
  // error by construction). The relgo_scan_cache_* family is pulled from
  // ScanCache::stats() by a registered collector at snapshot time, so it
  // can never drift from the cache's own accounting.
  std::printf("\n--- metrics().RenderText() ---\n%s",
              db.metrics().RenderText().c_str());

  // --- 4. Tracing: Chrome trace-event JSON. ----------------------------------
  // One tid per query; spans cover parse, optimize, pipeline_build,
  // pipeline_run (with worker counts), sink_finish and execute.
  RELGO_RETURN_NOT_OK(db.DumpTrace("relgo_trace.json"));
  std::printf("\nwrote %zu trace spans to relgo_trace.json "
              "(open in chrome://tracing or ui.perfetto.dev)\n",
              db.trace_sink().size());

  // --- 5. The slow-query log. ------------------------------------------------
  std::printf("\n--- slow_query_log(): %llu over threshold ---\n",
              static_cast<unsigned long long>(db.slow_query_log().total()));
  for (const auto& line : db.slow_query_log().records()) {
    std::printf("%s\n", line.c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunObservabilityTour();
  if (!st.ok()) {
    std::fprintf(stderr, "observability example failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
