// A tour of the optimization machinery itself: search-space enumeration
// (Theorem 1), the heuristic rewriting rules, GLogue statistics, and how
// the decomposition-tree search reacts to them — useful when extending
// RelGo with new rules or operators.

#include <cstdio>

#include "core/database.h"
#include "optimizer/rules.h"
#include "pattern/search_space.h"
#include "pattern/shapes.h"
#include "workload/ldbc.h"

using namespace relgo;

int main() {
  // --- 1. Theorem 1 in numbers. ----------------------------------------------
  std::printf("=== search spaces (Theorem 1) ===\n");
  std::printf("%-12s %16s %14s\n", "pattern", "graph-agnostic",
              "graph-aware");
  struct Shape {
    const char* name;
    pattern::PatternGraph p;
  };
  Shape shapes[] = {
      {"path-4", pattern::MakePathPattern(4, 0, 0)},
      {"cycle-4", pattern::MakeCyclePattern(4, 0, 0)},
      {"star-4", pattern::MakeStarPattern(4, 0, 0)},
      {"clique-4", pattern::MakeCliquePattern(4, 0, 0)},
  };
  for (const auto& s : shapes) {
    auto agnostic = pattern::CountAgnosticSearchSpace(s.p);
    auto aware = pattern::CountAwareSearchSpace(s.p);
    std::printf("%-12s %16.0f %14.0f\n", s.name,
                agnostic.ok() ? *agnostic : -1.0, aware.ok() ? *aware : -1.0);
  }

  // --- 2. Rules on a real query. ----------------------------------------------
  Database db;
  workload::LdbcOptions options;
  options.scale_factor = 0.15;
  if (!workload::GenerateLdbc(&db, options).ok()) return 1;

  auto pattern = db.ParsePattern(
      "(p:Person)-[k:knows]->(f:Person)-[:isLocatedIn]->(c:Place)");
  if (!pattern.ok()) return 1;
  auto query = plan::SpjmQueryBuilder("lab")
                   .Match(std::move(*pattern))
                   .Column("p", "firstName")
                   .Column("k", "creationDate")
                   .Column("f", "firstName")
                   .Column("c", "name")
                   .Where(storage::Expr::Eq("p.firstName",
                                            Value::String("Jose")))
                   .Select("f.firstName")
                   .Select("c.name")
                   .Build();

  std::printf("\n=== FilterIntoMatchRule / TrimAndFuseRule ===\n");
  std::printf("before: where = %s, %zu projections\n",
              query.where->ToString().c_str(),
              query.graph_projections.size());
  plan::SpjmQuery rewritten = query;
  int pushed = optimizer::ApplyFilterIntoMatchRule(&rewritten);
  int trimmed = optimizer::ApplyTrimRule(&rewritten);
  std::printf("after:  %d conjunct(s) pushed into MATCH, %d projection(s) "
              "trimmed, where = %s\n",
              pushed, trimmed,
              rewritten.where ? rewritten.where->ToString().c_str() : "-");

  std::printf("\n=== plans with and without the rules ===\n");
  for (auto mode : {optimizer::OptimizerMode::kRelGo,
                    optimizer::OptimizerMode::kRelGoNoRule}) {
    auto explain = db.Explain(query, mode);
    if (explain.ok()) {
      std::printf("--- %s ---\n%s\n", optimizer::ModeName(mode),
                  explain->c_str());
    }
  }

  // --- 3. GLogue: high-order statistics. --------------------------------------
  std::printf("=== GLogue ===\n");
  std::printf("patterns tracked: %zu (built in %.1f ms)\n",
              db.glogue().size(), db.glogue().build_time_ms());
  int knows = db.mapping().FindEdgeLabel("knows");
  int person = db.mapping().FindVertexLabel("Person");
  pattern::PatternGraph tri = pattern::MakeCyclePattern(3, person, knows);
  pattern::PatternGraph tri2 = pattern::MakeCliquePattern(3, person, knows);
  std::printf("knows-cycle-3 cardinality:  %.0f\n", db.glogue().Lookup(tri));
  std::printf("knows-clique-3 cardinality: %.0f\n", db.glogue().Lookup(tri2));
  std::printf("(negative means: not a <=k-vertex pattern in the catalog)\n");
  return 0;
}
