// Quickstart: build the paper's running example (Fig 2) from scratch,
// declare the property graph with RGMapping, and run the SQL/PGQ query of
// Example 1 through the converged RelGo optimizer.
//
//   SELECT p2_name, place.name FROM GRAPH_TABLE (G
//     MATCH (p1:Person)-[:Likes]->(m:Message),
//           (p2:Person)-[:Likes]->(m), (p1)-[:Knows]->(p2)
//     COLUMNS (p1.name AS p1_name, p1.place_id AS p1_place_id,
//              p2.name AS p2_name)) g
//   JOIN Place p ON g.p1_place_id = p.id
//   WHERE g.p1_name = 'Tom';

#include <cstdio>

#include "core/database.h"
#include "plan/spjm_query.h"

using namespace relgo;

namespace {

Status RunQuickstart() {
  Database db;

  // --- 1. Relational tables (the four tables of Fig 2 + Place). -------------
  using storage::ColumnDef;
  using storage::Schema;
  RELGO_ASSIGN_OR_RETURN(
      auto person,
      db.CreateTable("Person",
                     Schema({ColumnDef{"person_id", LogicalType::kInt64},
                             {"name", LogicalType::kString},
                             {"place_id", LogicalType::kInt64}})));
  RELGO_ASSIGN_OR_RETURN(
      auto message,
      db.CreateTable("Message",
                     Schema({ColumnDef{"message_id", LogicalType::kInt64},
                             {"content", LogicalType::kString}})));
  RELGO_ASSIGN_OR_RETURN(
      auto likes,
      db.CreateTable("Likes",
                     Schema({ColumnDef{"likes_id", LogicalType::kInt64},
                             {"pid", LogicalType::kInt64},
                             {"mid", LogicalType::kInt64},
                             {"date", LogicalType::kDate}})));
  RELGO_ASSIGN_OR_RETURN(
      auto knows,
      db.CreateTable("Knows",
                     Schema({ColumnDef{"knows_id", LogicalType::kInt64},
                             {"pid1", LogicalType::kInt64},
                             {"pid2", LogicalType::kInt64}})));
  RELGO_ASSIGN_OR_RETURN(
      auto place, db.CreateTable(
                      "Place", Schema({ColumnDef{"id", LogicalType::kInt64},
                                       {"name", LogicalType::kString}})));

  auto d = [](const char* iso) { return Value::Date(*ParseDate(iso)); };
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(1), Value::String("Tom"), Value::Int(100)}));
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(2), Value::String("Bob"), Value::Int(200)}));
  RELGO_RETURN_NOT_OK(person->AppendRow(
      {Value::Int(3), Value::String("David"), Value::Int(300)}));
  RELGO_RETURN_NOT_OK(
      message->AppendRow({Value::Int(10), Value::String("m1")}));
  RELGO_RETURN_NOT_OK(
      message->AppendRow({Value::Int(20), Value::String("m2")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(1), Value::Int(1), Value::Int(10), d("2024-03-31")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(2), Value::Int(2), Value::Int(10), d("2024-03-28")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(3), Value::Int(2), Value::Int(20), d("2024-03-20")}));
  RELGO_RETURN_NOT_OK(likes->AppendRow(
      {Value::Int(4), Value::Int(3), Value::Int(20), d("2024-03-21")}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(1), Value::Int(1), Value::Int(2)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(2), Value::Int(2), Value::Int(1)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(3), Value::Int(2), Value::Int(3)}));
  RELGO_RETURN_NOT_OK(
      knows->AppendRow({Value::Int(4), Value::Int(3), Value::Int(2)}));
  RELGO_RETURN_NOT_OK(
      place->AppendRow({Value::Int(100), Value::String("Germany")}));
  RELGO_RETURN_NOT_OK(
      place->AppendRow({Value::Int(200), Value::String("Denmark")}));
  RELGO_RETURN_NOT_OK(
      place->AppendRow({Value::Int(300), Value::String("China")}));

  // --- 2. RGMapping (CREATE PROPERTY GRAPH, Sec 2.1). ------------------------
  RELGO_RETURN_NOT_OK(db.AddVertexTable("Person", "person_id"));
  RELGO_RETURN_NOT_OK(db.AddVertexTable("Message", "message_id"));
  RELGO_RETURN_NOT_OK(
      db.AddEdgeTable("Likes", "Person", "pid", "Message", "mid"));
  RELGO_RETURN_NOT_OK(
      db.AddEdgeTable("Knows", "Person", "pid1", "Person", "pid2"));
  std::printf("%s\n\n", db.mapping().ToString().c_str());

  // Builds the EV/VE graph indexes, statistics, and GLogue.
  RELGO_RETURN_NOT_OK(db.Finalize());

  // --- 3. The SPJM query of Example 1. ---------------------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto pattern,
      db.ParsePattern("(p1:Person)-[:Likes]->(m:Message), "
                      "(p2:Person)-[:Likes]->(m), (p1)-[:Knows]->(p2)"));
  auto query = plan::SpjmQueryBuilder("example1")
                   .Match(std::move(pattern))
                   .Column("p1", "name", "p1_name")
                   .Column("p1", "place_id", "p1_place_id")
                   .Column("p2", "name", "p2_name")
                   .Where(storage::Expr::Eq("p1_name", Value::String("Tom")))
                   .Join("Place", "place", "p1_place_id", "id")
                   .Select("p2_name")
                   .Select("place.name", "place_name")
                   .Build();

  // --- 4. Optimize + execute under both paradigms. ---------------------------
  for (auto mode : {optimizer::OptimizerMode::kRelGo,
                    optimizer::OptimizerMode::kDuckDB}) {
    RELGO_ASSIGN_OR_RETURN(auto explain, db.Explain(query, mode));
    std::printf("--- %s plan ---\n%s\n", optimizer::ModeName(mode),
                explain.c_str());
    RELGO_ASSIGN_OR_RETURN(auto result, db.Run(query, mode));
    std::printf("result (%s, opt %.2f ms, exec %.2f ms):\n%s\n",
                optimizer::ModeName(mode), result.optimization_ms,
                result.execution_ms, result.table->ToString().c_str());
  }

  // --- 4b. The same plan on the morsel-driven pipeline engine. ---------------
  // ExecutionOptions select the runtime: kMaterialize is the reference
  // operator-at-a-time interpreter; kPipeline decomposes the plan into
  // vectorized pipelines executed by a worker pool (num_threads = 0 means
  // hardware concurrency). Results are identical bags.
  exec::ExecutionOptions pipeline_options;
  pipeline_options.engine = exec::EngineKind::kPipeline;
  pipeline_options.num_threads = 0;
  RELGO_ASSIGN_OR_RETURN(
      auto piped,
      db.Run(query, optimizer::OptimizerMode::kRelGo, pipeline_options));
  std::printf("result (RelGo on pipeline engine, exec %.2f ms):\n%s\n",
              piped.execution_ms, piped.table->ToString().c_str());

  // --- 5. EXPLAIN ANALYZE: estimates vs actual rows per operator. ------------
  // Each operator line shows the optimizer's estimated cardinality, the
  // measured actual, their Q-error (max(est/act, act/est)), invocation
  // count and operator time; the footer aggregates Q-error plan-wide.
  RELGO_ASSIGN_OR_RETURN(
      auto analyzed,
      db.ExplainAnalyze(query, optimizer::OptimizerMode::kRelGo));
  std::printf("--- EXPLAIN ANALYZE (RelGo, materialize: tree shape) ---\n%s\n",
              analyzed.c_str());

  // On the pipeline engine the same query renders in its execution shape:
  // pipelines (source -> streaming ops -> sink), with identical actual row
  // counts per plan node (the engines are bag-equivalent). There are no
  // materializing post-op lines: join build sides appear as HASH_BUILD
  // pipelines and ORDER BY / LIMIT as TOP_K/ORDER_BY/LIMIT sinks, with
  // breaker build/sort time summarized in a "breakers:" footer.
  RELGO_ASSIGN_OR_RETURN(
      auto piped_analyzed,
      db.ExplainAnalyze(query, optimizer::OptimizerMode::kRelGo,
                        pipeline_options));
  std::printf("--- EXPLAIN ANALYZE (RelGo, pipeline shape) ---\n%s\n",
              piped_analyzed.c_str());

  // --- 6. Predicates can also be written as text. ----------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto recent, db.ParsePattern("(p:Person)-[l:Likes]->(m:Message)"));
  plan::SpjmQueryBuilder recent_builder("recent_likes");
  recent_builder.Match(std::move(recent))
      .Column("p", "name")
      .Column("l", "date")
      .Where("l.date >= DATE '2024-03-28' AND p.name <> 'Tom'")
      .Select("p.name")
      .Select("l.date");
  RELGO_RETURN_NOT_OK(recent_builder.status());
  RELGO_ASSIGN_OR_RETURN(
      auto recent_result,
      db.Run(recent_builder.Build(), optimizer::OptimizerMode::kRelGo));
  std::printf("--- textual WHERE ---\n%s\n",
              recent_result.table->ToString().c_str());

  // --- 7. Adaptive statistics: the estimator learns from execution. ----------
  // With ExecutionOptions::adaptive_stats, every profiled run feeds its
  // per-operator actual cardinalities back into the optimizer's
  // statistics: GLogue pattern counts, scan selectivities and join-output
  // estimates receive bounded exponential-smoothing corrections keyed by
  // their estimator-input signatures (see src/optimizer/feedback.h), and
  // the corrections persist on the Database across queries. Re-running
  // EXPLAIN ANALYZE on the same query therefore shows the per-operator
  // Q-error footer drop — the estimate column converges onto the actual
  // column — and overlapping queries benefit from each other's runs.
  exec::ExecutionOptions adaptive;
  adaptive.adaptive_stats = true;
  RELGO_ASSIGN_OR_RETURN(
      auto first_analyzed,
      db.ExplainAnalyze(query, optimizer::OptimizerMode::kRelGo, adaptive));
  std::printf("--- EXPLAIN ANALYZE, adaptive run 1 (cold estimates) ---\n%s\n",
              first_analyzed.c_str());
  // Run 1's actuals were absorbed; run 2 re-optimizes with the corrected
  // statistics. The result table is identical — feedback only moves
  // estimates (and possibly join orders), never semantics.
  RELGO_ASSIGN_OR_RETURN(
      auto second_analyzed,
      db.ExplainAnalyze(query, optimizer::OptimizerMode::kRelGo, adaptive));
  std::printf(
      "--- EXPLAIN ANALYZE, adaptive run 2 (after feedback) ---\n%s\n"
      "(%zu correction entries live on the database now; compare the\n"
      "q-error footers above to see the estimator converge.)\n",
      second_analyzed.c_str(), db.stats_feedback().size());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunQuickstart();
  if (!st.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
