// Social-network analytics on the LDBC-like dataset: the scenario the
// paper's introduction motivates. Generates the network, then answers
// "who likes my posts among my friends" (the cyclic IC7) and "friends of
// friends and where they live" (IC1-2), comparing the converged RelGo
// optimizer against the graph-agnostic baseline.

#include <cstdio>

#include "core/database.h"
#include "workload/ldbc.h"

using namespace relgo;

int main() {
  Database db;
  workload::LdbcOptions options;
  options.scale_factor = 0.3;
  Status st = workload::GenerateLdbc(&db, options);
  if (!st.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("social network ready: %llu tuples, %llu graph edges\n\n",
              static_cast<unsigned long long>(db.catalog().TotalRows()),
              static_cast<unsigned long long>(db.graph_stats().TotalEdges()));

  auto queries = workload::LdbcInteractiveQueries(db);
  for (const auto& wq : queries) {
    if (wq.query.name != "IC7" && wq.query.name != "IC1-2") continue;
    std::printf("=== %s%s ===\n", wq.query.name.c_str(),
                wq.cyclic ? " (cyclic pattern)" : "");
    std::printf("MATCH %s\n\n",
                wq.query.pattern.ToString(&db.mapping()).c_str());

    for (auto mode : {optimizer::OptimizerMode::kRelGo,
                      optimizer::OptimizerMode::kGRainDB,
                      optimizer::OptimizerMode::kDuckDB}) {
      auto result = db.Run(wq.query, mode);
      if (!result.ok()) {
        std::printf("%-10s failed: %s\n", optimizer::ModeName(mode),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-10s opt %8.2f ms   exec %8.2f ms   %llu rows\n",
                  optimizer::ModeName(mode), result->optimization_ms,
                  result->execution_ms,
                  static_cast<unsigned long long>(result->table->num_rows()));
    }
    auto explain = db.Explain(wq.query, optimizer::OptimizerMode::kRelGo);
    if (explain.ok()) {
      std::printf("\nRelGo plan:\n%s\n", explain->c_str());
    }
  }

  // A custom ad-hoc query through the public API: mutual friends who both
  // like the same post — the 4-vertex pattern from the introduction.
  auto pattern = db.ParsePattern(
      "(a:Person)-[:knows]->(b:Person), (a)-[:likes]->(po:Post), "
      "(b)-[:likes]->(po)");
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  auto query = plan::SpjmQueryBuilder("co-liking-friends")
                   .Match(std::move(*pattern))
                   .Column("a", "firstName")
                   .Column("b", "firstName")
                   .GroupBy("a.firstName")
                   .Aggregate(plan::AggFunc::kCount, "", "pairs")
                   .OrderBy("pairs", false)
                   .Limit(5)
                   .Build();
  auto result = db.Run(query, optimizer::OptimizerMode::kRelGo);
  if (result.ok()) {
    std::printf("=== co-liking friends (top first names) ===\n%s\n",
                result->table->ToString().c_str());
  }
  return 0;
}
