#!/usr/bin/env python3
"""Documentation consistency gate (CI `docs` job).

Checks, over the repo's tracked markdown set:
  1. every intra-repo markdown link resolves to an existing file/dir;
  2. README.md quotes the ROADMAP tier-1 verify command verbatim, so the
     quickstart can never drift from the line the driver actually runs.

Stdlib only; run from anywhere inside the repo.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The markdown surface we guarantee: top-level docs plus docs/.
DOC_FILES = [
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
] + [
    os.path.join("docs", name)
    for name in sorted(os.listdir(os.path.join(REPO, "docs")))
    if name.endswith(".md")
]

# Inline markdown links [text](target); images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks are not link surface (sample snippets may contain
# bracket/paren sequences that only look like links).
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def check_links():
    errors = []
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        if not os.path.exists(path):
            continue  # optional docs (e.g. CHANGES.md on a fresh clone)
        with open(path, encoding="utf-8") as f:
            text = FENCE_RE.sub("", f.read())
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):  # intra-document anchor
                continue
            target_path = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def check_readme_matches_roadmap():
    """README's quickstart must contain the tier-1 verify line verbatim."""
    with open(os.path.join(REPO, "ROADMAP.md"), encoding="utf-8") as f:
        roadmap = f.read()
    m = re.search(r"\*\*Tier-1 verify:\*\*\s*`([^`]+)`", roadmap)
    if not m:
        return ["ROADMAP.md: no '**Tier-1 verify:** `...`' line found"]
    verify_line = m.group(1).strip()
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as f:
        readme = f.read()
    if verify_line not in readme:
        return [
            "README.md: build/test quickstart does not contain the ROADMAP "
            f"tier-1 verify line verbatim:\n  {verify_line}"
        ]
    return []


def main():
    errors = check_links() + check_readme_matches_roadmap()
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"docs check OK ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
