#include "common/fault.h"

#include <mutex>
#include <string>

namespace relgo {
namespace fault {

namespace {

/// SplitMix64 finalizer: a high-quality 64 -> 64 bit mix, so consecutive
/// visit counters decorrelate into independent-looking uniform draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::mutex g_config_mu;
Config g_config;  // guarded by g_config_mu; read under armed slow path only

std::atomic<uint64_t> g_visits[kNumSites];
std::atomic<uint64_t> g_injected{0};

constexpr const char* kSiteNames[kNumSites] = {
    "morsel_boundary", "hash_build", "hash_finalize", "sink_finish",
    "scan_cache_publish",
};

constexpr const char* kInjectedPrefix = "fault-injected";

}  // namespace

namespace internal {

std::atomic<bool> g_armed{false};

Status MaybeInjectSlow(Site site) {
  int s = static_cast<int>(site);
  uint64_t visit = g_visits[s].fetch_add(1, std::memory_order_relaxed);
  Config config;
  {
    std::lock_guard<std::mutex> lock(g_config_mu);
    config = g_config;
  }
  if ((config.site_mask & (1u << s)) == 0) return Status::OK();
  if (config.probability <= 0.0) return Status::OK();
  // Pure function of (seed, site, visit): u in [0, 1).
  uint64_t h = Mix64(config.seed ^ Mix64(static_cast<uint64_t>(s) + 1) ^
                     Mix64(visit + 0x51ED270B9ull));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config.probability) return Status::OK();
  g_injected.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(std::string(kInjectedPrefix) + " at " +
                          kSiteNames[s] + " visit " + std::to_string(visit));
}

}  // namespace internal

const char* SiteName(Site site) {
  int s = static_cast<int>(site);
  return (s >= 0 && s < kNumSites) ? kSiteNames[s] : "unknown";
}

void Arm(const Config& config) {
  {
    std::lock_guard<std::mutex> lock(g_config_mu);
    g_config = config;
  }
  for (auto& v : g_visits) v.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  internal::g_armed.store(true, std::memory_order_release);
}

void Disarm() { internal::g_armed.store(false, std::memory_order_release); }

bool Armed() { return internal::g_armed.load(std::memory_order_acquire); }

uint64_t InjectedCount() {
  return g_injected.load(std::memory_order_relaxed);
}

uint64_t VisitCount(Site site) {
  int s = static_cast<int>(site);
  if (s < 0 || s >= kNumSites) return 0;
  return g_visits[s].load(std::memory_order_relaxed);
}

bool IsInjected(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kInjectedPrefix, 0) == 0;
}

}  // namespace fault
}  // namespace relgo
