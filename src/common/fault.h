#ifndef RELGO_COMMON_FAULT_H_
#define RELGO_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace relgo {
namespace fault {

/// Deterministic, seedable fault injection (ISSUE 8; the error-path twin
/// of the observability layer). The engines call MaybeInject() at the
/// places a production deployment would see real failures — morsel
/// execution, hash-table construction, sink finish, cache publication —
/// and the chaos suite (lifecycle_test.cc) arms the layer to drive every
/// error-return path systematically.
///
/// Design constraints, in order:
///  * Compiled-in, zero-overhead when disarmed: the fast path is one
///    relaxed atomic bool load and a predictable branch — no hashing, no
///    locks, no Status construction beyond the OK return the call sites
///    already pay for (RELGO_RETURN_NOT_OK materializes one either way).
///  * Deterministic and seedable: whether visit #n of site S faults is a
///    pure function of (seed, S, n) — SplitMix64 over the triple against
///    `probability`. Re-running a serial workload with the same seed
///    injects the same faults at the same visits. Under a concurrent
///    storm the per-site visit *sequence* is still deterministic; which
///    query observes a given visit depends on thread interleaving.
///  * Process-global: faults model an ambient environment (a failing
///    disk, an allocator under pressure), not per-query state, so one
///    armed configuration covers every Database in the process. Tests
///    that arm it must not run concurrently with unrelated suites —
///    gtest runs cases serially, and ScopedFault disarms on scope exit.
enum class Site : int {
  kMorselBoundary = 0,  ///< pipeline morsel start / materializing dispatch
  kHashBuild,           ///< join hash-table build (both engines)
  kHashFinalize,        ///< partitioned hash-table finalize (pipeline)
  kSinkFinish,          ///< breaker sink finish (merge/sort/build)
  kScanCachePublish,    ///< scan-cache selection/bitmap publication
};
inline constexpr int kNumSites = 5;

/// Stable lower-case site name ("morsel_boundary", ...), for messages
/// and the ARCHITECTURE.md fault-site inventory.
const char* SiteName(Site site);

struct Config {
  uint64_t seed = 0;
  /// Per-visit injection probability in [0, 1]; 1.0 faults every visit of
  /// every enabled site.
  double probability = 0.0;
  /// Bit (1 << site) enables that site; default all sites.
  uint32_t site_mask = 0xFFFFFFFFu;
};

namespace internal {
extern std::atomic<bool> g_armed;
Status MaybeInjectSlow(Site site);
}  // namespace internal

/// Arms the layer with `config`, resetting per-site visit counters and the
/// injected-fault counter so a fixed seed replays identically.
void Arm(const Config& config);
void Disarm();
bool Armed();

/// Faults injected since the last Arm().
uint64_t InjectedCount();
/// Visits MaybeInject() recorded for `site` since the last Arm() (visits
/// are only counted while armed — the disarmed fast path counts nothing).
uint64_t VisitCount(Site site);

/// The per-site hook: OK when disarmed (the common case — one relaxed
/// load), otherwise consults the deterministic decision function and
/// returns an injected kInternal status on a fault.
inline Status MaybeInject(Site site) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  return internal::MaybeInjectSlow(site);
}

/// True iff `status` was minted by MaybeInject — chaos assertions separate
/// injected faults from genuine internal errors by this predicate.
bool IsInjected(const Status& status);

/// Arms on construction, disarms on destruction (exception-/early-return
/// safe for tests).
class ScopedFault {
 public:
  explicit ScopedFault(const Config& config) { Arm(config); }
  ~ScopedFault() { Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace fault
}  // namespace relgo

#endif  // RELGO_COMMON_FAULT_H_
