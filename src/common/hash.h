#ifndef RELGO_COMMON_HASH_H_
#define RELGO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace relgo {

/// Mixes `v` into seed `h` (boost::hash_combine variant with 64-bit avalanche).
inline size_t HashCombine(size_t h, size_t v) {
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Hashes a sequence of 64-bit keys; used for composite join keys.
inline size_t HashSpan(const uint64_t* data, size_t n) {
  size_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// std::hash implementation for vectors of integral ids.
struct U64VecHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    return HashSpan(v.data(), v.size());
  }
};

struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

}  // namespace relgo

#endif  // RELGO_COMMON_HASH_H_
