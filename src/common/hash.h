#ifndef RELGO_COMMON_HASH_H_
#define RELGO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace relgo {

/// Seed of every composite-key hash chain (the FNV-1a offset basis). The
/// typed key-extraction paths and the boxed Value paths must start their
/// chains from the same seed so both land keys in the same buckets.
constexpr size_t kHashSeed = 0xcbf29ce484222325ULL;

/// What Value::Hash returns for a NULL (common/value.cc).
constexpr size_t kNullHash = 0x9e3779b97f4a7c15ULL;

/// Mixes `v` into seed `h` (boost::hash_combine variant with 64-bit avalanche).
inline size_t HashCombine(size_t h, size_t v) {
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Hashes a sequence of 64-bit keys; used for composite join keys.
inline size_t HashSpan(const uint64_t* data, size_t n) {
  size_t h = kHashSeed;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// Typed twins of Value::Hash: each overload hashes exactly what
/// Value::Hash would hash for a boxed value of that payload type, so key
/// hashes computed from raw column spans (exec/vector typed key
/// extraction) equal the hashes of the equivalent boxed rows.
inline size_t TypedHash(int64_t v) { return std::hash<int64_t>()(v); }
inline size_t TypedHash(bool v) { return std::hash<bool>()(v); }
inline size_t TypedHash(double v) { return std::hash<double>()(v); }
inline size_t TypedHash(const std::string& v) {
  return std::hash<std::string>()(v);
}

/// std::hash implementation for vectors of integral ids.
struct U64VecHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    return HashSpan(v.data(), v.size());
  }
};

struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

}  // namespace relgo

#endif  // RELGO_COMMON_HASH_H_
