#ifndef RELGO_COMMON_RNG_H_
#define RELGO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace relgo {

/// Deterministic random source used by all data generators and samplers.
///
/// Every workload generator takes an explicit seed so datasets, GLogue
/// sparsification and benchmark parameters are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n), exponent `s` (~1.0 for web-like skew).
  /// Used for tag popularity and keyword frequencies.
  int64_t Zipf(int64_t n, double s);

  /// Discrete power-law sample in [lo, hi] with exponent `alpha` > 1;
  /// used for social-network degree distributions.
  int64_t PowerLaw(int64_t lo, int64_t hi, double alpha);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// A deterministic random permutation of [0, n), used by the workload
/// generators to decorrelate zipf popularity across link tables: each
/// foreign-key column samples a zipf *rank* and maps it through its own
/// permutation, so every table keeps a skewed marginal distribution
/// without the same head entities dominating every relationship (which
/// real datasets do not exhibit).
class Permutation {
 public:
  Permutation(int64_t n, uint64_t seed) : ids_(n) {
    for (int64_t i = 0; i < n; ++i) ids_[i] = i;
    std::mt19937_64 engine(seed);
    for (int64_t i = n - 1; i > 0; --i) {
      std::uniform_int_distribution<int64_t> dist(0, i);
      std::swap(ids_[i], ids_[dist(engine)]);
    }
  }
  int64_t operator[](int64_t rank) const { return ids_[rank]; }

 private:
  std::vector<int64_t> ids_;
};

inline int64_t Rng::Zipf(int64_t n, double s) {
  // Inverse-CDF on the generalized harmonic numbers via rejection-free
  // approximation: acceptable for benchmark data generation.
  double u = NextDouble();
  // Approximate inverse CDF for zipf: x ~ n^(u) biased toward small ranks.
  double x = std::pow(static_cast<double>(n), 1.0 - u);
  int64_t r = static_cast<int64_t>(x) - 1;
  if (r < 0) r = 0;
  if (r >= n) r = n - 1;
  (void)s;
  return r;
}

inline int64_t Rng::PowerLaw(int64_t lo, int64_t hi, double alpha) {
  double u = NextDouble();
  double lo_d = static_cast<double>(lo);
  double hi_d = static_cast<double>(hi) + 1.0;
  double a1 = 1.0 - alpha;
  double v = std::pow(u * (std::pow(hi_d, a1) - std::pow(lo_d, a1)) +
                          std::pow(lo_d, a1),
                      1.0 / a1);
  int64_t r = static_cast<int64_t>(v);
  if (r < lo) r = lo;
  if (r > hi) r = hi;
  return r;
}

}  // namespace relgo

#endif  // RELGO_COMMON_RNG_H_
