#ifndef RELGO_COMMON_STATUS_H_
#define RELGO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace relgo {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of status-based error handling: no exceptions cross public
/// API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,     ///< Execution exceeded the configured memory budget.
  kTimeout,         ///< Execution exceeded the configured wall-clock budget.
  kNotImplemented,
  kInternal,
  kCancelled,          ///< Query cancelled via Database::CancelQuery.
  kResourceExhausted,  ///< Admission control shed the query (queue full,
                       ///< wait deadline, or database shutting down).
};

/// A lightweight status object carrying an error code and message.
///
/// All fallible public operations in RelGo return either `Status` or
/// `Result<T>`. Successful statuses are cheap to construct and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is a value-or-status union, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; undefined if !ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define RELGO_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::relgo::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

#define RELGO_CONCAT_IMPL(a, b) a##b
#define RELGO_CONCAT(a, b) RELGO_CONCAT_IMPL(a, b)

#define RELGO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

/// Assigns the value of a Result expression or propagates its error.
#define RELGO_ASSIGN_OR_RETURN(lhs, expr) \
  RELGO_ASSIGN_OR_RETURN_IMPL(RELGO_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace relgo

#endif  // RELGO_COMMON_STATUS_H_
