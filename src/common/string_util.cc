#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace relgo {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace relgo
