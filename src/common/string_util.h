#ifndef RELGO_COMMON_STRING_UTIL_H_
#define RELGO_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace relgo {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` begins with `prefix` (used by STARTS WITH predicates).
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` contains `needle` (used by CONTAINS predicates).
bool Contains(const std::string& s, const std::string& needle);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace relgo

#endif  // RELGO_COMMON_STRING_UTIL_H_
