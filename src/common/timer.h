#ifndef RELGO_COMMON_TIMER_H_
#define RELGO_COMMON_TIMER_H_

#include <chrono>

namespace relgo {

/// Monotonic wall-clock timer used for optimization/execution measurements
/// and for enforcing query timeouts.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relgo

#endif  // RELGO_COMMON_TIMER_H_
