#include "common/value.h"

#include <cstdio>
#include <functional>

namespace relgo {

const char* LogicalTypeName(LogicalType type) {
  switch (type) {
    case LogicalType::kNull:
      return "null";
    case LogicalType::kBool:
      return "bool";
    case LogicalType::kInt64:
      return "int64";
    case LogicalType::kDouble:
      return "double";
    case LogicalType::kString:
      return "string";
    case LogicalType::kDate:
      return "date";
  }
  return "unknown";
}

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

// Days from 1970-01-01 to the start of `year`.
int64_t DaysToYear(int year) {
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeapYear(y) ? 366 : 365;
  }
  return days;
}

}  // namespace

Result<int32_t> ParseDate(const std::string& iso) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
      month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("bad date literal: " + iso);
  }
  int64_t days = DaysToYear(year);
  for (int m = 0; m < month - 1; ++m) {
    days += kDaysInMonth[m];
    if (m == 1 && IsLeapYear(year)) days += 1;
  }
  days += day - 1;
  return static_cast<int32_t>(days);
}

std::string FormatDate(int32_t days) {
  int year = 1970;
  int64_t remaining = days;
  while (true) {
    int in_year = IsLeapYear(year) ? 366 : 365;
    if (remaining >= in_year) {
      remaining -= in_year;
      ++year;
    } else if (remaining < 0) {
      --year;
      remaining += IsLeapYear(year) ? 366 : 365;
    } else {
      break;
    }
  }
  int month = 0;
  while (true) {
    int in_month =
        kDaysInMonth[month] + (month == 1 && IsLeapYear(year) ? 1 : 0);
    if (remaining >= in_month) {
      remaining -= in_month;
      ++month;
    } else {
      break;
    }
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month + 1,
                static_cast<int>(remaining) + 1);
  return buf;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numeric promotion across int64/double/date.
  auto numeric = [](const Value& v, double* out) {
    switch (v.type_) {
      case LogicalType::kInt64:
      case LogicalType::kDate:
        *out = static_cast<double>(std::get<int64_t>(v.data_));
        return true;
      case LogicalType::kDouble:
        *out = std::get<double>(v.data_);
        return true;
      case LogicalType::kBool:
        *out = std::get<bool>(v.data_) ? 1.0 : 0.0;
        return true;
      default:
        return false;
    }
  };
  double a = 0, b = 0;
  if (numeric(*this, &a) && numeric(other, &b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == LogicalType::kString && other.type_ == LogicalType::kString) {
    return string_value().compare(other.string_value()) < 0
               ? -1
               : (string_value() == other.string_value() ? 0 : 1);
  }
  // Incomparable types: order by type tag for determinism.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type_) {
    case LogicalType::kNull:
      return "NULL";
    case LogicalType::kBool:
      return bool_value() ? "true" : "false";
    case LogicalType::kInt64:
      return std::to_string(int_value());
    case LogicalType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case LogicalType::kString:
      return string_value();
    case LogicalType::kDate:
      return FormatDate(date_value());
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type_) {
    case LogicalType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case LogicalType::kBool:
      return std::hash<bool>()(bool_value());
    case LogicalType::kInt64:
    case LogicalType::kDate:
      return std::hash<int64_t>()(std::get<int64_t>(data_));
    case LogicalType::kDouble:
      return std::hash<double>()(double_value());
    case LogicalType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

}  // namespace relgo
