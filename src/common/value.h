#ifndef RELGO_COMMON_VALUE_H_
#define RELGO_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace relgo {

/// Logical data types supported by the relational substrate.
///
/// The set intentionally mirrors the columns needed by the LDBC SNB and
/// JOB/IMDB workloads: 64-bit integers (ids, counts), doubles, strings,
/// and dates (stored as days since 1970-01-01).
enum class LogicalType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Returns a stable lowercase name for a logical type ("int64", "date", ...).
const char* LogicalTypeName(LogicalType type);

/// Parses an ISO "YYYY-MM-DD" date into days since the Unix epoch.
Result<int32_t> ParseDate(const std::string& iso);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

/// A dynamically typed scalar value.
///
/// Values appear at API boundaries (predicates, query parameters, result
/// inspection). Hot execution paths operate on typed column vectors instead
/// (see storage/column.h), so Value is optimized for convenience.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(LogicalType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(LogicalType::kBool, v); }
  static Value Int(int64_t v) { return Value(LogicalType::kInt64, v); }
  static Value Double(double v) { return Value(LogicalType::kDouble, v); }
  static Value String(std::string v) {
    return Value(LogicalType::kString, std::move(v));
  }
  /// Days since epoch carried with date type tag.
  static Value Date(int32_t days) {
    return Value(LogicalType::kDate, static_cast<int64_t>(days));
  }

  LogicalType type() const { return type_; }
  bool is_null() const { return type_ == LogicalType::kNull; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }
  int32_t date_value() const {
    return static_cast<int32_t>(std::get<int64_t>(data_));
  }

  /// Total ordering used by comparison predicates and ORDER BY.
  /// NULLs sort first; cross-type numeric comparison promotes to double.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering for debugging and result printing.
  std::string ToString() const;

  /// Hash consistent with operator== for join/aggregate keys.
  size_t Hash() const;

 private:
  template <typename T>
  Value(LogicalType type, T v) : type_(type), data_(std::move(v)) {}

  LogicalType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace relgo

#endif  // RELGO_COMMON_VALUE_H_
