#include "core/database.h"

#include "common/timer.h"
#include "exec/pipeline/engine.h"

namespace relgo {

Status Database::Finalize(optimizer::GlogueOptions glogue_options) {
  RELGO_RETURN_NOT_OK(mapping_.Validate(catalog_));
  RELGO_RETURN_NOT_OK(index_.Build(catalog_, mapping_));
  RELGO_RETURN_NOT_OK(graph_stats_.Build(catalog_, mapping_, index_));
  RELGO_RETURN_NOT_OK(glogue_.Build(catalog_, mapping_, index_, graph_stats_,
                                    glogue_options));
  table_stats_.SetFeedback(&feedback_);
  optimizer_ = std::make_unique<optimizer::QueryOptimizer>(
      &catalog_, &mapping_, &graph_stats_, &glogue_, &table_stats_,
      &feedback_);
  finalized_ = true;
  return Status::OK();
}

Result<optimizer::OptimizeResult> Database::Optimize(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode) const {
  if (!finalized_) {
    return Status::InvalidArgument("call Finalize() before Optimize()");
  }
  // Shared against the adaptive-statistics push-down, which refines
  // GLogue counts in place: any number of optimizations may overlap, but
  // none overlaps a refinement.
  std::shared_lock<std::shared_mutex> lock(stats_mu_);
  return optimizer_->Optimize(query, mode);
}

Result<storage::TablePtr> Database::ExecuteWithContext(
    const plan::PhysicalOp& op, exec::ExecutionContext* ctx) const {
  ctx->SetScheduler(&pool_);
  if (ctx->options().scan_cache) ctx->SetScanCache(&scan_cache_);
  if (ctx->options().engine == exec::EngineKind::kPipeline) {
    return exec::pipeline::Run(op, ctx);
  }
  return exec::Executor::Run(op, ctx);
}

Result<storage::TablePtr> Database::Execute(
    const plan::PhysicalOp& op, exec::ExecutionOptions options) const {
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  return ExecuteWithContext(op, &ctx);
}

Result<QueryRunResult> Database::Run(const plan::SpjmQuery& query,
                                     optimizer::OptimizerMode mode,
                                     exec::ExecutionOptions options) const {
  QueryRunResult result;
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  result.optimization_ms = optimized.optimization_ms;
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  Timer timer;
  RELGO_ASSIGN_OR_RETURN(result.table,
                         ExecuteWithContext(*optimized.plan, &ctx));
  result.execution_ms = timer.ElapsedMillis();
  result.scan_cache_hits = ctx.scan_cache_hits();
  return result;
}

Result<std::string> Database::Explain(const plan::SpjmQuery& query,
                                      optimizer::OptimizerMode mode) const {
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  return plan::PrintPlan(*optimized.plan);
}

Result<ProfiledRunResult> Database::RunProfiled(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    exec::ExecutionOptions options) const {
  ProfiledRunResult result;
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  result.optimization_ms = optimized.optimization_ms;
  result.plan = std::move(optimized.plan);
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  ctx.EnableProfiling(&result.profile);
  Timer timer;
  RELGO_ASSIGN_OR_RETURN(result.table,
                         ExecuteWithContext(*result.plan, &ctx));
  result.execution_ms = timer.ElapsedMillis();
  result.profile.SetScanCacheHits(ctx.scan_cache_hits());
  if (options.adaptive_stats) {
    // The adaptive loop: hand the profile's per-operator actuals back to
    // the statistics sink, then migrate structural (predicate-free)
    // pattern corrections into the GLogue catalog itself. The next
    // Optimize over this or an overlapping query consults the refined
    // statistics and may pick a different, better join order. The
    // push-down mutates shared GLogue counts, so it excludes concurrent
    // optimizations (Absorb itself is internally synchronized and only
    // touches the sink).
    result.feedback_observations =
        feedback_.Absorb(*result.plan, result.profile);
    std::unique_lock<std::shared_mutex> lock(stats_mu_);
    feedback_.PushIntoGlogue(&glogue_);
  }
  return result;
}

Result<std::string> Database::ExplainAnalyze(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    exec::ExecutionOptions options) const {
  RELGO_ASSIGN_OR_RETURN(auto profiled, RunProfiled(query, mode, options));
  if (options.engine == exec::EngineKind::kPipeline) {
    return exec::RenderAnalyzedPipelines(*profiled.plan, profiled.profile);
  }
  return exec::RenderAnalyzedTree(*profiled.plan, profiled.profile);
}

}  // namespace relgo
