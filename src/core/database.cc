#include "core/database.h"

#include "common/timer.h"
#include "exec/pipeline/engine.h"

namespace relgo {

Status Database::Finalize(optimizer::GlogueOptions glogue_options) {
  RELGO_RETURN_NOT_OK(mapping_.Validate(catalog_));
  RELGO_RETURN_NOT_OK(index_.Build(catalog_, mapping_));
  RELGO_RETURN_NOT_OK(graph_stats_.Build(catalog_, mapping_, index_));
  RELGO_RETURN_NOT_OK(glogue_.Build(catalog_, mapping_, index_, graph_stats_,
                                    glogue_options));
  optimizer_ = std::make_unique<optimizer::QueryOptimizer>(
      &catalog_, &mapping_, &graph_stats_, &glogue_, &table_stats_);
  finalized_ = true;
  return Status::OK();
}

Result<optimizer::OptimizeResult> Database::Optimize(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode) const {
  if (!finalized_) {
    return Status::InvalidArgument("call Finalize() before Optimize()");
  }
  return optimizer_->Optimize(query, mode);
}

Result<storage::TablePtr> Database::Execute(
    const plan::PhysicalOp& op, exec::ExecutionOptions options) const {
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  if (options.engine == exec::EngineKind::kPipeline) {
    return exec::pipeline::Run(op, &ctx);
  }
  return exec::Executor::Run(op, &ctx);
}

Result<QueryRunResult> Database::Run(const plan::SpjmQuery& query,
                                     optimizer::OptimizerMode mode,
                                     exec::ExecutionOptions options) const {
  QueryRunResult result;
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  result.optimization_ms = optimized.optimization_ms;
  Timer timer;
  RELGO_ASSIGN_OR_RETURN(result.table, Execute(*optimized.plan, options));
  result.execution_ms = timer.ElapsedMillis();
  return result;
}

Result<std::string> Database::Explain(const plan::SpjmQuery& query,
                                      optimizer::OptimizerMode mode) const {
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  return plan::PrintPlan(*optimized.plan);
}

namespace {

void RenderAnalyzed(const plan::PhysicalOp& op,
                    const exec::QueryProfile& profile, int indent,
                    std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  *out += op.Describe();
  auto it = profile.find(&op);
  if (it != profile.end()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  [est=%.0f act=%llu rows, %.2f ms]",
                  op.estimated_cardinality,
                  static_cast<unsigned long long>(it->second.rows),
                  it->second.subtree_ms);
    *out += buf;
  }
  *out += "\n";
  for (const auto& child : op.children) {
    RenderAnalyzed(*child, profile, indent + 1, out);
  }
}

}  // namespace

Result<std::string> Database::ExplainAnalyze(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    exec::ExecutionOptions options) const {
  // Per-operator profiling only exists in the materializing interpreter;
  // per-pipeline profiling is a roadmap item. Be explicit rather than
  // silently ignoring a kPipeline request.
  if (options.engine == exec::EngineKind::kPipeline) {
    return Status::NotImplemented(
        "EXPLAIN ANALYZE profiles per operator and currently runs only on "
        "the materializing engine; use EngineKind::kMaterialize");
  }
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  exec::QueryProfile profile;
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  ctx.EnableProfiling(&profile);
  RELGO_ASSIGN_OR_RETURN(auto table,
                         exec::Executor::Run(*optimized.plan, &ctx));
  (void)table;
  std::string out;
  RenderAnalyzed(*optimized.plan, profile, 0, &out);
  return out;
}

}  // namespace relgo
