#include "core/database.h"

#include <memory>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "exec/pipeline/engine.h"
#include "plan/plan_clone.h"

namespace relgo {

Database::Database() : table_stats_(&catalog_) {
  // Wire the observability substrate once, before any query (and hence any
  // concurrency) exists. Handles are resolved here so the per-query path
  // records through plain pointers without touching the registry lock.
  exec::pipeline::SchedulerMetrics pm;
  pm.jobs = &metrics_.GetCounter("relgo_pool_jobs_total");
  pm.inline_jobs = &metrics_.GetCounter("relgo_pool_inline_jobs_total");
  pm.tasks = &metrics_.GetCounter("relgo_pool_tasks_total");
  pm.queue_depth = &metrics_.GetGauge("relgo_pool_queue_depth");
  pm.pool_threads = &metrics_.GetGauge("relgo_pool_threads");
  pm.job_run_ms = &metrics_.GetHistogram("relgo_pool_job_run_ms");
  pm.job_wait_ms = &metrics_.GetHistogram("relgo_pool_job_wait_ms");
  pool_.SetMetrics(pm);

  query_metrics_.queries = &metrics_.GetCounter("relgo_queries_total");
  query_metrics_.failures =
      &metrics_.GetCounter("relgo_query_failures_total");
  query_metrics_.optimization_ms =
      &metrics_.GetHistogram("relgo_query_optimization_ms");
  query_metrics_.execution_ms =
      &metrics_.GetHistogram("relgo_query_execution_ms");
  query_metrics_.feedback_observations =
      &metrics_.GetCounter("relgo_feedback_observations_total");
  query_metrics_.glogue_refinements =
      &metrics_.GetCounter("relgo_feedback_glogue_refinements_total");
  query_metrics_.cancelled =
      &metrics_.GetCounter("relgo_queries_cancelled_total");
  query_metrics_.rejected =
      &metrics_.GetCounter("relgo_queries_rejected_total");
  query_metrics_.timeout =
      &metrics_.GetCounter("relgo_queries_timeout_total");

  // The scan cache keeps its own lifetime Stats (the single source of
  // truth — obs_test pins the no-drift property); the registry pulls them
  // at snapshot time instead of mirroring every event.
  exec::ScanCache* cache = &scan_cache_;
  metrics_.AddCollector([cache](obs::MetricsSnapshot* out) {
    exec::ScanCache::Stats s = cache->stats();
    out->counters["relgo_scan_cache_hits_total"] += s.hits;
    out->counters["relgo_scan_cache_misses_total"] += s.misses;
    out->counters["relgo_scan_cache_insertions_total"] += s.insertions;
    out->counters["relgo_scan_cache_evictions_total"] += s.evictions;
    out->counters["relgo_scan_cache_invalidations_total"] +=
        s.invalidations;
    out->gauges["relgo_scan_cache_entries"] +=
        static_cast<int64_t>(cache->entries());
    out->gauges["relgo_scan_cache_bytes"] +=
        static_cast<int64_t>(cache->bytes());
  });

  // Same pull-collector pattern for the plan cache: its lifetime Stats are
  // the single source of truth; the registry reads them at snapshot time.
  optimizer::PlanCache* plans = &plan_cache_;
  metrics_.AddCollector([plans](obs::MetricsSnapshot* out) {
    optimizer::PlanCache::Stats s = plans->stats();
    out->counters["relgo_plan_cache_hits_total"] += s.hits;
    out->counters["relgo_plan_cache_misses_total"] += s.misses;
    out->counters["relgo_plan_cache_insertions_total"] += s.insertions;
    out->counters["relgo_plan_cache_evictions_total"] += s.evictions;
    out->counters["relgo_plan_cache_invalidations_total"] +=
        s.invalidations;
    out->gauges["relgo_plan_cache_entries"] +=
        static_cast<int64_t>(plans->entries());
  });
}

Database::~Database() { Shutdown(ShutdownMode::kCancel); }

void Database::Shutdown(ShutdownMode mode) const {
  // Order matters: stop admitting first so no query can register between
  // the cancel sweep and the drain wait; then (kCancel) signal everything
  // in flight; then wait. Engines observe the token within one interrupt
  // check, unregister on every exit path, and the last one out wakes the
  // wait — so this terminates even under a full storm.
  query_registry_.BeginShutdown();
  if (mode == ShutdownMode::kCancel) query_registry_.CancelAll();
  query_registry_.WaitUntilIdle();
}

Status Database::Finalize(optimizer::GlogueOptions glogue_options) {
  // Dictionary-encode every base-table string column (sorted-unique
  // dictionary + int32 code vector, storage::StringDictionary). Built
  // unconditionally: ExecutionOptions::dictionary_encoding gates only
  // the *use* of codes, so dictionary-on/off A/B runs execute against
  // identical storage.
  for (const std::string& name : catalog_.ListTables()) {
    auto table = catalog_.GetTable(name);
    if (!table.ok()) continue;
    for (size_t c = 0; c < (*table)->num_columns(); ++c) {
      if ((*table)->column(c).type() == LogicalType::kString) {
        (*table)->column(c).BuildDictionary();
      }
    }
  }
  RELGO_RETURN_NOT_OK(mapping_.Validate(catalog_));
  RELGO_RETURN_NOT_OK(index_.Build(catalog_, mapping_));
  RELGO_RETURN_NOT_OK(graph_stats_.Build(catalog_, mapping_, index_));
  RELGO_RETURN_NOT_OK(glogue_.Build(catalog_, mapping_, index_, graph_stats_,
                                    glogue_options));
  table_stats_.SetFeedback(&feedback_);
  optimizer_ = std::make_unique<optimizer::QueryOptimizer>(
      &catalog_, &mapping_, &graph_stats_, &glogue_, &table_stats_,
      &feedback_);
  finalized_ = true;
  return Status::OK();
}

Result<pattern::PatternGraph> Database::ParsePattern(
    const std::string& text) const {
  if (!trace_sink_.enabled()) return pattern::ParsePattern(text, mapping_);
  // Parsing happens before a query id exists, so parse spans live on
  // track 0 ("frontend") rather than a per-query track.
  double start = obs::TraceNowMs();
  auto parsed = pattern::ParsePattern(text, mapping_);
  obs::TraceEvent ev;
  ev.name = "parse";
  ev.cat = "query";
  ev.tid = 0;
  ev.ts_ms = start;
  ev.dur_ms = obs::TraceNowMs() - start;
  ev.args.emplace_back("pattern", text);
  ev.args.emplace_back("status",
                       parsed.ok() ? "ok" : parsed.status().ToString());
  trace_sink_.Record(std::move(ev));
  return parsed;
}

Result<optimizer::OptimizeResult> Database::OptimizeInternal(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    uint64_t* epoch_out) const {
  if (!finalized_) {
    return Status::InvalidArgument("call Finalize() before Optimize()");
  }
  // Shared against the adaptive-statistics push-down, which refines
  // GLogue counts in place: any number of optimizations may overlap, but
  // none overlaps a refinement. The epoch is read under the same lock
  // (the push-down bumps it while holding it exclusively), so the value
  // names exactly the statistics state this optimization consulted.
  std::shared_lock<std::shared_mutex> lock(stats_mu_);
  if (epoch_out != nullptr) {
    *epoch_out = stats_epoch_.load(std::memory_order_acquire);
  }
  return optimizer_->Optimize(query, mode);
}

uint64_t Database::CatalogDataVersion() const {
  uint64_t version = 0;
  for (const std::string& name : catalog_.ListTables()) {
    auto table = catalog_.GetTable(name);
    if (table.ok()) version += (*table)->version();
  }
  return version;
}

Result<Database::PlannedQuery> Database::PlanQuery(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    const exec::ExecutionOptions& options) const {
  PlannedQuery out;
  // Adaptive runs bypass the cache: their purpose is refining statistics,
  // so they must re-plan against the current estimator state every time.
  bool use_cache = options.plan_cache && !options.adaptive_stats && finalized_;
  if (!use_cache) {
    RELGO_ASSIGN_OR_RETURN(auto optimized, OptimizeInternal(query, mode));
    out.plan = std::move(optimized.plan);
    out.optimization_ms = optimized.optimization_ms;
    return out;
  }

  Timer timer;
  out.cache_key = optimizer::TemplateSignature(query, mode);
  out.cache_data_version = CatalogDataVersion();
  uint64_t epoch = stats_epoch_.load(std::memory_order_acquire);
  std::shared_ptr<const plan::PhysicalOp> cached =
      plan_cache_.Get(out.cache_key, epoch, out.cache_data_version);
  if (cached != nullptr) {
    // Hit: re-bind the cached template plan against this call's constants
    // (clone-before-Bind — the cached tree is shared and never mutated).
    // For an unparameterized query the slot map is empty and this is a
    // plain deep copy.
    std::unordered_map<int, Value> params =
        optimizer::CollectBoundParams(query);
    out.plan = plan::ClonePlan(
        *cached, [&params](const storage::ExprPtr& e) {
          return optimizer::RebindExpr(e, params);
        });
    out.optimization_ms = timer.ElapsedMillis();
    out.cache_status = exec::QueryProfile::PlanCacheStatus::kHit;
    out.cache_epoch = epoch;
    return out;
  }

  uint64_t planned_epoch = 0;
  auto optimized = OptimizeInternal(query, mode, &planned_epoch);
  if (!optimized.ok()) return optimized.status();
  out.plan = std::move(optimized->plan);
  out.optimization_ms = optimized->optimization_ms;
  out.cache_status = exec::QueryProfile::PlanCacheStatus::kMiss;
  out.cache_epoch = planned_epoch;
  return out;
}

void Database::PublishPlan(
    const PlannedQuery& planned,
    std::shared_ptr<const plan::PhysicalOp> plan) const {
  if (planned.cache_status != exec::QueryProfile::PlanCacheStatus::kMiss) {
    return;
  }
  plan_cache_.Put(planned.cache_key, planned.cache_epoch,
                  planned.cache_data_version, std::move(plan));
}

Result<optimizer::OptimizeResult> Database::Optimize(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode) const {
  auto optimized = OptimizeInternal(query, mode);
  if (optimized.ok()) {
    query_metrics_.optimization_ms->Record(optimized->optimization_ms);
  }
  return optimized;
}

Result<storage::TablePtr> Database::ExecuteWithContext(
    const plan::PhysicalOp& op, exec::ExecutionContext* ctx,
    const std::string& label) const {
  const exec::ExecutionOptions& options = ctx->options();
  // Run/RunProfiled mint the id up front (their trace spans carry it);
  // direct Execute() calls get one here. Either way every execution is
  // registered — and hence cancellable — under a unique id.
  uint64_t query_id = ctx->query_id();
  if (query_id == 0) {
    query_id = trace_sink_.NextQueryId();
    ctx->SetQueryId(query_id);
  }
  auto registered = query_registry_.Register(query_id, label);
  if (!registered.ok()) return registered.status();
  core::QueryHandlePtr handle = std::move(registered).value();
  ctx->SetCancelToken(handle->flag());
  // Export the id only after registration: a controller that reads it is
  // guaranteed CancelQuery(id) finds the query (or it already finished).
  if (options.query_id_out != nullptr) {
    options.query_id_out->store(query_id, std::memory_order_release);
  }

  // Admission: the wait is bounded by the query's remaining timeout
  // budget, and the cancel token aborts a queued query promptly.
  double remaining_ms = options.timeout_ms - ctx->elapsed_ms();
  if (remaining_ms < 0.0) remaining_ms = 0.0;
  Status admitted =
      pool_.AdmitQuery(static_cast<uint64_t>(remaining_ms), handle->flag());
  if (!admitted.ok()) {
    query_registry_.Unregister(query_id);
    return admitted;
  }

  ctx->SetScheduler(&pool_);
  if (options.scan_cache) ctx->SetScanCache(&scan_cache_);
  Result<storage::TablePtr> table =
      options.engine == exec::EngineKind::kPipeline
          ? exec::pipeline::Run(op, ctx)
          : exec::Executor::Run(op, ctx);

  // Scan-cache entries queued during execution become visible to other
  // queries only now, and only on success — a cancelled, timed-out, or
  // faulted query never publishes (lifecycle_test pins this).
  if (table.ok()) {
    ctx->CommitScanCachePublications();
  } else {
    ctx->DropScanCachePublications();
  }
  pool_.ReleaseQuery();
  query_registry_.Unregister(query_id);
  return table;
}

Result<storage::TablePtr> Database::Execute(
    const plan::PhysicalOp& op, exec::ExecutionOptions options) const {
  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  return ExecuteWithContext(op, &ctx);
}

void Database::ObserveQuery(const plan::SpjmQuery& query,
                            optimizer::OptimizerMode mode,
                            const exec::ExecutionOptions& options,
                            const QueryObservation& obs) const {
  if (options.metrics) {
    query_metrics_.queries->Increment();
    if (!obs.status.ok()) {
      query_metrics_.failures->Increment();
      // Lifecycle breakdown: at most one of these per failed query (the
      // terminal status is single-valued by construction).
      switch (obs.status.code()) {
        case StatusCode::kCancelled:
          query_metrics_.cancelled->Increment();
          break;
        case StatusCode::kResourceExhausted:
          query_metrics_.rejected->Increment();
          break;
        case StatusCode::kTimeout:
          query_metrics_.timeout->Increment();
          break;
        default:
          break;
      }
    }
    query_metrics_.optimization_ms->Record(obs.optimization_ms);
    query_metrics_.execution_ms->Record(obs.execution_ms);
  }
  double total_ms = obs.optimization_ms + obs.execution_ms;
  if (options.slow_query_ms > 0.0 && total_ms >= options.slow_query_ms) {
    slow_log_.Record(StrFormat(
        "slow_query query=%s mode=%s engine=%s total_ms=%.3f opt_ms=%.3f "
        "exec_ms=%.3f rows=%llu scan_cache_hits=%llu threshold_ms=%.3f "
        "status=%s",
        query.name.empty() ? "<unnamed>" : query.name.c_str(),
        optimizer::ModeName(mode),
        options.engine == exec::EngineKind::kPipeline ? "pipeline"
                                                      : "materialize",
        total_ms, obs.optimization_ms, obs.execution_ms,
        static_cast<unsigned long long>(obs.rows),
        static_cast<unsigned long long>(obs.scan_cache_hits),
        options.slow_query_ms,
        obs.status.ok() ? "ok" : obs.status.ToString().c_str()));
  }
}

namespace {

/// Stack guard absorbing a query's TraceRecorder into the sink on every
/// exit path (success and error returns alike), so no traced query can
/// leave its spans behind.
class TraceScope {
 public:
  /// `query_id` is minted by the caller (unconditionally, so cancellation
  /// works with tracing off) and shared with the cancellation registry.
  TraceScope(obs::TraceSink* sink, bool enabled, std::string label,
             uint64_t query_id)
      : sink_(sink), label_(std::move(label)) {
    if (enabled) {
      recorder_ = std::make_unique<obs::TraceRecorder>(query_id);
    }
  }
  ~TraceScope() {
    if (recorder_ != nullptr) sink_->Absorb(recorder_.get(), label_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Null when tracing is off — the engine-side null-check discipline.
  obs::TraceRecorder* recorder() const { return recorder_.get(); }

 private:
  obs::TraceSink* sink_;
  std::string label_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

std::string TraceLabel(const plan::SpjmQuery& query,
                       optimizer::OptimizerMode mode) {
  std::string name = query.name.empty() ? "<unnamed>" : query.name;
  return name + " [" + optimizer::ModeName(mode) + "]";
}

const char* PlanCacheStatusName(exec::QueryProfile::PlanCacheStatus s) {
  switch (s) {
    case exec::QueryProfile::PlanCacheStatus::kOff:
      return "off";
    case exec::QueryProfile::PlanCacheStatus::kMiss:
      return "miss";
    case exec::QueryProfile::PlanCacheStatus::kHit:
      return "hit";
  }
  return "off";
}

}  // namespace

Result<QueryRunResult> Database::Run(const plan::SpjmQuery& query,
                                     optimizer::OptimizerMode mode,
                                     exec::ExecutionOptions options) const {
  uint64_t query_id = trace_sink_.NextQueryId();
  std::string label = TraceLabel(query, mode);
  TraceScope trace(&trace_sink_, options.trace || trace_sink_.enabled(),
                   label, query_id);
  QueryObservation obs;
  QueryRunResult result;

  double opt_start = trace.recorder() != nullptr ? obs::TraceNowMs() : 0.0;
  auto planned = PlanQuery(query, mode, options);
  if (trace.recorder() != nullptr) {
    trace.recorder()->Record(
        "optimize", "query", opt_start,
        {{"mode", optimizer::ModeName(mode)},
         {"plan_cache",
          planned.ok() ? PlanCacheStatusName(planned->cache_status) : "off"},
         {"status", planned.ok() ? "ok" : planned.status().ToString()}});
  }
  if (!planned.ok()) {
    obs.status = planned.status();
    ObserveQuery(query, mode, options, obs);
    return planned.status();
  }
  obs.optimization_ms = result.optimization_ms = planned->optimization_ms;
  result.plan_cache = planned->cache_status;

  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  ctx.SetQueryId(query_id);
  ctx.SetTrace(trace.recorder());
  double exec_start = trace.recorder() != nullptr ? obs::TraceNowMs() : 0.0;
  Timer timer;
  auto table = ExecuteWithContext(*planned->plan, &ctx, label);
  obs.execution_ms = result.execution_ms = timer.ElapsedMillis();
  obs.scan_cache_hits = result.scan_cache_hits = ctx.scan_cache_hits();
  if (table.ok()) obs.rows = (*table)->num_rows();
  if (trace.recorder() != nullptr) {
    trace.recorder()->Record(
        "execute", "query", exec_start,
        {{"engine", options.engine == exec::EngineKind::kPipeline
                        ? "pipeline"
                        : "materialize"},
         {"scan_cache_hits", std::to_string(ctx.scan_cache_hits())},
         {"rows", std::to_string(obs.rows)},
         {"status", table.ok() ? "ok" : table.status().ToString()}});
  }
  if (!table.ok()) {
    obs.status = table.status();
    ObserveQuery(query, mode, options, obs);
    return table.status();
  }
  // Publish only now — after the plan executed to completion — so a
  // cancelled, timed-out, or faulted query never seeds the plan cache
  // (the scan cache's commit-on-success chokepoint, applied to plans).
  PublishPlan(*planned, std::shared_ptr<const plan::PhysicalOp>(
                            std::move(planned->plan)));
  ObserveQuery(query, mode, options, obs);
  result.table = std::move(table).value();
  return result;
}

Result<std::string> Database::Explain(const plan::SpjmQuery& query,
                                      optimizer::OptimizerMode mode) const {
  RELGO_ASSIGN_OR_RETURN(auto optimized, Optimize(query, mode));
  return plan::PrintPlan(*optimized.plan);
}

Result<ProfiledRunResult> Database::RunProfiled(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    exec::ExecutionOptions options) const {
  uint64_t query_id = trace_sink_.NextQueryId();
  std::string label = TraceLabel(query, mode);
  TraceScope trace(&trace_sink_, options.trace || trace_sink_.enabled(),
                   label, query_id);
  QueryObservation obs;
  ProfiledRunResult result;

  double opt_start = trace.recorder() != nullptr ? obs::TraceNowMs() : 0.0;
  auto planned = PlanQuery(query, mode, options);
  if (trace.recorder() != nullptr) {
    trace.recorder()->Record(
        "optimize", "query", opt_start,
        {{"mode", optimizer::ModeName(mode)},
         {"plan_cache",
          planned.ok() ? PlanCacheStatusName(planned->cache_status) : "off"},
         {"status", planned.ok() ? "ok" : planned.status().ToString()}});
  }
  if (!planned.ok()) {
    obs.status = planned.status();
    ObserveQuery(query, mode, options, obs);
    return planned.status();
  }
  obs.optimization_ms = result.optimization_ms = planned->optimization_ms;
  result.plan = std::move(planned->plan);
  result.profile.SetPlanCacheStatus(planned->cache_status);

  exec::ExecutionContext ctx(&catalog_, &mapping_, &index_, options);
  ctx.SetQueryId(query_id);
  ctx.EnableProfiling(&result.profile);
  ctx.SetTrace(trace.recorder());
  double exec_start = trace.recorder() != nullptr ? obs::TraceNowMs() : 0.0;
  Timer timer;
  auto table = ExecuteWithContext(*result.plan, &ctx, label);
  obs.execution_ms = result.execution_ms = timer.ElapsedMillis();
  obs.scan_cache_hits = ctx.scan_cache_hits();
  if (table.ok()) obs.rows = (*table)->num_rows();
  if (trace.recorder() != nullptr) {
    trace.recorder()->Record(
        "execute", "query", exec_start,
        {{"engine", options.engine == exec::EngineKind::kPipeline
                        ? "pipeline"
                        : "materialize"},
         {"scan_cache_hits", std::to_string(ctx.scan_cache_hits())},
         {"rows", std::to_string(obs.rows)},
         {"status", table.ok() ? "ok" : table.status().ToString()}});
  }
  if (!table.ok()) {
    obs.status = table.status();
    ObserveQuery(query, mode, options, obs);
    return table.status();
  }
  result.table = std::move(table).value();
  result.profile.SetScanCacheHits(ctx.scan_cache_hits());
  // Publish after successful execution. The caller keeps result.plan, so
  // the cache stores its own deep copy (cloned only on an actual miss).
  if (planned->cache_status == exec::QueryProfile::PlanCacheStatus::kMiss) {
    PublishPlan(*planned, std::shared_ptr<const plan::PhysicalOp>(
                              plan::ClonePlan(*result.plan)));
  }
  if (options.adaptive_stats) {
    // The adaptive loop: hand the profile's per-operator actuals back to
    // the statistics sink, then migrate structural (predicate-free)
    // pattern corrections into the GLogue catalog itself. The next
    // Optimize over this or an overlapping query consults the refined
    // statistics and may pick a different, better join order. The
    // push-down mutates shared GLogue counts, so it excludes concurrent
    // optimizations (Absorb itself is internally synchronized and only
    // touches the sink).
    result.feedback_observations =
        feedback_.Absorb(*result.plan, result.profile);
    int refined = 0;
    {
      std::unique_lock<std::shared_mutex> lock(stats_mu_);
      refined = feedback_.PushIntoGlogue(&glogue_);
      // The plan cache's invalidation clock: advance exactly when the
      // estimator learned something (keyed corrections absorbed and/or
      // GLogue counts refined), under the exclusive lock so no
      // optimization can capture an epoch that misses these corrections.
      if (result.feedback_observations > 0 || refined > 0) {
        stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    if (options.metrics) {
      query_metrics_.feedback_observations->Add(
          static_cast<uint64_t>(result.feedback_observations));
      query_metrics_.glogue_refinements->Add(
          static_cast<uint64_t>(refined));
    }
  }
  ObserveQuery(query, mode, options, obs);
  return result;
}

Result<std::string> Database::ExplainAnalyze(
    const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
    exec::ExecutionOptions options) const {
  RELGO_ASSIGN_OR_RETURN(auto profiled, RunProfiled(query, mode, options));
  if (options.engine == exec::EngineKind::kPipeline) {
    return exec::RenderAnalyzedPipelines(*profiled.plan, profiled.profile);
  }
  return exec::RenderAnalyzedTree(*profiled.plan, profiled.profile);
}

}  // namespace relgo
