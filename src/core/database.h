#ifndef RELGO_CORE_DATABASE_H_
#define RELGO_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/query_registry.h"
#include "exec/context.h"
#include "exec/executor.h"
#include "exec/pipeline/scheduler.h"
#include "exec/scan_cache.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "optimizer/plan_cache.h"
#include "optimizer/query_optimizer.h"
#include "pattern/parser.h"

namespace relgo {

/// Result of Database::Run — the materialized table plus the timing split
/// the paper's experiments report (optimization vs execution).
struct QueryRunResult {
  storage::TablePtr table;
  double optimization_ms = 0.0;
  double execution_ms = 0.0;
  /// Filtered scans replayed from the cross-query scan cache (0 when the
  /// cache is off, cold, or the plan has no filtered scans).
  uint64_t scan_cache_hits = 0;
  /// Whether the plan came from the cross-query plan cache (kHit:
  /// optimization skipped), was freshly optimized with the cache consulted
  /// (kMiss), or ran with the cache off / bypassed (kOff).
  exec::QueryProfile::PlanCacheStatus plan_cache =
      exec::QueryProfile::PlanCacheStatus::kOff;
};

/// Result of Database::RunProfiled — one profiled execution: the result
/// table, the optimized plan (owned, so estimates can be compared against
/// the profile), and the per-operator QueryProfile both engines feed.
struct ProfiledRunResult {
  storage::TablePtr table;
  plan::PhysicalOpPtr plan;
  exec::QueryProfile profile;
  double optimization_ms = 0.0;
  double execution_ms = 0.0;
  /// Estimate-vs-actual observations absorbed into the adaptive
  /// statistics sink (0 unless ExecutionOptions::adaptive_stats).
  int feedback_observations = 0;
};

/// The top-level handle of the RelGo library: owns the relational catalog,
/// the RGMapping and graph index, all statistics (low-order + GLogue), the
/// optimizer front door — and the concurrent-serving substrate: one
/// process-wide morsel worker pool every pipeline query shares (Leis et
/// al.'s one-pool-per-process design) plus the cross-query scan/filter
/// cache both engines consult.
///
/// Thread-safety: after Finalize(), Run / RunProfiled / Execute /
/// Optimize / Explain / ExplainAnalyze may be called from any number of
/// threads concurrently, including profiled runs with
/// ExecutionOptions::adaptive_stats — statistics refinement is serialized
/// against in-flight optimizations internally (stats_mu_). Data loading
/// (CreateTable, appends, mapping declarations) and Finalize itself are
/// not concurrent-safe against queries; mutating a base table between
/// queries is supported and invalidates affected scan-cache entries via
/// the table's version counter.
///
/// Typical lifecycle (see examples/quickstart.cc):
///
///   relgo::Database db;
///   db.CreateTable("Person", {...});                    // + load rows
///   db.AddVertexTable("Person", "id");                  // RGMapping
///   db.AddEdgeTable("Knows", "Person", "p1", "Person", "p2");
///   db.Finalize();                                      // index + stats
///   auto pattern = db.ParsePattern("(a:Person)-[:Knows]->(b:Person)");
///   auto query = plan::SpjmQueryBuilder("demo").Match(*pattern)...Build();
///   auto result = db.Run(query, optimizer::OptimizerMode::kRelGo);
class Database {
 public:
  /// How Shutdown treats queries still in flight.
  enum class ShutdownMode {
    kDrain,   ///< let running queries finish; only new arrivals are shed
    kCancel,  ///< flip every in-flight query's cancel token first
  };

  Database();
  /// Cancels and drains every in-flight query before tearing down the
  /// serving substrate (equivalent to Shutdown(ShutdownMode::kCancel)).
  ~Database();

  // Non-copyable (owns large state and internal pointers).
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }

  /// Creates an empty base table.
  Result<storage::TablePtr> CreateTable(const std::string& name,
                                        storage::Schema schema) {
    return catalog_.CreateTable(name, std::move(schema));
  }

  /// RGMapping declarations (Sec 2.1). Label defaults to the table name.
  Status AddVertexTable(const std::string& table,
                        const std::string& key_column,
                        const std::string& label = "") {
    return mapping_.AddVertexTable(table, key_column, label);
  }
  Status AddEdgeTable(const std::string& table, const std::string& src_label,
                      const std::string& src_key, const std::string& dst_label,
                      const std::string& dst_key,
                      const std::string& label = "") {
    return mapping_.AddEdgeTable(table, src_label, src_key, dst_label,
                                 dst_key, label);
  }

  const graph::RgMapping& mapping() const { return mapping_; }
  const graph::GraphIndex& index() const { return index_; }
  const graph::GraphStats& graph_stats() const { return graph_stats_; }
  const optimizer::Glogue& glogue() const { return glogue_; }
  const optimizer::TableStats& table_stats() const { return table_stats_; }

  /// The adaptive-statistics sink (ROADMAP "Adaptive feedback"). Empty
  /// until a profiled run executes with ExecutionOptions::adaptive_stats;
  /// corrections persist across queries so overlapping workloads re-plan
  /// with refined statistics.
  const optimizer::StatsFeedback& stats_feedback() const { return feedback_; }

  /// Drops all pending keyed corrections (GLogue counts already refined
  /// via the structural push-down keep their — execution-measured, hence
  /// more accurate — values). Used to isolate per-query feedback
  /// experiments: Harness::RunAdaptiveGrid resets between cells so each
  /// record's "first run" measures a cold-corrections baseline. `const`
  /// for the same reason the sink is mutable: corrections are estimator
  /// cache state, not database content.
  void ResetAdaptiveStats() const { feedback_.Clear(); }

  /// The cross-query scan/filter cache (ROADMAP "Shared scan caching"):
  /// filtered base-table scans of both engines store their selection
  /// vectors here, keyed by the feedback layer's scan signatures and
  /// invalidated by table version counters. Consulted by every execution
  /// unless ExecutionOptions::scan_cache is off.
  const exec::ScanCache& scan_cache() const { return scan_cache_; }
  /// Empties the cache (A/B measurement, tests). `const` like
  /// ResetAdaptiveStats: the cache is derived state, not content.
  void ClearScanCache() const { scan_cache_.Clear(); }

  /// The cross-query plan cache (ROADMAP "Serving tier"): optimized
  /// physical plans keyed by template signature × optimizer mode,
  /// validated against stats_epoch() and the catalog's table versions.
  /// Consulted by Run/RunProfiled/ExplainAnalyze unless
  /// ExecutionOptions::plan_cache is off or the run is adaptive.
  const optimizer::PlanCache& plan_cache() const { return plan_cache_; }
  /// Empties the plan cache (A/B measurement, tests). `const` like
  /// ClearScanCache: cached plans are derived state, not content.
  void ClearPlanCache() const { plan_cache_.Clear(); }

  /// Statistics epoch: bumped exactly when an adaptive profiled run
  /// pushed corrections into the estimator (StatsFeedback absorption
  /// and/or GLogue refinement) — the plan cache's invalidation clock.
  /// Never advances on a timer; a database that never absorbs feedback
  /// stays at epoch 0 forever.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// The process-wide worker pool all concurrent pipeline queries share;
  /// exposed for diagnostics (pool size) and scheduler-level tests.
  exec::pipeline::TaskScheduler& worker_pool() const { return pool_; }

  // --- Query lifecycle (docs/ARCHITECTURE.md "Query lifecycle") --------

  /// Flips the cancel token of the in-flight query with the given id (the
  /// id Run minted — exported via ExecutionOptions::query_id_out, and the
  /// same id that keys traces and the slow-query log). Engines observe the
  /// token at every interrupt-check point (exec::kInterruptCheckMask) and
  /// abort with kCancelled within one morsel / check interval. Returns
  /// false when no such query is in flight (already finished, or never
  /// existed) — cancellation is then a no-op, never an error.
  bool CancelQuery(uint64_t query_id) const {
    return query_registry_.Cancel(query_id);
  }
  /// Cancels every in-flight query; returns how many were signalled.
  size_t CancelAllQueries() const { return query_registry_.CancelAll(); }
  /// Ids of the queries currently executing, ascending (diagnostics).
  std::vector<uint64_t> ActiveQueryIds() const {
    return query_registry_.ActiveIds();
  }

  /// Stops admitting new queries (they fail with kResourceExhausted) and
  /// blocks until the in-flight ones left — immediately cancelled
  /// (kCancel) or run to natural completion (kDrain). Deterministic:
  /// after return no query holds any job, admission slot, or registry
  /// entry. Idempotent; the database stays alive for reads but every
  /// subsequent Run/Execute is rejected.
  void Shutdown(ShutdownMode mode = ShutdownMode::kCancel) const;

  /// Validates the mapping, builds the graph index (EV + VE), low-order
  /// statistics, and GLogue. Call after all data is loaded.
  Status Finalize(optimizer::GlogueOptions glogue_options = {});

  /// Parses a SQL/PGQ-style MATCH pattern against the mapping. Records a
  /// "parse" span while tracing is enabled (SetTracing).
  Result<pattern::PatternGraph> ParsePattern(const std::string& text) const;

  /// Optimizes `query` under the given mode; the plan is independent of
  /// execution state and can be printed with plan::PrintPlan.
  Result<optimizer::OptimizeResult> Optimize(
      const plan::SpjmQuery& query, optimizer::OptimizerMode mode) const;

  /// Executes a physical plan under resource limits.
  Result<storage::TablePtr> Execute(
      const plan::PhysicalOp& op,
      exec::ExecutionOptions options = {}) const;

  /// Optimize + execute, reporting both timings.
  Result<QueryRunResult> Run(const plan::SpjmQuery& query,
                             optimizer::OptimizerMode mode,
                             exec::ExecutionOptions options = {}) const;

  /// Renders the optimized plan (Fig 6 / Fig 12 style).
  Result<std::string> Explain(const plan::SpjmQuery& query,
                              optimizer::OptimizerMode mode) const;

  /// Optimize + execute with per-operator profiling enabled, returning the
  /// plan and the QueryProfile alongside the result. Works on both engines:
  /// the materializing interpreter records through its dispatch wrapper,
  /// the pipeline engine merges thread-local per-morsel counters at sink
  /// finish. This is the estimate-vs-actual feedback loop EXPLAIN ANALYZE
  /// and the workload harness's Q-error tracking are built on.
  Result<ProfiledRunResult> RunProfiled(
      const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
      exec::ExecutionOptions options = {}) const;

  /// EXPLAIN ANALYZE: optimizes, executes with per-operator profiling, and
  /// renders the plan annotated with actual rows, per-operator Q-error and
  /// operator times next to the optimizer's estimates — tree-shaped for
  /// the materializing engine, pipeline-shaped (pipelines + breakers) for
  /// EngineKind::kPipeline.
  Result<std::string> ExplainAnalyze(
      const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
      exec::ExecutionOptions options = {}) const;

  bool finalized() const { return finalized_; }

  // --- Observability (ROADMAP "Observability"; docs/ARCHITECTURE.md) ---

  /// The process-wide metrics registry: query counters and latency
  /// histograms, worker-pool and feedback metrics, plus pull-collectors
  /// for subsystems with their own accounting (scan cache). Render with
  /// metrics().RenderText() or merge Snapshot()s across databases.
  /// `const` like the pool: observing the server is not mutating content.
  obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The query-lifecycle trace sink (Chrome trace-event export).
  obs::TraceSink& trace_sink() const { return trace_sink_; }

  /// Turns span recording on/off for every subsequent query (individual
  /// queries can also opt in via ExecutionOptions::trace).
  void SetTracing(bool on) const { trace_sink_.set_enabled(on); }

  /// Writes the collected spans as Chrome trace-event JSON, loadable by
  /// chrome://tracing or Perfetto.
  Status DumpTrace(const std::string& path) const {
    return trace_sink_.WriteFile(path);
  }
  std::string DumpTraceJson() const { return trace_sink_.DumpJson(); }

  /// Structured records of queries that crossed their
  /// ExecutionOptions::slow_query_ms threshold.
  obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

 private:
  /// What one finished (or failed) query reports to the registry and the
  /// slow-query log.
  struct QueryObservation {
    double optimization_ms = 0.0;
    double execution_ms = 0.0;
    uint64_t rows = 0;
    uint64_t scan_cache_hits = 0;
    Status status;
  };

  /// Registry handles resolved once in the constructor so the per-query
  /// path never takes the registry lock.
  struct QueryMetricHandles {
    obs::Counter* queries = nullptr;
    obs::Counter* failures = nullptr;
    obs::Histogram* optimization_ms = nullptr;
    obs::Histogram* execution_ms = nullptr;
    obs::Counter* feedback_observations = nullptr;
    obs::Counter* glogue_refinements = nullptr;
    /// Failure breakdown (each also counts into `failures`): cancelled
    /// via CancelQuery/shutdown, shed by admission control or shutdown,
    /// and timed out. Exactly one increments per failed query.
    obs::Counter* cancelled = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* timeout = nullptr;
  };

  /// Optimize without the public entry point's metrics recording —
  /// Run/RunProfiled charge optimization time through ObserveQuery
  /// instead, so a query never lands twice in the same histogram.
  /// `epoch_out` (optional) receives the stats epoch captured under the
  /// same shared statistics lock the optimization ran under, so a plan
  /// published to the plan cache is tagged with exactly the statistics
  /// state it was derived from.
  Result<optimizer::OptimizeResult> OptimizeInternal(
      const plan::SpjmQuery& query, optimizer::OptimizerMode mode,
      uint64_t* epoch_out = nullptr) const;

  /// What PlanQuery hands the execution entry points: a plan ready to
  /// execute plus the plan-cache bookkeeping needed to report the outcome
  /// and publish the plan after a successful run.
  struct PlannedQuery {
    plan::PhysicalOpPtr plan;
    double optimization_ms = 0.0;
    exec::QueryProfile::PlanCacheStatus cache_status =
        exec::QueryProfile::PlanCacheStatus::kOff;
    std::string cache_key;          ///< empty when the cache was bypassed
    uint64_t cache_epoch = 0;       ///< stats epoch the plan was derived at
    uint64_t cache_data_version = 0;  ///< catalog version it was derived at
  };

  /// The plan-acquisition chokepoint of Run/RunProfiled: consults the
  /// plan cache (unless off, adaptive, or pre-Finalize), re-binding a hit
  /// against the call's constants via ClonePlan, or falls through to a
  /// fresh optimization whose plan the caller publishes after successful
  /// execution (PublishPlan).
  Result<PlannedQuery> PlanQuery(const plan::SpjmQuery& query,
                                 optimizer::OptimizerMode mode,
                                 const exec::ExecutionOptions& options) const;

  /// Publishes a freshly optimized plan to the plan cache — called only
  /// after the plan executed successfully, the same no-publish-on-failure
  /// chokepoint the scan cache uses. No-op for hits and bypassed runs.
  void PublishPlan(const PlannedQuery& planned,
                   std::shared_ptr<const plan::PhysicalOp> plan) const;

  /// Sum of all base tables' version counters: the data component of
  /// plan-cache validation. Any append to any table changes it.
  uint64_t CatalogDataVersion() const;

  /// Records one finished query: registry counters/histograms (when
  /// `options.metrics`) and the slow-query log (when the
  /// `options.slow_query_ms` threshold is crossed — independent of the
  /// metrics switch).
  void ObserveQuery(const plan::SpjmQuery& query,
                    optimizer::OptimizerMode mode,
                    const exec::ExecutionOptions& options,
                    const QueryObservation& obs) const;
  /// The one execution path all entry points share — the query-lifecycle
  /// chokepoint: registers the query for cancellation (minting an id if
  /// the caller didn't), passes admission control, attaches the serving
  /// substrate (worker pool, scan cache when enabled) to `ctx`,
  /// dispatches to the selected engine, and finally commits the query's
  /// queued scan-cache publications on success or drops them on any
  /// failure. `label` names the query in the registry (diagnostics).
  Result<storage::TablePtr> ExecuteWithContext(
      const plan::PhysicalOp& op, exec::ExecutionContext* ctx,
      const std::string& label = "") const;

  storage::Catalog catalog_;
  graph::RgMapping mapping_;
  graph::GraphIndex index_;
  graph::GraphStats graph_stats_;
  /// `mutable`: adaptive-statistics feedback refines estimator state (the
  /// GLogue counts and the correction sink below) from inside the
  /// logically-const RunProfiled — statistics caches, not database
  /// content, following the TableStats::distinct_cache_ precedent.
  /// GLogue refinement takes stats_mu_ exclusively, so adaptive profiled
  /// runs are safe against concurrent optimizations (which hold it
  /// shared); StatsFeedback itself is internally synchronized.
  mutable optimizer::Glogue glogue_;
  optimizer::TableStats table_stats_;
  mutable optimizer::StatsFeedback feedback_;
  std::unique_ptr<optimizer::QueryOptimizer> optimizer_;
  /// Readers = optimizations (estimators read GLogue counts), writer =
  /// the adaptive-statistics push-down that mutates them in place.
  mutable std::shared_mutex stats_mu_;
  /// The shared execution substrate (see class comment). Mutable: serving
  /// queries is logically const, but the pool spawns threads and the
  /// cache fills — both internally synchronized.
  mutable exec::pipeline::TaskScheduler pool_;
  mutable exec::ScanCache scan_cache_;
  /// Cross-query plan cache (internally synchronized) and its
  /// invalidation clock. Mutable like the scan cache: caching plans while
  /// serving is logically const.
  mutable optimizer::PlanCache plan_cache_;
  mutable std::atomic<uint64_t> stats_epoch_{0};
  /// Observability state (mutable for the same reason as the pool:
  /// serving and observing are logically const). Declared before use:
  /// the constructor wires the pool's SchedulerMetrics and the scan-cache
  /// collector out of `metrics_`.
  mutable obs::MetricsRegistry metrics_;
  mutable obs::TraceSink trace_sink_;
  mutable obs::SlowQueryLog slow_log_;
  /// In-flight query handles (cancellation tokens), keyed by the trace
  /// query id. Mutable like the pool: serving is logically const.
  mutable core::QueryRegistry query_registry_;
  QueryMetricHandles query_metrics_;
  bool finalized_ = false;
};

}  // namespace relgo

#endif  // RELGO_CORE_DATABASE_H_
