#include "core/query_registry.h"

#include <algorithm>

namespace relgo {
namespace core {

Result<QueryHandlePtr> QueryRegistry::Register(uint64_t id,
                                               std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::ResourceExhausted("database is shutting down");
  }
  auto handle = std::make_shared<QueryHandle>(id, std::move(label));
  active_.emplace(id, handle);
  return handle;
}

void QueryRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(id);
  if (active_.empty()) idle_cv_.notify_all();
}

bool QueryRegistry::Cancel(uint64_t id) {
  QueryHandlePtr handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(id);
    if (it == active_.end()) return false;
    handle = it->second;
  }
  handle->Cancel();
  return true;
}

size_t QueryRegistry::CancelAll() {
  std::vector<QueryHandlePtr> handles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handles.reserve(active_.size());
    for (auto& entry : active_) handles.push_back(entry.second);
  }
  for (auto& handle : handles) handle->Cancel();
  return handles.size();
}

std::vector<uint64_t> QueryRegistry::ActiveIds() const {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(active_.size());
    for (const auto& entry : active_) ids.push_back(entry.first);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t QueryRegistry::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

void QueryRegistry::BeginShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutting_down_ = true;
}

bool QueryRegistry::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

void QueryRegistry::WaitUntilIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return active_.empty(); });
}

}  // namespace core
}  // namespace relgo
