#ifndef RELGO_CORE_QUERY_REGISTRY_H_
#define RELGO_CORE_QUERY_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace relgo {
namespace core {

/// Cancellation token of one in-flight query. The Database registers a
/// handle per execution, keyed by the trace query id (the same id the
/// slow-query log and trace sink print), and threads the handle's flag
/// into the ExecutionContext; engines observe it cooperatively at every
/// interrupt-check point (see exec::kInterruptCheckMask).
///
/// Handles are shared_ptrs so Cancel() is race-free against the query
/// finishing: a caller holding a handle may flip the flag after the query
/// unregistered, which is then simply a no-op.
class QueryHandle {
 public:
  QueryHandle(uint64_t id, std::string label)
      : id_(id), label_(std::move(label)) {}

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// The flag engines poll; outlives the registry entry via the handle.
  const std::atomic<bool>* flag() const { return &cancelled_; }

 private:
  uint64_t id_;
  std::string label_;
  std::atomic<bool> cancelled_{false};
};

using QueryHandlePtr = std::shared_ptr<QueryHandle>;

/// Tracks every in-flight query of a Database: registration on entry,
/// cancellation by id (or wholesale), and the shutdown handshake (stop
/// admitting, then wait until the last registered query drains).
/// Thread-safe; all operations are O(active queries) or better.
class QueryRegistry {
 public:
  /// Registers a query; fails with kResourceExhausted once BeginShutdown
  /// ran (a database that is going away accepts no new work).
  Result<QueryHandlePtr> Register(uint64_t id, std::string label);
  /// Removes the entry; wakes WaitUntilIdle when the last one leaves.
  void Unregister(uint64_t id);

  /// Flips the cancel flag of the given query; false if it is not (or no
  /// longer) in flight.
  bool Cancel(uint64_t id);
  /// Cancels every in-flight query; returns how many flags were flipped.
  size_t CancelAll();

  /// Ids of the queries currently in flight, ascending.
  std::vector<uint64_t> ActiveIds() const;
  size_t active() const;

  /// Stops accepting new registrations. Idempotent; not reversible.
  void BeginShutdown();
  bool shutting_down() const;
  /// Blocks until no query is registered. Callers pair this with
  /// BeginShutdown — otherwise new arrivals can starve the wait.
  void WaitUntilIdle();

 private:
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::unordered_map<uint64_t, QueryHandlePtr> active_;
  bool shutting_down_ = false;
};

}  // namespace core
}  // namespace relgo

#endif  // RELGO_CORE_QUERY_REGISTRY_H_
