#include "exec/context.h"

#include "exec/scan_cache.h"

namespace relgo {
namespace exec {

void ExecutionContext::CommitScanCachePublications() {
  std::vector<PendingCachePut> puts;
  {
    std::lock_guard<std::mutex> lock(pending_puts_mu_);
    puts.swap(pending_puts_);
  }
  if (scan_cache_ == nullptr) return;
  for (auto& put : puts) {
    if (put.selection != nullptr) {
      scan_cache_->Put(put.key, put.version, std::move(put.selection));
    } else if (put.bitmap != nullptr) {
      scan_cache_->PutBitmap(put.key, put.version, std::move(put.bitmap));
    }
  }
}

}  // namespace exec
}  // namespace relgo
