#ifndef RELGO_EXEC_CONTEXT_H_
#define RELGO_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "exec/profile.h"
#include "graph/graph_index.h"
#include "graph/rg_mapping.h"
#include "storage/catalog.h"

namespace relgo {

namespace obs {
class TraceRecorder;
}  // namespace obs

namespace exec {

class ScanCache;

namespace pipeline {
class TaskScheduler;
}  // namespace pipeline

/// Which runtime interprets the physical plan.
///
///  * kMaterialize — the reference operator-at-a-time interpreter
///    (exec/executor.*): every operator fully materializes its output.
///  * kPipeline    — the morsel-driven vectorized engine
///    (exec/pipeline/*): the plan is decomposed into pipelines split at
///    breakers and executed batch-at-a-time by a worker pool.
///
/// Both engines produce identical result bags (pipeline_parity_test.cc);
/// the materializing engine remains the oracle for differential testing.
/// Pipeline row order is deterministic and thread-count independent
/// (sinks merge in morsel order, equal to the sequential scan order), so
/// repeated runs are reproducible; ORDER BY + LIMIT tie-breaking can still
/// differ *between* the two engines on index-free EXPAND / EDGE_VERIFY
/// plans, whose materializing implementation picks its hash build side
/// adaptively and thereby emits rows in a different (but equally valid)
/// order.
enum class EngineKind {
  kMaterialize,
  kPipeline,
};

/// The interrupt-check cadence of the materializing engine's row loops —
/// the observable-latency contract of cooperative cancellation:
///
///  * The materializing executor calls ExecutionContext::CheckInterrupt()
///    at every operator dispatch and, inside per-row expansion/probe
///    loops, every `kInterruptCheckMask + 1` (= 4096) iterations. One
///    shared constant for every loop (this used to be an ad-hoc mix of
///    0xFFFF / 0xFFF / 0x3FF masks).
///  * The pipeline engine checks once per morsel (kBatchRows = 2048 rows)
///    before any work on the morsel, plus at pipeline/breaker entry.
///
/// Consequently Database::CancelQuery (and the timeout clock) is observed
/// within one morsel or one check-interval of row-loop work in BOTH
/// engines — a few thousand rows of latency, never an unbounded scan.
/// Row-budget accounting (ChargeRows) also routes through CheckInterrupt,
/// so any operator that materializes output observes interrupts at least
/// once per produced batch.
inline constexpr uint64_t kInterruptCheckMask = 0xFFF;

/// Resource limits for one query execution, mirroring the paper's
/// experimental protocol: a wall-clock timeout (10 minutes in the paper)
/// and a memory budget whose exhaustion is reported as OOM (e.g.
/// RelGoNoEI on the 4-clique query QC3).
struct ExecutionOptions {
  /// Total intermediate + output tuples a query may materialize before the
  /// executor aborts with kOutOfMemory.
  uint64_t max_total_rows = 80'000'000;
  /// Wall-clock limit; kTimeout past this.
  double timeout_ms = 600'000.0;
  /// Runtime selection; the materializing executor is the default oracle.
  EngineKind engine = EngineKind::kMaterialize;
  /// Worker threads for the pipeline engine. 0 = hardware concurrency;
  /// 1 = single-threaded deterministic mode (used by tests). Ignored by the
  /// materializing engine.
  int num_threads = 0;
  /// Consult the owning Database's cross-query scan/filter cache (ROADMAP
  /// "Shared scan caching"): filtered base-table scans reuse selection
  /// vectors computed by earlier queries instead of re-evaluating the
  /// predicate, invalidated by the table's version counter. Results are
  /// bit-identical either way (the cache stores exactly what the filter
  /// loop would have produced, and row-budget charges are unchanged), so
  /// this is on by default; the off switch exists for A/B measurement and
  /// the parity test suite.
  bool scan_cache = true;
  /// Consult the owning Database's cross-query plan cache (ROADMAP
  /// "Serving tier"): optimized physical plans are cached by template
  /// signature (query shape with parameter slots in place of constants,
  /// per optimizer mode) and validated against the Database's stats epoch
  /// and catalog data version — so a hit skips optimization entirely and
  /// an entry is invalidated exactly when adaptive feedback taught the
  /// estimator something or a table changed. The cached plan is re-bound
  /// against the call's constants via clone-before-Bind, and
  /// parameterized predicates are estimated value-insensitively, so
  /// cached and fresh runs are bit-identical; on by default, with the off
  /// switch for A/B measurement and the differential suite
  /// (plan_cache_test). Adaptive (RunProfiled with adaptive_stats) runs
  /// bypass the cache: they exist to refine statistics, not to reuse
  /// stale estimates.
  bool plan_cache = true;
  /// Opt-in adaptive statistics (ROADMAP "Adaptive feedback"): after a
  /// profiled run (Database::RunProfiled / ExplainAnalyze), per-operator
  /// actual cardinalities are fed back into the optimizer's statistics
  /// (GLogue pattern counts, TableStats scan selectivities, join-output
  /// corrections) via bounded exponential smoothing, and persist on the
  /// Database across queries. Off by default: with the flag off nothing
  /// is absorbed and — on a database that never absorbed feedback — all
  /// plans and estimates are bit-identical to the non-adaptive build.
  bool adaptive_stats = false;
  /// Record this query into the Database's process-wide MetricsRegistry
  /// (query/failure counters, optimization/execution latency histograms,
  /// feedback counters). Per-query granularity only — nothing per row or
  /// per morsel — so results are bit-identical either way; the off switch
  /// exists for A/B parity tests and to exclude a query from the fleet
  /// view (obs_test pins the parity).
  bool metrics = true;
  /// Record query-lifecycle spans (optimize, execute, per-pipeline build/
  /// run/sink-finish) into the Database's TraceSink, exportable as Chrome
  /// trace-event JSON via Database::DumpTrace. Off by default: spans
  /// allocate. Tracing is also forced on for every query while the sink
  /// itself is enabled (Database::SetTracing).
  bool trace = false;
  /// Slow-query log threshold: a query whose optimization + execution
  /// wall time reaches this many milliseconds is recorded as one
  /// structured line in the Database's SlowQueryLog. <= 0 disables.
  double slow_query_ms = 0.0;
  /// Evaluate filters through the vectorized kernel layer
  /// (src/exec/vector/): bound predicates are lowered once per scan /
  /// filter into typed kernels over column payload spans and selection
  /// vectors, and typed key extraction replaces boxed Value rows in
  /// hash-join build/probe, GROUP BY and TopK. Predicates the lowerer
  /// cannot cover fall back to row-at-a-time Expr::EvaluateBool, and
  /// kernel semantics are bit-identical to that path
  /// (vector_kernel_test pins the parity), so this is on by default;
  /// the off switch exists for A/B measurement and differential tests.
  bool vectorized_kernels = true;
  /// Use the per-column string dictionaries built at Database::Finalize
  /// (sorted-unique dictionary + int32 code vector, storage/column.h):
  /// string =, !=, IN and — on sorted dictionaries — range predicates
  /// lower to int32 code kernels with compile-time constant
  /// translation, StartsWith/Contains probe a per-distinct-value pass
  /// bitmap, hash-join string keys and GROUP BY string keys hash codes
  /// instead of bytes, and ORDER BY / TopK compare codes when both
  /// slots share a sorted dictionary. Every code path re-checks the
  /// dictionary pointer per batch and falls back to the string payload
  /// when a derived column dropped or never had one, and results are
  /// byte-identical on/off (dictionary_test pins the parity), so this
  /// is on by default; the off switch exists for A/B measurement and
  /// differential tests.
  bool dictionary_encoding = true;
  /// When set, the Database stores the query id it minted for this run
  /// (the same id that keys traces, the slow-query log, and the
  /// cancellation registry) before execution starts — the handle a
  /// controlling thread needs to call Database::CancelQuery on a query
  /// that is still in flight. Atomic because the controller typically
  /// spins on it from another thread. Null (default) skips the export.
  std::atomic<uint64_t>* query_id_out = nullptr;
};

/// Resolves ExecutionOptions::num_threads to a concrete worker count.
inline int ResolveNumThreads(const ExecutionOptions& options) {
  if (options.num_threads > 0) return options.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Everything an operator needs to run: the base relations, the RGMapping
/// (vertex/edge label resolution), the graph index (may be absent for
/// index-free baselines), and the resource accounting state.
class ExecutionContext {
 public:
  ExecutionContext(const storage::Catalog* catalog,
                   const graph::RgMapping* mapping,
                   const graph::GraphIndex* index,
                   ExecutionOptions options = {})
      : catalog_(catalog),
        mapping_(mapping),
        index_(index),
        options_(options) {}

  const storage::Catalog& catalog() const { return *catalog_; }
  const graph::RgMapping& mapping() const { return *mapping_; }
  bool has_index() const { return index_ != nullptr && index_->built(); }
  const graph::GraphIndex& index() const { return *index_; }
  const ExecutionOptions& options() const { return options_; }

  /// Accounts for `rows` newly materialized tuples; kOutOfMemory when the
  /// budget is exceeded, kCancelled/kTimeout per CheckInterrupt.
  /// Thread-safe: the pipeline engine's workers charge concurrently.
  Status ChargeRows(uint64_t rows) {
    uint64_t total = rows_produced_.fetch_add(rows,
                                              std::memory_order_relaxed) +
                     rows;
    if (total > options_.max_total_rows) {
      return Status::OutOfMemory(
          "intermediate results exceeded " +
          std::to_string(options_.max_total_rows) + " rows");
    }
    return CheckInterrupt();
  }

  /// The single cooperative interrupt point of both engines (see the
  /// kInterruptCheckMask contract above): kCancelled once the query's
  /// cancel token fired (Database::CancelQuery / CancelAll / shutdown),
  /// kTimeout once the wall clock passed ExecutionOptions::timeout_ms.
  /// Cancellation wins ties — a cancelled query reports kCancelled even
  /// if its deadline also lapsed while it was being torn down.
  Status CheckInterrupt() const {
    if (cancelled_ != nullptr &&
        cancelled_->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query " + std::to_string(query_id_) +
                               " cancelled");
    }
    if (timer_.ElapsedMillis() > options_.timeout_ms) {
      return Status::Timeout("query exceeded " +
                             std::to_string(options_.timeout_ms) + " ms");
    }
    return Status::OK();
  }

  /// Wires the query's cancellation token (owned by the Database's query
  /// registry; null for standalone engine executions, which are then only
  /// interruptible by timeout) and the registry id CheckInterrupt reports.
  void SetCancelToken(const std::atomic<bool>* cancelled) {
    cancelled_ = cancelled;
  }
  const std::atomic<bool>* cancel_token() const { return cancelled_; }
  void SetQueryId(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

  uint64_t rows_produced() const {
    return rows_produced_.load(std::memory_order_relaxed);
  }
  double elapsed_ms() const { return timer_.ElapsedMillis(); }

  /// Enables per-operator profiling; measurements land in `profile`.
  void EnableProfiling(QueryProfile* profile) { profile_ = profile; }
  QueryProfile* profile() const { return profile_; }

  /// The process-wide worker pool this query's pipelines run on (set by
  /// Database; null for standalone engine executions, which then use a
  /// query-private pool).
  void SetScheduler(pipeline::TaskScheduler* scheduler) {
    scheduler_ = scheduler;
  }
  pipeline::TaskScheduler* scheduler() const { return scheduler_; }

  /// The Database's cross-query scan/filter cache; null when absent or
  /// disabled (ExecutionOptions::scan_cache).
  void SetScanCache(ScanCache* cache) { scan_cache_ = cache; }
  ScanCache* scan_cache() const { return scan_cache_; }

  /// The query's span recorder; null when tracing is off (the engine's
  /// span sites are one null check, mirroring profile()'s
  /// zero-cost-when-off discipline).
  void SetTrace(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace() const { return trace_; }

  /// Scan-cache hit accounting for this execution (thread-safe: scan
  /// Prepare may run concurrently across a query's pipelines). Surfaced
  /// as QueryProfile::scan_cache_hits and QueryRunResult.
  void CountScanCacheHit() {
    scan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t scan_cache_hits() const {
    return scan_cache_hits_.load(std::memory_order_relaxed);
  }

  /// --- Deferred scan-cache publication -------------------------------
  ///
  /// Failed (cancelled, timed-out, faulted) queries must never publish
  /// scan-cache entries, so the engines no longer Put into the cache
  /// mid-query: completed selections/bitmaps are queued here and the
  /// Database commits the queue only after the whole query succeeded
  /// (dropping it on any failure). Entries are complete and correct at
  /// queue time — deferral only narrows *when* they become visible to
  /// other queries. Queue sites run on the owning thread (scan Prepare,
  /// pipeline-finished hooks, the materializing interpreter), but a small
  /// mutex keeps the queue safe if that ever changes.

  void QueuePutSelection(
      std::string key, uint64_t version,
      std::shared_ptr<const std::vector<uint64_t>> selection) {
    std::lock_guard<std::mutex> lock(pending_puts_mu_);
    pending_puts_.push_back(
        {std::move(key), version, std::move(selection), nullptr});
  }
  void QueuePutBitmap(std::string key, uint64_t version,
                      std::shared_ptr<const std::vector<uint8_t>> bitmap) {
    std::lock_guard<std::mutex> lock(pending_puts_mu_);
    pending_puts_.push_back(
        {std::move(key), version, nullptr, std::move(bitmap)});
  }
  /// Publishes every queued entry into the attached scan cache (no-op
  /// without one). Called by the Database on query success only.
  void CommitScanCachePublications();
  void DropScanCachePublications() {
    std::lock_guard<std::mutex> lock(pending_puts_mu_);
    pending_puts_.clear();
  }
  size_t pending_cache_publications() const {
    std::lock_guard<std::mutex> lock(pending_puts_mu_);
    return pending_puts_.size();
  }

  /// Resolves the base table behind a vertex label.
  Result<storage::TablePtr> VertexTable(int vertex_label) const {
    return catalog_->GetTable(mapping_->vertex_mapping(vertex_label).table);
  }
  /// Resolves the base table behind an edge label.
  Result<storage::TablePtr> EdgeTable(int edge_label) const {
    return catalog_->GetTable(mapping_->edge_mapping(edge_label).table);
  }

 private:
  struct PendingCachePut {
    std::string key;
    uint64_t version = 0;
    std::shared_ptr<const std::vector<uint64_t>> selection;
    std::shared_ptr<const std::vector<uint8_t>> bitmap;
  };

  const storage::Catalog* catalog_;
  const graph::RgMapping* mapping_;
  const graph::GraphIndex* index_;
  ExecutionOptions options_;
  Timer timer_;
  std::atomic<uint64_t> rows_produced_{0};
  QueryProfile* profile_ = nullptr;
  pipeline::TaskScheduler* scheduler_ = nullptr;
  ScanCache* scan_cache_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  std::atomic<uint64_t> scan_cache_hits_{0};
  const std::atomic<bool>* cancelled_ = nullptr;
  uint64_t query_id_ = 0;
  mutable std::mutex pending_puts_mu_;
  std::vector<PendingCachePut> pending_puts_;
};

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_CONTEXT_H_
