#include "exec/exec_common.h"

#include <memory>

#include "common/fault.h"
#include "exec/scan_cache.h"
#include "exec/vector/compiled_expr.h"

namespace relgo {
namespace exec {

Result<SharedBitmap> FilterBitmap(const storage::TablePtr& table,
                                  const storage::ExprPtr& filter,
                                  ExecutionContext* ctx) {
  if (!filter) return SharedBitmap();

  // Replay an earlier query's bitmap for the same (table, predicate)
  // signature and table version. The "bitmap|" namespace never collides
  // with the selection-vector namespaces ("scan|", "vscan|").
  ScanCache* cache = ctx != nullptr ? ctx->scan_cache() : nullptr;
  std::string key;
  uint64_t version = 0;
  if (cache != nullptr) {
    key = ScanCache::Key("bitmap", table->name(), filter);
    version = table->version();
    if (ScanCache::BitmapPtr hit = cache->GetBitmap(key, version)) {
      ctx->CountScanCacheHit();
      return SharedBitmap(std::move(hit));
    }
  }

  // Bind a clone: the plan may share this expression tree with the query
  // it was optimized from, and concurrent executions of the same query
  // must not race on the column indexes Bind resolves.
  storage::ExprPtr bound = filter->Clone();
  RELGO_RETURN_NOT_OK(bound->Bind(table->schema()));

  auto bitmap = std::make_shared<std::vector<uint8_t>>();
  std::unique_ptr<vector::CompiledPredicate> compiled;
  if (ctx == nullptr || ctx->options().vectorized_kernels) {
    compiled = vector::CompiledPredicate::Compile(
        *bound, table->schema(), table.get(),
        ctx == nullptr || ctx->options().dictionary_encoding);
  }
  if (compiled != nullptr) {
    std::vector<const storage::Column*> columns;
    columns.reserve(table->num_columns());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      columns.push_back(&table->column(c));
    }
    compiled->FilterBitmap(columns.data(), table->num_rows(), bitmap.get());
  } else {
    bitmap->resize(table->num_rows());
    for (uint64_t r = 0; r < table->num_rows(); ++r) {
      (*bitmap)[r] = bound->EvaluateBool(*table, r) ? 1 : 0;
    }
  }

  if (cache != nullptr) {
    // Deferred publication (see ExecutionContext): visible to other
    // queries only once this query commits successfully.
    RELGO_RETURN_NOT_OK(
        fault::MaybeInject(fault::Site::kScanCachePublish));
    ctx->QueuePutBitmap(std::move(key), version, bitmap);
  }
  return SharedBitmap(std::move(bitmap));
}

}  // namespace exec
}  // namespace relgo
