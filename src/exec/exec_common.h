#ifndef RELGO_EXEC_EXEC_COMMON_H_
#define RELGO_EXEC_EXEC_COMMON_H_

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "exec/context.h"
#include "exec/vector/typed_keys.h"
#include "plan/spjm_query.h"
#include "storage/expression.h"
#include "storage/table.h"

namespace relgo {
namespace exec {

/// Builds a table whose columns are the child's columns gathered by `sel`.
inline storage::TablePtr GatherTable(const storage::Table& src,
                                     const std::vector<uint64_t>& sel,
                                     const std::string& name) {
  auto out = std::make_shared<storage::Table>(name, src.schema());
  for (size_t c = 0; c < src.num_columns(); ++c) {
    out->column(c) = src.column(c).Gather(sel);
  }
  out->FinishBulkAppend();
  return out;
}

/// Output schema of a base-table scan: "alias.col" for each kept column,
/// preceded by "alias.$rid" when requested. `raw_indexes` receives the
/// source column index behind each emitted attribute column.
inline storage::Schema ScanSchema(const storage::Table& table,
                                  const std::string& alias,
                                  const std::vector<std::string>& projected,
                                  bool emit_rowid,
                                  std::vector<int>* raw_indexes) {
  storage::Schema out;
  if (emit_rowid) {
    (void)out.AddColumn({alias + ".$rid", LogicalType::kInt64});
  }
  if (projected.empty()) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      (void)out.AddColumn({alias + "." + table.schema().column(c).name,
                           table.schema().column(c).type});
      raw_indexes->push_back(static_cast<int>(c));
    }
  } else {
    for (const auto& col : projected) {
      int idx = table.schema().FindColumn(col);
      if (idx < 0) continue;  // validated by the optimizer
      (void)out.AddColumn(
          {alias + "." + col, table.schema().column(idx).type});
      raw_indexes->push_back(idx);
    }
  }
  return out;
}

/// Binding-table schema: one int64 column per variable.
inline storage::Schema BindingSchema(const std::vector<std::string>& vars) {
  storage::Schema s;
  for (const auto& v : vars) (void)s.AddColumn({v, LogicalType::kInt64});
  return s;
}

/// A per-base-row validity bitmap with shared storage: either empty (no
/// filter — every row passes) or one byte per base-table row (1 == pass).
/// The payload is shared so a ScanCache hit replays an earlier query's
/// bitmap without copying it, and the accessors mirror the
/// std::vector<uint8_t> the expansion loops were written against.
class SharedBitmap {
 public:
  using Ptr = std::shared_ptr<const std::vector<uint8_t>>;

  SharedBitmap() = default;
  explicit SharedBitmap(Ptr data) : data_(std::move(data)) {}

  bool empty() const { return data_ == nullptr || data_->empty(); }
  uint8_t operator[](uint64_t i) const { return (*data_)[i]; }
  size_t size() const { return data_ == nullptr ? 0 : data_->size(); }
  const Ptr& data() const { return data_; }

 private:
  Ptr data_;
};

/// Evaluates `filter` once per row of `table` into a validity bitmap
/// (empty when there is no filter). Expansion-style operators consult the
/// bitmap per adjacency entry, turning per-expansion expression evaluation
/// into a single table pass. The pipeline engine computes bitmaps during
/// single-threaded operator Prepare, so workers only do bitmap loads.
///
/// Two acceleration layers, both semantics-preserving (exec_common.cc):
/// the predicate is lowered to vectorized kernels when
/// ExecutionOptions::vectorized_kernels allows and the tree is lowerable
/// (row-at-a-time fallback otherwise), and the finished bitmap is
/// published to the cross-query ScanCache ("bitmap|..." namespace) so
/// repeated expansions replay it instead of re-evaluating.
Result<SharedBitmap> FilterBitmap(const storage::TablePtr& table,
                                  const storage::ExprPtr& filter,
                                  ExecutionContext* ctx);

/// Three-way ORDER BY key comparison: the single source of truth for sort
/// semantics (Value comparison incl. null ordering, per-key direction) in
/// BOTH engines — SortTableByKeys below (materializing ORDER BY) and the
/// pipeline engine's TopKSink. `a` / `b` map a key index to that row's
/// key Value; template accessors so the O(n log n) sort paths inline the
/// loads. Returns <0 / 0 / >0; ties are the caller's to break (stable
/// sort order, or the pipeline's (morsel, row) sequence).
template <typename AValueAt, typename BValueAt>
int CompareSortKeyValues(const std::vector<plan::SortKey>& keys,
                         const AValueAt& a, const BValueAt& b) {
  for (size_t i = 0; i < keys.size(); ++i) {
    int c = a(i).Compare(b(i));
    if (c != 0) return keys[i].ascending ? c : -c;
  }
  return 0;
}

/// ORDER BY over a materialized table (stable sort; charges the full row
/// count). Shared by both engines so their comparator semantics — null
/// ordering, multi-key tie-breaking — can never diverge.
inline Result<storage::TablePtr> SortTableByKeys(
    const std::vector<plan::SortKey>& keys, storage::TablePtr child,
    ExecutionContext* ctx) {
  std::vector<size_t> key_cols;
  for (const auto& k : keys) {
    RELGO_ASSIGN_OR_RETURN(size_t idx,
                           child->schema().GetColumnIndex(k.column));
    key_cols.push_back(idx);
  }
  std::vector<uint64_t> sel(child->num_rows());
  std::iota(sel.begin(), sel.end(), 0);
  if (ctx->options().vectorized_kernels) {
    // Typed comparator: payload-span reads instead of boxing two Values
    // per comparison; sign-identical (vector::TypedColumnCompare). With
    // dictionary encoding on, string keys sharing a sorted dictionary
    // compare int32 codes instead of bytes.
    const bool use_dict = ctx->options().dictionary_encoding;
    std::vector<const storage::Column*> kc;
    for (size_t idx : key_cols) kc.push_back(&child->column(idx));
    std::stable_sort(sel.begin(), sel.end(), [&](uint64_t a, uint64_t b) {
      for (size_t i = 0; i < keys.size(); ++i) {
        int c = vector::TypedColumnCompare(*kc[i], a, *kc[i], b, use_dict);
        if (c != 0) return keys[i].ascending ? c < 0 : c > 0;
      }
      return false;
    });
  } else {
    std::stable_sort(sel.begin(), sel.end(), [&](uint64_t a, uint64_t b) {
      return CompareSortKeyValues(
                 keys,
                 [&](size_t i) { return child->GetValue(a, key_cols[i]); },
                 [&](size_t i) { return child->GetValue(b, key_cols[i]); }) <
             0;
    });
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  return GatherTable(*child, sel, child->name());
}

/// LIMIT over a materialized table; pass-through (uncharged) when the
/// limit is absent or not reached. Shared by both engines.
inline Result<storage::TablePtr> LimitTableRows(int64_t limit,
                                                storage::TablePtr child,
                                                ExecutionContext* ctx) {
  if (limit < 0 || static_cast<uint64_t>(limit) >= child->num_rows()) {
    return child;
  }
  std::vector<uint64_t> sel(static_cast<size_t>(limit));
  std::iota(sel.begin(), sel.end(), 0);
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  return GatherTable(*child, sel, child->name());
}

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_EXEC_COMMON_H_
