#include "exec/executor.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/fault.h"
#include "common/hash.h"
#include "exec/exec_common.h"
#include "exec/join_hash_table.h"
#include "exec/naive_matcher.h"
#include "exec/scan_cache.h"
#include "exec/vector/compiled_expr.h"
#include "exec/vector/typed_keys.h"

namespace relgo {
namespace exec {

using plan::OpKind;
using plan::PhysicalOp;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TablePtr;

namespace {

// ---------------------------------------------------------------------------
// Small helpers (shared ones live in exec/exec_common.h)
// ---------------------------------------------------------------------------

Result<size_t> ColumnIndex(const Table& t, const std::string& name) {
  return t.schema().GetColumnIndex(name);
}

/// The selection vector of a filtered base-table scan, consulting the
/// cross-query scan cache when one is attached: a hit replays the row ids
/// an earlier query selected under the same (table, predicate) signature
/// and table version; a miss evaluates the (already bound) filter and
/// publishes the result. `cache_kind` is "scan" / "vscan" — it must match
/// the pipeline engine's keys so both engines share entries. Returns
/// shared storage (the cache entry itself on a hit — no per-query copy).
Result<ScanCache::SelectionPtr> FilteredSelection(
    const storage::TablePtr& table, const storage::ExprPtr& bound_filter,
    const storage::ExprPtr& plan_filter, const char* cache_kind,
    ExecutionContext* ctx) {
  ScanCache* cache =
      bound_filter != nullptr ? ctx->scan_cache() : nullptr;
  std::string key;
  uint64_t version = 0;
  if (cache != nullptr) {
    key = ScanCache::Key(cache_kind, table->name(), plan_filter);
    version = table->version();
    if (ScanCache::SelectionPtr cached = cache->Get(key, version)) {
      ctx->CountScanCacheHit();
      return cached;
    }
  }
  auto sel = std::make_shared<std::vector<uint64_t>>();
  sel->reserve(table->num_rows());
  // Kernel path: lower the bound predicate once and scan typed payload
  // spans (bit-identical to EvaluateBool); row-at-a-time fallback for
  // trees outside the lowerable subset or with the option off.
  std::unique_ptr<vector::CompiledPredicate> compiled;
  if (bound_filter != nullptr && ctx->options().vectorized_kernels) {
    compiled = vector::CompiledPredicate::Compile(
        *bound_filter, table->schema(), table.get(),
        ctx->options().dictionary_encoding);
  }
  if (compiled != nullptr) {
    compiled->FilterTable(*table, 0, table->num_rows(), sel.get());
  } else {
    for (uint64_t r = 0; r < table->num_rows(); ++r) {
      if (!bound_filter || bound_filter->EvaluateBool(*table, r)) {
        sel->push_back(r);
      }
    }
  }
  if (cache != nullptr) {
    // Deferred publication (see ExecutionContext): the entry is complete,
    // but it only becomes visible to other queries if this one succeeds.
    RELGO_RETURN_NOT_OK(
        fault::MaybeInject(fault::Site::kScanCachePublish));
    ctx->QueuePutSelection(std::move(key), version, sel);
  }
  return ScanCache::SelectionPtr(std::move(sel));
}

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

Result<TablePtr> ExecScanTable(const plan::PhysScanTable& op,
                               ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(auto table, ctx->catalog().GetTable(op.table));
  // Bind a clone: the plan may share the filter tree with its query, and
  // concurrent executions must not race on Bind's resolved indexes.
  storage::ExprPtr filter = op.filter ? op.filter->Clone() : nullptr;
  if (filter) RELGO_RETURN_NOT_OK(filter->Bind(table->schema()));

  std::vector<int> raw_indexes;
  Schema schema = ScanSchema(*table, op.alias, op.projected_columns,
                             op.emit_rowid, &raw_indexes);
  auto out = std::make_shared<Table>(op.alias, schema);

  RELGO_ASSIGN_OR_RETURN(
      ScanCache::SelectionPtr sel_ptr,
      FilteredSelection(table, filter, op.filter, "scan", ctx));
  const std::vector<uint64_t>& sel = *sel_ptr;
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));

  size_t out_col = 0;
  if (op.emit_rowid) {
    Column& rid = out->column(out_col++);
    rid.Reserve(sel.size());
    for (uint64_t r : sel) rid.AppendInt(static_cast<int64_t>(r));
  }
  for (int raw : raw_indexes) {
    out->column(out_col++) = table->column(raw).Gather(sel);
  }
  out->FinishBulkAppend();
  return out;
}

Result<TablePtr> ExecFilter(const plan::PhysFilter& op, TablePtr child,
                            ExecutionContext* ctx) {
  if (!op.predicate) return child;
  storage::ExprPtr predicate = op.predicate->Clone();  // see ExecScanTable
  RELGO_RETURN_NOT_OK(predicate->Bind(child->schema()));
  std::vector<uint64_t> sel;
  std::unique_ptr<vector::CompiledPredicate> compiled;
  if (ctx->options().vectorized_kernels) {
    compiled = vector::CompiledPredicate::Compile(
        *predicate, child->schema(), child.get(),
        ctx->options().dictionary_encoding);
  }
  if (compiled != nullptr) {
    compiled->FilterTable(*child, 0, child->num_rows(), &sel);
  } else {
    for (uint64_t r = 0; r < child->num_rows(); ++r) {
      if (predicate->EvaluateBool(*child, r)) sel.push_back(r);
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  return GatherTable(*child, sel, child->name());
}

Result<TablePtr> ExecProject(const plan::PhysProject& op, TablePtr child,
                             ExecutionContext* ctx) {
  Schema schema;
  std::vector<size_t> src;
  for (const auto& [from, to] : op.columns) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(*child, from));
    RELGO_RETURN_NOT_OK(
        schema.AddColumn({to, child->schema().column(idx).type}));
    src.push_back(idx);
  }
  auto out = std::make_shared<Table>(child->name(), schema);
  for (size_t c = 0; c < src.size(); ++c) {
    out->column(c) = child->column(src[c]);
  }
  out->FinishBulkAppend();
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(out->num_rows()));
  return out;
}

}  // namespace

Result<TablePtr> HashJoinTables(const Table& left, const Table& right,
                                const std::vector<std::string>& left_keys,
                                const std::vector<std::string>& right_keys,
                                const std::vector<std::string>& drop_right,
                                ExecutionContext* ctx) {
  JoinHashTable ht;
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kHashBuild));
  RELGO_RETURN_NOT_OK(
      ht.Build(right, right_keys, ctx->options().dictionary_encoding));
  std::vector<size_t> probe_cols;
  for (const auto& k : left_keys) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(left, k));
    probe_cols.push_back(idx);
  }
  // Probe through payload spans hoisted once instead of Column::int_at
  // per (row, key). The planner's joins are int64 binding columns and
  // take the typed-span path; string keys (dictionary codes or payload
  // fallback) go through the bound ProbeView.
  const bool string_keys = ht.has_string_keys();
  JoinHashTable::ProbeView view;
  std::vector<const int64_t*> probe_keys;
  if (string_keys) {
    RELGO_RETURN_NOT_OK(ht.BindProbe(left, probe_cols, &view));
  } else {
    for (size_t idx : probe_cols) {
      probe_keys.push_back(left.column(idx).data_int64());
    }
  }

  std::vector<uint64_t> left_sel, right_sel;
  std::vector<uint64_t> matches;
  for (uint64_t r = 0; r < left.num_rows(); ++r) {
    matches.clear();
    if (string_keys) {
      ht.Probe(view, r, &matches);
    } else {
      ht.Probe(probe_keys.data(), r, &matches);
    }
    for (uint64_t b : matches) {
      left_sel.push_back(r);
      right_sel.push_back(b);
    }
    if ((r & kInterruptCheckMask) == 0) {
      RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(left_sel.size()));

  // Output schema: left columns then right columns minus drop_right.
  Schema schema;
  for (const auto& def : left.schema().columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }
  std::vector<size_t> right_cols;
  for (size_t c = 0; c < right.schema().num_columns(); ++c) {
    const auto& def = right.schema().column(c);
    bool dropped = std::find(drop_right.begin(), drop_right.end(),
                             def.name) != drop_right.end();
    if (dropped || schema.FindColumn(def.name) >= 0) continue;
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
    right_cols.push_back(c);
  }

  auto out = std::make_shared<Table>("join", schema);
  size_t oc = 0;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    out->column(oc++) = left.column(c).Gather(left_sel);
  }
  for (size_t c : right_cols) {
    out->column(oc++) = right.column(c).Gather(right_sel);
  }
  out->FinishBulkAppend();
  return out;
}

namespace {

Result<TablePtr> ExecHashJoin(const plan::PhysHashJoin& op, TablePtr left,
                              TablePtr right, ExecutionContext* ctx) {
  return HashJoinTables(*left, *right, op.left_keys, op.right_keys, {}, ctx);
}

Result<TablePtr> ExecRidLookupJoin(const plan::PhysRidLookupJoin& op,
                                   TablePtr child, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("RID_JOIN requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(size_t rid_col,
                         ColumnIndex(*child, op.edge_rowid_column));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op.edge_label);
  int vlabel = op.dir == graph::Direction::kOut
                   ? ctx->mapping().FindVertexLabel(em.src_label)
                   : ctx->mapping().FindVertexLabel(em.dst_label);
  RELGO_ASSIGN_OR_RETURN(auto vtable, ctx->VertexTable(vlabel));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(vtable, op.vertex_filter, ctx));

  std::vector<int> raw_indexes;
  Schema vschema = ScanSchema(*vtable, op.vertex_alias, op.vertex_columns,
                              op.emit_vertex_rowid, &raw_indexes);
  Schema schema;
  for (const auto& def : child->schema().columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }
  for (const auto& def : vschema.columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }

  std::vector<uint64_t> child_sel, vertex_sel;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    auto edge_row =
        static_cast<uint64_t>(child->column(rid_col).int_at(r));
    uint64_t v = op.dir == graph::Direction::kOut
                     ? ctx->index().EdgeSource(op.edge_label, edge_row)
                     : ctx->index().EdgeTarget(op.edge_label, edge_row);
    if (!bitmap.empty() && !bitmap[v]) continue;
    child_sel.push_back(r);
    vertex_sel.push_back(v);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(child_sel.size()));

  auto out = std::make_shared<Table>("rid_join", schema);
  size_t oc = 0;
  for (size_t c = 0; c < child->num_columns(); ++c) {
    out->column(oc++) = child->column(c).Gather(child_sel);
  }
  if (op.emit_vertex_rowid) {
    Column& rid = out->column(oc++);
    rid.Reserve(vertex_sel.size());
    for (uint64_t v : vertex_sel) rid.AppendInt(static_cast<int64_t>(v));
  }
  for (int raw : raw_indexes) {
    out->column(oc++) = vtable->column(raw).Gather(vertex_sel);
  }
  out->FinishBulkAppend();
  return out;
}

Result<TablePtr> ExecRidExpandJoin(const plan::PhysRidExpandJoin& op,
                                   TablePtr child, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("RID_EXPAND_JOIN requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(size_t rid_col,
                         ColumnIndex(*child, op.vertex_rowid_column));
  RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op.edge_label));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(etable, op.edge_filter, ctx));

  std::vector<int> raw_indexes;
  Schema eschema = ScanSchema(*etable, op.edge_alias, op.edge_columns,
                              op.emit_edge_rowid, &raw_indexes);
  Schema schema;
  for (const auto& def : child->schema().columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }
  for (const auto& def : eschema.columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }

  std::vector<uint64_t> child_sel, edge_sel;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    auto v = static_cast<uint64_t>(child->column(rid_col).int_at(r));
    graph::AdjacencyList adj = ctx->index().Neighbors(op.edge_label, op.dir, v);
    for (size_t i = 0; i < adj.size; ++i) {
      uint64_t e = adj.edges[i];
      if (!bitmap.empty() && !bitmap[e]) continue;
      child_sel.push_back(r);
      edge_sel.push_back(e);
    }
    if ((r & kInterruptCheckMask) == 0) {
      RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(child_sel.size()));

  auto out = std::make_shared<Table>("rid_expand", schema);
  size_t oc = 0;
  for (size_t c = 0; c < child->num_columns(); ++c) {
    out->column(oc++) = child->column(c).Gather(child_sel);
  }
  if (op.emit_edge_rowid) {
    Column& rid = out->column(oc++);
    rid.Reserve(edge_sel.size());
    for (uint64_t e : edge_sel) rid.AppendInt(static_cast<int64_t>(e));
  }
  for (int raw : raw_indexes) {
    out->column(oc++) = etable->column(raw).Gather(edge_sel);
  }
  out->FinishBulkAppend();
  return out;
}

/// Group-by key wrapper with Value-based equality.
struct GroupKey {
  std::vector<Value> values;
  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!(values[i] == other.values[i])) return false;
    }
    return true;
  }
};
struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k.values) h = HashCombine(h, v.Hash());
    return h;
  }
};

Result<TablePtr> ExecHashAggregate(const plan::PhysHashAggregate& op,
                                   TablePtr child, ExecutionContext* ctx) {
  std::vector<size_t> group_cols;
  for (const auto& g : op.group_by) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(*child, g));
    group_cols.push_back(idx);
  }
  std::vector<int> agg_cols;
  for (const auto& a : op.aggregates) {
    if (a.input_column.empty()) {
      agg_cols.push_back(-1);
    } else {
      RELGO_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(*child, a.input_column));
      agg_cols.push_back(static_cast<int>(idx));
    }
  }

  struct AggState {
    int64_t count = 0;
    Value min, max;
    double sum = 0;
    int64_t isum = 0;
  };
  std::unordered_map<GroupKey, std::vector<AggState>, GroupKeyHash> groups;
  std::vector<GroupKey> order;  // first-seen order for determinism
  // Typed fast path (exec/vector/typed_keys.h): byte-encoded keys and
  // span-read aggregate inputs, no Value boxing per row. Falls back to
  // the boxed maps when disabled or when a key type is not
  // byte-encodable (doubles).
  std::unordered_map<vector::EncodedGroupKey, std::vector<AggState>,
                     vector::EncodedGroupKeyHash>
      egroups;
  std::vector<const vector::EncodedGroupKey*> eorder;  // first-seen order
  std::unique_ptr<vector::KeyEncoder> encoder;
  if (ctx->options().vectorized_kernels) {
    std::vector<LogicalType> key_types;
    for (size_t c : group_cols) {
      key_types.push_back(child->schema().column(c).type);
    }
    encoder = vector::KeyEncoder::Make(key_types,
                                       ctx->options().dictionary_encoding);
  }

  if (encoder != nullptr) {
    std::vector<const Column*> key_cols;
    for (size_t c : group_cols) key_cols.push_back(&child->column(c));
    std::vector<vector::AggColumnView> views(op.aggregates.size());
    for (size_t a = 0; a < op.aggregates.size(); ++a) {
      if (agg_cols[a] >= 0) {
        views[a] = vector::AggColumnView(
            &child->column(static_cast<size_t>(agg_cols[a])));
      }
    }
    vector::EncodedGroupKey key;
    for (uint64_t r = 0; r < child->num_rows(); ++r) {
      encoder->Encode(key_cols.data(), r, &key);
      auto it = egroups.find(key);
      if (it == egroups.end()) {
        it = egroups
                 .emplace(key, std::vector<AggState>(op.aggregates.size()))
                 .first;
        eorder.push_back(&it->first);  // unordered_map keys are node-stable
      }
      for (size_t a = 0; a < op.aggregates.size(); ++a) {
        AggState& st = it->second[a];
        st.count += 1;
        if (agg_cols[a] >= 0) views[a].Update(r, &st);
      }
    }
  } else {
    for (uint64_t r = 0; r < child->num_rows(); ++r) {
      GroupKey key;
      key.values.reserve(group_cols.size());
      for (size_t c : group_cols) key.values.push_back(child->GetValue(r, c));
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, std::vector<AggState>(op.aggregates.size()))
                 .first;
        order.push_back(key);
      }
      for (size_t a = 0; a < op.aggregates.size(); ++a) {
        AggState& st = it->second[a];
        st.count += 1;
        if (agg_cols[a] >= 0) {
          Value v = child->GetValue(r, static_cast<size_t>(agg_cols[a]));
          if (!v.is_null()) {
            if (st.min.is_null() || v < st.min) st.min = v;
            if (st.max.is_null() || st.max < v) st.max = v;
            if (v.type() == LogicalType::kInt64) st.isum += v.int_value();
            if (v.type() == LogicalType::kDouble) st.sum += v.double_value();
          }
        }
      }
    }
  }

  Schema schema;
  for (size_t g = 0; g < op.group_by.size(); ++g) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(
        {op.group_by[g], child->schema().column(group_cols[g]).type}));
  }
  for (size_t a = 0; a < op.aggregates.size(); ++a) {
    LogicalType type = LogicalType::kInt64;
    if (op.aggregates[a].func != plan::AggFunc::kCount && agg_cols[a] >= 0) {
      type = child->schema().column(static_cast<size_t>(agg_cols[a])).type;
    }
    RELGO_RETURN_NOT_OK(
        schema.AddColumn({op.aggregates[a].output_name, type}));
  }

  auto out = std::make_shared<Table>("aggregate", schema);
  // SQL semantics: a global aggregate (no GROUP BY) over empty input still
  // yields one row (COUNT = 0, MIN/MAX/SUM = NULL).
  if (op.group_by.empty() && order.empty() && eorder.empty()) {
    std::vector<Value> row;
    for (const auto& a : op.aggregates) {
      row.push_back(a.func == plan::AggFunc::kCount ? Value::Int(0)
                                                    : Value::Null());
    }
    RELGO_RETURN_NOT_OK(out->AppendRow(row));
    RELGO_RETURN_NOT_OK(ctx->ChargeRows(1));
    return out;
  }
  auto emit = [&](std::vector<Value> row,
                  const std::vector<AggState>& states) -> Status {
    for (size_t a = 0; a < op.aggregates.size(); ++a) {
      const AggState& st = states[a];
      switch (op.aggregates[a].func) {
        case plan::AggFunc::kCount:
          row.push_back(Value::Int(st.count));
          break;
        case plan::AggFunc::kMin:
          row.push_back(st.min);
          break;
        case plan::AggFunc::kMax:
          row.push_back(st.max);
          break;
        case plan::AggFunc::kSum: {
          LogicalType type = schema.column(op.group_by.size() + a).type;
          row.push_back(type == LogicalType::kDouble ? Value::Double(st.sum)
                                                     : Value::Int(st.isum));
          break;
        }
      }
    }
    return out->AppendRow(row);
  };
  if (encoder != nullptr) {
    std::vector<Value> key_vals;
    for (const auto* ekey : eorder) {
      encoder->Decode(*ekey, &key_vals);
      RELGO_RETURN_NOT_OK(emit(key_vals, egroups.at(*ekey)));
    }
  } else {
    for (const auto& key : order) {
      RELGO_RETURN_NOT_OK(emit(key.values, groups[key]));
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(out->num_rows()));
  return out;
}

Result<TablePtr> ExecOrderBy(const plan::PhysOrderBy& op, TablePtr child,
                             ExecutionContext* ctx) {
  return SortTableByKeys(op.keys, std::move(child), ctx);
}

Result<TablePtr> ExecLimit(const plan::PhysLimit& op, TablePtr child,
                           ExecutionContext* ctx) {
  return LimitTableRows(op.limit, std::move(child), ctx);
}

// ---------------------------------------------------------------------------
// Graph (binding table) operators
// ---------------------------------------------------------------------------

Result<TablePtr> ExecScanVertex(const plan::PhysScanVertex& op,
                                ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(auto vtable, ctx->VertexTable(op.vertex_label));
  storage::ExprPtr filter = op.filter ? op.filter->Clone() : nullptr;
  if (filter) RELGO_RETURN_NOT_OK(filter->Bind(vtable->schema()));
  auto out = std::make_shared<Table>("match", BindingSchema({op.var}));
  RELGO_ASSIGN_OR_RETURN(
      ScanCache::SelectionPtr sel,
      FilteredSelection(vtable, filter, op.filter, "vscan", ctx));
  Column& col = out->column(0);
  col.Reserve(sel->size());
  for (uint64_t r : *sel) col.AppendInt(static_cast<int64_t>(r));
  out->FinishBulkAppend();
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(out->num_rows()));
  return out;
}

/// Shared emit path for expand-style operators: gathers child rows by
/// `child_sel` and appends freshly built binding columns.
Result<TablePtr> BuildExpandedTable(
    const Table& child, const std::vector<uint64_t>& child_sel,
    const std::vector<std::pair<std::string, std::vector<int64_t>>>& new_cols,
    ExecutionContext* ctx) {
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(child_sel.size()));
  Schema schema;
  for (const auto& def : child.schema().columns()) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(def));
  }
  for (const auto& [name, _] : new_cols) {
    RELGO_RETURN_NOT_OK(schema.AddColumn({name, LogicalType::kInt64}));
  }
  auto out = std::make_shared<Table>("match", schema);
  size_t oc = 0;
  for (size_t c = 0; c < child.num_columns(); ++c) {
    out->column(oc++) = child.column(c).Gather(child_sel);
  }
  for (const auto& [_, vals] : new_cols) {
    Column& col = out->column(oc++);
    col.Reserve(vals.size());
    for (int64_t v : vals) col.AppendInt(v);
  }
  out->FinishBulkAppend();
  return out;
}

Result<TablePtr> ExecExpandEdge(const plan::PhysExpandEdge& op, TablePtr child,
                                ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("EXPAND_EDGE requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(size_t from_col, ColumnIndex(*child, op.from_var));
  RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op.edge_label));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(etable, op.edge_filter, ctx));
  std::vector<uint64_t> child_sel;
  std::vector<int64_t> edge_vals;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    auto v = static_cast<uint64_t>(child->column(from_col).int_at(r));
    graph::AdjacencyList adj = ctx->index().Neighbors(op.edge_label, op.dir, v);
    for (size_t i = 0; i < adj.size; ++i) {
      uint64_t e = adj.edges[i];
      if (!bitmap.empty() && !bitmap[e]) continue;
      child_sel.push_back(r);
      edge_vals.push_back(static_cast<int64_t>(e));
    }
    if ((r & kInterruptCheckMask) == 0) {
      RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    }
  }
  return BuildExpandedTable(*child, child_sel, {{op.edge_var, edge_vals}},
                            ctx);
}

Result<TablePtr> ExecGetVertex(const plan::PhysGetVertex& op, TablePtr child,
                               ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("GET_VERTEX requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(size_t edge_col, ColumnIndex(*child, op.edge_var));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op.edge_label);
  int vlabel = op.dir == graph::Direction::kOut
                   ? ctx->mapping().FindVertexLabel(em.dst_label)
                   : ctx->mapping().FindVertexLabel(em.src_label);
  RELGO_ASSIGN_OR_RETURN(auto vtable, ctx->VertexTable(vlabel));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(vtable, op.vertex_filter, ctx));
  std::vector<uint64_t> child_sel;
  std::vector<int64_t> vertex_vals;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    auto e = static_cast<uint64_t>(child->column(edge_col).int_at(r));
    uint64_t v = op.dir == graph::Direction::kOut
                     ? ctx->index().EdgeTarget(op.edge_label, e)
                     : ctx->index().EdgeSource(op.edge_label, e);
    if (!bitmap.empty() && !bitmap[v]) continue;
    child_sel.push_back(r);
    vertex_vals.push_back(static_cast<int64_t>(v));
  }
  return BuildExpandedTable(*child, child_sel, {{op.to_var, vertex_vals}},
                            ctx);
}

Result<TablePtr> ExecExpand(const plan::PhysExpand& op, TablePtr child,
                            ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(size_t from_col, ColumnIndex(*child, op.from_var));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op.edge_label);
  int to_label = op.dir == graph::Direction::kOut
                     ? ctx->mapping().FindVertexLabel(em.dst_label)
                     : ctx->mapping().FindVertexLabel(em.src_label);
  RELGO_ASSIGN_OR_RETURN(auto to_table, ctx->VertexTable(to_label));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(to_table, op.vertex_filter, ctx));

  std::vector<uint64_t> child_sel;
  std::vector<int64_t> to_vals;
  std::vector<int64_t> edge_vals;
  bool want_edge = !op.edge_var.empty();

  if (op.use_index && ctx->has_index()) {
    for (uint64_t r = 0; r < child->num_rows(); ++r) {
      auto v = static_cast<uint64_t>(child->column(from_col).int_at(r));
      graph::AdjacencyList adj =
          ctx->index().Neighbors(op.edge_label, op.dir, v);
      for (size_t i = 0; i < adj.size; ++i) {
        uint64_t nbr = adj.neighbors[i];
        if (!bitmap.empty() && !bitmap[nbr]) continue;
        child_sel.push_back(r);
        to_vals.push_back(static_cast<int64_t>(nbr));
        if (want_edge) edge_vals.push_back(static_cast<int64_t>(adj.edges[i]));
      }
      if ((r & kInterruptCheckMask) == 0) {
        RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
      }
    }
  } else {
    // Index-free reduction (RelGoHash): hash join against the edge relation
    // on the FK key, then a PK-index lookup into the target vertex relation.
    RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op.edge_label));
    int from_label = op.dir == graph::Direction::kOut
                         ? ctx->mapping().FindVertexLabel(em.src_label)
                         : ctx->mapping().FindVertexLabel(em.dst_label);
    RELGO_ASSIGN_OR_RETURN(auto from_table, ctx->VertexTable(from_label));
    const graph::VertexMapping& from_vm =
        ctx->mapping().vertex_mapping(from_label);
    const graph::VertexMapping& to_vm = ctx->mapping().vertex_mapping(to_label);

    const std::string& from_fk = op.dir == graph::Direction::kOut
                                     ? em.src_key_column
                                     : em.dst_key_column;
    const std::string& to_fk = op.dir == graph::Direction::kOut
                                   ? em.dst_key_column
                                   : em.src_key_column;
    const storage::Column* from_fk_col = etable->FindColumn(from_fk);
    const storage::Column* to_fk_col = etable->FindColumn(to_fk);
    const storage::Column* from_key_col =
        from_table->FindColumn(from_vm.key_column);
    if (from_fk_col == nullptr || to_fk_col == nullptr ||
        from_key_col == nullptr) {
      return Status::Internal("bad RGMapping columns in EXPAND(hash)");
    }
    RELGO_ASSIGN_OR_RETURN(const auto* to_key_index,
                           to_table->GetKeyIndex(to_vm.key_column));
    // Standard hash join with build-side selection: hash the smaller of
    // (binding table, edge relation) and probe with the other.
    auto emit = [&](uint64_t r, uint64_t e) {
      auto to_it = to_key_index->find(to_fk_col->int_at(e));
      if (to_it == to_key_index->end()) return;
      uint64_t nbr = to_it->second;
      if (!bitmap.empty() && !bitmap[nbr]) return;
      child_sel.push_back(r);
      to_vals.push_back(static_cast<int64_t>(nbr));
      if (want_edge) edge_vals.push_back(static_cast<int64_t>(e));
    };
    if (child->num_rows() < etable->num_rows()) {
      // Build on the bindings, stream the edge relation.
      std::unordered_map<int64_t, std::vector<uint64_t>> build;
      build.reserve(child->num_rows() * 2);
      for (uint64_t r = 0; r < child->num_rows(); ++r) {
        auto v = static_cast<uint64_t>(child->column(from_col).int_at(r));
        build[from_key_col->int_at(v)].push_back(r);
      }
      for (uint64_t e = 0; e < etable->num_rows(); ++e) {
        auto it = build.find(from_fk_col->int_at(e));
        if (it == build.end()) continue;
        for (uint64_t r : it->second) emit(r, e);
        if ((e & kInterruptCheckMask) == 0) {
          RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
        }
      }
    } else {
      // Build: FK value -> edge rows; stream the bindings.
      std::unordered_map<int64_t, std::vector<uint64_t>> build;
      build.reserve(etable->num_rows() * 2);
      for (uint64_t e = 0; e < etable->num_rows(); ++e) {
        build[from_fk_col->int_at(e)].push_back(e);
      }
      for (uint64_t r = 0; r < child->num_rows(); ++r) {
        auto v = static_cast<uint64_t>(child->column(from_col).int_at(r));
        auto it = build.find(from_key_col->int_at(v));
        if (it == build.end()) continue;
        for (uint64_t e : it->second) emit(r, e);
        if ((r & kInterruptCheckMask) == 0) {
          RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
        }
      }
    }
  }

  std::vector<std::pair<std::string, std::vector<int64_t>>> new_cols;
  new_cols.emplace_back(op.to_var, std::move(to_vals));
  if (want_edge) new_cols.emplace_back(op.edge_var, std::move(edge_vals));
  return BuildExpandedTable(*child, child_sel, new_cols, ctx);
}

Result<TablePtr> ExecExpandIntersect(const plan::PhysExpandIntersect& op,
                                     TablePtr child, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument(
        "EXPAND_INTERSECT requires the graph index");
  }
  size_t k = op.from_vars.size();
  std::vector<size_t> from_cols(k);
  for (size_t i = 0; i < k; ++i) {
    RELGO_ASSIGN_OR_RETURN(from_cols[i], ColumnIndex(*child, op.from_vars[i]));
  }
  // The target vertex label (for the optional filter) comes from the first
  // leaf's mapping.
  const graph::EdgeMapping& em0 =
      ctx->mapping().edge_mapping(op.edge_labels[0]);
  int to_label = op.dirs[0] == graph::Direction::kOut
                     ? ctx->mapping().FindVertexLabel(em0.dst_label)
                     : ctx->mapping().FindVertexLabel(em0.src_label);
  RELGO_ASSIGN_OR_RETURN(auto to_table, ctx->VertexTable(to_label));
  RELGO_ASSIGN_OR_RETURN(auto bitmap,
                         FilterBitmap(to_table, op.vertex_filter, ctx));
  bool want_edges = false;
  for (const auto& ev : op.edge_vars) want_edges |= !ev.empty();

  std::vector<uint64_t> child_sel;
  std::vector<int64_t> to_vals;
  std::vector<std::vector<int64_t>> edge_vals(k);

  std::vector<graph::AdjacencyList> lists(k);
  std::vector<size_t> pos(k);
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    for (size_t i = 0; i < k; ++i) {
      auto v = static_cast<uint64_t>(child->column(from_cols[i]).int_at(r));
      lists[i] = ctx->index().Neighbors(op.edge_labels[i], op.dirs[i], v);
      pos[i] = 0;
    }
    // k-way sorted intersection over (possibly duplicated) neighbor runs.
    while (true) {
      bool done = false;
      uint64_t candidate = 0;
      for (size_t i = 0; i < k; ++i) {
        if (pos[i] >= lists[i].size) {
          done = true;
          break;
        }
        candidate = std::max(candidate, lists[i].neighbors[pos[i]]);
      }
      if (done) break;
      bool aligned = true;
      for (size_t i = 0; i < k; ++i) {
        while (pos[i] < lists[i].size &&
               lists[i].neighbors[pos[i]] < candidate) {
          ++pos[i];
        }
        if (pos[i] >= lists[i].size ||
            lists[i].neighbors[pos[i]] != candidate) {
          aligned = false;
        }
      }
      if (!aligned) continue;  // some list advanced past; realign on new max
      // All lists point at `candidate`: collect run lengths (parallel
      // edges) and emit the cross product of edge bindings.
      std::vector<std::pair<size_t, size_t>> runs(k);  // [begin, end)
      for (size_t i = 0; i < k; ++i) {
        size_t b = pos[i];
        while (pos[i] < lists[i].size &&
               lists[i].neighbors[pos[i]] == candidate) {
          ++pos[i];
        }
        runs[i] = {b, pos[i]};
      }
      bool pass = bitmap.empty() || bitmap[candidate] != 0;
      if (pass) {
        // Cross product over runs (usually 1x1x...).
        std::vector<size_t> cursor(k);
        for (size_t i = 0; i < k; ++i) cursor[i] = runs[i].first;
        while (true) {
          child_sel.push_back(r);
          to_vals.push_back(static_cast<int64_t>(candidate));
          for (size_t i = 0; i < k; ++i) {
            edge_vals[i].push_back(
                static_cast<int64_t>(lists[i].edges[cursor[i]]));
          }
          // Advance the mixed-radix cursor.
          size_t i = 0;
          for (; i < k; ++i) {
            if (++cursor[i] < runs[i].second) break;
            cursor[i] = runs[i].first;
          }
          if (i == k) break;
        }
      }
    }
    if ((r & kInterruptCheckMask) == 0) {
      RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    }
  }

  std::vector<std::pair<std::string, std::vector<int64_t>>> new_cols;
  new_cols.emplace_back(op.to_var, std::move(to_vals));
  if (want_edges) {
    for (size_t i = 0; i < k; ++i) {
      if (!op.edge_vars[i].empty()) {
        new_cols.emplace_back(op.edge_vars[i], std::move(edge_vals[i]));
      }
    }
  }
  return BuildExpandedTable(*child, child_sel, new_cols, ctx);
}

Result<TablePtr> ExecEdgeVerify(const plan::PhysEdgeVerify& op, TablePtr child,
                                ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(size_t src_col, ColumnIndex(*child, op.src_var));
  RELGO_ASSIGN_OR_RETURN(size_t dst_col, ColumnIndex(*child, op.dst_var));
  bool want_edge = !op.edge_var.empty();

  std::vector<uint64_t> child_sel;
  std::vector<int64_t> edge_vals;

  if (op.use_index && ctx->has_index()) {
    for (uint64_t r = 0; r < child->num_rows(); ++r) {
      auto s = static_cast<uint64_t>(child->column(src_col).int_at(r));
      auto d = static_cast<uint64_t>(child->column(dst_col).int_at(r));
      graph::AdjacencyList adj =
          ctx->index().Neighbors(op.edge_label, op.dir, s);
      // Sorted by neighbor: binary search the run of `d`. Bag semantics:
      // each parallel edge contributes one output row even when the edge
      // binding itself was trimmed.
      const uint64_t* begin = adj.neighbors;
      const uint64_t* end = adj.neighbors + adj.size;
      const uint64_t* lo = std::lower_bound(begin, end, d);
      for (const uint64_t* p = lo; p != end && *p == d; ++p) {
        child_sel.push_back(r);
        if (want_edge) {
          edge_vals.push_back(static_cast<int64_t>(adj.edges[p - begin]));
        }
      }
      if ((r & kInterruptCheckMask) == 0) {
        RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
      }
    }
  } else {
    // Hash implementation on (src_key, dst_key).
    const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op.edge_label);
    int src_label = ctx->mapping().FindVertexLabel(
        op.dir == graph::Direction::kOut ? em.src_label : em.dst_label);
    int dst_label = ctx->mapping().FindVertexLabel(
        op.dir == graph::Direction::kOut ? em.dst_label : em.src_label);
    RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op.edge_label));
    RELGO_ASSIGN_OR_RETURN(auto stable, ctx->VertexTable(src_label));
    RELGO_ASSIGN_OR_RETURN(auto dtable, ctx->VertexTable(dst_label));
    const storage::Column* skey = stable->FindColumn(
        ctx->mapping().vertex_mapping(src_label).key_column);
    const storage::Column* dkey = dtable->FindColumn(
        ctx->mapping().vertex_mapping(dst_label).key_column);
    const storage::Column* sfk = etable->FindColumn(
        op.dir == graph::Direction::kOut ? em.src_key_column
                                         : em.dst_key_column);
    const storage::Column* dfk = etable->FindColumn(
        op.dir == graph::Direction::kOut ? em.dst_key_column
                                         : em.src_key_column);
    if (child->num_rows() < etable->num_rows()) {
      // Build on the bindings, stream the edge relation.
      std::unordered_map<std::pair<int64_t, int64_t>, std::vector<uint64_t>,
                         PairHash>
          build;
      build.reserve(child->num_rows() * 2);
      for (uint64_t r = 0; r < child->num_rows(); ++r) {
        auto s = static_cast<uint64_t>(child->column(src_col).int_at(r));
        auto d = static_cast<uint64_t>(child->column(dst_col).int_at(r));
        build[{skey->int_at(s), dkey->int_at(d)}].push_back(r);
      }
      for (uint64_t e = 0; e < etable->num_rows(); ++e) {
        auto it = build.find({sfk->int_at(e), dfk->int_at(e)});
        if (it == build.end()) continue;
        for (uint64_t r : it->second) {
          child_sel.push_back(r);
          if (want_edge) edge_vals.push_back(static_cast<int64_t>(e));
        }
      }
    } else {
      std::unordered_map<std::pair<int64_t, int64_t>, std::vector<uint64_t>,
                         PairHash>
          build;
      build.reserve(etable->num_rows() * 2);
      for (uint64_t e = 0; e < etable->num_rows(); ++e) {
        build[{sfk->int_at(e), dfk->int_at(e)}].push_back(e);
      }
      for (uint64_t r = 0; r < child->num_rows(); ++r) {
        auto s = static_cast<uint64_t>(child->column(src_col).int_at(r));
        auto d = static_cast<uint64_t>(child->column(dst_col).int_at(r));
        auto it = build.find({skey->int_at(s), dkey->int_at(d)});
        if (it == build.end()) continue;
        for (uint64_t e : it->second) {
          child_sel.push_back(r);
          if (want_edge) edge_vals.push_back(static_cast<int64_t>(e));
        }
      }
    }
  }

  std::vector<std::pair<std::string, std::vector<int64_t>>> new_cols;
  if (want_edge) new_cols.emplace_back(op.edge_var, std::move(edge_vals));
  return BuildExpandedTable(*child, child_sel, new_cols, ctx);
}

Result<TablePtr> ExecPatternJoin(const plan::PhysPatternJoin& op,
                                 TablePtr left, TablePtr right,
                                 ExecutionContext* ctx) {
  return HashJoinTables(*left, *right, op.common_vars, op.common_vars,
                        op.common_vars, ctx);
}

Result<TablePtr> ExecVertexFilter(const plan::PhysVertexFilter& op,
                                  TablePtr child, ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(size_t var_col, ColumnIndex(*child, op.var));
  storage::TablePtr base;
  if (op.is_edge) {
    RELGO_ASSIGN_OR_RETURN(base, ctx->EdgeTable(op.label));
  } else {
    RELGO_ASSIGN_OR_RETURN(base, ctx->VertexTable(op.label));
  }
  RELGO_ASSIGN_OR_RETURN(auto bitmap, FilterBitmap(base, op.predicate, ctx));
  std::vector<uint64_t> sel;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    auto rid = static_cast<uint64_t>(child->column(var_col).int_at(r));
    if (bitmap.empty() || bitmap[rid]) sel.push_back(r);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  return GatherTable(*child, sel, child->name());
}

Result<TablePtr> ExecNotEqual(const plan::PhysNotEqual& op, TablePtr child,
                              ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(size_t a, ColumnIndex(*child, op.var_a));
  RELGO_ASSIGN_OR_RETURN(size_t b, ColumnIndex(*child, op.var_b));
  std::vector<uint64_t> sel;
  for (uint64_t r = 0; r < child->num_rows(); ++r) {
    if (child->column(a).int_at(r) != child->column(b).int_at(r)) {
      sel.push_back(r);
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  return GatherTable(*child, sel, child->name());
}

Result<TablePtr> ExecScanGraphTable(const plan::PhysScanGraphTable& op,
                                    TablePtr binding, ExecutionContext* ctx) {
  // Resolve var -> (is_edge, label).
  auto resolve = [&](const std::string& var, bool* is_edge,
                     int* label) -> Status {
    for (const auto& [v, l] : op.vertex_var_labels) {
      if (v == var) {
        *is_edge = false;
        *label = l;
        return Status::OK();
      }
    }
    for (const auto& [v, l] : op.edge_var_labels) {
      if (v == var) {
        *is_edge = true;
        *label = l;
        return Status::OK();
      }
    }
    return Status::NotFound("SCAN_GRAPH_TABLE: unknown var '" + var + "'");
  };

  Schema schema;
  struct Source {
    storage::TablePtr base;
    int raw_col = -1;  // -1 == the row id itself
    size_t binding_col = 0;
  };
  std::vector<Source> sources;

  for (const auto& rid_var : op.rowid_passthrough) {
    RELGO_ASSIGN_OR_RETURN(size_t bcol, ColumnIndex(*binding, rid_var));
    RELGO_RETURN_NOT_OK(
        schema.AddColumn({rid_var + ".$rid", LogicalType::kInt64}));
    sources.push_back({nullptr, -1, bcol});
  }
  for (const auto& proj : op.projections) {
    bool is_edge = false;
    int label = -1;
    RELGO_RETURN_NOT_OK(resolve(proj.var, &is_edge, &label));
    storage::TablePtr base;
    if (is_edge) {
      RELGO_ASSIGN_OR_RETURN(base, ctx->EdgeTable(label));
    } else {
      RELGO_ASSIGN_OR_RETURN(base, ctx->VertexTable(label));
    }
    RELGO_ASSIGN_OR_RETURN(size_t bcol, ColumnIndex(*binding, proj.var));
    if (proj.column == "$rid") {
      RELGO_RETURN_NOT_OK(
          schema.AddColumn({proj.output_name, LogicalType::kInt64}));
      sources.push_back({nullptr, -1, bcol});
    } else {
      RELGO_ASSIGN_OR_RETURN(size_t raw,
                             base->schema().GetColumnIndex(proj.column));
      RELGO_RETURN_NOT_OK(schema.AddColumn(
          {proj.output_name, base->schema().column(raw).type}));
      sources.push_back({base, static_cast<int>(raw), bcol});
    }
  }

  auto out = std::make_shared<Table>("graph_table", schema);
  for (size_t s = 0; s < sources.size(); ++s) {
    const Source& src = sources[s];
    Column& col = out->column(s);
    col.Reserve(binding->num_rows());
    const Column& bind_col = binding->column(src.binding_col);
    if (src.raw_col < 0) {
      for (uint64_t r = 0; r < binding->num_rows(); ++r) {
        col.AppendInt(bind_col.int_at(r));
      }
    } else {
      const Column& raw = src.base->column(static_cast<size_t>(src.raw_col));
      for (uint64_t r = 0; r < binding->num_rows(); ++r) {
        col.AppendFrom(raw, static_cast<uint64_t>(bind_col.int_at(r)));
      }
    }
  }
  out->FinishBulkAppend();
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(out->num_rows()));
  return out;
}

}  // namespace

namespace {

Result<TablePtr> RunImpl(const PhysicalOp& op, ExecutionContext* ctx);

/// Dispatch wrapper recording per-operator profiles when enabled. The
/// materializing engine runs each operator exactly once, so invocations is
/// 1 and wall_ms is the operator's subtree wall time; rows_in is read off
/// the children's already-recorded outputs (children finish before their
/// parent is recorded).
Result<TablePtr> RunProfiled(const PhysicalOp& op, ExecutionContext* ctx) {
  if (ctx->profile() == nullptr) return RunImpl(op, ctx);
  Timer timer;
  auto result = RunImpl(op, ctx);
  OperatorProfile prof;
  prof.invocations = 1;
  prof.wall_ms = timer.ElapsedMillis();
  if (result.ok()) prof.rows_out = (*result)->num_rows();
  for (const auto& child : op.children) {
    if (const OperatorProfile* cp = ctx->profile()->Find(child.get())) {
      prof.rows_in += cp->rows_out;
    }
  }
  ctx->profile()->Accumulate(&op, prof);
  return result;
}

Result<TablePtr> RunImpl(const PhysicalOp& op, ExecutionContext* ctx) {
  // Per-operator dispatch is the materializing engine's morsel-boundary
  // analog: both the interrupt check and the fault site live here.
  RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kMorselBoundary));

  // Leaf operators.
  switch (op.kind) {
    case OpKind::kScanTable:
      return ExecScanTable(static_cast<const plan::PhysScanTable&>(op), ctx);
    case OpKind::kScanVertex:
      return ExecScanVertex(static_cast<const plan::PhysScanVertex&>(op),
                            ctx);
    case OpKind::kNaiveMatch:
      return NaiveMatch(static_cast<const plan::PhysNaiveMatch&>(op).pattern,
                        ctx);
    default:
      break;
  }

  // Unary / binary operators: evaluate children first.
  std::vector<TablePtr> inputs;
  inputs.reserve(op.children.size());
  for (const auto& child : op.children) {
    RELGO_ASSIGN_OR_RETURN(auto table, RunProfiled(*child, ctx));
    inputs.push_back(std::move(table));
  }

  switch (op.kind) {
    case OpKind::kFilter:
      return ExecFilter(static_cast<const plan::PhysFilter&>(op), inputs[0],
                        ctx);
    case OpKind::kProject:
      return ExecProject(static_cast<const plan::PhysProject&>(op), inputs[0],
                         ctx);
    case OpKind::kHashJoin:
      return ExecHashJoin(static_cast<const plan::PhysHashJoin&>(op),
                          inputs[0], inputs[1], ctx);
    case OpKind::kRidLookupJoin:
      return ExecRidLookupJoin(
          static_cast<const plan::PhysRidLookupJoin&>(op), inputs[0], ctx);
    case OpKind::kRidExpandJoin:
      return ExecRidExpandJoin(
          static_cast<const plan::PhysRidExpandJoin&>(op), inputs[0], ctx);
    case OpKind::kHashAggregate:
      return ExecHashAggregate(
          static_cast<const plan::PhysHashAggregate&>(op), inputs[0], ctx);
    case OpKind::kOrderBy:
      return ExecOrderBy(static_cast<const plan::PhysOrderBy&>(op), inputs[0],
                         ctx);
    case OpKind::kLimit:
      return ExecLimit(static_cast<const plan::PhysLimit&>(op), inputs[0],
                       ctx);
    case OpKind::kExpandEdge:
      return ExecExpandEdge(static_cast<const plan::PhysExpandEdge&>(op),
                            inputs[0], ctx);
    case OpKind::kGetVertex:
      return ExecGetVertex(static_cast<const plan::PhysGetVertex&>(op),
                           inputs[0], ctx);
    case OpKind::kExpand:
      return ExecExpand(static_cast<const plan::PhysExpand&>(op), inputs[0],
                        ctx);
    case OpKind::kExpandIntersect:
      return ExecExpandIntersect(
          static_cast<const plan::PhysExpandIntersect&>(op), inputs[0], ctx);
    case OpKind::kEdgeVerify:
      return ExecEdgeVerify(static_cast<const plan::PhysEdgeVerify&>(op),
                            inputs[0], ctx);
    case OpKind::kPatternJoin:
      return ExecPatternJoin(static_cast<const plan::PhysPatternJoin&>(op),
                             inputs[0], inputs[1], ctx);
    case OpKind::kVertexFilter:
      return ExecVertexFilter(static_cast<const plan::PhysVertexFilter&>(op),
                              inputs[0], ctx);
    case OpKind::kNotEqual:
      return ExecNotEqual(static_cast<const plan::PhysNotEqual&>(op),
                          inputs[0], ctx);
    case OpKind::kScanGraphTable:
      return ExecScanGraphTable(
          static_cast<const plan::PhysScanGraphTable&>(op), inputs[0], ctx);
    default:
      return Status::NotImplemented(std::string("operator ") +
                                    plan::OpKindName(op.kind));
  }
}

}  // namespace

Result<TablePtr> Executor::Run(const PhysicalOp& op, ExecutionContext* ctx) {
  return RunProfiled(op, ctx);
}

}  // namespace exec
}  // namespace relgo
