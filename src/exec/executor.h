#ifndef RELGO_EXEC_EXECUTOR_H_
#define RELGO_EXEC_EXECUTOR_H_

#include <memory>

#include "exec/context.h"
#include "plan/physical_plan.h"
#include "storage/table.h"

namespace relgo {
namespace exec {

/// Interprets a physical plan tree, materializing each operator's output
/// (operator-at-a-time execution). Binding-table operators (SCAN / EXPAND /
/// EXPAND_INTERSECT / PATTERN_JOIN / ...) produce tables whose int64
/// columns are row ids keyed by pattern variable; relational operators
/// produce ordinary attribute tables.
///
/// Execution enforces the context's row budget and timeout, returning
/// kOutOfMemory / kTimeout errors that benchmark harnesses report as
/// OOM / OT, exactly as the paper's evaluation does.
class Executor {
 public:
  /// Runs `op` to completion and returns the materialized result.
  static Result<storage::TablePtr> Run(const plan::PhysicalOp& op,
                                       ExecutionContext* ctx);
};

/// Hash-joins two materialized tables on int64 key columns (names resolved
/// in each side's schema). Output schema: all left columns followed by all
/// right columns except `drop_right` (used by PATTERN_JOIN to drop
/// duplicated shared variables).
Result<storage::TablePtr> HashJoinTables(
    const storage::Table& left, const storage::Table& right,
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys,
    const std::vector<std::string>& drop_right, ExecutionContext* ctx);

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_EXECUTOR_H_
