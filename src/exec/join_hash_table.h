#ifndef RELGO_EXEC_JOIN_HASH_TABLE_H_
#define RELGO_EXEC_JOIN_HASH_TABLE_H_

#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace relgo {
namespace exec {

/// Composite int64 join-key hash table: hash -> row buckets with exact
/// re-check on probe (collision-safe). Shared by the materializing executor
/// and the pipeline engine's hash-join probe operator. Build is
/// single-threaded; Probe is const and safe to call concurrently.
class JoinHashTable {
 public:
  Status Build(const storage::Table& table,
               const std::vector<std::string>& keys) {
    table_ = &table;
    for (const auto& k : keys) {
      RELGO_ASSIGN_OR_RETURN(size_t idx, table.schema().GetColumnIndex(k));
      if (table.schema().column(idx).type != LogicalType::kInt64) {
        return Status::NotImplemented("hash join requires int64 keys, got " +
                                      k);
      }
      key_cols_.push_back(idx);
    }
    buckets_.reserve(table.num_rows() * 2);
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      buckets_[HashRow(table, r)].push_back(r);
    }
    return Status::OK();
  }

  /// Appends matching build-side rows for probe row (cols `probe_cols` of
  /// `probe`) into `out`.
  void Probe(const storage::Table& probe,
             const std::vector<size_t>& probe_cols, uint64_t row,
             std::vector<uint64_t>* out) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (size_t c : probe_cols) {
      h = HashCombine(h, static_cast<size_t>(probe.column(c).int_at(row)));
    }
    ProbeHash(h, [&](size_t i) { return probe.column(probe_cols[i]).int_at(row); },
              out);
  }

  /// Probe variant over loose columns (pipeline batches).
  void Probe(const storage::Column* const* probe_cols, uint64_t row,
             std::vector<uint64_t>* out) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      h = HashCombine(h, static_cast<size_t>(probe_cols[i]->int_at(row)));
    }
    ProbeHash(h, [&](size_t i) { return probe_cols[i]->int_at(row); }, out);
  }

 private:
  template <typename KeyAt>
  void ProbeHash(size_t h, const KeyAt& key_at,
                 std::vector<uint64_t>* out) const {
    auto it = buckets_.find(h);
    if (it == buckets_.end()) return;
    for (uint64_t build_row : it->second) {
      bool match = true;
      for (size_t i = 0; i < key_cols_.size(); ++i) {
        if (table_->column(key_cols_[i]).int_at(build_row) != key_at(i)) {
          match = false;
          break;
        }
      }
      if (match) out->push_back(build_row);
    }
  }

  size_t HashRow(const storage::Table& t, uint64_t r) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (size_t c : key_cols_) {
      h = HashCombine(h, static_cast<size_t>(t.column(c).int_at(r)));
    }
    return h;
  }

  const storage::Table* table_ = nullptr;
  std::vector<size_t> key_cols_;
  std::unordered_map<size_t, std::vector<uint64_t>> buckets_;
};

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_JOIN_HASH_TABLE_H_
