#ifndef RELGO_EXEC_JOIN_HASH_TABLE_H_
#define RELGO_EXEC_JOIN_HASH_TABLE_H_

#include <algorithm>
#include <array>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace relgo {
namespace exec {

/// Composite int64 join-key hash table: hash -> row buckets with exact
/// re-check on probe (collision-safe). Shared by the materializing executor
/// and the pipeline engine's hash-join probe operator.
///
/// Construction is two-phase so the pipeline engine can build in parallel
/// (partition -> finalize), while Probe stays const and safe to call
/// concurrently:
///
///  1. BeginBuild() resolves the key columns and fixes the partition
///     directory: the bucket space is split into kNumPartitions shards by
///     high hash bits, each shard an independent hash map.
///  2. PartitionRows() is const and thread-safe: each worker scatters the
///     (hash, row) pairs of a disjoint row range into a private
///     BuildPartial, one append-only run per partition.
///  3. FinalizePartition() inserts every partial's entries for ONE
///     partition into that partition's shard. Distinct partitions touch
///     disjoint state, so all kNumPartitions finalize calls can run
///     concurrently. Entries are sorted by row id first, which makes the
///     bucket contents (and therefore probe match order) identical to a
///     sequential 0..n build regardless of how rows were partitioned
///     across workers.
///
/// Build() wraps the three phases into the serial convenience the
/// materializing engine uses.
class JoinHashTable {
 public:
  /// Shard count of the partition directory. Power of two; large enough to
  /// keep 16 workers busy during finalize, small enough that tiny build
  /// sides do not pay directory overhead.
  static constexpr size_t kNumPartitions = 64;

  struct Entry {
    size_t hash;
    uint64_t row;
  };

  /// One worker's scatter output: an append-only (hash, row) run per
  /// partition. No ordering is assumed across (or within) runs —
  /// FinalizePartition sorts by row id before inserting.
  struct BuildPartial {
    std::array<std::vector<Entry>, kNumPartitions> runs;
  };

  /// One resolved build-side key column. int64 keys read the payload
  /// span directly. String keys prefer dictionary codes — one int32
  /// hash/compare per row — when `use_dictionaries` was set at
  /// BeginBuild and the column carries a dictionary; otherwise they
  /// hash and compare the payload bytes (the documented fallback). The
  /// probe side resolves against the build mode, translating through
  /// the build dictionary when its column carries a different or no
  /// dictionary (see BindProbe).
  struct BuildKey {
    LogicalType type = LogicalType::kInt64;
    const int64_t* ints = nullptr;
    const std::string* strs = nullptr;
    const int32_t* codes = nullptr;                   // dict mode only
    const storage::StringDictionary* dict = nullptr;  // dict mode only
  };

  /// Phase 1 of 3: resolves `keys` against the build table and preallocates
  /// the partition directory. The table must outlive the hash table.
  /// Keys must be int64 or string columns; string keys use dictionary
  /// codes when `use_dictionaries` is set and the column has one. Like
  /// the int64 path's null => payload-0 convention, string nulls hash
  /// and compare as their "" payload placeholder.
  Status BeginBuild(const storage::Table& table,
                    const std::vector<std::string>& keys,
                    bool use_dictionaries = true) {
    table_ = &table;
    key_cols_.clear();
    keyspans_.clear();
    build_keys_.clear();
    bool all_int64 = true;
    for (const auto& k : keys) {
      RELGO_ASSIGN_OR_RETURN(size_t idx, table.schema().GetColumnIndex(k));
      const storage::Column& col = table.column(idx);
      BuildKey bk;
      bk.type = col.type();
      if (bk.type == LogicalType::kInt64) {
        bk.ints = col.data_int64();
      } else if (bk.type == LogicalType::kString) {
        all_int64 = false;
        bk.strs = col.data_string();
        if (use_dictionaries && col.dictionary() != nullptr) {
          bk.codes = col.data_codes();
          bk.dict = col.dictionary();
        }
      } else {
        return Status::NotImplemented(
            "hash join requires int64 or string keys, got " + k);
      }
      key_cols_.push_back(idx);
      keyspans_.push_back(bk);
    }
    // Hoist the int64 payload spans once: the engines' typed-span Probe
    // overload and its hash re-check read raw slots instead of going
    // through Column per row. Only populated for all-int64 key sets —
    // the planner's joins (binding columns) are exactly that; string
    // keys go through BindProbe/ProbeView.
    if (all_int64) {
      for (size_t idx : key_cols_) {
        build_keys_.push_back(table.column(idx).data_int64());
      }
    }
    return Status::OK();
  }

  /// Phase 2 of 3: scatters rows [begin, begin + count) into `partial`.
  /// Const and thread-safe over disjoint ranges.
  void PartitionRows(uint64_t begin, uint64_t count,
                     BuildPartial* partial) const {
    for (uint64_t r = begin; r < begin + count; ++r) {
      size_t h = HashRow(r);
      partial->runs[PartitionOf(h)].push_back(Entry{h, r});
    }
  }

  /// Phase 3 of 3: merges every partial's run for partition `p` into shard
  /// `p`. Safe to call concurrently for distinct `p`.
  void FinalizePartition(size_t p, std::vector<BuildPartial>* partials) {
    size_t total = 0;
    for (const BuildPartial& partial : *partials) {
      total += partial.runs[p].size();
    }
    if (total == 0) return;
    // Restore global row order (rows are unique, so a plain sort suffices)
    // so bucket vectors equal the sequential build's — probe emit order is
    // part of the engine-parity contract.
    std::vector<Entry> entries;
    entries.reserve(total);
    for (const BuildPartial& partial : *partials) {
      entries.insert(entries.end(), partial.runs[p].begin(),
                     partial.runs[p].end());
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.row < b.row; });
    auto& shard = shards_[p];
    shard.reserve(total * 2);
    for (const Entry& e : entries) shard[e.hash].push_back(e.row);
  }

  /// Serial convenience: the three phases on the calling thread.
  Status Build(const storage::Table& table,
               const std::vector<std::string>& keys,
               bool use_dictionaries = true) {
    RELGO_RETURN_NOT_OK(BeginBuild(table, keys, use_dictionaries));
    std::vector<BuildPartial> partials(1);
    PartitionRows(0, table.num_rows(), &partials[0]);
    for (size_t p = 0; p < kNumPartitions; ++p) {
      FinalizePartition(p, &partials);
    }
    return Status::OK();
  }

  /// Per-probe-table resolved key spans: bind once per table / batch,
  /// then Probe per row. For a string key, `shared` marks a probe
  /// column carrying the exact build dictionary (codes compare
  /// directly); otherwise the probe string translates through the build
  /// dictionary per row — a miss proves no build row can match.
  struct ProbeView {
    struct Key {
      const int64_t* ints = nullptr;
      const std::string* strs = nullptr;
      const int32_t* codes = nullptr;  // valid when shared
      bool shared = false;
    };
    std::vector<Key> keys;
  };

  /// True when any build key is a string column — the engines then
  /// probe through BindProbe/ProbeView instead of hoisted int64 spans.
  bool has_string_keys() const {
    for (const BuildKey& k : keyspans_) {
      if (k.type == LogicalType::kString) return true;
    }
    return false;
  }

  /// Resolves `probe_cols` of `probe` against the build keys (types must
  /// match pairwise). Templated over the row source: both engines'
  /// probe sides (storage::Table, pipeline Batch) expose column(i).
  template <typename Source>
  Status BindProbe(const Source& probe,
                   const std::vector<size_t>& probe_cols,
                   ProbeView* view) const {
    view->keys.clear();
    for (size_t i = 0; i < probe_cols.size(); ++i) {
      const storage::Column& col = probe.column(probe_cols[i]);
      const BuildKey& bk = keyspans_[i];
      if (col.type() != bk.type) {
        return Status::InvalidArgument("probe/build join key type mismatch");
      }
      ProbeView::Key k;
      if (bk.type == LogicalType::kInt64) {
        k.ints = col.data_int64();
      } else {
        k.strs = col.data_string();
        if (bk.dict != nullptr && col.dictionary() == bk.dict) {
          k.codes = col.data_codes();
          k.shared = true;
        }
      }
      view->keys.push_back(k);
    }
    return Status::OK();
  }

  /// Appends matching build-side rows for probe row `row` of a bound
  /// probe view into `out`.
  void Probe(const ProbeView& view, uint64_t row,
             std::vector<uint64_t>* out) const {
    size_t h = kHashSeed;
    for (size_t i = 0; i < keyspans_.size(); ++i) {
      const BuildKey& bk = keyspans_[i];
      const ProbeView::Key& pk = view.keys[i];
      if (bk.type == LogicalType::kInt64) {
        h = HashCombine(h, static_cast<size_t>(pk.ints[row]));
      } else if (bk.dict != nullptr) {
        int32_t code =
            pk.shared ? pk.codes[row] : bk.dict->Find(pk.strs[row]);
        if (code < 0) return;  // absent from the build dictionary
        h = HashCombine(h, static_cast<size_t>(code));
      } else {
        h = HashCombine(h, TypedHash(pk.strs[row]));
      }
    }
    const Shard& shard = shards_[PartitionOf(h)];
    auto it = shard.find(h);
    if (it == shard.end()) return;
    for (uint64_t build_row : it->second) {
      bool match = true;
      for (size_t i = 0; i < keyspans_.size(); ++i) {
        const BuildKey& bk = keyspans_[i];
        const ProbeView::Key& pk = view.keys[i];
        if (bk.type == LogicalType::kInt64) {
          match = bk.ints[build_row] == pk.ints[row];
        } else if (bk.dict != nullptr && pk.shared) {
          match = bk.codes[build_row] == pk.codes[row];
        } else {
          match = bk.strs[build_row] == pk.strs[row];
        }
        if (!match) break;
      }
      if (match) out->push_back(build_row);
    }
  }

  /// Appends matching build-side rows for probe row (cols `probe_cols` of
  /// `probe`) into `out`. Per-row convenience over BindProbe for int64
  /// keys (bit-identical to the typed-span overload below).
  void Probe(const storage::Table& probe,
             const std::vector<size_t>& probe_cols, uint64_t row,
             std::vector<uint64_t>* out) const {
    size_t h = kHashSeed;
    for (size_t c : probe_cols) {
      h = HashCombine(h, static_cast<size_t>(probe.column(c).int_at(row)));
    }
    ProbeHash(h,
              [&](size_t i) { return probe.column(probe_cols[i]).int_at(row); },
              out);
  }

  /// Typed-span probe: `keys[i]` is the raw int64 payload of the i-th
  /// probe key column, hoisted once per table / batch by the caller (the
  /// hot join loops of both engines). Bit-identical to the overloads
  /// above — int_at reads the same payload the spans expose.
  void Probe(const int64_t* const* keys, uint64_t row,
             std::vector<uint64_t>* out) const {
    size_t h = kHashSeed;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      h = HashCombine(h, static_cast<size_t>(keys[i][row]));
    }
    ProbeHash(h, [&](size_t i) { return keys[i][row]; }, out);
  }

 private:
  using Shard = std::unordered_map<size_t, std::vector<uint64_t>>;

  /// Partition selector. unordered_map consumes the low hash bits for its
  /// bucket index, so the directory uses higher bits to stay uncorrelated.
  static size_t PartitionOf(size_t h) {
    return (h >> 24) & (kNumPartitions - 1);
  }

  template <typename KeyAt>
  void ProbeHash(size_t h, const KeyAt& key_at,
                 std::vector<uint64_t>* out) const {
    const Shard& shard = shards_[PartitionOf(h)];
    auto it = shard.find(h);
    if (it == shard.end()) return;
    for (uint64_t build_row : it->second) {
      bool match = true;
      for (size_t i = 0; i < key_cols_.size(); ++i) {
        if (build_keys_[i][build_row] != key_at(i)) {
          match = false;
          break;
        }
      }
      if (match) out->push_back(build_row);
    }
  }

  size_t HashRow(uint64_t r) const {
    size_t h = kHashSeed;
    for (const BuildKey& k : keyspans_) {
      if (k.type == LogicalType::kInt64) {
        h = HashCombine(h, static_cast<size_t>(k.ints[r]));
      } else if (k.dict != nullptr) {
        h = HashCombine(h, static_cast<size_t>(k.codes[r]));
      } else {
        h = HashCombine(h, TypedHash(k.strs[r]));
      }
    }
    return h;
  }

  const storage::Table* table_ = nullptr;
  std::vector<size_t> key_cols_;
  std::vector<BuildKey> keyspans_;  ///< resolved key spans, one per key
  /// int64 payload spans, populated only for all-int64 key sets (the
  /// planner's joins) — backs the typed-span Probe overload.
  std::vector<const int64_t*> build_keys_;
  std::array<Shard, kNumPartitions> shards_;
};

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_JOIN_HASH_TABLE_H_
