#include "exec/naive_matcher.h"

#include <algorithm>

namespace relgo {
namespace exec {

using pattern::PatternGraph;
using storage::Table;
using storage::TablePtr;

namespace {

/// Recursive backtracking state.
class Backtracker {
 public:
  Backtracker(const PatternGraph& p, ExecutionContext* ctx)
      : p_(p), ctx_(ctx) {}

  Result<TablePtr> Run() {
    // Bind clones of the pattern predicates to their tables once (clones
    // because the pattern shares expression trees with the plan/query and
    // Bind mutates — concurrent executions each bind their own copy).
    vertex_tables_.resize(p_.num_vertices());
    vertex_preds_.resize(p_.num_vertices());
    for (int v = 0; v < p_.num_vertices(); ++v) {
      RELGO_ASSIGN_OR_RETURN(vertex_tables_[v],
                             ctx_->VertexTable(p_.vertex(v).label));
      if (p_.vertex(v).predicate) {
        vertex_preds_[v] = p_.vertex(v).predicate->Clone();
        RELGO_RETURN_NOT_OK(
            vertex_preds_[v]->Bind(vertex_tables_[v]->schema()));
      }
    }
    edge_tables_.resize(p_.num_edges());
    edge_preds_.resize(p_.num_edges());
    for (int e = 0; e < p_.num_edges(); ++e) {
      RELGO_ASSIGN_OR_RETURN(edge_tables_[e],
                             ctx_->EdgeTable(p_.edge(e).label));
      if (p_.edge(e).predicate) {
        edge_preds_[e] = p_.edge(e).predicate->Clone();
        RELGO_RETURN_NOT_OK(edge_preds_[e]->Bind(edge_tables_[e]->schema()));
      }
    }
    RELGO_RETURN_NOT_OK(OrderEdges());

    // Output table: vertex vars then edge vars.
    storage::Schema schema;
    for (int v = 0; v < p_.num_vertices(); ++v) {
      RELGO_RETURN_NOT_OK(
          schema.AddColumn({p_.VertexVarName(v), LogicalType::kInt64}));
    }
    for (int e = 0; e < p_.num_edges(); ++e) {
      RELGO_RETURN_NOT_OK(
          schema.AddColumn({p_.EdgeVarName(e), LogicalType::kInt64}));
    }
    out_ = std::make_shared<Table>("naive_match", schema);

    vertex_binding_.assign(p_.num_vertices(), kUnbound);
    edge_binding_.assign(p_.num_edges(), kUnbound);

    // Seed: enumerate candidates of the start vertex.
    int start = p_.num_edges() > 0 ? p_.edge(edge_order_[0]).src : 0;
    const Table& vt = *vertex_tables_[start];
    for (uint64_t r = 0; r < vt.num_rows(); ++r) {
      if (!VertexOk(start, r)) continue;
      vertex_binding_[start] = static_cast<int64_t>(r);
      RELGO_RETURN_NOT_OK(Recurse(0));
      vertex_binding_[start] = kUnbound;
    }
    out_->FinishBulkAppend();
    return out_;
  }

 private:
  static constexpr int64_t kUnbound = -1;

  /// Orders edges so each edge has at least one bound endpoint when
  /// processed (pattern is connected).
  Status OrderEdges() {
    std::vector<bool> used(p_.num_edges(), false);
    std::vector<bool> bound(p_.num_vertices(), false);
    if (p_.num_edges() == 0) return Status::OK();
    bound[p_.edge(0).src] = true;
    for (int step = 0; step < p_.num_edges(); ++step) {
      int pick = -1;
      for (int e = 0; e < p_.num_edges(); ++e) {
        if (used[e]) continue;
        if (bound[p_.edge(e).src] || bound[p_.edge(e).dst]) {
          pick = e;
          break;
        }
      }
      if (pick < 0) {
        return Status::InvalidArgument("pattern is not connected");
      }
      used[pick] = true;
      bound[p_.edge(pick).src] = true;
      bound[p_.edge(pick).dst] = true;
      edge_order_.push_back(pick);
    }
    return Status::OK();
  }

  bool VertexOk(int v, uint64_t row) const {
    const auto& pred = vertex_preds_[v];
    if (pred && !pred->EvaluateBool(*vertex_tables_[v], row)) return false;
    for (const auto& [a, b] : p_.distinct_pairs()) {
      int other = (a == v) ? b : (b == v ? a : -1);
      if (other >= 0 && vertex_binding_[other] == static_cast<int64_t>(row)) {
        return false;
      }
    }
    return true;
  }

  bool EdgeOk(int e, uint64_t row) const {
    const auto& pred = edge_preds_[e];
    return !pred || pred->EvaluateBool(*edge_tables_[e], row);
  }

  Status Emit() {
    std::vector<Value> row;
    row.reserve(vertex_binding_.size() + edge_binding_.size());
    for (int64_t v : vertex_binding_) row.push_back(Value::Int(v));
    for (int64_t e : edge_binding_) row.push_back(Value::Int(e));
    RELGO_RETURN_NOT_OK(out_->AppendRow(row));
    return ctx_->ChargeRows(1);
  }

  Status Recurse(size_t depth) {
    if (depth == edge_order_.size()) return Emit();
    int e = edge_order_[depth];
    const auto& pe = p_.edge(e);
    bool src_bound = vertex_binding_[pe.src] != kUnbound;
    bool dst_bound = vertex_binding_[pe.dst] != kUnbound;

    if (src_bound && dst_bound) {
      // Closing edge: enumerate the run of parallel edges between the two
      // bound vertices (adjacency sorted by neighbor).
      auto s = static_cast<uint64_t>(vertex_binding_[pe.src]);
      auto d = static_cast<uint64_t>(vertex_binding_[pe.dst]);
      graph::AdjacencyList adj =
          ctx_->index().Neighbors(pe.label, graph::Direction::kOut, s);
      const uint64_t* lo =
          std::lower_bound(adj.neighbors, adj.neighbors + adj.size, d);
      for (const uint64_t* p = lo;
           p != adj.neighbors + adj.size && *p == d; ++p) {
        uint64_t edge_row = adj.edges[p - adj.neighbors];
        if (!EdgeOk(e, edge_row)) continue;
        edge_binding_[e] = static_cast<int64_t>(edge_row);
        RELGO_RETURN_NOT_OK(Recurse(depth + 1));
        edge_binding_[e] = kUnbound;
      }
      return Status::OK();
    }

    // Extending edge: expand from the bound endpoint.
    int from = src_bound ? pe.src : pe.dst;
    int to = src_bound ? pe.dst : pe.src;
    graph::Direction dir =
        src_bound ? graph::Direction::kOut : graph::Direction::kIn;
    auto v = static_cast<uint64_t>(vertex_binding_[from]);
    graph::AdjacencyList adj = ctx_->index().Neighbors(pe.label, dir, v);
    for (size_t i = 0; i < adj.size; ++i) {
      uint64_t nbr = adj.neighbors[i];
      uint64_t edge_row = adj.edges[i];
      if (!EdgeOk(e, edge_row)) continue;
      if (!VertexOk(to, nbr)) continue;
      vertex_binding_[to] = static_cast<int64_t>(nbr);
      edge_binding_[e] = static_cast<int64_t>(edge_row);
      RELGO_RETURN_NOT_OK(Recurse(depth + 1));
      vertex_binding_[to] = kUnbound;
      edge_binding_[e] = kUnbound;
    }
    return Status::OK();
  }

  const PatternGraph& p_;
  ExecutionContext* ctx_;
  std::vector<storage::TablePtr> vertex_tables_;
  std::vector<storage::TablePtr> edge_tables_;
  std::vector<storage::ExprPtr> vertex_preds_;  // bound per-execution clones
  std::vector<storage::ExprPtr> edge_preds_;
  std::vector<int> edge_order_;
  std::vector<int64_t> vertex_binding_;
  std::vector<int64_t> edge_binding_;
  TablePtr out_;
};

}  // namespace

Result<TablePtr> NaiveMatch(const PatternGraph& p, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("NaiveMatch requires the graph index");
  }
  if (p.num_vertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  Backtracker bt(p, ctx);
  return bt.Run();
}

}  // namespace exec
}  // namespace relgo
