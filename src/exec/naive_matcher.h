#ifndef RELGO_EXEC_NAIVE_MATCHER_H_
#define RELGO_EXEC_NAIVE_MATCHER_H_

#include "exec/context.h"
#include "pattern/pattern_graph.h"
#include "storage/table.h"

namespace relgo {
namespace exec {

/// Reference implementation of the matching operator M(P) by depth-first
/// backtracking over the graph index (Ullmann-style, fixed edge order, no
/// cost model, no worst-case-optimal intersection).
///
/// Two roles in this repository:
///  * correctness oracle for the optimizer/executor property tests —
///    every optimized plan must produce exactly this bag of bindings;
///  * the execution engine of the `GdbmsSim` baseline, standing in for a
///    research-prototype native graph DBMS (the paper compared Kùzu).
///
/// Output: a binding table with one int64 row-id column per pattern vertex
/// (named PatternGraph::VertexVarName) followed by one per pattern edge
/// (EdgeVarName); rows follow homomorphism bag semantics, with the
/// pattern's distinct_pairs applied.
Result<storage::TablePtr> NaiveMatch(const pattern::PatternGraph& p,
                                     ExecutionContext* ctx);

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_NAIVE_MATCHER_H_
