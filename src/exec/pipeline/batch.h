#ifndef RELGO_EXEC_PIPELINE_BATCH_H_
#define RELGO_EXEC_PIPELINE_BATCH_H_

#include <memory>
#include <utility>
#include <vector>

#include "storage/table.h"

namespace relgo {
namespace exec {
namespace pipeline {

/// Rows per morsel/batch. Large enough to amortize per-batch dispatch,
/// small enough that a batch's working set stays cache-resident.
constexpr uint64_t kBatchRows = 2048;

/// A shared, immutable column vector. Batches share columns with their
/// producers (zero-copy) wherever a column passes through unchanged —
/// projection reorders, full-table morsels, join pass-through sides.
using ColumnRef = std::shared_ptr<const storage::Column>;

/// A fixed-size horizontal chunk of a binding or relational table:
/// equal-length immutable column vectors. The column *names/types* are not
/// carried per batch — every operator in a pipeline resolves its input
/// schema once during Prepare, so batches stay lightweight.
class Batch {
 public:
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const storage::Column& column(size_t i) const { return *columns_[i]; }
  const ColumnRef& column_ref(size_t i) const { return columns_[i]; }

  void Clear() {
    columns_.clear();
    num_rows_ = 0;
  }

  /// Shares an existing column (zero-copy).
  void AddColumn(ColumnRef col) { columns_.push_back(std::move(col)); }

  /// Takes ownership of a freshly built column.
  void AddOwned(storage::Column col) {
    columns_.push_back(std::make_shared<storage::Column>(std::move(col)));
  }

  /// Must be called after all columns are added; `n` is the common length.
  void SetNumRows(uint64_t n) { num_rows_ = n; }

  /// Applies a selection vector to every column (materializing).
  Batch Gather(const std::vector<uint64_t>& sel) const {
    Batch out;
    for (const auto& col : columns_) out.AddOwned(col->Gather(sel));
    out.SetNumRows(sel.size());
    return out;
  }

  /// Loose-column pointer array for expression evaluation
  /// (storage::Expr::EvaluateBool(const Column* const*, row)).
  std::vector<const storage::Column*> ColumnPointers() const {
    std::vector<const storage::Column*> out;
    out.reserve(columns_.size());
    for (const auto& col : columns_) out.push_back(col.get());
    return out;
  }

 private:
  std::vector<ColumnRef> columns_;
  uint64_t num_rows_ = 0;
};

/// Shares column `col` of `table` without copying; the returned ColumnRef
/// keeps the whole table alive (aliasing shared_ptr).
inline ColumnRef ShareTableColumn(const storage::TablePtr& table,
                                  size_t col) {
  return ColumnRef(table, &table->column(col));
}

/// Builds a batch over rows [begin, begin + count) of `table`. The
/// whole-table case shares every column zero-copy; proper sub-ranges are
/// bulk-copied via Column::Slice.
inline Batch SliceTable(const storage::TablePtr& table, uint64_t begin,
                        uint64_t count) {
  Batch out;
  if (begin == 0 && count == table->num_rows()) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      out.AddColumn(ShareTableColumn(table, c));
    }
  } else {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      out.AddOwned(table->column(c).Slice(begin, count));
    }
  }
  out.SetNumRows(count);
  return out;
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_BATCH_H_
