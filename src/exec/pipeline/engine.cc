#include "exec/pipeline/engine.h"

#include <algorithm>

#include "exec/naive_matcher.h"
#include "exec/pipeline/pipeline.h"

namespace relgo {
namespace exec {
namespace pipeline {

using plan::OpKind;
using plan::PhysicalOp;
using storage::TablePtr;

namespace {

/// Operators that run batch-at-a-time inside a pipeline. Everything else is
/// either a pipeline source (leaf scans) or a breaker that materializes.
bool IsStreamable(OpKind kind) {
  switch (kind) {
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kHashJoin:       // probe side streams; build side breaks
    case OpKind::kRidLookupJoin:
    case OpKind::kRidExpandJoin:
    case OpKind::kExpandEdge:
    case OpKind::kGetVertex:
    case OpKind::kExpand:
    case OpKind::kExpandIntersect:
    case OpKind::kEdgeVerify:
    case OpKind::kPatternJoin:    // probe side streams; build side breaks
    case OpKind::kVertexFilter:
    case OpKind::kNotEqual:
    case OpKind::kScanGraphTable:  // pi-hat streams over the graph sub-plan
      return true;
    default:
      return false;
  }
}

Result<TablePtr> ExecNode(const PhysicalOp& op, ExecutionContext* ctx,
                          TaskScheduler* scheduler);
Result<Pipeline> BuildPipeline(const PhysicalOp& op, ExecutionContext* ctx,
                               TaskScheduler* scheduler);

/// A join's materialized build side plus the hash table constructed over
/// it (partition-parallel, HashBuildSink).
struct BuiltSide {
  TablePtr table;
  std::shared_ptr<const JoinHashTable> ht;
};

/// Executes a join's build subtree (pipeline breaker) into a HashBuildSink:
/// the build rows are materialized by parallel morsels and the shared
/// JoinHashTable is constructed partition-parallel before the probe
/// pipeline is assembled. `join_node` receives the build wall time in the
/// query profile.
Result<BuiltSide> ExecBuildSide(const PhysicalOp& op,
                                const std::vector<std::string>& keys,
                                const PhysicalOp* join_node,
                                ExecutionContext* ctx,
                                TaskScheduler* scheduler) {
  RELGO_ASSIGN_OR_RETURN(auto pipeline, BuildPipeline(op, ctx, scheduler));
  HashBuildSink sink(keys, join_node);
  RELGO_ASSIGN_OR_RETURN(auto table,
                         RunPipeline(&pipeline, &sink, scheduler, ctx));
  return BuiltSide{std::move(table), sink.hash_table()};
}

/// Builds the streaming operator for one plan node. Join builds recurse
/// into ExecBuildSide, materializing + hashing the build side (pipeline
/// breaker) before the probe pipeline is assembled.
Result<StreamingOpPtr> MakeStreamingOp(const PhysicalOp& op,
                                       ExecutionContext* ctx,
                                       TaskScheduler* scheduler) {
  switch (op.kind) {
    case OpKind::kFilter:
      return StreamingOpPtr(
          new FilterOp(static_cast<const plan::PhysFilter&>(op)));
    case OpKind::kProject:
      return StreamingOpPtr(
          new ProjectOp(static_cast<const plan::PhysProject&>(op)));
    case OpKind::kHashJoin: {
      const auto& join = static_cast<const plan::PhysHashJoin&>(op);
      RELGO_ASSIGN_OR_RETURN(
          auto built, ExecBuildSide(*op.children[1], join.right_keys, &op,
                                    ctx, scheduler));
      return StreamingOpPtr(new HashJoinProbeOp(
          join.left_keys, {}, std::move(built.table), std::move(built.ht)));
    }
    case OpKind::kPatternJoin: {
      const auto& join = static_cast<const plan::PhysPatternJoin&>(op);
      RELGO_ASSIGN_OR_RETURN(
          auto built, ExecBuildSide(*op.children[1], join.common_vars, &op,
                                    ctx, scheduler));
      return StreamingOpPtr(new HashJoinProbeOp(
          join.common_vars, join.common_vars, std::move(built.table),
          std::move(built.ht)));
    }
    case OpKind::kRidLookupJoin:
      return StreamingOpPtr(new RidLookupJoinOp(
          static_cast<const plan::PhysRidLookupJoin&>(op)));
    case OpKind::kRidExpandJoin:
      return StreamingOpPtr(new RidExpandJoinOp(
          static_cast<const plan::PhysRidExpandJoin&>(op)));
    case OpKind::kExpandEdge:
      return StreamingOpPtr(
          new ExpandEdgeOp(static_cast<const plan::PhysExpandEdge&>(op)));
    case OpKind::kGetVertex:
      return StreamingOpPtr(
          new GetVertexOp(static_cast<const plan::PhysGetVertex&>(op)));
    case OpKind::kExpand:
      return StreamingOpPtr(
          new ExpandOp(static_cast<const plan::PhysExpand&>(op)));
    case OpKind::kExpandIntersect:
      return StreamingOpPtr(new ExpandIntersectOp(
          static_cast<const plan::PhysExpandIntersect&>(op)));
    case OpKind::kEdgeVerify:
      return StreamingOpPtr(
          new EdgeVerifyOp(static_cast<const plan::PhysEdgeVerify&>(op)));
    case OpKind::kVertexFilter:
      return StreamingOpPtr(
          new VertexFilterOp(static_cast<const plan::PhysVertexFilter&>(op)));
    case OpKind::kNotEqual:
      return StreamingOpPtr(
          new NotEqualOp(static_cast<const plan::PhysNotEqual&>(op)));
    case OpKind::kScanGraphTable:
      return StreamingOpPtr(new ScanGraphTableOp(
          static_cast<const plan::PhysScanGraphTable&>(op)));
    default:
      return Status::Internal(std::string("not a streaming operator: ") +
                              plan::OpKindName(op.kind));
  }
}

/// Decomposes the maximal streaming chain ending at `op` into a pipeline:
/// walks probe-side children while operators are streamable, then turns
/// the remaining node into the source (leaf scan, or a materialized
/// breaker result).
Result<Pipeline> BuildPipeline(const PhysicalOp& op, ExecutionContext* ctx,
                               TaskScheduler* scheduler) {
  std::vector<const PhysicalOp*> chain;
  const PhysicalOp* cur = &op;
  while (IsStreamable(cur->kind)) {
    chain.push_back(cur);
    cur = cur->children[0].get();
  }

  Pipeline pipeline;
  switch (cur->kind) {
    case OpKind::kScanTable:
      pipeline.source = std::make_unique<ScanTableSource>(
          static_cast<const plan::PhysScanTable&>(*cur));
      pipeline.source_node = cur;
      break;
    case OpKind::kScanVertex:
      pipeline.source = std::make_unique<ScanVertexSource>(
          static_cast<const plan::PhysScanVertex&>(*cur));
      pipeline.source_node = cur;
      break;
    default: {
      // Breaker below: materialize its subtree and stream the result. Its
      // plan nodes were profiled by the breaker's own pipelines, so the
      // TableSource carries no plan node.
      RELGO_ASSIGN_OR_RETURN(auto table, ExecNode(*cur, ctx, scheduler));
      pipeline.source = std::make_unique<TableSource>(std::move(table));
      break;
    }
  }
  // chain was collected top-down; operators run bottom-up.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    RELGO_ASSIGN_OR_RETURN(auto sop, MakeStreamingOp(**it, ctx, scheduler));
    pipeline.ops.push_back(std::move(sop));
    pipeline.op_nodes.push_back(*it);
  }
  return pipeline;
}

/// Runs the streaming chain ending at `op` into a fresh materialize sink.
Result<TablePtr> RunToTable(const PhysicalOp& op, const char* name,
                            ExecutionContext* ctx, TaskScheduler* scheduler) {
  RELGO_ASSIGN_OR_RETURN(auto pipeline, BuildPipeline(op, ctx, scheduler));
  MaterializeSink sink(name);
  return RunPipeline(&pipeline, &sink, scheduler, ctx);
}

/// Profiles one breaker step that materializes outside any pipeline
/// (NAIVE_MATCH only — ORDER BY / LIMIT run inside pipelines as TopKSink):
/// records the node's counters and a stage-less pipeline trace so EXPLAIN
/// ANALYZE shows it between the pipelines it separates. No-op when
/// profiling is off.
Result<TablePtr> RecordBreaker(const PhysicalOp& op, uint64_t rows_in,
                               double wall_ms, Result<TablePtr> result,
                               ExecutionContext* ctx) {
  QueryProfile* qp = ctx->profile();
  if (qp == nullptr) return result;
  OperatorProfile prof;
  prof.rows_in = rows_in;
  prof.invocations = 1;
  prof.wall_ms = wall_ms;
  if (result.ok()) prof.rows_out = (*result)->num_rows();
  qp->Accumulate(&op, prof);
  PipelineTrace trace;
  trace.breaker = &op;
  trace.sink = plan::OpKindName(op.kind);
  trace.wall_ms = wall_ms;
  qp->AddPipeline(std::move(trace));
  return result;
}

Result<TablePtr> ExecNode(const PhysicalOp& op, ExecutionContext* ctx,
                          TaskScheduler* scheduler) {
  RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
  switch (op.kind) {
    case OpKind::kHashAggregate: {
      const auto& agg = static_cast<const plan::PhysHashAggregate&>(op);
      RELGO_ASSIGN_OR_RETURN(auto pipeline,
                             BuildPipeline(*op.children[0], ctx, scheduler));
      AggregateSink sink(agg);
      return RunPipeline(&pipeline, &sink, scheduler, ctx);
    }
    case OpKind::kOrderBy: {
      // Full ORDER BY runs inside the pipeline as a parallel-merge sort
      // sink (no materializing post-op).
      const auto& order = static_cast<const plan::PhysOrderBy&>(op);
      RELGO_ASSIGN_OR_RETURN(auto pipeline,
                             BuildPipeline(*op.children[0], ctx, scheduler));
      TopKSink sink(&order, nullptr, /*limit=*/-1);
      return RunPipeline(&pipeline, &sink, scheduler, ctx);
    }
    case OpKind::kLimit: {
      const auto& limit = static_cast<const plan::PhysLimit&>(op);
      const PhysicalOp* child = op.children[0].get();
      if (child->kind == OpKind::kOrderBy) {
        // ORDER BY + LIMIT fuse into one top-k sink over the pipeline
        // below the sort: per-worker bounded heaps merged at finish.
        const auto& order = static_cast<const plan::PhysOrderBy&>(*child);
        RELGO_ASSIGN_OR_RETURN(
            auto pipeline,
            BuildPipeline(*child->children[0], ctx, scheduler));
        TopKSink sink(&order, &limit, limit.limit);
        return RunPipeline(&pipeline, &sink, scheduler, ctx);
      }
      // Plain LIMIT: first-k in morsel order, with exact early-exit.
      RELGO_ASSIGN_OR_RETURN(auto pipeline,
                             BuildPipeline(*child, ctx, scheduler));
      TopKSink sink(nullptr, &limit, limit.limit);
      return RunPipeline(&pipeline, &sink, scheduler, ctx);
    }
    case OpKind::kNaiveMatch: {
      // The backtracking matcher is inherently sequential; it runs as its
      // own (single-morsel) leaf.
      Timer timer;
      auto matched = NaiveMatch(
          static_cast<const plan::PhysNaiveMatch&>(op).pattern, ctx);
      return RecordBreaker(op, 0, timer.ElapsedMillis(), std::move(matched),
                           ctx);
    }
    default:
      return RunToTable(op, "pipeline", ctx, scheduler);
  }
}

}  // namespace

Result<TablePtr> Run(const PhysicalOp& op, ExecutionContext* ctx) {
  // Queries served through a Database share its process-wide worker pool;
  // standalone executions (unit tests driving the engine directly) fall
  // back to a private pool for the duration of the query.
  if (TaskScheduler* pool = ctx->scheduler()) {
    return ExecNode(op, ctx, pool);
  }
  TaskScheduler local;
  return ExecNode(op, ctx, &local);
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
