#ifndef RELGO_EXEC_PIPELINE_ENGINE_H_
#define RELGO_EXEC_PIPELINE_ENGINE_H_

#include "exec/context.h"
#include "plan/physical_plan.h"
#include "storage/table.h"

namespace relgo {
namespace exec {
namespace pipeline {

/// Entry point of the morsel-driven vectorized engine (the
/// EngineKind::kPipeline runtime).
///
/// The physical plan tree is decomposed into pipelines split at breakers:
/// every maximal chain of streaming operators (scans, filters, projections,
/// EXPAND / EXPAND_INTERSECT / EDGE_VERIFY / VERTEX_FILTER / NOT_EQUAL,
/// hash-join probes, the SCAN_GRAPH_TABLE bridge) runs batch-at-a-time over
/// morsels of its source, while breakers (hash-join build sides, hash
/// aggregation, ORDER BY, LIMIT) materialize between pipelines. Each
/// pipeline is one job on the context's shared worker pool (the Database's
/// process-wide TaskScheduler), fanned out to at most
/// ResolveNumThreads(ctx->options()) workers; concurrent queries
/// interleave their jobs on the same pool threads.
///
/// Semantics match exec::Executor::Run exactly — same result bags, same
/// row-budget charging, same kOutOfMemory / kTimeout behavior — which
/// pipeline_parity_test.cc enforces differentially.
Result<storage::TablePtr> Run(const plan::PhysicalOp& op,
                              ExecutionContext* ctx);

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_ENGINE_H_
