#include "exec/pipeline/operators.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/fault.h"
#include "common/timer.h"
#include "exec/exec_common.h"
#include "exec/pipeline/scheduler.h"

namespace relgo {
namespace exec {
namespace pipeline {

using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TablePtr;

namespace {

/// Shared emit path for expand-style operators: gathers input rows by `sel`
/// and appends freshly built int64 binding columns (in the order the op's
/// Prepare added them to its output schema). The batch analog of the seed
/// executor's BuildExpandedTable.
Status EmitExpanded(const Batch& in, const std::vector<uint64_t>& sel,
                    const std::vector<std::vector<int64_t>>& new_cols,
                    Batch* out, ExecutionContext* ctx) {
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  *out = in.Gather(sel);
  for (const auto& vals : new_cols) {
    Column col(LogicalType::kInt64);
    col.Reserve(vals.size());
    for (int64_t v : vals) col.AppendInt(v);
    out->AddOwned(std::move(col));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

Status FilterOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  output_schema_ = input;
  // Bind a clone: the plan may share the predicate tree with the query it
  // was optimized from, and concurrent executions must not race on the
  // resolved column indexes Bind writes.
  predicate_ = op_.predicate ? op_.predicate->Clone() : nullptr;
  if (predicate_) RELGO_RETURN_NOT_OK(predicate_->Bind(input));
  // Lower once per execution; workers evaluate the compiled program
  // (bit-identical to EvaluateBool) instead of walking the tree per row.
  // Schema-only compile: a mid-pipeline filter sees no stable source
  // table at Prepare, so string leaves keep the payload kernels
  // (dictionary lowering needs a compile-time column to fold constants
  // against). Scan pushdown compiles against the base table and covers
  // the hot string predicates; see compiled_expr.h.
  if (predicate_ && ctx->options().vectorized_kernels) {
    compiled_ = vector::CompiledPredicate::Compile(*predicate_, input);
  }
  return Status::OK();
}

Status FilterOp::Process(const Batch& in, Batch* out,
                         ExecutionContext* ctx) const {
  if (!predicate_) {
    *out = in;
    return Status::OK();
  }
  auto cols = in.ColumnPointers();
  std::vector<uint64_t> sel;
  if (compiled_ != nullptr) {
    compiled_->FilterRange(cols.data(), 0, in.num_rows(), &sel);
  } else {
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      if (predicate_->EvaluateBool(cols.data(), r)) sel.push_back(r);
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  *out = in.Gather(sel);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

Status ProjectOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  (void)ctx;
  output_schema_ = Schema();
  src_cols_.clear();
  for (const auto& [from, to] : op_.columns) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, input.GetColumnIndex(from));
    RELGO_RETURN_NOT_OK(
        output_schema_.AddColumn({to, input.column(idx).type}));
    src_cols_.push_back(idx);
  }
  return Status::OK();
}

Status ProjectOp::Process(const Batch& in, Batch* out,
                          ExecutionContext* ctx) const {
  for (size_t src : src_cols_) out->AddColumn(in.column_ref(src));
  out->SetNumRows(in.num_rows());
  return ctx->ChargeRows(in.num_rows());
}

// ---------------------------------------------------------------------------
// HashJoinProbeOp
// ---------------------------------------------------------------------------

Status HashJoinProbeOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  (void)ctx;
  probe_cols_.clear();
  for (const auto& k : left_keys_) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, input.GetColumnIndex(k));
    probe_cols_.push_back(idx);
  }
  // Output schema: probe columns, then build columns minus drop_right minus
  // duplicate names (matches exec::HashJoinTables).
  output_schema_ = Schema();
  for (const auto& def : input.columns()) {
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
  }
  build_out_cols_.clear();
  for (size_t c = 0; c < build_->schema().num_columns(); ++c) {
    const auto& def = build_->schema().column(c);
    bool dropped = std::find(drop_right_.begin(), drop_right_.end(),
                             def.name) != drop_right_.end();
    if (dropped || output_schema_.FindColumn(def.name) >= 0) continue;
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
    build_out_cols_.push_back(c);
  }
  return Status::OK();
}

Status HashJoinProbeOp::Process(const Batch& in, Batch* out,
                                ExecutionContext* ctx) const {
  // Hoist the probe-key payload spans once per batch; the per-row probe
  // then touches raw int64 slots only (see JoinHashTable's span
  // overload). String keys bind a ProbeView instead: dictionary codes
  // when the batch still carries the build dictionary, payload bytes
  // (or per-row translation) otherwise.
  const bool string_keys = ht_->has_string_keys();
  exec::JoinHashTable::ProbeView view;
  std::vector<const int64_t*> keys;
  if (string_keys) {
    RELGO_RETURN_NOT_OK(ht_->BindProbe(in, probe_cols_, &view));
  } else {
    keys.reserve(probe_cols_.size());
    for (size_t c : probe_cols_) keys.push_back(in.column(c).data_int64());
  }

  std::vector<uint64_t> left_sel, right_sel, matches;
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    matches.clear();
    if (string_keys) {
      ht_->Probe(view, r, &matches);
    } else {
      ht_->Probe(keys.data(), r, &matches);
    }
    for (uint64_t b : matches) {
      left_sel.push_back(r);
      right_sel.push_back(b);
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(left_sel.size()));
  *out = in.Gather(left_sel);
  for (size_t c : build_out_cols_) {
    out->AddOwned(build_->column(c).Gather(right_sel));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RidLookupJoinOp
// ---------------------------------------------------------------------------

Status RidLookupJoinOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("RID_JOIN requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(rid_col_, input.GetColumnIndex(op_.edge_rowid_column));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op_.edge_label);
  int vlabel = op_.dir == graph::Direction::kOut
                   ? ctx->mapping().FindVertexLabel(em.src_label)
                   : ctx->mapping().FindVertexLabel(em.dst_label);
  RELGO_ASSIGN_OR_RETURN(vtable_, ctx->VertexTable(vlabel));
  RELGO_ASSIGN_OR_RETURN(bitmap_,
                         FilterBitmap(vtable_, op_.vertex_filter, ctx));

  raw_indexes_.clear();
  Schema vschema = ScanSchema(*vtable_, op_.vertex_alias, op_.vertex_columns,
                              op_.emit_vertex_rowid, &raw_indexes_);
  output_schema_ = Schema();
  for (const auto& def : input.columns()) {
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
  }
  for (const auto& def : vschema.columns()) {
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
  }
  return Status::OK();
}

Status RidLookupJoinOp::Process(const Batch& in, Batch* out,
                                ExecutionContext* ctx) const {
  std::vector<uint64_t> in_sel, vertex_sel;
  const Column& rid = in.column(rid_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    auto edge_row = static_cast<uint64_t>(rid.int_at(r));
    uint64_t v = op_.dir == graph::Direction::kOut
                     ? ctx->index().EdgeSource(op_.edge_label, edge_row)
                     : ctx->index().EdgeTarget(op_.edge_label, edge_row);
    if (!bitmap_.empty() && !bitmap_[v]) continue;
    in_sel.push_back(r);
    vertex_sel.push_back(v);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(in_sel.size()));

  *out = in.Gather(in_sel);
  if (op_.emit_vertex_rowid) {
    Column col(LogicalType::kInt64);
    col.Reserve(vertex_sel.size());
    for (uint64_t v : vertex_sel) col.AppendInt(static_cast<int64_t>(v));
    out->AddOwned(std::move(col));
  }
  for (int raw : raw_indexes_) {
    out->AddOwned(vtable_->column(raw).Gather(vertex_sel));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RidExpandJoinOp
// ---------------------------------------------------------------------------

Status RidExpandJoinOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("RID_EXPAND_JOIN requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(rid_col_,
                         input.GetColumnIndex(op_.vertex_rowid_column));
  RELGO_ASSIGN_OR_RETURN(etable_, ctx->EdgeTable(op_.edge_label));
  RELGO_ASSIGN_OR_RETURN(bitmap_, FilterBitmap(etable_, op_.edge_filter, ctx));

  raw_indexes_.clear();
  Schema eschema = ScanSchema(*etable_, op_.edge_alias, op_.edge_columns,
                              op_.emit_edge_rowid, &raw_indexes_);
  output_schema_ = Schema();
  for (const auto& def : input.columns()) {
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
  }
  for (const auto& def : eschema.columns()) {
    RELGO_RETURN_NOT_OK(output_schema_.AddColumn(def));
  }
  return Status::OK();
}

Status RidExpandJoinOp::Process(const Batch& in, Batch* out,
                                ExecutionContext* ctx) const {
  std::vector<uint64_t> in_sel, edge_sel;
  const Column& rid = in.column(rid_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    auto v = static_cast<uint64_t>(rid.int_at(r));
    graph::AdjacencyList adj =
        ctx->index().Neighbors(op_.edge_label, op_.dir, v);
    for (size_t i = 0; i < adj.size; ++i) {
      uint64_t e = adj.edges[i];
      if (!bitmap_.empty() && !bitmap_[e]) continue;
      in_sel.push_back(r);
      edge_sel.push_back(e);
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(in_sel.size()));

  *out = in.Gather(in_sel);
  if (op_.emit_edge_rowid) {
    Column col(LogicalType::kInt64);
    col.Reserve(edge_sel.size());
    for (uint64_t e : edge_sel) col.AppendInt(static_cast<int64_t>(e));
    out->AddOwned(std::move(col));
  }
  for (int raw : raw_indexes_) {
    out->AddOwned(etable_->column(raw).Gather(edge_sel));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ExpandEdgeOp
// ---------------------------------------------------------------------------

Status ExpandEdgeOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("EXPAND_EDGE requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(from_col_, input.GetColumnIndex(op_.from_var));
  RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op_.edge_label));
  RELGO_ASSIGN_OR_RETURN(bitmap_, FilterBitmap(etable, op_.edge_filter, ctx));
  output_schema_ = input;
  RELGO_RETURN_NOT_OK(
      output_schema_.AddColumn({op_.edge_var, LogicalType::kInt64}));
  return Status::OK();
}

Status ExpandEdgeOp::Process(const Batch& in, Batch* out,
                             ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  std::vector<int64_t> edge_vals;
  const Column& from = in.column(from_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    auto v = static_cast<uint64_t>(from.int_at(r));
    graph::AdjacencyList adj =
        ctx->index().Neighbors(op_.edge_label, op_.dir, v);
    for (size_t i = 0; i < adj.size; ++i) {
      uint64_t e = adj.edges[i];
      if (!bitmap_.empty() && !bitmap_[e]) continue;
      sel.push_back(r);
      edge_vals.push_back(static_cast<int64_t>(e));
    }
  }
  return EmitExpanded(in, sel, {std::move(edge_vals)}, out, ctx);
}

// ---------------------------------------------------------------------------
// GetVertexOp
// ---------------------------------------------------------------------------

Status GetVertexOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("GET_VERTEX requires the graph index");
  }
  RELGO_ASSIGN_OR_RETURN(edge_col_, input.GetColumnIndex(op_.edge_var));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op_.edge_label);
  int vlabel = op_.dir == graph::Direction::kOut
                   ? ctx->mapping().FindVertexLabel(em.dst_label)
                   : ctx->mapping().FindVertexLabel(em.src_label);
  RELGO_ASSIGN_OR_RETURN(auto vtable, ctx->VertexTable(vlabel));
  RELGO_ASSIGN_OR_RETURN(bitmap_, FilterBitmap(vtable, op_.vertex_filter, ctx));
  output_schema_ = input;
  RELGO_RETURN_NOT_OK(
      output_schema_.AddColumn({op_.to_var, LogicalType::kInt64}));
  return Status::OK();
}

Status GetVertexOp::Process(const Batch& in, Batch* out,
                            ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  std::vector<int64_t> vertex_vals;
  const Column& edge = in.column(edge_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    auto e = static_cast<uint64_t>(edge.int_at(r));
    uint64_t v = op_.dir == graph::Direction::kOut
                     ? ctx->index().EdgeTarget(op_.edge_label, e)
                     : ctx->index().EdgeSource(op_.edge_label, e);
    if (!bitmap_.empty() && !bitmap_[v]) continue;
    sel.push_back(r);
    vertex_vals.push_back(static_cast<int64_t>(v));
  }
  return EmitExpanded(in, sel, {std::move(vertex_vals)}, out, ctx);
}

// ---------------------------------------------------------------------------
// ExpandOp
// ---------------------------------------------------------------------------

Status ExpandOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(from_col_, input.GetColumnIndex(op_.from_var));
  const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op_.edge_label);
  int to_label = op_.dir == graph::Direction::kOut
                     ? ctx->mapping().FindVertexLabel(em.dst_label)
                     : ctx->mapping().FindVertexLabel(em.src_label);
  RELGO_ASSIGN_OR_RETURN(auto to_table, ctx->VertexTable(to_label));
  RELGO_ASSIGN_OR_RETURN(
      bitmap_, FilterBitmap(to_table, op_.vertex_filter, ctx));

  use_index_ = op_.use_index && ctx->has_index();
  if (!use_index_) {
    // Index-free reduction (RelGoHash): one FK hash table over the edge
    // relation built here, probed per streamed binding row. The seed
    // executor picks the smaller build side adaptively; streaming fixes the
    // build on the edge relation, which keeps Process() read-only.
    RELGO_ASSIGN_OR_RETURN(etable_, ctx->EdgeTable(op_.edge_label));
    int from_label = op_.dir == graph::Direction::kOut
                         ? ctx->mapping().FindVertexLabel(em.src_label)
                         : ctx->mapping().FindVertexLabel(em.dst_label);
    RELGO_ASSIGN_OR_RETURN(from_table_, ctx->VertexTable(from_label));
    const graph::VertexMapping& from_vm =
        ctx->mapping().vertex_mapping(from_label);
    const graph::VertexMapping& to_vm =
        ctx->mapping().vertex_mapping(to_label);
    const std::string& from_fk = op_.dir == graph::Direction::kOut
                                     ? em.src_key_column
                                     : em.dst_key_column;
    const std::string& to_fk = op_.dir == graph::Direction::kOut
                                   ? em.dst_key_column
                                   : em.src_key_column;
    const Column* from_fk_col = etable_->FindColumn(from_fk);
    to_fk_col_ = etable_->FindColumn(to_fk);
    from_key_col_ = from_table_->FindColumn(from_vm.key_column);
    if (from_fk_col == nullptr || to_fk_col_ == nullptr ||
        from_key_col_ == nullptr) {
      return Status::Internal("bad RGMapping columns in EXPAND(hash)");
    }
    RELGO_ASSIGN_OR_RETURN(to_key_index_,
                           to_table->GetKeyIndex(to_vm.key_column));
    to_table_ = to_table;
    fk_to_edges_.clear();
    fk_to_edges_.reserve(etable_->num_rows() * 2);
    for (uint64_t e = 0; e < etable_->num_rows(); ++e) {
      fk_to_edges_[from_fk_col->int_at(e)].push_back(e);
    }
  }

  output_schema_ = input;
  RELGO_RETURN_NOT_OK(
      output_schema_.AddColumn({op_.to_var, LogicalType::kInt64}));
  if (!op_.edge_var.empty()) {
    RELGO_RETURN_NOT_OK(
        output_schema_.AddColumn({op_.edge_var, LogicalType::kInt64}));
  }
  return Status::OK();
}

Status ExpandOp::Process(const Batch& in, Batch* out,
                         ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  std::vector<int64_t> to_vals, edge_vals;
  bool want_edge = !op_.edge_var.empty();
  const Column& from = in.column(from_col_);

  if (use_index_) {
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      auto v = static_cast<uint64_t>(from.int_at(r));
      graph::AdjacencyList adj =
          ctx->index().Neighbors(op_.edge_label, op_.dir, v);
      for (size_t i = 0; i < adj.size; ++i) {
        uint64_t nbr = adj.neighbors[i];
        if (!bitmap_.empty() && !bitmap_[nbr]) continue;
        sel.push_back(r);
        to_vals.push_back(static_cast<int64_t>(nbr));
        if (want_edge) edge_vals.push_back(static_cast<int64_t>(adj.edges[i]));
      }
    }
  } else {
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      auto v = static_cast<uint64_t>(from.int_at(r));
      auto it = fk_to_edges_.find(from_key_col_->int_at(v));
      if (it == fk_to_edges_.end()) continue;
      for (uint64_t e : it->second) {
        auto to_it = to_key_index_->find(to_fk_col_->int_at(e));
        if (to_it == to_key_index_->end()) continue;
        uint64_t nbr = to_it->second;
        if (!bitmap_.empty() && !bitmap_[nbr]) continue;
        sel.push_back(r);
        to_vals.push_back(static_cast<int64_t>(nbr));
        if (want_edge) edge_vals.push_back(static_cast<int64_t>(e));
      }
    }
  }

  std::vector<std::vector<int64_t>> new_cols;
  new_cols.push_back(std::move(to_vals));
  if (want_edge) new_cols.push_back(std::move(edge_vals));
  return EmitExpanded(in, sel, new_cols, out, ctx);
}

// ---------------------------------------------------------------------------
// ExpandIntersectOp
// ---------------------------------------------------------------------------

Status ExpandIntersectOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  if (!ctx->has_index()) {
    return Status::InvalidArgument("EXPAND_INTERSECT requires the graph index");
  }
  size_t k = op_.from_vars.size();
  from_cols_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    RELGO_ASSIGN_OR_RETURN(from_cols_[i],
                           input.GetColumnIndex(op_.from_vars[i]));
  }
  const graph::EdgeMapping& em0 =
      ctx->mapping().edge_mapping(op_.edge_labels[0]);
  int to_label = op_.dirs[0] == graph::Direction::kOut
                     ? ctx->mapping().FindVertexLabel(em0.dst_label)
                     : ctx->mapping().FindVertexLabel(em0.src_label);
  RELGO_ASSIGN_OR_RETURN(auto to_table, ctx->VertexTable(to_label));
  RELGO_ASSIGN_OR_RETURN(
      bitmap_, FilterBitmap(to_table, op_.vertex_filter, ctx));
  want_edges_ = false;
  for (const auto& ev : op_.edge_vars) want_edges_ |= !ev.empty();

  output_schema_ = input;
  RELGO_RETURN_NOT_OK(
      output_schema_.AddColumn({op_.to_var, LogicalType::kInt64}));
  if (want_edges_) {
    for (const auto& ev : op_.edge_vars) {
      if (!ev.empty()) {
        RELGO_RETURN_NOT_OK(
            output_schema_.AddColumn({ev, LogicalType::kInt64}));
      }
    }
  }
  return Status::OK();
}

Status ExpandIntersectOp::Process(const Batch& in, Batch* out,
                                  ExecutionContext* ctx) const {
  size_t k = from_cols_.size();
  std::vector<uint64_t> sel;
  std::vector<int64_t> to_vals;
  // Only bound (non-trimmed) edge vars accumulate values; the others stay
  // empty and are skipped at emit, saving k push_backs per output row on
  // the common fully-trimmed cyclic queries.
  std::vector<std::vector<int64_t>> edge_vals(k);
  std::vector<uint8_t> keep_edge(k, 0);
  if (want_edges_) {
    for (size_t i = 0; i < k; ++i) keep_edge[i] = !op_.edge_vars[i].empty();
  }

  std::vector<graph::AdjacencyList> lists(k);
  std::vector<size_t> pos(k);
  std::vector<std::pair<size_t, size_t>> runs(k);  // [begin, end) per list
  std::vector<size_t> cursor(k);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    for (size_t i = 0; i < k; ++i) {
      auto v = static_cast<uint64_t>(in.column(from_cols_[i]).int_at(r));
      lists[i] = ctx->index().Neighbors(op_.edge_labels[i], op_.dirs[i], v);
      pos[i] = 0;
    }
    // k-way sorted intersection over (possibly duplicated) neighbor runs.
    while (true) {
      bool done = false;
      uint64_t candidate = 0;
      for (size_t i = 0; i < k; ++i) {
        if (pos[i] >= lists[i].size) {
          done = true;
          break;
        }
        candidate = std::max(candidate, lists[i].neighbors[pos[i]]);
      }
      if (done) break;
      bool aligned = true;
      for (size_t i = 0; i < k; ++i) {
        while (pos[i] < lists[i].size &&
               lists[i].neighbors[pos[i]] < candidate) {
          ++pos[i];
        }
        if (pos[i] >= lists[i].size ||
            lists[i].neighbors[pos[i]] != candidate) {
          aligned = false;
        }
      }
      if (!aligned) continue;  // some list advanced past; realign on new max
      // All lists point at `candidate`: collect run lengths (parallel
      // edges) and emit the cross product of edge bindings.
      for (size_t i = 0; i < k; ++i) {
        size_t b = pos[i];
        while (pos[i] < lists[i].size &&
               lists[i].neighbors[pos[i]] == candidate) {
          ++pos[i];
        }
        runs[i] = {b, pos[i]};
      }
      bool pass = bitmap_.empty() || bitmap_[candidate] != 0;
      if (pass) {
        for (size_t i = 0; i < k; ++i) cursor[i] = runs[i].first;
        while (true) {
          sel.push_back(r);
          to_vals.push_back(static_cast<int64_t>(candidate));
          for (size_t i = 0; i < k; ++i) {
            if (!keep_edge[i]) continue;
            edge_vals[i].push_back(
                static_cast<int64_t>(lists[i].edges[cursor[i]]));
          }
          // Advance the mixed-radix cursor.
          size_t i = 0;
          for (; i < k; ++i) {
            if (++cursor[i] < runs[i].second) break;
            cursor[i] = runs[i].first;
          }
          if (i == k) break;
        }
      }
    }
  }

  std::vector<std::vector<int64_t>> new_cols;
  new_cols.push_back(std::move(to_vals));
  for (size_t i = 0; i < k; ++i) {
    if (keep_edge[i]) new_cols.push_back(std::move(edge_vals[i]));
  }
  return EmitExpanded(in, sel, new_cols, out, ctx);
}

// ---------------------------------------------------------------------------
// EdgeVerifyOp
// ---------------------------------------------------------------------------

Status EdgeVerifyOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(src_col_, input.GetColumnIndex(op_.src_var));
  RELGO_ASSIGN_OR_RETURN(dst_col_, input.GetColumnIndex(op_.dst_var));
  use_index_ = op_.use_index && ctx->has_index();
  if (!use_index_) {
    // Hash implementation on (src_key, dst_key), built once here.
    const graph::EdgeMapping& em = ctx->mapping().edge_mapping(op_.edge_label);
    int src_label = ctx->mapping().FindVertexLabel(
        op_.dir == graph::Direction::kOut ? em.src_label : em.dst_label);
    int dst_label = ctx->mapping().FindVertexLabel(
        op_.dir == graph::Direction::kOut ? em.dst_label : em.src_label);
    RELGO_ASSIGN_OR_RETURN(auto etable, ctx->EdgeTable(op_.edge_label));
    RELGO_ASSIGN_OR_RETURN(stable_, ctx->VertexTable(src_label));
    RELGO_ASSIGN_OR_RETURN(dtable_, ctx->VertexTable(dst_label));
    skey_ = stable_->FindColumn(
        ctx->mapping().vertex_mapping(src_label).key_column);
    dkey_ = dtable_->FindColumn(
        ctx->mapping().vertex_mapping(dst_label).key_column);
    const Column* sfk = etable->FindColumn(
        op_.dir == graph::Direction::kOut ? em.src_key_column
                                          : em.dst_key_column);
    const Column* dfk = etable->FindColumn(
        op_.dir == graph::Direction::kOut ? em.dst_key_column
                                          : em.src_key_column);
    if (skey_ == nullptr || dkey_ == nullptr || sfk == nullptr ||
        dfk == nullptr) {
      return Status::Internal("bad RGMapping columns in EDGE_VERIFY(hash)");
    }
    key_to_edges_.clear();
    key_to_edges_.reserve(etable->num_rows() * 2);
    for (uint64_t e = 0; e < etable->num_rows(); ++e) {
      key_to_edges_[{sfk->int_at(e), dfk->int_at(e)}].push_back(e);
    }
  }
  output_schema_ = input;
  if (!op_.edge_var.empty()) {
    RELGO_RETURN_NOT_OK(
        output_schema_.AddColumn({op_.edge_var, LogicalType::kInt64}));
  }
  return Status::OK();
}

Status EdgeVerifyOp::Process(const Batch& in, Batch* out,
                             ExecutionContext* ctx) const {
  bool want_edge = !op_.edge_var.empty();
  std::vector<uint64_t> sel;
  std::vector<int64_t> edge_vals;
  const Column& src = in.column(src_col_);
  const Column& dst = in.column(dst_col_);

  if (use_index_) {
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      auto s = static_cast<uint64_t>(src.int_at(r));
      auto d = static_cast<uint64_t>(dst.int_at(r));
      graph::AdjacencyList adj =
          ctx->index().Neighbors(op_.edge_label, op_.dir, s);
      // Sorted by neighbor: binary search the run of `d`. Bag semantics:
      // each parallel edge contributes one output row even when the edge
      // binding itself was trimmed.
      const uint64_t* begin = adj.neighbors;
      const uint64_t* end = adj.neighbors + adj.size;
      const uint64_t* lo = std::lower_bound(begin, end, d);
      for (const uint64_t* p = lo; p != end && *p == d; ++p) {
        sel.push_back(r);
        if (want_edge) {
          edge_vals.push_back(static_cast<int64_t>(adj.edges[p - begin]));
        }
      }
    }
  } else {
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      auto s = static_cast<uint64_t>(src.int_at(r));
      auto d = static_cast<uint64_t>(dst.int_at(r));
      auto it = key_to_edges_.find({skey_->int_at(s), dkey_->int_at(d)});
      if (it == key_to_edges_.end()) continue;
      for (uint64_t e : it->second) {
        sel.push_back(r);
        if (want_edge) edge_vals.push_back(static_cast<int64_t>(e));
      }
    }
  }

  std::vector<std::vector<int64_t>> new_cols;
  if (want_edge) new_cols.push_back(std::move(edge_vals));
  return EmitExpanded(in, sel, new_cols, out, ctx);
}

// ---------------------------------------------------------------------------
// VertexFilterOp
// ---------------------------------------------------------------------------

Status VertexFilterOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(var_col_, input.GetColumnIndex(op_.var));
  storage::TablePtr base;
  if (op_.is_edge) {
    RELGO_ASSIGN_OR_RETURN(base, ctx->EdgeTable(op_.label));
  } else {
    RELGO_ASSIGN_OR_RETURN(base, ctx->VertexTable(op_.label));
  }
  RELGO_ASSIGN_OR_RETURN(bitmap_, FilterBitmap(base, op_.predicate, ctx));
  output_schema_ = input;
  return Status::OK();
}

Status VertexFilterOp::Process(const Batch& in, Batch* out,
                               ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  const Column& var = in.column(var_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    auto rid = static_cast<uint64_t>(var.int_at(r));
    if (bitmap_.empty() || bitmap_[rid]) sel.push_back(r);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  *out = in.Gather(sel);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// NotEqualOp
// ---------------------------------------------------------------------------

Status NotEqualOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  (void)ctx;
  RELGO_ASSIGN_OR_RETURN(a_col_, input.GetColumnIndex(op_.var_a));
  RELGO_ASSIGN_OR_RETURN(b_col_, input.GetColumnIndex(op_.var_b));
  output_schema_ = input;
  return Status::OK();
}

Status NotEqualOp::Process(const Batch& in, Batch* out,
                           ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  const Column& a = in.column(a_col_);
  const Column& b = in.column(b_col_);
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    if (a.int_at(r) != b.int_at(r)) sel.push_back(r);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));
  *out = in.Gather(sel);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScanGraphTableOp
// ---------------------------------------------------------------------------

Status ScanGraphTableOp::Prepare(const Schema& input, ExecutionContext* ctx) {
  auto resolve = [&](const std::string& var, bool* is_edge,
                     int* label) -> Status {
    for (const auto& [v, l] : op_.vertex_var_labels) {
      if (v == var) {
        *is_edge = false;
        *label = l;
        return Status::OK();
      }
    }
    for (const auto& [v, l] : op_.edge_var_labels) {
      if (v == var) {
        *is_edge = true;
        *label = l;
        return Status::OK();
      }
    }
    return Status::NotFound("SCAN_GRAPH_TABLE: unknown var '" + var + "'");
  };

  output_schema_ = Schema();
  sources_.clear();
  for (const auto& rid_var : op_.rowid_passthrough) {
    RELGO_ASSIGN_OR_RETURN(size_t bcol, input.GetColumnIndex(rid_var));
    RELGO_RETURN_NOT_OK(
        output_schema_.AddColumn({rid_var + ".$rid", LogicalType::kInt64}));
    sources_.push_back({nullptr, -1, bcol});
  }
  for (const auto& proj : op_.projections) {
    bool is_edge = false;
    int label = -1;
    RELGO_RETURN_NOT_OK(resolve(proj.var, &is_edge, &label));
    storage::TablePtr base;
    if (is_edge) {
      RELGO_ASSIGN_OR_RETURN(base, ctx->EdgeTable(label));
    } else {
      RELGO_ASSIGN_OR_RETURN(base, ctx->VertexTable(label));
    }
    RELGO_ASSIGN_OR_RETURN(size_t bcol, input.GetColumnIndex(proj.var));
    if (proj.column == "$rid") {
      RELGO_RETURN_NOT_OK(
          output_schema_.AddColumn({proj.output_name, LogicalType::kInt64}));
      sources_.push_back({nullptr, -1, bcol});
    } else {
      RELGO_ASSIGN_OR_RETURN(size_t raw,
                             base->schema().GetColumnIndex(proj.column));
      RELGO_RETURN_NOT_OK(output_schema_.AddColumn(
          {proj.output_name, base->schema().column(raw).type}));
      sources_.push_back({base, static_cast<int>(raw), bcol});
    }
  }
  return Status::OK();
}

Status ScanGraphTableOp::Process(const Batch& in, Batch* out,
                                 ExecutionContext* ctx) const {
  for (const Source& src : sources_) {
    const Column& bind = in.column(src.binding_col);
    if (src.raw_col < 0) {
      // The row id itself: the binding column already holds it.
      out->AddColumn(in.column_ref(src.binding_col));
    } else {
      const Column& raw = src.base->column(static_cast<size_t>(src.raw_col));
      Column col(raw.type());
      col.Reserve(in.num_rows());
      for (uint64_t r = 0; r < in.num_rows(); ++r) {
        col.AppendFrom(raw, static_cast<uint64_t>(bind.int_at(r)));
      }
      out->AddOwned(std::move(col));
    }
  }
  out->SetNumRows(in.num_rows());
  return ctx->ChargeRows(in.num_rows());
}

// ---------------------------------------------------------------------------
// MaterializeSink / HashBuildSink
// ---------------------------------------------------------------------------

namespace {

/// Per-worker (morsel, batch) collection, the shared state of every
/// batch-collecting sink (MaterializeSink, HashBuildSink, and TopKSink's
/// sort/limit modes — which derive from it).
struct BatchListState : SinkState {
  std::vector<std::pair<uint64_t, Batch>> batches;  // (morsel, batch)
};

/// Per-worker (morsel, batch) lists sorted into global morsel order — the
/// sequential (num_threads = 1) order, which in turn equals the
/// materializing executor's, so downstream order-sensitive consumers break
/// ties identically.
std::vector<const std::pair<uint64_t, Batch>*> OrderedBatches(
    const std::vector<std::unique_ptr<SinkState>>& states) {
  std::vector<const std::pair<uint64_t, Batch>*> ordered;
  for (const auto& state : states) {
    for (const auto& entry :
         static_cast<BatchListState*>(state.get())->batches) {
      ordered.push_back(&entry);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return ordered;
}

/// Concatenates morsel-ordered batches into one table.
TablePtr ConcatBatches(
    const std::vector<const std::pair<uint64_t, Batch>*>& ordered,
    const std::string& name, const Schema& schema) {
  auto out = std::make_shared<Table>(name, schema);
  for (const auto* entry : ordered) {
    const Batch& b = entry->second;
    for (size_t c = 0; c < b.num_columns(); ++c) {
      out->column(c).AppendRange(b.column(c), 0, b.num_rows());
    }
  }
  out->FinishBulkAppend();
  return out;
}

}  // namespace

Status MaterializeSink::Prepare(const Schema& input, ExecutionContext* ctx) {
  (void)ctx;
  schema_ = input;
  return Status::OK();
}

std::unique_ptr<SinkState> MaterializeSink::MakeState() const {
  return std::make_unique<BatchListState>();
}

Status MaterializeSink::Consume(SinkState* state, const Batch& in,
                                uint64_t morsel, ExecutionContext* ctx) const {
  (void)ctx;
  static_cast<BatchListState*>(state)->batches.emplace_back(morsel, in);
  return Status::OK();
}

Result<TablePtr> MaterializeSink::Finish(
    std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
    ExecutionContext* ctx) {
  (void)scheduler;
  (void)ctx;
  return ConcatBatches(OrderedBatches(states), name_, schema_);
}

Status HashBuildSink::Prepare(const Schema& input, ExecutionContext* ctx) {
  (void)ctx;
  schema_ = input;
  return Status::OK();
}

std::unique_ptr<SinkState> HashBuildSink::MakeState() const {
  return std::make_unique<BatchListState>();
}

Status HashBuildSink::Consume(SinkState* state, const Batch& in,
                              uint64_t morsel, ExecutionContext* ctx) const {
  (void)ctx;
  static_cast<BatchListState*>(state)->batches.emplace_back(morsel, in);
  return Status::OK();
}

Result<TablePtr> HashBuildSink::Finish(
    std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
    ExecutionContext* ctx) {
  TablePtr table = ConcatBatches(OrderedBatches(states), "build", schema_);

  Timer timer;
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kHashBuild));
  ht_ = std::make_shared<JoinHashTable>();
  RELGO_RETURN_NOT_OK(ht_->BeginBuild(*table, keys_,
                                      ctx->options().dictionary_encoding));

  // Phase 1: morsel-parallel scatter into per-worker partition runs (no
  // ordering assumed; FinalizePartition sorts each partition by row id).
  uint64_t total_rows = table->num_rows();
  uint64_t morsels = (total_rows + kBatchRows - 1) / kBatchRows;
  int max_workers = ResolveNumThreads(ctx->options());
  std::vector<JoinHashTable::BuildPartial> partials(
      static_cast<size_t>(max_workers));
  JoinHashTable* ht = ht_.get();
  RELGO_RETURN_NOT_OK(scheduler->Run(
      morsels, max_workers, [&](int worker, uint64_t morsel) -> Status {
        RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
        uint64_t begin = morsel * kBatchRows;
        uint64_t count = std::min(kBatchRows, total_rows - begin);
        ht->PartitionRows(begin, count, &partials[worker]);
        return Status::OK();
      }));

  // Phase 2: partition-parallel finalize into the preallocated directory.
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kHashFinalize));
  RELGO_RETURN_NOT_OK(scheduler->Run(
      JoinHashTable::kNumPartitions, max_workers,
      [&](int, uint64_t p) -> Status {
        ht->FinalizePartition(static_cast<size_t>(p), &partials);
        return Status::OK();
      }));

  double build_ms = timer.ElapsedMillis();
  if (QueryProfile* qp = ctx->profile()) {
    qp->AddBuildMs(build_ms);
    if (join_node_ != nullptr) {
      // The join's breaker-side cost: rows_in counts the hashed build rows
      // (the probe pipeline adds its own rows_in later); rows_out stays
      // zero so the join's actual output cardinality remains engine-
      // invariant.
      OperatorProfile prof;
      prof.rows_in = total_rows;
      prof.invocations = 1;
      prof.wall_ms = build_ms;
      qp->Accumulate(join_node_, prof);
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// AggregateSink
// ---------------------------------------------------------------------------

namespace {

/// Group-by key wrapper with Value-based equality (mirrors the seed
/// executor's aggregate).
struct GroupKey {
  std::vector<Value> values;
  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!(values[i] == other.values[i])) return false;
    }
    return true;
  }
};
struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k.values) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct AggState {
  int64_t count = 0;
  Value min, max;
  double sum = 0;
  int64_t isum = 0;

  void MergeFrom(const AggState& other) {
    count += other.count;
    if (!other.min.is_null() && (min.is_null() || other.min < min)) {
      min = other.min;
    }
    if (!other.max.is_null() && (max.is_null() || max < other.max)) {
      max = other.max;
    }
    sum += other.sum;
    isum += other.isum;
  }
};

/// One group's partial aggregate plus where it was first seen. The
/// (morsel, row) coordinate orders merged groups identically to a
/// sequential first-seen scan, making group output order independent of
/// thread count (and equal to the materializing executor's).
struct PartialGroup {
  std::vector<AggState> states;
  uint64_t first_morsel = 0;
  uint64_t first_row = 0;
};

struct AggregatePartial : SinkState {
  std::unordered_map<GroupKey, PartialGroup, GroupKeyHash> groups;
  /// Typed-path twin of `groups` (exec/vector/typed_keys.h): keyed on
  /// byte-encoded group keys read from payload spans. A run populates
  /// exactly one of the two maps (all workers share the sink's encoder).
  std::unordered_map<vector::EncodedGroupKey, PartialGroup,
                     vector::EncodedGroupKeyHash>
      egroups;
};

}  // namespace

Status AggregateSink::Prepare(const Schema& input, ExecutionContext* ctx) {
  group_cols_.clear();
  for (const auto& g : op_.group_by) {
    RELGO_ASSIGN_OR_RETURN(size_t idx, input.GetColumnIndex(g));
    group_cols_.push_back(idx);
  }
  agg_cols_.clear();
  for (const auto& a : op_.aggregates) {
    if (a.input_column.empty()) {
      agg_cols_.push_back(-1);
    } else {
      RELGO_ASSIGN_OR_RETURN(size_t idx, input.GetColumnIndex(a.input_column));
      agg_cols_.push_back(static_cast<int>(idx));
    }
  }
  input_schema_ = input;
  encoder_.reset();
  if (ctx->options().vectorized_kernels) {
    std::vector<LogicalType> key_types;
    for (size_t c : group_cols_) key_types.push_back(input.column(c).type);
    encoder_ = vector::KeyEncoder::Make(key_types,
                                        ctx->options().dictionary_encoding);
  }
  return Status::OK();
}

std::unique_ptr<SinkState> AggregateSink::MakeState() const {
  return std::make_unique<AggregatePartial>();
}

Status AggregateSink::Consume(SinkState* state, const Batch& in,
                              uint64_t morsel, ExecutionContext* ctx) const {
  (void)ctx;
  auto* partial = static_cast<AggregatePartial*>(state);
  if (encoder_ != nullptr) {
    // Typed path: encoded keys + span-read aggregate inputs; a Value is
    // only boxed when a running MIN/MAX improves.
    std::vector<const Column*> key_cols;
    key_cols.reserve(group_cols_.size());
    for (size_t c : group_cols_) key_cols.push_back(&in.column(c));
    std::vector<vector::AggColumnView> views(op_.aggregates.size());
    for (size_t a = 0; a < op_.aggregates.size(); ++a) {
      if (agg_cols_[a] >= 0) {
        views[a] = vector::AggColumnView(
            &in.column(static_cast<size_t>(agg_cols_[a])));
      }
    }
    vector::EncodedGroupKey key;
    for (uint64_t r = 0; r < in.num_rows(); ++r) {
      encoder_->Encode(key_cols.data(), r, &key);
      auto it = partial->egroups.find(key);
      if (it == partial->egroups.end()) {
        PartialGroup group;
        group.states.resize(op_.aggregates.size());
        group.first_morsel = morsel;
        group.first_row = r;
        it = partial->egroups.emplace(key, std::move(group)).first;
      }
      for (size_t a = 0; a < op_.aggregates.size(); ++a) {
        AggState& st = it->second.states[a];
        st.count += 1;
        if (agg_cols_[a] >= 0) views[a].Update(r, &st);
      }
    }
    return Status::OK();
  }
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    GroupKey key;
    key.values.reserve(group_cols_.size());
    for (size_t c : group_cols_) key.values.push_back(in.column(c).GetValue(r));
    auto it = partial->groups.find(key);
    if (it == partial->groups.end()) {
      PartialGroup group;
      group.states.resize(op_.aggregates.size());
      group.first_morsel = morsel;
      group.first_row = r;
      it = partial->groups.emplace(std::move(key), std::move(group)).first;
    }
    for (size_t a = 0; a < op_.aggregates.size(); ++a) {
      AggState& st = it->second.states[a];
      st.count += 1;
      if (agg_cols_[a] >= 0) {
        Value v = in.column(static_cast<size_t>(agg_cols_[a])).GetValue(r);
        if (!v.is_null()) {
          if (st.min.is_null() || v < st.min) st.min = v;
          if (st.max.is_null() || st.max < v) st.max = v;
          if (v.type() == LogicalType::kInt64) st.isum += v.int_value();
          if (v.type() == LogicalType::kDouble) st.sum += v.double_value();
        }
      }
    }
  }
  return Status::OK();
}

Result<TablePtr> AggregateSink::Finish(
    std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
    ExecutionContext* ctx) {
  (void)scheduler;
  // Merge thread-local partials; a group's position is its globally
  // earliest first-seen (morsel, row), so the output order matches the
  // sequential scan regardless of which worker saw which morsel. The
  // boxed and typed (encoder_) paths share the merge/order logic — a run
  // only ever populates one of the two partial maps.
  auto merge_one = [](PartialGroup* dst, PartialGroup* src) {
    for (size_t a = 0; a < dst->states.size(); ++a) {
      dst->states[a].MergeFrom(src->states[a]);
    }
    if (std::make_pair(src->first_morsel, src->first_row) <
        std::make_pair(dst->first_morsel, dst->first_row)) {
      dst->first_morsel = src->first_morsel;
      dst->first_row = src->first_row;
    }
  };
  auto merge_map = [&](auto* dst_map, auto* src_map) {
    for (auto& [key, src] : *src_map) {
      auto it = dst_map->find(key);
      if (it == dst_map->end()) {
        dst_map->emplace(key, std::move(src));
      } else {
        merge_one(&it->second, &src);
      }
    }
  };
  auto sorted_entries = [](const auto& map) {
    std::vector<const typename std::decay_t<decltype(map)>::value_type*>
        order;
    order.reserve(map.size());
    for (const auto& entry : map) order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      return std::make_pair(a->second.first_morsel, a->second.first_row) <
             std::make_pair(b->second.first_morsel, b->second.first_row);
    });
    return order;
  };
  std::unordered_map<GroupKey, PartialGroup, GroupKeyHash> groups;
  std::unordered_map<vector::EncodedGroupKey, PartialGroup,
                     vector::EncodedGroupKeyHash>
      egroups;
  for (const auto& state : states) {
    auto* partial = static_cast<AggregatePartial*>(state.get());
    merge_map(&groups, &partial->groups);
    merge_map(&egroups, &partial->egroups);
  }
  auto order = sorted_entries(groups);
  auto eorder = sorted_entries(egroups);

  Schema schema;
  for (size_t g = 0; g < op_.group_by.size(); ++g) {
    RELGO_RETURN_NOT_OK(schema.AddColumn(
        {op_.group_by[g], input_schema_.column(group_cols_[g]).type}));
  }
  for (size_t a = 0; a < op_.aggregates.size(); ++a) {
    LogicalType type = LogicalType::kInt64;
    if (op_.aggregates[a].func != plan::AggFunc::kCount && agg_cols_[a] >= 0) {
      type = input_schema_.column(static_cast<size_t>(agg_cols_[a])).type;
    }
    RELGO_RETURN_NOT_OK(
        schema.AddColumn({op_.aggregates[a].output_name, type}));
  }

  auto out = std::make_shared<Table>("aggregate", schema);
  // SQL semantics: a global aggregate (no GROUP BY) over empty input still
  // yields one row (COUNT = 0, MIN/MAX/SUM = NULL).
  if (op_.group_by.empty() && order.empty() && eorder.empty()) {
    std::vector<Value> row;
    for (const auto& a : op_.aggregates) {
      row.push_back(a.func == plan::AggFunc::kCount ? Value::Int(0)
                                                    : Value::Null());
    }
    RELGO_RETURN_NOT_OK(out->AppendRow(row));
    RELGO_RETURN_NOT_OK(ctx->ChargeRows(1));
    return TablePtr(out);
  }
  auto emit = [&](std::vector<Value> row,
                  const std::vector<AggState>& agg_states) -> Status {
    for (size_t a = 0; a < op_.aggregates.size(); ++a) {
      const AggState& st = agg_states[a];
      switch (op_.aggregates[a].func) {
        case plan::AggFunc::kCount:
          row.push_back(Value::Int(st.count));
          break;
        case plan::AggFunc::kMin:
          row.push_back(st.min);
          break;
        case plan::AggFunc::kMax:
          row.push_back(st.max);
          break;
        case plan::AggFunc::kSum: {
          LogicalType type = schema.column(op_.group_by.size() + a).type;
          row.push_back(type == LogicalType::kDouble ? Value::Double(st.sum)
                                                     : Value::Int(st.isum));
          break;
        }
      }
    }
    return out->AppendRow(row);
  };
  if (encoder_ != nullptr) {
    std::vector<Value> key_vals;
    for (const auto* entry : eorder) {
      encoder_->Decode(entry->first, &key_vals);
      RELGO_RETURN_NOT_OK(emit(key_vals, entry->second.states));
    }
  } else {
    for (const auto* entry : order) {
      RELGO_RETURN_NOT_OK(emit(entry->first.values, entry->second.states));
    }
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(out->num_rows()));
  return TablePtr(out);
}

// ---------------------------------------------------------------------------
// TopKSink
// ---------------------------------------------------------------------------

namespace {

/// One kept candidate row in heap mode: the full row as Values plus its
/// global (morsel, row) sequence coordinate for stable tie-breaking.
struct HeapRow {
  std::vector<Value> vals;
  uint64_t morsel = 0;
  uint64_t row = 0;
};

struct TopKState : BatchListState {  // batches used by sort / limit modes
  std::vector<HeapRow> heap;         // heap mode
  uint64_t rows_seen = 0;
};

}  // namespace

Status TopKSink::Prepare(const Schema& input, ExecutionContext* ctx) {
  schema_ = input;
  key_cols_.clear();
  if (order_ != nullptr) {
    for (const auto& k : order_->keys) {
      RELGO_ASSIGN_OR_RETURN(size_t idx, input.GetColumnIndex(k.column));
      key_cols_.push_back(idx);
    }
  }
  // Early-exit is exact but consumes fewer upstream rows than the oracle;
  // profiled runs keep it off so per-node actual counts stay
  // engine-invariant (profile_test's parity grids).
  early_exit_ = order_ == nullptr && limit_ >= 0 && ctx->profile() == nullptr;
  typed_cmp_ = ctx->options().vectorized_kernels;
  dict_cmp_ = ctx->options().dictionary_encoding;
  frontier_next_ = 0;
  pending_.clear();
  prefix_rows_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

void TopKSink::MorselFinished(uint64_t morsel, uint64_t rows) const {
  if (!early_exit_) return;
  std::lock_guard<std::mutex> lock(exit_mu_);
  if (morsel != frontier_next_) {
    pending_.emplace(morsel, rows);
    return;
  }
  uint64_t prefix = prefix_rows_.load(std::memory_order_relaxed) + rows;
  ++frontier_next_;
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == frontier_next_;
       it = pending_.erase(it)) {
    prefix += it->second;
    ++frontier_next_;
  }
  prefix_rows_.store(prefix, std::memory_order_relaxed);
}

std::unique_ptr<SinkState> TopKSink::MakeState() const {
  return std::make_unique<TopKState>();
}

Status TopKSink::Consume(SinkState* state, const Batch& in, uint64_t morsel,
                         ExecutionContext* ctx) const {
  (void)ctx;
  auto* s = static_cast<TopKState*>(state);
  s->rows_seen += in.num_rows();

  if (!HeapMode()) {
    if (limit_ != 0) s->batches.emplace_back(morsel, in);
    // The early-exit frontier advances in MorselFinished, which the
    // pipeline calls after this batch is safely stored.
    return Status::OK();
  }

  if (limit_ == 0) return Status::OK();
  auto k = static_cast<size_t>(limit_);
  std::vector<HeapRow>& heap = s->heap;
  // Max-heap under the sort order: the worst kept row sits on top and
  // fences off non-qualifying candidates without materializing them.
  auto heap_cmp = [&](const HeapRow& a, const HeapRow& b) {
    int c = CompareSortKeyValues(
        order_->keys, [&](size_t i) { return a.vals[key_cols_[i]]; },
        [&](size_t i) { return b.vals[key_cols_[i]]; });
    if (c != 0) return c < 0;
    return std::make_pair(a.morsel, a.row) < std::make_pair(b.morsel, b.row);
  };
  // The fence test reads the incoming batch through typed spans when
  // enabled; retained heap rows stay boxed either way (sign-identical to
  // the boxed comparison, see vector::TypedColumnValueCompare).
  auto fence_cmp = [&](uint64_t r, const HeapRow& worst) {
    if (!typed_cmp_) {
      return CompareSortKeyValues(
          order_->keys,
          [&](size_t i) { return in.column(key_cols_[i]).GetValue(r); },
          [&](size_t i) { return worst.vals[key_cols_[i]]; });
    }
    for (size_t i = 0; i < order_->keys.size(); ++i) {
      int c = vector::TypedColumnValueCompare(in.column(key_cols_[i]), r,
                                              worst.vals[key_cols_[i]]);
      if (c != 0) return order_->keys[i].ascending ? c : -c;
    }
    return 0;
  };
  for (uint64_t r = 0; r < in.num_rows(); ++r) {
    if (heap.size() == k) {
      const HeapRow& worst = heap.front();
      int c = fence_cmp(r, worst);
      bool before_worst =
          c != 0 ? c < 0
                 : std::make_pair(morsel, r) <
                       std::make_pair(worst.morsel, worst.row);
      if (!before_worst) continue;
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.pop_back();
    }
    HeapRow candidate;
    candidate.vals.reserve(in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      candidate.vals.push_back(in.column(c).GetValue(r));
    }
    candidate.morsel = morsel;
    candidate.row = r;
    heap.push_back(std::move(candidate));
    std::push_heap(heap.begin(), heap.end(), heap_cmp);
  }
  return Status::OK();
}

Result<TablePtr> TopKSink::Finish(
    std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
    ExecutionContext* ctx) {
  uint64_t total = 0;
  for (const auto& state : states) {
    total += static_cast<TopKState*>(state.get())->rows_seen;
  }
  Timer timer;
  auto out = std::make_shared<Table>("result", schema_);

  if (HeapMode()) {
    // Merge the per-worker top-k candidates (<= workers * k rows) and sort
    // them once; the (morsel, row) tie-break reproduces the oracle's
    // stable sort over the sequential row order.
    std::vector<HeapRow> candidates;
    for (auto& state : states) {
      auto& heap = static_cast<TopKState*>(state.get())->heap;
      std::move(heap.begin(), heap.end(), std::back_inserter(candidates));
      heap.clear();
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](const HeapRow& a, const HeapRow& b) {
                int c = CompareSortKeyValues(
                    order_->keys,
                    [&](size_t i) { return a.vals[key_cols_[i]]; },
                    [&](size_t i) { return b.vals[key_cols_[i]]; });
                if (c != 0) return c < 0;
                return std::make_pair(a.morsel, a.row) <
                       std::make_pair(b.morsel, b.row);
              });
    if (candidates.size() > static_cast<size_t>(limit_)) {
      candidates.resize(static_cast<size_t>(limit_));
    }
    for (const HeapRow& row : candidates) {
      RELGO_RETURN_NOT_OK(out->AppendRow(row.vals));
    }
  } else if (order_ != nullptr) {
    // Parallel merge sort over the morsel-ordered row space: chunk-sort on
    // the scheduler, then k-way merge the sorted runs.
    auto ordered = OrderedBatches(states);
    struct RowRef {
      const Batch* batch;
      uint64_t row;
    };
    std::vector<RowRef> refs;
    refs.reserve(total);
    for (const auto* entry : ordered) {
      for (uint64_t r = 0; r < entry->second.num_rows(); ++r) {
        refs.push_back(RowRef{&entry->second, r});
      }
    }
    uint64_t n = refs.size();
    // Position in `refs` IS the global sequence number, so index order is
    // the stable-sort tie-break. With typed_cmp_ the O(n log n)
    // comparisons read payload spans instead of boxing two Values each.
    auto before = [&](uint64_t i, uint64_t j) {
      int c = 0;
      if (typed_cmp_) {
        for (size_t k = 0; k < order_->keys.size(); ++k) {
          c = vector::TypedColumnCompare(
              refs[i].batch->column(key_cols_[k]), refs[i].row,
              refs[j].batch->column(key_cols_[k]), refs[j].row, dict_cmp_);
          if (c != 0) {
            c = order_->keys[k].ascending ? c : -c;
            break;
          }
        }
      } else {
        c = CompareSortKeyValues(
            order_->keys,
            [&](size_t k) {
              return refs[i].batch->column(key_cols_[k]).GetValue(refs[i].row);
            },
            [&](size_t k) {
              return refs[j].batch->column(key_cols_[k]).GetValue(refs[j].row);
            });
      }
      if (c != 0) return c < 0;
      return i < j;
    };
    std::vector<uint64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    int max_workers = ResolveNumThreads(ctx->options());
    uint64_t chunks = static_cast<uint64_t>(max_workers) * 2;
    if (n < 4096 || chunks < 2) chunks = 1;
    std::vector<std::pair<uint64_t, uint64_t>> runs;  // [begin, end)
    for (uint64_t c = 0; c < chunks; ++c) {
      uint64_t lo = n * c / chunks, hi = n * (c + 1) / chunks;
      if (lo < hi) runs.emplace_back(lo, hi);
    }
    RELGO_RETURN_NOT_OK(scheduler->Run(
        runs.size(), max_workers, [&](int, uint64_t run) -> Status {
          RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
          std::sort(order.begin() + runs[run].first,
                    order.begin() + runs[run].second, before);
          return Status::OK();
        }));
    std::vector<uint64_t> merged;
    merged.reserve(n);
    if (runs.size() <= 1) {
      merged = std::move(order);
    } else {
      std::vector<uint64_t> cursor(runs.size());
      auto run_after = [&](size_t a, size_t b) {  // min-heap on run heads
        return before(order[runs[b].first + cursor[b]],
                      order[runs[a].first + cursor[a]]);
      };
      std::priority_queue<size_t, std::vector<size_t>, decltype(run_after)>
          heads(run_after);
      for (size_t r = 0; r < runs.size(); ++r) heads.push(r);
      while (!heads.empty()) {
        size_t r = heads.top();
        heads.pop();
        merged.push_back(order[runs[r].first + cursor[r]]);
        if (runs[r].first + ++cursor[r] < runs[r].second) heads.push(r);
      }
    }
    uint64_t emit = limit_ >= 0 && static_cast<uint64_t>(limit_) < n
                        ? static_cast<uint64_t>(limit_)
                        : n;
    for (size_t c = 0; c < out->num_columns(); ++c) {
      Column& col = out->column(c);
      col.Reserve(emit);
      for (uint64_t i = 0; i < emit; ++i) {
        col.AppendFrom(refs[merged[i]].batch->column(c), refs[merged[i]].row);
      }
    }
    out->FinishBulkAppend();
  } else {
    // Plain LIMIT: truncate the morsel-ordered concatenation at k rows.
    auto ordered = OrderedBatches(states);
    uint64_t remaining = limit_ >= 0 ? static_cast<uint64_t>(limit_) : total;
    for (const auto* entry : ordered) {
      if (remaining == 0) break;
      const Batch& b = entry->second;
      uint64_t take = std::min(remaining, b.num_rows());
      for (size_t c = 0; c < b.num_columns(); ++c) {
        out->column(c).AppendRange(b.column(c), 0, take);
      }
      remaining -= take;
    }
    out->FinishBulkAppend();
  }
  double finish_ms = timer.ElapsedMillis();

  // Budget parity with the materializing post-ops: SortTableByKeys charges
  // the full row count, LimitTableRows charges k only when it truncates.
  if (order_ != nullptr) RELGO_RETURN_NOT_OK(ctx->ChargeRows(total));
  if (limit_ >= 0 && static_cast<uint64_t>(limit_) < total) {
    RELGO_RETURN_NOT_OK(ctx->ChargeRows(static_cast<uint64_t>(limit_)));
  }

  if (QueryProfile* qp = ctx->profile()) {
    if (order_ != nullptr) qp->AddSortMs(finish_ms);
    if (order_ != nullptr && limit_node_ != nullptr) {
      // The fused ORDER BY's entry (the generic sink attribution goes to
      // the LIMIT node): sorting preserves cardinality, like the oracle.
      OperatorProfile prof;
      prof.rows_in = total;
      prof.rows_out = total;
      prof.invocations = 1;
      prof.wall_ms = finish_ms;
      qp->Accumulate(order_, prof);
    }
  }
  return TablePtr(out);
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
