#ifndef RELGO_EXEC_PIPELINE_OPERATORS_H_
#define RELGO_EXEC_PIPELINE_OPERATORS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/context.h"
#include "exec/exec_common.h"
#include "exec/join_hash_table.h"
#include "exec/pipeline/batch.h"
#include "exec/vector/compiled_expr.h"
#include "exec/vector/typed_keys.h"
#include "plan/physical_plan.h"

namespace relgo {
namespace exec {
namespace pipeline {

class TaskScheduler;

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

/// A non-blocking operator of a pipeline: consumes one batch, produces one
/// batch (possibly larger — expansions — or smaller — filters).
///
/// Lifecycle: Prepare() runs once, single-threaded, before the pipeline is
/// scheduled; it resolves column indexes against the input schema, binds
/// expressions, and precomputes shared read-only state (base-table filter
/// bitmaps, index-free fallback hash tables). Process() is const and must
/// be thread-safe: the scheduler calls it concurrently on distinct batches.
class StreamingOp {
 public:
  virtual ~StreamingOp() = default;

  virtual Status Prepare(const storage::Schema& input,
                         ExecutionContext* ctx) = 0;
  const storage::Schema& output_schema() const { return output_schema_; }

  virtual Status Process(const Batch& in, Batch* out,
                         ExecutionContext* ctx) const = 0;

 protected:
  storage::Schema output_schema_;
};

using StreamingOpPtr = std::unique_ptr<StreamingOp>;

/// sigma over the streamed schema (PhysFilter).
class FilterOp : public StreamingOp {
 public:
  explicit FilterOp(const plan::PhysFilter& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysFilter& op_;
  /// Bound per-execution clone of op_.predicate (plans can share
  /// expression trees with their query; Bind mutates, so concurrent
  /// executions each bind their own copy).
  storage::ExprPtr predicate_;
  /// Vectorized lowering of predicate_ (null when the tree is outside
  /// the lowerable subset or ExecutionOptions::vectorized_kernels is
  /// off); Process falls back to row-at-a-time EvaluateBool.
  std::unique_ptr<vector::CompiledPredicate> compiled_;
};

/// pi with renaming (PhysProject); pure column sharing, zero-copy.
class ProjectOp : public StreamingOp {
 public:
  explicit ProjectOp(const plan::PhysProject& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysProject& op_;
  std::vector<size_t> src_cols_;
};

/// Probe side of a hash join whose build side was materialized AND hashed
/// by an upstream pipeline ending in a HashBuildSink (PhysHashJoin and
/// PhysPatternJoin both lower to this; the pattern join passes its shared
/// variables as drop_right). The JoinHashTable arrives fully constructed —
/// partition-parallel, see HashBuildSink — so Prepare only resolves the
/// probe-side columns and the output schema.
class HashJoinProbeOp : public StreamingOp {
 public:
  HashJoinProbeOp(std::vector<std::string> left_keys,
                  std::vector<std::string> drop_right,
                  storage::TablePtr build,
                  std::shared_ptr<const JoinHashTable> ht)
      : left_keys_(std::move(left_keys)),
        drop_right_(std::move(drop_right)),
        build_(std::move(build)),
        ht_(std::move(ht)) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  std::vector<std::string> left_keys_, drop_right_;
  storage::TablePtr build_;
  std::shared_ptr<const JoinHashTable> ht_;
  std::vector<size_t> probe_cols_;
  std::vector<size_t> build_out_cols_;  // build columns kept in the output
};

/// GRainDB predefined join, edge side driving (PhysRidLookupJoin).
class RidLookupJoinOp : public StreamingOp {
 public:
  explicit RidLookupJoinOp(const plan::PhysRidLookupJoin& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysRidLookupJoin& op_;
  size_t rid_col_ = 0;
  storage::TablePtr vtable_;
  SharedBitmap bitmap_;
  std::vector<int> raw_indexes_;
};

/// GRainDB predefined join, vertex side driving (PhysRidExpandJoin).
class RidExpandJoinOp : public StreamingOp {
 public:
  explicit RidExpandJoinOp(const plan::PhysRidExpandJoin& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysRidExpandJoin& op_;
  size_t rid_col_ = 0;
  storage::TablePtr etable_;
  SharedBitmap bitmap_;
  std::vector<int> raw_indexes_;
};

/// EXPAND_EDGE (PhysExpandEdge): one output row per incident edge.
class ExpandEdgeOp : public StreamingOp {
 public:
  explicit ExpandEdgeOp(const plan::PhysExpandEdge& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysExpandEdge& op_;
  size_t from_col_ = 0;
  SharedBitmap bitmap_;
};

/// GET_VERTEX (PhysGetVertex): edge binding -> endpoint binding.
class GetVertexOp : public StreamingOp {
 public:
  explicit GetVertexOp(const plan::PhysGetVertex& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysGetVertex& op_;
  size_t edge_col_ = 0;
  SharedBitmap bitmap_;
};

/// Fused EXPAND (PhysExpand). With the graph index, streams the VE-index
/// adjacency; without it (RelGoHash), probes an FK hash table over the edge
/// relation built once during Prepare (Case II reduction).
class ExpandOp : public StreamingOp {
 public:
  explicit ExpandOp(const plan::PhysExpand& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysExpand& op_;
  size_t from_col_ = 0;
  bool use_index_ = false;
  SharedBitmap bitmap_;
  // Index-free fallback state (all read-only after Prepare). The TablePtrs
  // keep the borrowed column/index pointers alive.
  storage::TablePtr etable_, from_table_, to_table_;
  const storage::Column* from_key_col_ = nullptr;
  const storage::Column* to_fk_col_ = nullptr;
  const std::unordered_map<int64_t, uint64_t>* to_key_index_ = nullptr;
  std::unordered_map<int64_t, std::vector<uint64_t>> fk_to_edges_;
};

/// EXPAND_INTERSECT (PhysExpandIntersect): k-way sorted adjacency
/// intersection, the wco star join.
class ExpandIntersectOp : public StreamingOp {
 public:
  explicit ExpandIntersectOp(const plan::PhysExpandIntersect& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysExpandIntersect& op_;
  std::vector<size_t> from_cols_;
  SharedBitmap bitmap_;
  bool want_edges_ = false;
};

/// EDGE_VERIFY (PhysEdgeVerify): closes one edge between two bound
/// vertices; binary search of the sorted adjacency run, or a
/// (src_key, dst_key) hash probe when the index is bypassed.
class EdgeVerifyOp : public StreamingOp {
 public:
  explicit EdgeVerifyOp(const plan::PhysEdgeVerify& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysEdgeVerify& op_;
  size_t src_col_ = 0, dst_col_ = 0;
  bool use_index_ = false;
  storage::TablePtr stable_, dtable_;
  const storage::Column* skey_ = nullptr;
  const storage::Column* dkey_ = nullptr;
  std::unordered_map<std::pair<int64_t, int64_t>, std::vector<uint64_t>,
                     PairHash>
      key_to_edges_;
};

/// VERTEX_FILTER (PhysVertexFilter): bitmap membership of the bound row id.
class VertexFilterOp : public StreamingOp {
 public:
  explicit VertexFilterOp(const plan::PhysVertexFilter& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysVertexFilter& op_;
  size_t var_col_ = 0;
  SharedBitmap bitmap_;
};

/// NOT_EQUAL (PhysNotEqual): all-distinct constraint between two vars.
class NotEqualOp : public StreamingOp {
 public:
  explicit NotEqualOp(const plan::PhysNotEqual& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  const plan::PhysNotEqual& op_;
  size_t a_col_ = 0, b_col_ = 0;
};

/// SCAN_GRAPH_TABLE's pi-hat projection (PhysScanGraphTable): flattens the
/// streamed binding table into relational columns. The graph sub-plan below
/// it is part of the same pipeline — binding tuples flow through the bridge
/// without materializing.
class ScanGraphTableOp : public StreamingOp {
 public:
  explicit ScanGraphTableOp(const plan::PhysScanGraphTable& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  Status Process(const Batch& in, Batch* out,
                 ExecutionContext* ctx) const override;

 private:
  struct Source {
    storage::TablePtr base;
    int raw_col = -1;  // -1 == the row id itself
    size_t binding_col = 0;
  };
  const plan::PhysScanGraphTable& op_;
  std::vector<Source> sources_;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Per-worker sink partial state; merged once the pipeline drains.
struct SinkState {
  virtual ~SinkState() = default;
};

/// Terminal consumer of a pipeline. Consume() runs concurrently, but each
/// worker owns a private SinkState, so no synchronization is needed until
/// Finish() merges the partials on the owning thread — with the query's
/// TaskScheduler in hand, so breaker work that parallelizes (hash-table
/// finalize, sort-run sorting) can fan back out.
///
/// `morsel` is the source morsel index the batch came from. Sinks merge in
/// morsel order, which makes the pipeline result *order* deterministic and
/// equal to the sequential (and materializing-executor) order regardless
/// of thread count — required so ORDER BY + LIMIT breaks ties identically
/// across engines.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual Status Prepare(const storage::Schema& input,
                         ExecutionContext* ctx) = 0;
  virtual std::unique_ptr<SinkState> MakeState() const = 0;
  virtual Status Consume(SinkState* state, const Batch& in, uint64_t morsel,
                         ExecutionContext* ctx) const = 0;
  virtual Result<storage::TablePtr> Finish(
      std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
      ExecutionContext* ctx) = 0;

  /// The breaker plan node this sink implements (profiling attribution);
  /// null for plain materialization, whose rows belong to the last
  /// streaming operator.
  virtual const plan::PhysicalOp* plan_node() const { return nullptr; }
  /// A second breaker plan node fused below plan_node() into the same sink
  /// (the ORDER BY a TOP_K sink absorbs under its LIMIT); null otherwise.
  /// Its profile entry is recorded by the sink itself during Finish.
  virtual const plan::PhysicalOp* fused_node() const { return nullptr; }
  /// Short label for pipeline-shaped EXPLAIN ANALYZE rendering.
  virtual const char* label() const { return "MATERIALIZE"; }
  /// True once consuming further morsels cannot change the result (LIMIT
  /// early-exit). The scheduler still claims the remaining morsels but
  /// skips their source emit and operator work. Must only depend on
  /// *contiguous-prefix* completion (see MorselFinished): a morsel being
  /// checked may have been claimed before later morsels completed.
  virtual bool Saturated() const { return false; }
  /// Called once per morsel after it fully finished — consumed, emitted
  /// zero rows, or was skipped because Saturated() — with the row count it
  /// contributed. Thread-safe like Consume. Default no-op; TopKSink uses
  /// it to advance its completed-morsel frontier.
  virtual void MorselFinished(uint64_t morsel, uint64_t rows) const {
    (void)morsel;
    (void)rows;
  }
};

/// Collects (morsel, batch) pairs per worker and concatenates them in
/// morsel order into one Table (pipeline feeding a breaker, or the query
/// result).
class MaterializeSink : public Sink {
 public:
  explicit MaterializeSink(std::string name) : name_(std::move(name)) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  std::unique_ptr<SinkState> MakeState() const override;
  Status Consume(SinkState* state, const Batch& in, uint64_t morsel,
                 ExecutionContext* ctx) const override;
  Result<storage::TablePtr> Finish(
      std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
      ExecutionContext* ctx) override;

 private:
  std::string name_;
  storage::Schema schema_;
};

/// Materializes a join build side AND constructs the shared JoinHashTable,
/// partition-parallel (PhysHashJoin / PhysPatternJoin build sides):
/// Consume collects per-worker (morsel, batch) lists like MaterializeSink;
/// Finish concatenates them in morsel order, then builds the hash table in
/// two parallel phases on the query's scheduler — morsel-parallel scatter
/// into per-worker partition runs, then partition-parallel finalize into
/// the preallocated shard directory (JoinHashTable's two-phase API). The
/// build wall time is recorded as breaker build time on the owning join
/// node, and the finished table plus hash table are handed to
/// HashJoinProbeOp, whose probe path is unchanged.
class HashBuildSink : public Sink {
 public:
  HashBuildSink(std::vector<std::string> keys,
                const plan::PhysicalOp* join_node)
      : keys_(std::move(keys)), join_node_(join_node) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  std::unique_ptr<SinkState> MakeState() const override;
  Status Consume(SinkState* state, const Batch& in, uint64_t morsel,
                 ExecutionContext* ctx) const override;
  Result<storage::TablePtr> Finish(
      std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
      ExecutionContext* ctx) override;
  const char* label() const override { return "HASH_BUILD"; }

  /// The constructed hash table; valid after a successful Finish. Shared
  /// with the probe operator (which holds the build table alive).
  std::shared_ptr<const JoinHashTable> hash_table() const { return ht_; }

 private:
  std::vector<std::string> keys_;
  const plan::PhysicalOp* join_node_;
  storage::Schema schema_;
  std::shared_ptr<JoinHashTable> ht_;
};

/// In-pipeline ORDER BY / LIMIT sink replacing the old materializing
/// post-op path: the three output-clause shapes run as one sink at the end
/// of the probe pipeline instead of materializing between pipelines.
///
///  * ORDER BY + LIMIT k (top-k): each worker keeps a bounded max-heap of
///    its k best rows; Finish merges the <= workers*k candidates and sorts
///    them once. Rows past a full heap's fence are discarded O(1).
///  * ORDER BY without LIMIT: workers collect their batches; Finish sorts
///    per-chunk runs in parallel on the scheduler and k-way merges them —
///    a parallel merge sort over the morsel-ordered row space.
///  * LIMIT without ORDER BY: workers collect batches until the rows of
///    the *contiguous completed-morsel prefix* reach k (Saturated() — an
///    exact early-exit: once morsels [0, f) are all finished and hold
///    >= k rows, no morsel >= f can contribute to the first k; a morsel
///    being skipped is never inside the prefix, because prefix morsels
///    have finished and it has not). The frontier advances in
///    MorselFinished, which also counts empty and skipped morsels.
///    Finish truncates the morsel-ordered concatenation. Early-exit is
///    disabled while profiling so per-node actual row counts stay
///    engine-invariant.
///
/// Every comparison tie-breaks on the global (morsel, row) sequence, which
/// equals the sequential scan order — so the selected rows and their order
/// match the materializing engine's stable sort exactly, independent of
/// thread count.
class TopKSink : public Sink {
 public:
  /// `order` may be null (plain LIMIT); `limit_node` may be null (plain
  /// ORDER BY, pass limit = -1). At least one must be set.
  TopKSink(const plan::PhysOrderBy* order, const plan::PhysLimit* limit_node,
           int64_t limit)
      : order_(order), limit_node_(limit_node), limit_(limit) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  std::unique_ptr<SinkState> MakeState() const override;
  Status Consume(SinkState* state, const Batch& in, uint64_t morsel,
                 ExecutionContext* ctx) const override;
  Result<storage::TablePtr> Finish(
      std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
      ExecutionContext* ctx) override;
  const plan::PhysicalOp* plan_node() const override {
    return limit_node_ != nullptr
               ? static_cast<const plan::PhysicalOp*>(limit_node_)
               : static_cast<const plan::PhysicalOp*>(order_);
  }
  const plan::PhysicalOp* fused_node() const override {
    return limit_node_ != nullptr && order_ != nullptr
               ? static_cast<const plan::PhysicalOp*>(order_)
               : nullptr;
  }
  const char* label() const override {
    if (order_ == nullptr) return "LIMIT";
    return limit_node_ != nullptr ? "TOP_K" : "ORDER_BY";
  }
  bool Saturated() const override {
    return early_exit_ &&
           prefix_rows_.load(std::memory_order_relaxed) >=
               static_cast<uint64_t>(limit_);
  }
  void MorselFinished(uint64_t morsel, uint64_t rows) const override;

 private:
  /// Above this k, bounded per-worker heaps of Value rows cost more memory
  /// than collecting batches; fall back to sort-then-truncate.
  static constexpr int64_t kMaxHeapLimit = 1 << 14;

  bool HeapMode() const {
    return order_ != nullptr && limit_ >= 0 && limit_ <= kMaxHeapLimit;
  }

  const plan::PhysOrderBy* order_;
  const plan::PhysLimit* limit_node_;
  int64_t limit_;
  storage::Schema schema_;
  std::vector<size_t> key_cols_;
  bool early_exit_ = false;  // plain LIMIT, profiling off
  /// Compare sort keys through typed column spans (vector::
  /// TypedColumnCompare) instead of boxing a Value per comparison; same
  /// ordering, set from ExecutionOptions::vectorized_kernels in Prepare.
  bool typed_cmp_ = false;
  /// Let TypedColumnCompare order string keys by int32 dictionary codes
  /// when both rows share a sorted dictionary (sign-identical to the byte
  /// comparison); set from ExecutionOptions::dictionary_encoding. The
  /// heap fence keeps boxed Values (TypedColumnValueCompare) — a per-row
  /// dictionary Find would cost as much as the one compare it saves.
  bool dict_cmp_ = false;

  // Completed-morsel frontier (early-exit mode only): morsels [0,
  // frontier_next_) have all finished and contributed frontier-counted
  // rows; finished morsels beyond the frontier wait in pending_.
  // prefix_rows_ mirrors the frontier row count for lock-free Saturated().
  mutable std::mutex exit_mu_;
  mutable uint64_t frontier_next_ = 0;
  mutable std::map<uint64_t, uint64_t> pending_;  // finished morsel -> rows
  mutable std::atomic<uint64_t> prefix_rows_{0};
};

/// Parallel hash aggregation (PhysHashAggregate): each worker accumulates a
/// thread-local partial group table; Finish() merges the partials
/// (count/sum add, min/max combine) in first-seen (morsel, row) order and
/// emits seed-identical output, including the SQL one-row global aggregate
/// over empty input.
class AggregateSink : public Sink {
 public:
  explicit AggregateSink(const plan::PhysHashAggregate& op) : op_(op) {}
  Status Prepare(const storage::Schema& input, ExecutionContext* ctx) override;
  std::unique_ptr<SinkState> MakeState() const override;
  Status Consume(SinkState* state, const Batch& in, uint64_t morsel,
                 ExecutionContext* ctx) const override;
  Result<storage::TablePtr> Finish(
      std::vector<std::unique_ptr<SinkState>> states, TaskScheduler* scheduler,
      ExecutionContext* ctx) override;
  const plan::PhysicalOp* plan_node() const override { return &op_; }
  const char* label() const override { return "HASH_AGGREGATE"; }

 private:
  const plan::PhysHashAggregate& op_;
  storage::Schema input_schema_;
  std::vector<size_t> group_cols_;
  std::vector<int> agg_cols_;
  /// Typed group-key codec (null on fallback): workers key their partial
  /// maps on byte-encoded keys read from payload spans instead of boxed
  /// Value vectors. Const + stateless, so shared across workers.
  std::unique_ptr<vector::KeyEncoder> encoder_;
};

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_OPERATORS_H_
