#include "exec/pipeline/pipeline.h"

#include <algorithm>

#include "common/fault.h"
#include "exec/exec_common.h"
#include "obs/trace.h"

namespace relgo {
namespace exec {
namespace pipeline {

using storage::Column;
using storage::Schema;

// ---------------------------------------------------------------------------
// TableSource
// ---------------------------------------------------------------------------

Status TableSource::Prepare(ExecutionContext* ctx) {
  (void)ctx;
  output_schema_ = table_->schema();
  return Status::OK();
}

Status TableSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                         ExecutionContext* ctx) const {
  (void)ctx;
  *out = SliceTable(table_, begin, count);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CachedSelectionScan
// ---------------------------------------------------------------------------

bool CachedSelectionScan::PrepareCache(ExecutionContext* ctx, std::string key,
                                       uint64_t table_version,
                                       uint64_t table_rows) {
  caching_ = false;
  cached_ = nullptr;
  ScanCache* cache = ctx->scan_cache();
  if (cache == nullptr) return false;
  cache_key_ = std::move(key);
  table_version_ = table_version;
  cached_ = cache->Get(cache_key_, table_version_);
  if (cached_ != nullptr) {
    ctx->CountScanCacheHit();
    return true;
  }
  // Miss: collect per-morsel selection slices for publication. Slots are
  // written by distinct morsels only, so no synchronization is needed
  // beyond the filled counter.
  caching_ = true;
  uint64_t morsels = (table_rows + kBatchRows - 1) / kBatchRows;
  slots_.assign(static_cast<size_t>(morsels), {});
  slots_filled_.store(0, std::memory_order_relaxed);
  return false;
}

void CachedSelectionScan::CachedRange(uint64_t begin, uint64_t count,
                                      std::vector<uint64_t>* sel) const {
  auto lo = std::lower_bound(cached_->begin(), cached_->end(), begin);
  auto hi = std::lower_bound(lo, cached_->end(), begin + count);
  sel->assign(lo, hi);
}

void CachedSelectionScan::Collect(uint64_t morsel,
                                  const std::vector<uint64_t>& sel) const {
  slots_[morsel] = sel;
  slots_filled_.fetch_add(1, std::memory_order_release);
}

Status CachedSelectionScan::PublishIfComplete(const Status& run_status,
                                              ExecutionContext* ctx) {
  if (!caching_ || !run_status.ok()) return Status::OK();
  if (slots_filled_.load(std::memory_order_acquire) != slots_.size()) {
    // Some morsels were skipped (LIMIT early-exit) — incomplete.
    return Status::OK();
  }
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kScanCachePublish));
  auto sel = std::make_shared<std::vector<uint64_t>>();
  size_t total = 0;
  for (const auto& slot : slots_) total += slot.size();
  sel->reserve(total);
  // Morsel order == ascending row order, so the concatenation is sorted.
  for (const auto& slot : slots_) {
    sel->insert(sel->end(), slot.begin(), slot.end());
  }
  // Deferred to query commit (see ExecutionContext): a later failure of
  // another pipeline of this query must not leave the entry behind.
  ctx->QueuePutSelection(cache_key_, table_version_, std::move(sel));
  caching_ = false;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScanTableSource
// ---------------------------------------------------------------------------

Status ScanTableSource::Prepare(ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(table_, ctx->catalog().GetTable(op_.table));
  filter_ = op_.filter ? op_.filter->Clone() : nullptr;
  if (filter_) {
    RELGO_RETURN_NOT_OK(filter_->Bind(table_->schema()));
    PrepareCache(ctx, ScanCache::Key("scan", op_.table, op_.filter),
                 table_->version(), table_->num_rows());
    if (ctx->options().vectorized_kernels) {
      compiled_ = vector::CompiledPredicate::Compile(
          *filter_, table_->schema(), table_.get(),
          ctx->options().dictionary_encoding);
    }
  }
  raw_indexes_.clear();
  output_schema_ = ScanSchema(*table_, op_.alias, op_.projected_columns,
                              op_.emit_rowid, &raw_indexes_);
  return Status::OK();
}

Status ScanTableSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                             ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  if (cached_ != nullptr) {
    CachedRange(begin, count, &sel);
  } else {
    sel.reserve(count);
    if (compiled_ != nullptr) {
      compiled_->FilterTable(*table_, begin, begin + count, &sel);
    } else {
      for (uint64_t r = begin; r < begin + count; ++r) {
        if (!filter_ || filter_->EvaluateBool(*table_, r)) sel.push_back(r);
      }
    }
    if (caching_) Collect(begin / kBatchRows, sel);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));

  if (op_.emit_rowid) {
    Column rid(LogicalType::kInt64);
    rid.Reserve(sel.size());
    for (uint64_t r : sel) rid.AppendInt(static_cast<int64_t>(r));
    out->AddOwned(std::move(rid));
  }
  bool whole_unfiltered = !filter_ && begin == 0 &&
                          count == table_->num_rows();
  for (int raw : raw_indexes_) {
    if (whole_unfiltered) {
      out->AddColumn(ShareTableColumn(table_, static_cast<size_t>(raw)));
    } else {
      out->AddOwned(table_->column(static_cast<size_t>(raw)).Gather(sel));
    }
  }
  out->SetNumRows(sel.size());
  return Status::OK();
}

Status ScanTableSource::PipelineFinished(const Status& run_status,
                                         ExecutionContext* ctx) {
  return PublishIfComplete(run_status, ctx);
}

// ---------------------------------------------------------------------------
// ScanVertexSource
// ---------------------------------------------------------------------------

Status ScanVertexSource::Prepare(ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(vtable_, ctx->VertexTable(op_.vertex_label));
  filter_ = op_.filter ? op_.filter->Clone() : nullptr;
  if (filter_) {
    RELGO_RETURN_NOT_OK(filter_->Bind(vtable_->schema()));
    PrepareCache(ctx, ScanCache::Key("vscan", vtable_->name(), op_.filter),
                 vtable_->version(), vtable_->num_rows());
    if (ctx->options().vectorized_kernels) {
      compiled_ = vector::CompiledPredicate::Compile(
          *filter_, vtable_->schema(), vtable_.get(),
          ctx->options().dictionary_encoding);
    }
  }
  output_schema_ = BindingSchema({op_.var});
  return Status::OK();
}

Status ScanVertexSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                              ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  if (cached_ != nullptr) {
    CachedRange(begin, count, &sel);
  } else {
    sel.reserve(count);
    if (compiled_ != nullptr) {
      compiled_->FilterTable(*vtable_, begin, begin + count, &sel);
    } else {
      for (uint64_t r = begin; r < begin + count; ++r) {
        if (filter_ && !filter_->EvaluateBool(*vtable_, r)) continue;
        sel.push_back(r);
      }
    }
    if (caching_) Collect(begin / kBatchRows, sel);
  }
  Column col(LogicalType::kInt64);
  col.Reserve(sel.size());
  for (uint64_t r : sel) col.AppendInt(static_cast<int64_t>(r));
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(col.size()));
  uint64_t n = col.size();
  out->AddOwned(std::move(col));
  out->SetNumRows(n);
  return Status::OK();
}

Status ScanVertexSource::PipelineFinished(const Status& run_status,
                                          ExecutionContext* ctx) {
  return PublishIfComplete(run_status, ctx);
}

// ---------------------------------------------------------------------------
// RunPipeline
// ---------------------------------------------------------------------------

Result<storage::TablePtr> RunPipeline(Pipeline* pipeline, Sink* sink,
                                      TaskScheduler* scheduler,
                                      ExecutionContext* ctx) {
  RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
  QueryProfile* qp = ctx->profile();
  obs::TraceRecorder* tr = ctx->trace();
  Timer pipeline_timer;

  // Single-threaded stage resolution: schemas, expression binding, shared
  // read-only operator state.
  double build_start = tr != nullptr ? obs::TraceNowMs() : 0.0;
  RELGO_RETURN_NOT_OK(pipeline->source->Prepare(ctx));
  const Schema* schema = &pipeline->source->output_schema();
  for (auto& op : pipeline->ops) {
    RELGO_RETURN_NOT_OK(op->Prepare(*schema, ctx));
    schema = &op->output_schema();
  }
  RELGO_RETURN_NOT_OK(sink->Prepare(*schema, ctx));
  if (tr != nullptr) {
    tr->Record("pipeline_build", "pipeline", build_start,
               {{"sink", sink->label()},
                {"ops", std::to_string(pipeline->ops.size())}});
  }

  uint64_t total_rows = pipeline->source->num_rows();
  uint64_t morsels = (total_rows + kBatchRows - 1) / kBatchRows;

  // The query's fan-out width on the shared pool: slot ids (sink states,
  // profile slots) live in [0, max_workers).
  int max_workers = ResolveNumThreads(ctx->options());
  std::vector<std::unique_ptr<SinkState>> states;
  states.reserve(max_workers);
  for (int i = 0; i < max_workers; ++i) {
    states.push_back(sink->MakeState());
  }

  // The default morsel body: no profiling branches on the hot path. Every
  // non-error exit reports the morsel as finished (with its contributed
  // rows) so LIMIT early-exit can track its contiguous completed prefix.
  auto run_morsel = [&](int worker_id, uint64_t morsel) -> Status {
    // One interrupt check per morsel (kBatchRows rows) — the pipeline
    // half of the kInterruptCheckMask latency contract — plus the
    // morsel-boundary fault site.
    RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kMorselBoundary));
    if (sink->Saturated()) {  // LIMIT early-exit
      sink->MorselFinished(morsel, 0);
      return Status::OK();
    }
    uint64_t begin = morsel * kBatchRows;
    uint64_t count = std::min(kBatchRows, total_rows - begin);
    Batch batch;
    RELGO_RETURN_NOT_OK(pipeline->source->Emit(begin, count, &batch, ctx));
    for (const auto& op : pipeline->ops) {
      if (batch.num_rows() == 0) break;
      Batch next;
      RELGO_RETURN_NOT_OK(op->Process(batch, &next, ctx));
      batch = std::move(next);
    }
    if (batch.num_rows() == 0) {
      sink->MorselFinished(morsel, 0);
      return Status::OK();
    }
    RELGO_RETURN_NOT_OK(
        sink->Consume(states[worker_id].get(), batch, morsel, ctx));
    sink->MorselFinished(morsel, batch.num_rows());
    return Status::OK();
  };

  // Profiled morsel body: each worker accumulates rows in/out, invocation
  // counts and stage timings into its private slot vector — no shared
  // state, so profiling never serializes workers. Slot 0 is the source,
  // slots 1..N the streaming ops, slot N+1 the sink's Consume side.
  std::vector<std::vector<OperatorProfile>> worker_profs;
  if (qp != nullptr) {
    worker_profs.assign(
        static_cast<size_t>(max_workers),
        std::vector<OperatorProfile>(pipeline->ops.size() + 2));
  }
  auto run_morsel_profiled = [&](int worker_id, uint64_t morsel) -> Status {
    RELGO_RETURN_NOT_OK(ctx->CheckInterrupt());
    RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kMorselBoundary));
    if (sink->Saturated()) {
      sink->MorselFinished(morsel, 0);
      return Status::OK();
    }
    uint64_t begin = morsel * kBatchRows;
    uint64_t count = std::min(kBatchRows, total_rows - begin);
    std::vector<OperatorProfile>& slots = worker_profs[worker_id];
    Batch batch;
    Timer timer;
    RELGO_RETURN_NOT_OK(pipeline->source->Emit(begin, count, &batch, ctx));
    slots[0].wall_ms += timer.ElapsedMillis();
    slots[0].rows_in += count;
    slots[0].rows_out += batch.num_rows();
    slots[0].invocations += 1;
    for (size_t i = 0; i < pipeline->ops.size(); ++i) {
      if (batch.num_rows() == 0) break;
      Batch next;
      timer.Restart();
      RELGO_RETURN_NOT_OK(pipeline->ops[i]->Process(batch, &next, ctx));
      OperatorProfile& slot = slots[i + 1];
      slot.wall_ms += timer.ElapsedMillis();
      slot.rows_in += batch.num_rows();
      slot.rows_out += next.num_rows();
      slot.invocations += 1;
      batch = std::move(next);
    }
    if (batch.num_rows() == 0) {
      sink->MorselFinished(morsel, 0);
      return Status::OK();
    }
    OperatorProfile& sink_slot = slots[pipeline->ops.size() + 1];
    timer.Restart();
    Status consumed =
        sink->Consume(states[worker_id].get(), batch, morsel, ctx);
    sink_slot.wall_ms += timer.ElapsedMillis();
    sink_slot.rows_in += batch.num_rows();
    sink_slot.invocations += 1;
    if (consumed.ok()) sink->MorselFinished(morsel, batch.num_rows());
    return consumed;
  };

  int run_workers = 1;
  double run_start = tr != nullptr ? obs::TraceNowMs() : 0.0;
  Status run_status =
      qp == nullptr
          ? scheduler->Run(morsels, max_workers, run_morsel, &run_workers)
          : scheduler->Run(morsels, max_workers, run_morsel_profiled,
                           &run_workers);
  if (tr != nullptr) {
    tr->Record("pipeline_run", "pipeline", run_start,
               {{"sink", sink->label()},
                {"morsels", std::to_string(morsels)},
                {"workers", std::to_string(run_workers)},
                {"status", run_status.ok() ? "ok" : run_status.ToString()}});
  }
  // Cache-publication (and any other per-source completion) hook; sources
  // ignore failed runs, so this is safe to call unconditionally. The run's
  // own error wins over a publication failure.
  Status finished_status = pipeline->source->PipelineFinished(run_status, ctx);
  RELGO_RETURN_NOT_OK(run_status);
  RELGO_RETURN_NOT_OK(finished_status);
  RELGO_RETURN_NOT_OK(fault::MaybeInject(fault::Site::kSinkFinish));
  double sink_start = tr != nullptr ? obs::TraceNowMs() : 0.0;
  Timer finish_timer;
  auto finished = sink->Finish(std::move(states), scheduler, ctx);
  double finish_ms = finish_timer.ElapsedMillis();
  if (tr != nullptr) {
    tr->Record("sink_finish", "pipeline", sink_start,
               {{"sink", sink->label()}});
  }

  if (qp != nullptr) {
    // Back on the owning thread: merge the thread-local counters into the
    // query profile and record the pipeline's shape for EXPLAIN ANALYZE.
    std::vector<OperatorProfile> merged(pipeline->ops.size() + 2);
    for (const auto& slots : worker_profs) {
      for (size_t s = 0; s < slots.size(); ++s) merged[s].Accumulate(slots[s]);
    }
    if (pipeline->source_node != nullptr) {
      qp->Accumulate(pipeline->source_node, merged[0]);
    }
    for (size_t i = 0; i < pipeline->op_nodes.size(); ++i) {
      if (pipeline->op_nodes[i] != nullptr) {
        qp->Accumulate(pipeline->op_nodes[i], merged[i + 1]);
      }
    }
    if (sink->plan_node() != nullptr) {
      OperatorProfile sink_prof = merged[pipeline->ops.size() + 1];
      // The single-threaded partial merge (e.g. AggregateSink combining
      // per-worker group tables) belongs to the breaker's cost too.
      sink_prof.wall_ms += finish_ms;
      if (finished.ok()) sink_prof.rows_out = (*finished)->num_rows();
      qp->Accumulate(sink->plan_node(), sink_prof);
    }
    PipelineTrace trace;
    trace.stages.push_back(pipeline->source_node);
    for (const plan::PhysicalOp* node : pipeline->op_nodes) {
      trace.stages.push_back(node);
    }
    trace.breaker = sink->plan_node();
    trace.fused = sink->fused_node();
    trace.sink = sink->label();
    trace.morsels = morsels;
    trace.threads = run_workers;
    trace.wall_ms = pipeline_timer.ElapsedMillis();
    qp->AddPipeline(std::move(trace));
  }
  return finished;
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
