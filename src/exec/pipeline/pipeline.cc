#include "exec/pipeline/pipeline.h"

#include <algorithm>

#include "exec/exec_common.h"

namespace relgo {
namespace exec {
namespace pipeline {

using storage::Column;
using storage::Schema;

// ---------------------------------------------------------------------------
// TableSource
// ---------------------------------------------------------------------------

Status TableSource::Prepare(ExecutionContext* ctx) {
  (void)ctx;
  output_schema_ = table_->schema();
  return Status::OK();
}

Status TableSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                         ExecutionContext* ctx) const {
  (void)ctx;
  *out = SliceTable(table_, begin, count);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScanTableSource
// ---------------------------------------------------------------------------

Status ScanTableSource::Prepare(ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(table_, ctx->catalog().GetTable(op_.table));
  if (op_.filter) RELGO_RETURN_NOT_OK(op_.filter->Bind(table_->schema()));
  raw_indexes_.clear();
  output_schema_ = ScanSchema(*table_, op_.alias, op_.projected_columns,
                              op_.emit_rowid, &raw_indexes_);
  return Status::OK();
}

Status ScanTableSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                             ExecutionContext* ctx) const {
  std::vector<uint64_t> sel;
  sel.reserve(count);
  for (uint64_t r = begin; r < begin + count; ++r) {
    if (!op_.filter || op_.filter->EvaluateBool(*table_, r)) sel.push_back(r);
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(sel.size()));

  if (op_.emit_rowid) {
    Column rid(LogicalType::kInt64);
    rid.Reserve(sel.size());
    for (uint64_t r : sel) rid.AppendInt(static_cast<int64_t>(r));
    out->AddOwned(std::move(rid));
  }
  bool whole_unfiltered = !op_.filter && begin == 0 &&
                          count == table_->num_rows();
  for (int raw : raw_indexes_) {
    if (whole_unfiltered) {
      out->AddColumn(ShareTableColumn(table_, static_cast<size_t>(raw)));
    } else {
      out->AddOwned(table_->column(static_cast<size_t>(raw)).Gather(sel));
    }
  }
  out->SetNumRows(sel.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScanVertexSource
// ---------------------------------------------------------------------------

Status ScanVertexSource::Prepare(ExecutionContext* ctx) {
  RELGO_ASSIGN_OR_RETURN(vtable_, ctx->VertexTable(op_.vertex_label));
  if (op_.filter) RELGO_RETURN_NOT_OK(op_.filter->Bind(vtable_->schema()));
  output_schema_ = BindingSchema({op_.var});
  return Status::OK();
}

Status ScanVertexSource::Emit(uint64_t begin, uint64_t count, Batch* out,
                              ExecutionContext* ctx) const {
  Column col(LogicalType::kInt64);
  col.Reserve(count);
  for (uint64_t r = begin; r < begin + count; ++r) {
    if (op_.filter && !op_.filter->EvaluateBool(*vtable_, r)) continue;
    col.AppendInt(static_cast<int64_t>(r));
  }
  RELGO_RETURN_NOT_OK(ctx->ChargeRows(col.size()));
  uint64_t n = col.size();
  out->AddOwned(std::move(col));
  out->SetNumRows(n);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RunPipeline
// ---------------------------------------------------------------------------

Result<storage::TablePtr> RunPipeline(Pipeline* pipeline, Sink* sink,
                                      TaskScheduler* scheduler,
                                      ExecutionContext* ctx) {
  RELGO_RETURN_NOT_OK(ctx->CheckTimeout());

  // Single-threaded stage resolution: schemas, expression binding, shared
  // read-only operator state.
  RELGO_RETURN_NOT_OK(pipeline->source->Prepare(ctx));
  const Schema* schema = &pipeline->source->output_schema();
  for (auto& op : pipeline->ops) {
    RELGO_RETURN_NOT_OK(op->Prepare(*schema, ctx));
    schema = &op->output_schema();
  }
  RELGO_RETURN_NOT_OK(sink->Prepare(*schema, ctx));

  uint64_t total_rows = pipeline->source->num_rows();
  uint64_t morsels = (total_rows + kBatchRows - 1) / kBatchRows;

  std::vector<std::unique_ptr<SinkState>> states;
  states.reserve(scheduler->num_threads());
  for (int i = 0; i < scheduler->num_threads(); ++i) {
    states.push_back(sink->MakeState());
  }

  Status run_status = scheduler->Run(
      morsels, [&](int worker_id, uint64_t morsel) -> Status {
        RELGO_RETURN_NOT_OK(ctx->CheckTimeout());
        uint64_t begin = morsel * kBatchRows;
        uint64_t count = std::min(kBatchRows, total_rows - begin);
        Batch batch;
        RELGO_RETURN_NOT_OK(
            pipeline->source->Emit(begin, count, &batch, ctx));
        for (const auto& op : pipeline->ops) {
          if (batch.num_rows() == 0) break;
          Batch next;
          RELGO_RETURN_NOT_OK(op->Process(batch, &next, ctx));
          batch = std::move(next);
        }
        if (batch.num_rows() == 0) return Status::OK();
        return sink->Consume(states[worker_id].get(), batch, morsel, ctx);
      });
  RELGO_RETURN_NOT_OK(run_status);
  return sink->Finish(std::move(states), ctx);
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
