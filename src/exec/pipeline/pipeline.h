#ifndef RELGO_EXEC_PIPELINE_PIPELINE_H_
#define RELGO_EXEC_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/pipeline/operators.h"
#include "exec/pipeline/scheduler.h"

namespace relgo {
namespace exec {
namespace pipeline {

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Produces the driving batches of a pipeline. `num_rows()` defines the
/// morsel space: the scheduler partitions [0, num_rows) into kBatchRows
/// ranges and workers call Emit() on claimed ranges concurrently.
class Source {
 public:
  virtual ~Source() = default;
  virtual Status Prepare(ExecutionContext* ctx) = 0;
  const storage::Schema& output_schema() const { return output_schema_; }
  virtual uint64_t num_rows() const = 0;
  virtual Status Emit(uint64_t begin, uint64_t count, Batch* out,
                      ExecutionContext* ctx) const = 0;

 protected:
  storage::Schema output_schema_;
};

using SourcePtr = std::unique_ptr<Source>;

/// Streams an already-materialized table (a breaker's output, or a hash
/// join's probe feed). Whole-table morsels share columns zero-copy.
class TableSource : public Source {
 public:
  explicit TableSource(storage::TablePtr table) : table_(std::move(table)) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return table_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;

 private:
  storage::TablePtr table_;
};

/// PhysScanTable over a base relation: filter + projection + optional
/// "$rid" column, evaluated per morsel.
class ScanTableSource : public Source {
 public:
  explicit ScanTableSource(const plan::PhysScanTable& op) : op_(op) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return table_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;

 private:
  const plan::PhysScanTable& op_;
  storage::TablePtr table_;
  std::vector<int> raw_indexes_;
};

/// PhysScanVertex: emits the row ids of the (optionally filtered) vertex
/// relation as one binding column.
class ScanVertexSource : public Source {
 public:
  explicit ScanVertexSource(const plan::PhysScanVertex& op) : op_(op) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return vtable_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;

 private:
  const plan::PhysScanVertex& op_;
  storage::TablePtr vtable_;
};

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

/// One source → streaming ops → sink segment of a decomposed plan.
///
/// The plan-node pointers mirror `source` / `ops` and exist purely for
/// profiling (EXPLAIN ANALYZE): when the execution context carries a
/// QueryProfile, RunPipeline attributes per-morsel row counts and timings
/// to these nodes. `source_node` is null when the source streams a
/// materialized breaker result (TableSource) — that subtree was profiled
/// by its own pipelines already.
struct Pipeline {
  SourcePtr source;
  std::vector<StreamingOpPtr> ops;
  const plan::PhysicalOp* source_node = nullptr;
  std::vector<const plan::PhysicalOp*> op_nodes;
};

/// Prepares every stage (resolving schemas source → ops → sink), then runs
/// the pipeline morsel-by-morsel on `scheduler` and returns the sink's
/// merged result. Honors the context's row budget and timeout: workers
/// check the clock per morsel and charge rows per batch, and the first
/// failing morsel aborts the run.
Result<storage::TablePtr> RunPipeline(Pipeline* pipeline, Sink* sink,
                                      TaskScheduler* scheduler,
                                      ExecutionContext* ctx);

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_PIPELINE_H_
