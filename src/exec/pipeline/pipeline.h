#ifndef RELGO_EXEC_PIPELINE_PIPELINE_H_
#define RELGO_EXEC_PIPELINE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "exec/pipeline/operators.h"
#include "exec/pipeline/scheduler.h"
#include "exec/scan_cache.h"

namespace relgo {
namespace exec {
namespace pipeline {

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Produces the driving batches of a pipeline. `num_rows()` defines the
/// morsel space: the scheduler partitions [0, num_rows) into kBatchRows
/// ranges and workers call Emit() on claimed ranges concurrently.
class Source {
 public:
  virtual ~Source() = default;
  virtual Status Prepare(ExecutionContext* ctx) = 0;
  const storage::Schema& output_schema() const { return output_schema_; }
  virtual uint64_t num_rows() const = 0;
  virtual Status Emit(uint64_t begin, uint64_t count, Batch* out,
                      ExecutionContext* ctx) const = 0;

  /// Called once after the pipeline's morsels drained (successfully or
  /// not), back on the owning thread. Scan sources use it to queue a
  /// completely collected selection vector for scan-cache publication
  /// (committed only if the whole query succeeds); the default is a
  /// no-op. May fail (fault injection at the publish site); a failure on
  /// an otherwise successful run fails the pipeline.
  virtual Status PipelineFinished(const Status& run_status,
                                  ExecutionContext* ctx) {
    (void)run_status;
    (void)ctx;
    return Status::OK();
  }

 protected:
  storage::Schema output_schema_;
};

using SourcePtr = std::unique_ptr<Source>;

/// Streams an already-materialized table (a breaker's output, or a hash
/// join's probe feed). Whole-table morsels share columns zero-copy.
class TableSource : public Source {
 public:
  explicit TableSource(storage::TablePtr table) : table_(std::move(table)) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return table_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;

 private:
  storage::TablePtr table_;
};

/// Shared scan-cache plumbing of the two filtered scan sources: the hit /
/// miss decision in Prepare, per-morsel collection of a miss's selection
/// slices, and publication of the assembled vector once every morsel of
/// the pipeline emitted (LIMIT early-exit skips morsels, which simply
/// leaves the vector incomplete and unpublished).
class CachedSelectionScan {
 protected:
  /// Looks `key` up in the context's scan cache (if any); on a hit counts
  /// it and returns true, on a miss sizes the per-morsel collection slots.
  bool PrepareCache(ExecutionContext* ctx, std::string key,
                    uint64_t table_version, uint64_t table_rows);
  /// The cached row ids intersected with morsel [begin, begin + count) —
  /// exactly what the filter loop would have selected there.
  void CachedRange(uint64_t begin, uint64_t count,
                   std::vector<uint64_t>* sel) const;
  /// Records a miss morsel's freshly computed selection slice.
  void Collect(uint64_t morsel, const std::vector<uint64_t>& sel) const;
  /// Queues the assembled selection vector for publication (deferred to
  /// query commit, see ExecutionContext) if the run succeeded and every
  /// morsel reported in.
  Status PublishIfComplete(const Status& run_status, ExecutionContext* ctx);

  bool caching_ = false;  ///< collecting a miss for publication
  std::string cache_key_;
  uint64_t table_version_ = 0;
  ScanCache::SelectionPtr cached_;  ///< non-null on a hit

 private:
  mutable std::vector<std::vector<uint64_t>> slots_;
  mutable std::atomic<uint64_t> slots_filled_{0};
};

/// PhysScanTable over a base relation: filter + projection + optional
/// "$rid" column, evaluated per morsel (or replayed from the cross-query
/// scan cache when an earlier query already filtered this table with the
/// same predicate).
class ScanTableSource : public Source, private CachedSelectionScan {
 public:
  explicit ScanTableSource(const plan::PhysScanTable& op) : op_(op) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return table_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;
  Status PipelineFinished(const Status& run_status,
                          ExecutionContext* ctx) override;

 private:
  const plan::PhysScanTable& op_;
  storage::TablePtr table_;
  /// Bound per-execution clone of op_.filter: plans may share expression
  /// trees with the query they were optimized from, and Bind writes
  /// resolved column indexes — concurrent executions must not race on it.
  storage::ExprPtr filter_;
  /// Vectorized lowering of filter_ (null on fallback); morsels then scan
  /// typed payload spans instead of evaluating the tree per row.
  std::unique_ptr<vector::CompiledPredicate> compiled_;
  std::vector<int> raw_indexes_;
};

/// PhysScanVertex: emits the row ids of the (optionally filtered) vertex
/// relation as one binding column; filtered vertex scans share the same
/// cross-query cache as table scans (under a "vscan|" key).
class ScanVertexSource : public Source, private CachedSelectionScan {
 public:
  explicit ScanVertexSource(const plan::PhysScanVertex& op) : op_(op) {}
  Status Prepare(ExecutionContext* ctx) override;
  uint64_t num_rows() const override { return vtable_->num_rows(); }
  Status Emit(uint64_t begin, uint64_t count, Batch* out,
              ExecutionContext* ctx) const override;
  Status PipelineFinished(const Status& run_status,
                          ExecutionContext* ctx) override;

 private:
  const plan::PhysScanVertex& op_;
  storage::TablePtr vtable_;
  storage::ExprPtr filter_;  ///< bound clone, see ScanTableSource
  std::unique_ptr<vector::CompiledPredicate> compiled_;  ///< see above
};

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

/// One source → streaming ops → sink segment of a decomposed plan.
///
/// The plan-node pointers mirror `source` / `ops` and exist purely for
/// profiling (EXPLAIN ANALYZE): when the execution context carries a
/// QueryProfile, RunPipeline attributes per-morsel row counts and timings
/// to these nodes. `source_node` is null when the source streams a
/// materialized breaker result (TableSource) — that subtree was profiled
/// by its own pipelines already.
struct Pipeline {
  SourcePtr source;
  std::vector<StreamingOpPtr> ops;
  const plan::PhysicalOp* source_node = nullptr;
  std::vector<const plan::PhysicalOp*> op_nodes;
};

/// Prepares every stage (resolving schemas source → ops → sink), then runs
/// the pipeline morsel-by-morsel on `scheduler` and returns the sink's
/// merged result. Honors the context's row budget and timeout: workers
/// check the clock per morsel and charge rows per batch, and the first
/// failing morsel aborts the run.
Result<storage::TablePtr> RunPipeline(Pipeline* pipeline, Sink* sink,
                                      TaskScheduler* scheduler,
                                      ExecutionContext* ctx);

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_PIPELINE_H_
