#include "exec/pipeline/scheduler.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/timer.h"

namespace relgo {
namespace exec {
namespace pipeline {

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int TaskScheduler::pool_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void TaskScheduler::SetAdmission(const AdmissionOptions& options) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    admission_ = options;
  }
  // A raised cap may unblock queued queries immediately.
  admit_cv_.notify_all();
}

AdmissionOptions TaskScheduler::admission() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_;
}

int TaskScheduler::admitted_queries() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admitted_;
}

int TaskScheduler::queued_queries() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return queued_;
}

Status TaskScheduler::AdmitQuery(uint64_t budget_ms,
                                 const std::atomic<bool>* cancel) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (admission_.max_concurrent_queries <= 0) {
    ++admitted_;  // disabled: admit unconditionally, still count
    return Status::OK();
  }
  if (admitted_ < admission_.max_concurrent_queries) {
    ++admitted_;
    return Status::OK();
  }
  if (queued_ >= admission_.max_queued) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queued_) +
        " queries already waiting)");
  }
  ++queued_;
  // Never let a query burn more of its timeout budget queueing than it
  // could spend executing: the wait deadline is the smaller of the policy
  // bound and the remaining budget.
  uint64_t deadline_ms = admission_.max_wait_ms;
  if (budget_ms < deadline_ms) deadline_ms = budget_ms;
  Timer wait_timer;
  Status result = Status::OK();
  while (true) {
    if (admitted_ < admission_.max_concurrent_queries) {
      ++admitted_;
      break;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      result = Status::Cancelled("query cancelled while queued");
      break;
    }
    if (wait_timer.ElapsedMillis() >= static_cast<double>(deadline_ms)) {
      result = Status::ResourceExhausted(
          "admission wait exceeded " + std::to_string(deadline_ms) + " ms");
      break;
    }
    // Short slices so a cancel flag flipped mid-wait is observed promptly
    // even if no ReleaseQuery ever notifies.
    admit_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
  --queued_;
  return result;
}

void TaskScheduler::ReleaseQuery() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (admitted_ > 0) --admitted_;
  }
  admit_cv_.notify_all();
}

void TaskScheduler::EnsureWorkersLocked(int wanted) {
  while (static_cast<int>(workers_.size()) < wanted) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

Status TaskScheduler::Run(uint64_t morsel_count, int max_workers,
                          const MorselFn& fn, int* workers_used) {
  if (workers_used != nullptr) *workers_used = 1;
  if (morsel_count == 0) return Status::OK();
  int maxw = max_workers < 1 ? 1 : max_workers;
  // Inline fast path: single-threaded mode, or too little work to be worth
  // waking (or even spawning) the pool. Tiny pipelines are common — probe
  // feeds of selective joins — and parallelizing them only buys
  // wakeup/context-switch churn; require a couple of morsels per worker
  // before fanning out.
  if (maxw == 1 || morsel_count < static_cast<uint64_t>(maxw) * 2) {
    if (metrics_.inline_jobs != nullptr) metrics_.inline_jobs->Increment();
    if (metrics_.tasks != nullptr) metrics_.tasks->Add(morsel_count);
    for (uint64_t m = 0; m < morsel_count; ++m) {
      RELGO_RETURN_NOT_OK(fn(0, m));
    }
    return Status::OK();
  }

  Timer run_timer;
  if (metrics_.jobs != nullptr) metrics_.jobs->Increment();
  if (metrics_.tasks != nullptr) metrics_.tasks->Add(morsel_count);

  Job job;
  job.fn = &fn;
  job.count = morsel_count;
  job.max_workers = maxw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The pool grows to the largest fan-out any query requested; the
    // submitting thread takes slot 0, so maxw - 1 pool threads suffice.
    EnsureWorkersLocked(maxw - 1);
    jobs_.push_back(&job);
    if (metrics_.queue_depth != nullptr) {
      metrics_.queue_depth->Set(static_cast<int64_t>(jobs_.size()));
    }
    if (metrics_.pool_threads != nullptr) {
      metrics_.pool_threads->Set(static_cast<int64_t>(workers_.size()));
    }
  }
  work_cv_.notify_all();
  if (workers_used != nullptr) *workers_used = maxw;

  WorkLoop(&job, 0);  // the submitting thread is the job's slot 0

  Timer wait_timer;
  std::unique_lock<std::mutex> lock(mu_);
  --job.executing;
  // Wait until the job is complete (every morsel executed) or failed AND
  // no registered worker is still inside WorkLoop — fn and the job handle
  // live on this stack. Workers register under mu_ before executing, so
  // this predicate cannot miss a late joiner; once the job leaves jobs_
  // below, no worker can find it again.
  job.done_cv.wait(lock, [&] {
    return job.executing == 0 &&
           (job.failed.load(std::memory_order_relaxed) ||
            job.completed.load(std::memory_order_acquire) == job.count);
  });
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->Set(static_cast<int64_t>(jobs_.size()));
  }
  lock.unlock();
  if (metrics_.job_wait_ms != nullptr) {
    metrics_.job_wait_ms->Record(wait_timer.ElapsedMillis());
  }
  if (metrics_.job_run_ms != nullptr) {
    metrics_.job_run_ms->Record(run_timer.ElapsedMillis());
  }
  return job.error;
}

TaskScheduler::Job* TaskScheduler::ClaimJobLocked(int* slot) {
  size_t n = jobs_.size();
  for (size_t i = 0; i < n; ++i) {
    // Rotate the scan start so pool threads spread across concurrent jobs
    // instead of convoying onto the oldest one.
    Job* job = jobs_[(job_rotor_ + i) % n];
    if (job->failed.load(std::memory_order_relaxed)) continue;
    if (job->next.load(std::memory_order_relaxed) >= job->count) continue;
    if (job->slots >= job->max_workers) continue;
    *slot = job->slots++;
    ++job->executing;
    ++job_rotor_;
    return job;
  }
  return nullptr;
}

void TaskScheduler::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    int slot = -1;
    Job* job = ClaimJobLocked(&slot);
    if (job == nullptr) {
      work_cv_.wait(lock);
      continue;
    }
    lock.unlock();
    WorkLoop(job, slot);
    lock.lock();
    if (--job->executing == 0) job->done_cv.notify_all();
  }
}

void TaskScheduler::WorkLoop(Job* job, int slot) {
  while (!job->failed.load(std::memory_order_relaxed)) {
    uint64_t m = job->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= job->count) return;
    Status st = (*job->fn)(slot, m);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      // Keep the first error only; later ones are usually cascades.
      if (!job->failed.load(std::memory_order_relaxed)) {
        job->error = std::move(st);
        job->failed.store(true, std::memory_order_relaxed);
      }
      return;
    }
    job->completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
