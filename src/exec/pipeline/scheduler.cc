#include "exec/pipeline/scheduler.h"

namespace relgo {
namespace exec {
namespace pipeline {

TaskScheduler::TaskScheduler(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {}

void TaskScheduler::EnsureWorkers() {
  if (!workers_.empty()) return;
  workers_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Status TaskScheduler::Run(uint64_t morsel_count, const MorselFn& fn) {
  if (morsel_count == 0) return Status::OK();
  // Inline fast path: single-threaded mode, or too little work to be worth
  // waking (or even spawning) the pool. Tiny pipelines are common — probe
  // feeds of selective joins — and parallelizing them only buys
  // wakeup/context-switch churn; require a couple of morsels per worker
  // before fanning out.
  if (num_threads_ == 1 ||
      morsel_count < static_cast<uint64_t>(num_threads_) * 2) {
    last_run_workers_ = 1;
    for (uint64_t m = 0; m < morsel_count; ++m) {
      RELGO_RETURN_NOT_OK(fn(0, m));
    }
    return Status::OK();
  }
  EnsureWorkers();
  last_run_workers_ = num_threads_;

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_count_ = morsel_count;
    job_next_.store(0, std::memory_order_relaxed);
    job_failed_.store(false, std::memory_order_relaxed);
    job_error_ = Status::OK();
    workers_active_ = static_cast<int>(workers_.size());
    ++job_generation_;
  }
  work_cv_.notify_all();

  WorkLoop(0);  // the calling thread is worker 0

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_active_ == 0; });
  job_fn_ = nullptr;
  return job_error_;
}

void TaskScheduler::WorkerMain(int worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
    }
    WorkLoop(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void TaskScheduler::WorkLoop(int worker_id) {
  while (!job_failed_.load(std::memory_order_relaxed)) {
    uint64_t m = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (m >= job_count_) return;
    Status st = (*job_fn_)(worker_id, m);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      // Keep the first error only; later ones are usually cascades.
      if (!job_failed_.load(std::memory_order_relaxed)) {
        job_error_ = std::move(st);
        job_failed_.store(true, std::memory_order_relaxed);
      }
      return;
    }
  }
}

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo
