#ifndef RELGO_EXEC_PIPELINE_SCHEDULER_H_
#define RELGO_EXEC_PIPELINE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace relgo {
namespace exec {
namespace pipeline {

/// A morsel-driven worker pool (Leis et al., "Morsel-Driven Parallelism").
///
/// One scheduler is created per query execution and reused by every
/// pipeline of the plan. Morsels are claimed from a shared atomic counter,
/// so fast workers naturally steal the remaining work of slow ones; the
/// calling thread participates as worker 0. With num_threads == 1 no
/// threads are spawned and morsels run inline in order — the deterministic
/// mode tests use.
///
/// Errors: the first non-OK status a worker returns is recorded and the
/// remaining morsels are abandoned (each worker re-checks a shared flag
/// before claiming the next morsel). This is how row-budget (kOutOfMemory)
/// and timeout (kTimeout) aborts propagate out of a parallel pipeline.
class TaskScheduler {
 public:
  /// fn(worker_id, morsel_index); worker_id in [0, num_threads).
  using MorselFn = std::function<Status(int, uint64_t)>;

  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_threads() const { return num_threads_; }

  /// Workers that participated in the most recent Run(): 1 when the job
  /// took the inline fast path, num_threads() when it fanned out to the
  /// pool. Consumed by pipeline profiling (EXPLAIN ANALYZE traces).
  int last_run_workers() const { return last_run_workers_; }

  /// Runs `morsel_count` morsels to completion (or first error). Must be
  /// called from the owning thread; pipelines run one at a time.
  Status Run(uint64_t morsel_count, const MorselFn& fn);

 private:
  void WorkerMain(int worker_id);
  void WorkLoop(int worker_id);
  /// Spawns the pool on first parallel use; cheap queries whose pipelines
  /// all fit in one or two morsels never pay for thread creation.
  void EnsureWorkers();

  const int num_threads_;
  int last_run_workers_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // Run() waits for workers to drain
  uint64_t job_generation_ = 0;
  int workers_active_ = 0;
  bool shutdown_ = false;

  // Current job (valid while workers_active_ > 0 or Run() is inside).
  const MorselFn* job_fn_ = nullptr;
  uint64_t job_count_ = 0;
  std::atomic<uint64_t> job_next_{0};
  std::atomic<bool> job_failed_{false};
  Status job_error_;
};

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_SCHEDULER_H_
