#ifndef RELGO_EXEC_PIPELINE_SCHEDULER_H_
#define RELGO_EXEC_PIPELINE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace relgo {
namespace exec {
namespace pipeline {

/// Registry hooks of the shared pool (wired once by Database before any
/// query runs; all-null for standalone pools, which then record nothing).
/// Granularity is per job, never per morsel: counters are bumped with the
/// job's totals when it drains, so the morsel hot loop stays untouched.
struct SchedulerMetrics {
  obs::Counter* jobs = nullptr;         ///< jobs offered to the pool
  obs::Counter* inline_jobs = nullptr;  ///< jobs run on the inline fast path
  obs::Counter* tasks = nullptr;        ///< morsels executed (both paths)
  obs::Gauge* queue_depth = nullptr;    ///< active jobs after submit/drain
  obs::Gauge* pool_threads = nullptr;   ///< pool threads spawned so far
  obs::Histogram* job_run_ms = nullptr;  ///< pool-path Run() wall time
  /// Straggler wait: time the submitting thread spent blocked after its
  /// own work loop drained, waiting for pool workers to finish the job's
  /// last morsels.
  obs::Histogram* job_wait_ms = nullptr;
};

/// Admission control for the shared pool: a cap on concurrently admitted
/// *queries* (not jobs — one query runs many pipeline jobs) plus a bounded
/// wait queue for the overflow. Zero cap disables admission entirely:
/// AdmitQuery then always succeeds immediately, which is the default so
/// standalone pools and existing callers are unaffected.
struct AdmissionOptions {
  /// Queries allowed to execute concurrently; 0 = unlimited (disabled).
  int max_concurrent_queries = 0;
  /// Queries allowed to wait for a slot beyond the cap; arrivals past
  /// this are rejected immediately with ResourceExhausted.
  int max_queued = 4;
  /// Longest a queued query waits for a slot before ResourceExhausted.
  /// The effective deadline is min(max_wait_ms, the query's remaining
  /// timeout budget) — a query must never burn its whole timeout queueing.
  uint64_t max_wait_ms = 100;
};

/// A morsel-driven worker pool (Leis et al., "Morsel-Driven Parallelism").
///
/// One scheduler is a *process-wide* pool shared by every concurrent query
/// of a Database (Leis et al. Sec 3 call for exactly one pool per process,
/// not one per query). Each Run() call is one job — one pipeline's morsel
/// space — whose error/abort state lives in a per-job handle on the
/// caller's stack, so any number of threads may submit jobs concurrently
/// and their morsels interleave on the same workers. Pool threads are
/// spawned lazily up to the largest max_workers ever requested; cheap
/// queries whose pipelines fit in a couple of morsels never pay for thread
/// creation.
///
/// Within a job, morsels are claimed from the job's atomic counter, so
/// fast workers naturally steal the remaining work of slow ones. The
/// submitting thread participates as the job's slot 0 and only works on
/// its own job (its stack owns the pipeline's sink state); pool threads
/// pick any claimable job, rotating across active jobs so concurrent
/// queries share the pool instead of convoying behind the first one.
///
/// Errors: the first non-OK status a worker returns is recorded in the
/// job handle and the job's remaining morsels are abandoned (each worker
/// re-checks the job's failure flag before claiming the next morsel).
/// This is how row-budget (kOutOfMemory) and timeout (kTimeout) aborts
/// propagate out of a parallel pipeline — without touching any other
/// in-flight job.
class TaskScheduler {
 public:
  /// fn(slot, morsel_index); slot in [0, max_workers) is the job-local
  /// worker id (slot 0 = the submitting thread), NOT a pool thread index —
  /// per-job state (sink partials, profile slots) indexes by it.
  using MorselFn = std::function<Status(int, uint64_t)>;

  TaskScheduler() = default;
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Runs `morsel_count` morsels to completion (or first error) with at
  /// most `max_workers` concurrent workers, the calling thread included.
  /// Blocks until the job drains; thread-safe — concurrent Run() calls
  /// from different threads interleave on the shared pool. `workers_used`
  /// (optional) receives the job's fan-out width: 1 when it took the
  /// inline fast path, max_workers when it was offered to the pool —
  /// deterministic, so profiling traces are reproducible.
  Status Run(uint64_t morsel_count, int max_workers, const MorselFn& fn,
             int* workers_used = nullptr);

  /// Pool threads spawned so far (grows on demand; diagnostics only).
  int pool_threads() const;

  /// Attaches registry metrics (see SchedulerMetrics). Must be called
  /// before the first Run — Database wires its pool in the constructor;
  /// standalone pools simply never call it.
  void SetMetrics(const SchedulerMetrics& metrics) { metrics_ = metrics; }

  /// Replaces the admission policy. Takes effect for the next AdmitQuery;
  /// queries already admitted or queued are not re-evaluated.
  void SetAdmission(const AdmissionOptions& options);
  AdmissionOptions admission() const;

  /// Blocks until the query may execute, subject to the admission policy.
  /// `budget_ms` is the query's remaining timeout budget (caps the queue
  /// wait); `cancel` (optional) aborts the wait with kCancelled when it
  /// flips true. Returns kResourceExhausted when the queue is full or the
  /// wait deadline expires. On OK the caller MUST pair with ReleaseQuery.
  Status AdmitQuery(uint64_t budget_ms, const std::atomic<bool>* cancel);
  /// Releases an AdmitQuery slot and wakes the longest-waiting query.
  void ReleaseQuery();

  /// Queries currently admitted / waiting for admission (diagnostics).
  int admitted_queries() const;
  int queued_queries() const;

 private:
  /// Per-query (per-pipeline) job handle: all mutable scheduling state of
  /// one Run() call. Lives on the submitting thread's stack; the owner
  /// removes it from the active list before returning, after every
  /// registered worker has left (`executing == 0`).
  struct Job {
    const MorselFn* fn = nullptr;
    uint64_t count = 0;
    int max_workers = 1;
    std::atomic<uint64_t> next{0};       ///< morsel claim counter
    std::atomic<uint64_t> completed{0};  ///< morsels fully executed
    std::atomic<bool> failed{false};
    Status error;       // first error; guarded by the pool mutex
    int slots = 1;      // job-local worker ids handed out; pool mutex
    int executing = 1;  // workers inside WorkLoop (owner incl.); pool mutex
    std::condition_variable done_cv;  // owner waits; waits on pool mutex
  };

  void WorkerMain();
  /// Claims morsels of `job` until it drains or fails.
  void WorkLoop(Job* job, int slot);
  /// Picks a job with unclaimed morsels and a free worker slot, rotating
  /// the scan start across calls; registers the caller (slot + executing)
  /// before returning it. Caller holds mu_. Null when nothing is claimable.
  Job* ClaimJobLocked(int* slot);
  /// Grows the pool to at least `wanted` threads. Caller holds mu_.
  void EnsureWorkersLocked(int wanted);

  SchedulerMetrics metrics_;  // wired pre-concurrency; null hooks = no-op

  /// Admission state lives under its own mutex: AdmitQuery may block for
  /// milliseconds and must never contend with the morsel hot path on mu_.
  mutable std::mutex admission_mu_;
  std::condition_variable admit_cv_;  // waiters poll cancel in short slices
  AdmissionOptions admission_;
  int admitted_ = 0;  ///< queries holding a slot (also counted when
                      ///< admission is disabled, for diagnostics)
  int queued_ = 0;    ///< queries blocked inside AdmitQuery

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // pool threads wait for claimable jobs
  std::vector<std::thread> workers_;
  std::vector<Job*> jobs_;  // active jobs (unclaimed morsels may remain)
  size_t job_rotor_ = 0;    // rotating scan start into jobs_
  bool shutdown_ = false;
};

}  // namespace pipeline
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PIPELINE_SCHEDULER_H_
