#include "exec/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "plan/physical_plan.h"

namespace relgo {
namespace exec {

double QError(double estimated, double actual) {
  double est = std::max(estimated, 1.0);
  double act = std::max(actual, 1.0);
  return std::max(est / act, act / est);
}

namespace {

/// Appends "  [est=... act=... q=... calls=... ms]" for one profiled node.
void AppendAnnotation(const plan::PhysicalOp& op, const QueryProfile& profile,
                      std::string* out) {
  const OperatorProfile* prof = profile.Find(&op);
  char buf[160];
  if (prof == nullptr) {
    if (op.estimated_cardinality >= 0) {
      std::snprintf(buf, sizeof(buf), "  [est=%.0f]",
                    op.estimated_cardinality);
      *out += buf;
    }
    return;
  }
  if (op.estimated_cardinality >= 0) {
    std::snprintf(
        buf, sizeof(buf),
        "  [est=%.0f act=%llu rows, q=%.2f, calls=%llu, %.2f ms]",
        op.estimated_cardinality,
        static_cast<unsigned long long>(prof->rows_out),
        QError(op.estimated_cardinality,
               static_cast<double>(prof->rows_out)),
        static_cast<unsigned long long>(prof->invocations), prof->wall_ms);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  [act=%llu rows, calls=%llu, %.2f ms]",
                  static_cast<unsigned long long>(prof->rows_out),
                  static_cast<unsigned long long>(prof->invocations),
                  prof->wall_ms);
  }
  *out += buf;
}

void RenderTree(const plan::PhysicalOp& op, const QueryProfile& profile,
                int indent, std::string* out) {
  for (int i = 0; i < indent; ++i) *out += "  ";
  *out += op.Describe();
  AppendAnnotation(op, profile, out);
  *out += "\n";
  for (const auto& child : op.children) {
    RenderTree(*child, profile, indent + 1, out);
  }
}

void Summarize(const plan::PhysicalOp& op, const QueryProfile& profile,
               double* log_sum, QErrorSummary* summary) {
  const OperatorProfile* prof = profile.Find(&op);
  if (prof != nullptr && op.estimated_cardinality >= 0) {
    double q = QError(op.estimated_cardinality,
                      static_cast<double>(prof->rows_out));
    *log_sum += std::log(q);
    ++summary->ops;
    if (q > summary->max_q || summary->worst == nullptr) {
      summary->max_q = q;
      summary->worst = &op;
    }
  }
  for (const auto& child : op.children) {
    Summarize(*child, profile, log_sum, summary);
  }
}

void Collect(const plan::PhysicalOp& op, const QueryProfile& profile,
             std::vector<EstimateObservation>* out) {
  const OperatorProfile* prof = profile.Find(&op);
  if (prof != nullptr && !op.feedback_key.empty() &&
      op.estimated_cardinality >= 0) {
    out->push_back({&op, op.estimated_cardinality, prof->rows_out});
  }
  for (const auto& child : op.children) Collect(*child, profile, out);
}

}  // namespace

std::vector<EstimateObservation> CollectObservations(
    const plan::PhysicalOp& root, const QueryProfile& profile) {
  std::vector<EstimateObservation> out;
  Collect(root, profile, &out);
  return out;
}

QErrorSummary SummarizeQError(const plan::PhysicalOp& root,
                              const QueryProfile& profile) {
  QErrorSummary summary;
  double log_sum = 0.0;
  Summarize(root, profile, &log_sum, &summary);
  if (summary.ops > 0) {
    summary.geomean = std::exp(log_sum / summary.ops);
  }
  return summary;
}

namespace {

/// Footer line reporting replayed filtered scans; empty when the query
/// never hit the cross-query scan cache (cache off, cold, or no filtered
/// scans), so cache-free renderings are byte-identical to older builds.
std::string ScanCacheFooter(const QueryProfile& profile) {
  if (profile.scan_cache_hits() == 0) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "scan cache: %llu hits\n",
                static_cast<unsigned long long>(profile.scan_cache_hits()));
  return buf;
}

/// Footer line reporting whether the plan came from the cross-query plan
/// cache; empty when the cache was off or bypassed, so cache-free
/// renderings are byte-identical to older builds.
std::string PlanCacheFooter(const QueryProfile& profile) {
  switch (profile.plan_cache_status()) {
    case QueryProfile::PlanCacheStatus::kOff:
      return "";
    case QueryProfile::PlanCacheStatus::kMiss:
      return "plan cache: miss\n";
    case QueryProfile::PlanCacheStatus::kHit:
      return "plan cache: hit\n";
  }
  return "";
}

}  // namespace

std::string RenderAnalyzedTree(const plan::PhysicalOp& root,
                               const QueryProfile& profile) {
  std::string out;
  RenderTree(root, profile, 0, &out);
  out += ScanCacheFooter(profile);
  out += PlanCacheFooter(profile);
  out += RenderQErrorFooter(root, profile);
  return out;
}

std::string RenderAnalyzedPipelines(const plan::PhysicalOp& root,
                                    const QueryProfile& profile) {
  std::string out;
  char buf[160];
  int index = 0;
  for (const PipelineTrace& trace : profile.pipelines()) {
    if (trace.stages.empty() && trace.breaker != nullptr) {
      // A materializing step outside any pipeline (NAIVE_MATCH).
      out += "BREAKER " + trace.breaker->Describe();
      AppendAnnotation(*trace.breaker, profile, &out);
      out += "\n";
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "PIPELINE #%d (morsels=%llu, threads=%d, %.2f ms) -> %s",
                  index++, static_cast<unsigned long long>(trace.morsels),
                  trace.threads, trace.wall_ms, trace.sink.c_str());
    out += buf;
    out += "\n";
    for (const plan::PhysicalOp* stage : trace.stages) {
      out += "  ";
      out += stage == nullptr ? "TABLE_SOURCE (materialized breaker input)"
                              : stage->Describe();
      if (stage != nullptr) AppendAnnotation(*stage, profile, &out);
      out += "\n";
    }
    if (trace.fused != nullptr) {
      // The breaker fused below the sink's own plan node (ORDER BY under a
      // TOP_K sink): rendered first, matching its position in the plan.
      out += "  sink: " + trace.fused->Describe();
      AppendAnnotation(*trace.fused, profile, &out);
      out += "\n";
    }
    if (trace.breaker != nullptr) {
      out += "  sink: " + trace.breaker->Describe();
      AppendAnnotation(*trace.breaker, profile, &out);
      out += "\n";
    }
  }
  if (profile.build_ms() > 0.0 || profile.sort_ms() > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "breakers: build=%.2f ms sort=%.2f ms\n",
                  profile.build_ms(), profile.sort_ms());
    out += buf;
  }
  out += ScanCacheFooter(profile);
  out += PlanCacheFooter(profile);
  out += RenderQErrorFooter(root, profile);
  return out;
}

std::string RenderQErrorFooter(const plan::PhysicalOp& root,
                               const QueryProfile& profile) {
  QErrorSummary summary = SummarizeQError(root, profile);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "q-error: geomean=%.2f max=%.2f over %d operators\n",
                summary.geomean, summary.max_q, summary.ops);
  return buf;
}

}  // namespace exec
}  // namespace relgo
