#ifndef RELGO_EXEC_PROFILE_H_
#define RELGO_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace relgo {

namespace plan {
struct PhysicalOp;
}  // namespace plan

namespace exec {

/// Per-operator runtime measurements collected when profiling is enabled
/// (EXPLAIN ANALYZE), keyed by physical plan node. Both engines feed the
/// same structure, with engine-specific time semantics:
///
///  * the materializing interpreter records one invocation per operator;
///    wall_ms is the operator's *subtree* wall time (children execute
///    inside the timed region — the engine is operator-at-a-time);
///  * the pipeline engine accumulates per-morsel counters in thread-local
///    slots and merges them here once the pipeline drains: invocations =
///    morsels processed, wall_ms = this operator's cumulative Process
///    time summed over workers (self time, children excluded).
///
/// rows_out — the actual output cardinality — is engine-invariant (the
/// engines are bag-equivalent) and is what Q-error compares against.
/// rows_in is a per-engine diagnostic: for hash joins the materializing
/// engine sums both children while the pipeline engine counts probe-side
/// batches only (the build side is a separate profiled subtree).
struct OperatorProfile {
  uint64_t rows_in = 0;       ///< input tuples consumed (see note above)
  uint64_t rows_out = 0;      ///< output tuples produced (actual cardinality)
  uint64_t invocations = 0;   ///< calls: 1 (materialize) / morsels (pipeline)
  double wall_ms = 0.0;       ///< operator time (see engine semantics above)

  void Accumulate(const OperatorProfile& other) {
    rows_in += other.rows_in;
    rows_out += other.rows_out;
    invocations += other.invocations;
    wall_ms += other.wall_ms;
  }
};

/// One executed pipeline of the morsel-driven engine, recorded so EXPLAIN
/// ANALYZE can render the pipeline-shaped (pipelines + breakers) form of
/// the plan. `stages` run bottom-up: source first, then streaming
/// operators. Breaker-only steps (NAIVE_MATCH, which materializes outside
/// any pipeline) appear as a trace with no stages and `breaker` set.
struct PipelineTrace {
  std::vector<const plan::PhysicalOp*> stages;  ///< source + streaming ops
  const plan::PhysicalOp* breaker = nullptr;    ///< sink/breaker plan node
  /// Second plan node fused into the same sink, rendered before `breaker`
  /// (the ORDER BY under a TOP_K sink's LIMIT); null otherwise.
  const plan::PhysicalOp* fused = nullptr;
  std::string sink;  ///< sink label, e.g. "MATERIALIZE"
  uint64_t morsels = 0;
  int threads = 1;
  double wall_ms = 0.0;  ///< pipeline wall time (prepare -> sink finish)
};

/// Everything one profiled query execution produced, keyed by plan node so
/// it is independent of which engine ran the plan. Filling it is
/// single-threaded by construction: the pipeline engine merges thread-local
/// worker counters into it only at sink finish.
class QueryProfile {
 public:
  /// Adds `delta` onto the node's counters (creating the entry).
  void Accumulate(const plan::PhysicalOp* op, const OperatorProfile& delta) {
    ops_[op].Accumulate(delta);
  }

  const OperatorProfile* Find(const plan::PhysicalOp* op) const {
    auto it = ops_.find(op);
    return it == ops_.end() ? nullptr : &it->second;
  }

  void AddPipeline(PipelineTrace trace) {
    pipelines_.push_back(std::move(trace));
  }

  /// Serial-section accounting of the pipeline engine's breakers: wall time
  /// spent constructing shared JoinHashTables (after the parallel partition
  /// phase this is the parallel finalize, measured end-to-end) and wall
  /// time spent in sort/top-k sink finish (run sorting + merge). Recorded
  /// by the breaker sinks; BENCH_pipeline.json carries the totals as
  /// build_ms / sort_ms so the perf trajectory tracks how much of a query
  /// the breakers still serialize.
  void AddBuildMs(double ms) { build_ms_ += ms; }
  void AddSortMs(double ms) { sort_ms_ += ms; }
  double build_ms() const { return build_ms_; }
  double sort_ms() const { return sort_ms_; }

  /// Cross-query scan-cache hits of this execution (filtered scans whose
  /// selection vector was replayed instead of re-evaluated). Set once by
  /// Database::RunProfiled from the execution context's counter; rendered
  /// in EXPLAIN ANALYZE and recorded in BENCH_pipeline.json.
  void SetScanCacheHits(uint64_t hits) { scan_cache_hits_ = hits; }
  uint64_t scan_cache_hits() const { return scan_cache_hits_; }

  /// Whether this execution's plan came from the Database's cross-query
  /// plan cache (kHit: optimization skipped, cached template plan re-bound
  /// to this call's constants), was freshly optimized with the cache
  /// consulted (kMiss), or ran with the cache off / bypassed (kOff).
  enum class PlanCacheStatus { kOff, kMiss, kHit };
  void SetPlanCacheStatus(PlanCacheStatus s) { plan_cache_status_ = s; }
  PlanCacheStatus plan_cache_status() const { return plan_cache_status_; }

  const std::vector<PipelineTrace>& pipelines() const { return pipelines_; }
  size_t num_profiled_ops() const { return ops_.size(); }

 private:
  std::unordered_map<const plan::PhysicalOp*, OperatorProfile> ops_;
  std::vector<PipelineTrace> pipelines_;
  double build_ms_ = 0.0;
  double sort_ms_ = 0.0;
  uint64_t scan_cache_hits_ = 0;
  PlanCacheStatus plan_cache_status_ = PlanCacheStatus::kOff;
};

/// One estimate-vs-actual pair extracted from a profiled run for a plan
/// node that names its estimator input (PhysicalOp::feedback_key). This
/// is the record the adaptive-statistics sink (optimizer::StatsFeedback)
/// consumes to refine GLogue pattern counts and TableStats selectivities.
struct EstimateObservation {
  const plan::PhysicalOp* op = nullptr;  ///< node carrying feedback_key
  double estimated = 0.0;                ///< optimizer estimate
  uint64_t actual = 0;                   ///< measured rows_out
};

/// Collects the feedback observations of one profiled run: every plan
/// node with a non-empty feedback_key, a non-negative estimate, and a
/// measured actual cardinality (rows_out is engine-invariant, so the
/// observations are too).
std::vector<EstimateObservation> CollectObservations(
    const plan::PhysicalOp& root, const QueryProfile& profile);

/// Q-error of one estimate against the measured cardinality (Sec 5 style
/// accuracy metric): max(est/act, act/est), with both sides clamped to
/// >= 1 row so empty results do not divide by zero. Always >= 1.
double QError(double estimated, double actual);

/// Aggregate estimator accuracy over every plan node that carries both an
/// optimizer estimate and a measured actual cardinality.
struct QErrorSummary {
  int ops = 0;               ///< nodes with estimate + actual
  double geomean = 1.0;      ///< geometric mean Q-error
  double max_q = 1.0;        ///< worst single-operator Q-error
  const plan::PhysicalOp* worst = nullptr;  ///< node attaining max_q
};

QErrorSummary SummarizeQError(const plan::PhysicalOp& root,
                              const QueryProfile& profile);

/// Tree-shaped EXPLAIN ANALYZE rendering (the materializing engine's
/// execution shape): one indented line per operator, annotated with
/// estimated vs actual cardinality, per-operator Q-error, invocation count
/// and operator time.
std::string RenderAnalyzedTree(const plan::PhysicalOp& root,
                               const QueryProfile& profile);

/// Pipeline-shaped rendering (the morsel-driven engine's execution shape):
/// pipelines in execution order, each listing source -> streaming ops ->
/// sink, with the same per-operator annotations, followed by breaker
/// steps that materialize between pipelines.
std::string RenderAnalyzedPipelines(const plan::PhysicalOp& root,
                                    const QueryProfile& profile);

/// One-line aggregate footer, e.g.
/// "q-error: geomean=1.42 max=13.07 over 9 operators".
std::string RenderQErrorFooter(const plan::PhysicalOp& root,
                               const QueryProfile& profile);

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_PROFILE_H_
