#include "exec/scan_cache.h"

namespace relgo {
namespace exec {

std::string ScanCache::Key(const char* kind, const std::string& table,
                           const storage::ExprPtr& filter) {
  return std::string(kind) + "|" + table + "|" +
         (filter ? filter->ToString() : "");
}

std::list<ScanCache::Entry>::iterator ScanCache::FindLocked(
    const std::string& key, uint64_t table_version) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return lru_.end();
  }
  if (it->second->version != table_version) {
    // The table mutated since this entry was computed; it can never be
    // valid again (versions are monotonic), so drop it now.
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(it->second);
    return lru_.end();
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second;
}

ScanCache::SelectionPtr ScanCache::Get(const std::string& key,
                                       uint64_t table_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key, table_version);
  return it == lru_.end() ? nullptr : it->sel;
}

ScanCache::BitmapPtr ScanCache::GetBitmap(const std::string& key,
                                          uint64_t table_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key, table_version);
  return it == lru_.end() ? nullptr : it->bitmap;
}

void ScanCache::Put(const std::string& key, uint64_t table_version,
                    SelectionPtr sel) {
  if (sel == nullptr) return;
  Entry entry;
  entry.bytes = EntryBytes(key, sel);
  entry.key = key;
  entry.version = table_version;
  entry.sel = std::move(sel);
  PutEntry(std::move(entry));
}

void ScanCache::PutBitmap(const std::string& key, uint64_t table_version,
                          BitmapPtr bitmap) {
  if (bitmap == nullptr) return;
  Entry entry;
  entry.bytes = EntryBytes(key, bitmap);
  entry.key = key;
  entry.version = table_version;
  entry.bitmap = std::move(bitmap);
  PutEntry(std::move(entry));
}

void ScanCache::PutEntry(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Cost-aware admission: one entry may take at most the admission cap,
  // never the whole budget — a single huge selection must not evict every
  // colder-but-still-hot entry.
  if (entry.bytes > admit_cap_bytes()) {
    ++stats_.rejections;
    return;
  }
  auto it = index_.find(entry.key);
  if (it != index_.end()) EraseLocked(it->second);
  while (bytes_ + entry.bytes > max_bytes_ && !lru_.empty()) {
    ++stats_.evictions;
    EraseLocked(std::prev(lru_.end()));  // coldest first
  }
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  ++stats_.insertions;
}

void ScanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ScanCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

ScanCache::Stats ScanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ScanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t ScanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace exec
}  // namespace relgo
