#include "exec/scan_cache.h"

namespace relgo {
namespace exec {

std::string ScanCache::Key(const char* kind, const std::string& table,
                           const storage::ExprPtr& filter) {
  return std::string(kind) + "|" + table + "|" +
         (filter ? filter->ToString() : "");
}

ScanCache::SelectionPtr ScanCache::Get(const std::string& key,
                                       uint64_t table_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->version != table_version) {
    // The table mutated since this selection was computed; the entry can
    // never be valid again (versions are monotonic), so drop it now.
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(it->second);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->sel;
}

void ScanCache::Put(const std::string& key, uint64_t table_version,
                    SelectionPtr sel) {
  if (sel == nullptr) return;
  size_t entry_bytes = EntryBytes(key, sel);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry_bytes > max_bytes_) return;  // larger than the whole budget
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  while (bytes_ + entry_bytes > max_bytes_ && !lru_.empty()) {
    ++stats_.evictions;
    EraseLocked(std::prev(lru_.end()));
  }
  lru_.push_front(Entry{key, table_version, std::move(sel), entry_bytes});
  index_[key] = lru_.begin();
  bytes_ += entry_bytes;
  ++stats_.insertions;
}

void ScanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ScanCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

ScanCache::Stats ScanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ScanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t ScanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace exec
}  // namespace relgo
