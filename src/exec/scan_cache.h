#ifndef RELGO_EXEC_SCAN_CACHE_H_
#define RELGO_EXEC_SCAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/expression.h"

namespace relgo {
namespace exec {

/// Cross-query scan/filter cache (ROADMAP "Shared scan caching").
///
/// Concurrent workloads re-scan the same base tables with the same pushed
/// predicates over and over; the expensive part — evaluating the predicate
/// per row — produces a selection vector that depends only on (table
/// contents, predicate). This cache stores those selection vectors keyed
/// by the feedback layer's scan signature namespace ("scan|<table>|<pred>",
/// see optimizer::ScanFeedbackKey — the same string identity that already
/// ties estimates to scans ties cached filter results to scans), so any
/// query of any engine re-running a known filtered scan skips straight to
/// the gather. Unfiltered scans are never cached: they have no per-row
/// work to amortize. Expansion-style operators cache their per-base-row
/// validity bitmaps the same way under the "bitmap|..." key namespace.
///
/// Correctness: a hit returns exactly the row ids (or bitmap bytes) the
/// filter loop would have selected, in ascending order, and callers keep
/// charging the same row budget — results and resource accounting are
/// bit-identical with the cache on or off. Staleness is handled by the
/// owning table's version counter (storage::Table::version): every entry
/// records the version it was computed against, and a lookup under a
/// different version drops the entry and reports a miss.
///
/// Thread-safety: fully synchronized; Get/Put/Clear/stats may be called
/// from any number of concurrent queries. Eviction is LRU under a byte
/// budget (8 bytes per cached row id, 1 per bitmap byte, plus key
/// overhead). Admission is cost-aware: one entry may occupy at most
/// kAdmitCapNum/kAdmitCapDen of the budget, so a single huge selection
/// can never wipe out many colder-but-still-hot entries; those under the
/// cap are
/// admitted by evicting from the cold (LRU tail) end first.
class ScanCache {
 public:
  using SelectionPtr = std::shared_ptr<const std::vector<uint64_t>>;
  using BitmapPtr = std::shared_ptr<const std::vector<uint8_t>>;

  /// Monotonic counters (lifetime totals; never reset by eviction).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;         ///< lookups that found nothing usable
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU evictions under the byte budget
    uint64_t invalidations = 0;  ///< entries dropped on version mismatch
    uint64_t rejections = 0;     ///< entries refused by the admission cap
    uint64_t Lookups() const { return hits + misses; }
    double HitRate() const {
      uint64_t n = Lookups();
      return n == 0 ? 0.0 : static_cast<double>(hits) / n;
    }
  };

  static constexpr size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  /// Largest admissible entry as a fraction of the byte budget. 1/2 keeps
  /// at least two distinct hot scans resident under any workload while
  /// still admitting selections over multi-million-row tables at the
  /// default budget (32 MB of row ids = 4M rows).
  static constexpr size_t kAdmitCapNum = 1;
  static constexpr size_t kAdmitCapDen = 2;

  explicit ScanCache(size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  ScanCache(const ScanCache&) = delete;
  ScanCache& operator=(const ScanCache&) = delete;

  /// Cache key of a filtered scan over a base table — the execution-side
  /// twin of optimizer::ScanFeedbackKey's "scan|<table>|<pred>" signature
  /// (without the estimator-base tag, which is irrelevant at runtime).
  /// `kind` distinguishes scan shapes whose selection semantics differ
  /// ("scan" for relational scans, "vscan" for vertex-binding scans,
  /// "bitmap" for expansion validity bitmaps).
  static std::string Key(const char* kind, const std::string& table,
                         const storage::ExprPtr& filter);

  /// The selection vector cached under `key` if present and computed at
  /// `table_version`; null on miss. A version mismatch invalidates the
  /// entry. A hit refreshes LRU recency.
  SelectionPtr Get(const std::string& key, uint64_t table_version);

  /// Stores `sel` under `key` at `table_version`, evicting LRU entries
  /// (coldest first) until the byte budget holds. An entry larger than
  /// the admission cap (kAdmitCapNum/kAdmitCapDen of the budget) is not
  /// stored. Replaces an existing entry for `key`.
  void Put(const std::string& key, uint64_t table_version, SelectionPtr sel);

  /// Bitmap twins of Get/Put for the "bitmap|..." key namespace. Key
  /// namespaces never collide, so selection and bitmap payloads share one
  /// LRU list and byte budget.
  BitmapPtr GetBitmap(const std::string& key, uint64_t table_version);
  void PutBitmap(const std::string& key, uint64_t table_version,
                 BitmapPtr bitmap);

  void Clear();

  Stats stats() const;
  size_t entries() const;
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }
  size_t admit_cap_bytes() const {
    return max_bytes_ / kAdmitCapDen * kAdmitCapNum;
  }

 private:
  /// One cached payload: exactly one of `sel` / `bitmap` is set,
  /// discriminated by the key's kind prefix (namespaces never collide).
  struct Entry {
    std::string key;
    uint64_t version = 0;
    SelectionPtr sel;
    BitmapPtr bitmap;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const std::string& key, const SelectionPtr& sel) {
    return key.size() + (sel ? sel->size() * sizeof(uint64_t) : 0) +
           kEntryOverhead;
  }
  static size_t EntryBytes(const std::string& key, const BitmapPtr& bitmap) {
    return key.size() + (bitmap ? bitmap->size() : 0) + kEntryOverhead;
  }
  static constexpr size_t kEntryOverhead = 64;  // list/map node estimate

  /// Shared admit/evict/insert path for both payload kinds. Caller must
  /// NOT hold mu_.
  void PutEntry(Entry entry);

  /// Looks up `key` at `table_version`, refreshing recency; nullptr-Entry
  /// (end iterator) semantics folded into the bool. Caller holds mu_.
  std::list<Entry>::iterator FindLocked(const std::string& key,
                                        uint64_t table_version);

  /// Drops `it` (must be valid) and its index entry. Caller holds mu_.
  void EraseLocked(std::list<Entry>::iterator it);

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_SCAN_CACHE_H_
