#ifndef RELGO_EXEC_SCAN_CACHE_H_
#define RELGO_EXEC_SCAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/expression.h"

namespace relgo {
namespace exec {

/// Cross-query scan/filter cache (ROADMAP "Shared scan caching").
///
/// Concurrent workloads re-scan the same base tables with the same pushed
/// predicates over and over; the expensive part — evaluating the predicate
/// per row — produces a selection vector that depends only on (table
/// contents, predicate). This cache stores those selection vectors keyed
/// by the feedback layer's scan signature namespace ("scan|<table>|<pred>",
/// see optimizer::ScanFeedbackKey — the same string identity that already
/// ties estimates to scans ties cached filter results to scans), so any
/// query of any engine re-running a known filtered scan skips straight to
/// the gather. Unfiltered scans are never cached: they have no per-row
/// work to amortize.
///
/// Correctness: a hit returns exactly the row ids the filter loop would
/// have selected, in ascending order, and callers keep charging the same
/// row budget — results and resource accounting are bit-identical with
/// the cache on or off. Staleness is handled by the owning table's
/// version counter (storage::Table::version): every entry records the
/// version it was computed against, and a lookup under a different
/// version drops the entry and reports a miss.
///
/// Thread-safety: fully synchronized; Get/Put/Clear/stats may be called
/// from any number of concurrent queries. Eviction is LRU under a byte
/// budget (8 bytes per cached row id plus key overhead).
class ScanCache {
 public:
  using SelectionPtr = std::shared_ptr<const std::vector<uint64_t>>;

  /// Monotonic counters (lifetime totals; never reset by eviction).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;         ///< lookups that found nothing usable
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU evictions under the byte budget
    uint64_t invalidations = 0;  ///< entries dropped on version mismatch
    uint64_t Lookups() const { return hits + misses; }
    double HitRate() const {
      uint64_t n = Lookups();
      return n == 0 ? 0.0 : static_cast<double>(hits) / n;
    }
  };

  static constexpr size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  explicit ScanCache(size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  ScanCache(const ScanCache&) = delete;
  ScanCache& operator=(const ScanCache&) = delete;

  /// Cache key of a filtered scan over a base table — the execution-side
  /// twin of optimizer::ScanFeedbackKey's "scan|<table>|<pred>" signature
  /// (without the estimator-base tag, which is irrelevant at runtime).
  /// `kind` distinguishes scan shapes whose selection semantics differ
  /// ("scan" for relational scans, "vscan" for vertex-binding scans).
  static std::string Key(const char* kind, const std::string& table,
                         const storage::ExprPtr& filter);

  /// The selection vector cached under `key` if present and computed at
  /// `table_version`; null on miss. A version mismatch invalidates the
  /// entry. A hit refreshes LRU recency.
  SelectionPtr Get(const std::string& key, uint64_t table_version);

  /// Stores `sel` under `key` at `table_version`, evicting LRU entries
  /// until the byte budget holds (an entry larger than the whole budget
  /// is not stored). Replaces an existing entry for `key`.
  void Put(const std::string& key, uint64_t table_version, SelectionPtr sel);

  void Clear();

  Stats stats() const;
  size_t entries() const;
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    uint64_t version = 0;
    SelectionPtr sel;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const std::string& key, const SelectionPtr& sel) {
    return key.size() + (sel ? sel->size() * sizeof(uint64_t) : 0) +
           kEntryOverhead;
  }
  static constexpr size_t kEntryOverhead = 64;  // list/map node estimate

  /// Drops `it` (must be valid) and its index entry. Caller holds mu_.
  void EraseLocked(std::list<Entry>::iterator it);

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_SCAN_CACHE_H_
