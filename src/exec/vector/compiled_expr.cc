#include "exec/vector/compiled_expr.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/vector/kernels.h"

namespace relgo {
namespace exec {
namespace vector {

namespace {

using storage::Column;
using storage::CompareOp;
using storage::Expr;
using storage::Schema;

/// int64 / bool / date share the int64 payload and promote to double in
/// Value::Compare; doubles promote trivially.
bool IsNumericType(LogicalType t) {
  return t == LogicalType::kInt64 || t == LogicalType::kBool ||
         t == LogicalType::kDate || t == LogicalType::kDouble;
}

bool IsNumericValue(const Value& v) { return IsNumericType(v.type()); }

/// Mirrors the `numeric` promotion lambda inside Value::Compare exactly:
/// int64/date via their int64 payload, bool as 1.0/0.0.
double PromoteValue(const Value& v) {
  switch (v.type()) {
    case LogicalType::kInt64:
      return static_cast<double>(v.int_value());
    case LogicalType::kDate:
      return static_cast<double>(v.date_value());
    case LogicalType::kBool:
      return v.bool_value() ? 1.0 : 0.0;
    case LogicalType::kDouble:
      return v.double_value();
    default:
      return 0.0;
  }
}

/// Applies a CompareOp to a Value::Compare-style three-way result.
bool ApplyOp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// NOT(a op b) for non-null operands is (a negop b); both sides are NULL
/// on NULL input, which the filter boundary collapses to false either way.
CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

/// (a op b) with the operands swapped: (b mirror(op) a).
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

/// Deterministic ordering of incomparable types (Value::Compare tail).
int TypeTagCompare(LogicalType a, LogicalType b) {
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

/// Dispatches a CompareOp to a comparator functor once per kernel so the
/// per-row loops are branch-light. The functors are phrased in terms of
/// `<` and `>` exactly like Value::Compare's three-way result, so double
/// NaN behaves identically to the row path (NaN is "equal" to every
/// numeric there: neither side compares less or greater).
template <typename F>
void DispatchCmp(CompareOp op, F&& f) {
  switch (op) {
    case CompareOp::kEq:
      f([](const auto& a, const auto& b) { return !(a < b) && !(a > b); });
      return;
    case CompareOp::kNe:
      f([](const auto& a, const auto& b) { return a < b || a > b; });
      return;
    case CompareOp::kLt:
      f([](const auto& a, const auto& b) { return a < b; });
      return;
    case CompareOp::kLe:
      f([](const auto& a, const auto& b) { return !(a > b); });
      return;
    case CompareOp::kGt:
      f([](const auto& a, const auto& b) { return a > b; });
      return;
    case CompareOp::kGe:
      f([](const auto& a, const auto& b) { return !(a < b); });
      return;
  }
}

/// Dictionary fast path of a string leaf: int32 code compares or
/// one-byte bitmap probes instead of payload string compares. Entered
/// only after RunLeaf verified the batch column(s) still carry the
/// compile-time dictionary. Null rows carry the code of their ""
/// payload placeholder, so the validity gate comes first exactly like
/// the payload kernels.
template <typename Scan>
void RunDictLeaf(const CompiledKernel& k, const Column& a, const Column* b,
                 Scan&& scan) {
  const uint8_t* va = a.validity_data();
  const int32_t* ca = a.data_codes();
  switch (k.dict_mode) {
    case CompiledKernel::DictMode::kCodeCmp: {
      // Branch-free validity gate (`&`, not `&&`): codes are total, so
      // the unconditional ca[r] load is safe, and the loop body carries
      // no control flow — required for auto-vectorization of this
      // widest kernel (see FilterBitmap's dense path).
      const int32_t cst = k.code_const;
      DispatchCmp(k.code_cmp, [&](auto cmp) {
        if (!va) {
          scan([&](uint64_t r) { return cmp(ca[r], cst); });
        } else {
          scan([&](uint64_t r) {
            return bool((va[r] != 0) & cmp(ca[r], cst));
          });
        }
      });
      return;
    }
    case CompiledKernel::DictMode::kCodeCols: {
      const uint8_t* vb = b->validity_data();
      const int32_t* cb = b->data_codes();
      DispatchCmp(k.code_cmp, [&](auto cmp) {
        if (!va && !vb) {
          scan([&](uint64_t r) { return cmp(ca[r], cb[r]); });
        } else if (va != nullptr && vb != nullptr) {
          scan([&](uint64_t r) {
            return bool(((va[r] & vb[r]) != 0) & cmp(ca[r], cb[r]));
          });
        } else {
          const uint8_t* v = va != nullptr ? va : vb;
          scan([&](uint64_t r) {
            return bool((v[r] != 0) & cmp(ca[r], cb[r]));
          });
        }
      });
      return;
    }
    case CompiledKernel::DictMode::kCodeBits: {
      // The bits[ca[r]] gather defeats baseline x86-64 vectorization
      // (no hardware gather below AVX2), but the branch-free gate still
      // keeps the scalar loop tight: one byte load per row, no
      // per-distinct-value string work.
      const uint8_t* bits = k.code_bits.data();
      if (!va) {
        scan([&](uint64_t r) { return bits[ca[r]] != 0; });
      } else {
        scan([&](uint64_t r) {
          return bool((va[r] != 0) & (bits[ca[r]] != 0));
        });
      }
      return;
    }
    case CompiledKernel::DictMode::kNone:
      return;
  }
}

/// True when the dictionary lowering of `k` may run against this batch:
/// every referenced column must still carry the compile-time dictionary
/// (derived columns drop it when fed foreign strings; the fold-free
/// payload fields then take over).
inline bool DictUsable(const CompiledKernel& k, const Column* const* cols) {
  if (k.dict_mode == CompiledKernel::DictMode::kNone) return false;
  if (cols[k.col]->dictionary() != k.dict) return false;
  if (k.dict_mode == CompiledKernel::DictMode::kCodeCols &&
      cols[k.col2]->dictionary() != k.dict) {
    return false;
  }
  return true;
}

/// Runs leaf kernel `k` through `scan`, a callable that applies a
/// row-predicate over some row source (dense range or selection) and
/// collects passing rows. Instantiated once for each source shape.
template <typename Scan>
void RunLeaf(const CompiledKernel& k, const Column* const* cols,
             Scan&& scan) {
  switch (k.op) {
    case CompiledKernel::Op::kCmpNumConst: {
      const Column& c = *cols[k.col];
      const uint8_t* vd = c.validity_data();
      const double cst = k.num_const;
      // Validity gates use bitwise `&` so the loop body stays free of
      // control flow (payload slots of null rows hold 0.0/0 and are
      // safe to load); short-circuit `&&` here blocks vectorization.
      DispatchCmp(k.cmp, [&](auto cmp) {
        if (c.type() == LogicalType::kDouble) {
          const double* d = c.data_double();
          if (!vd) {
            scan([&](uint64_t r) { return cmp(d[r], cst); });
          } else {
            scan([&](uint64_t r) {
              return bool((vd[r] != 0) & cmp(d[r], cst));
            });
          }
        } else {
          const int64_t* d = c.data_int64();
          if (!vd) {
            scan([&](uint64_t r) {
              return cmp(static_cast<double>(d[r]), cst);
            });
          } else {
            scan([&](uint64_t r) {
              return bool((vd[r] != 0) &
                          cmp(static_cast<double>(d[r]), cst));
            });
          }
        }
      });
      return;
    }
    case CompiledKernel::Op::kCmpStrConst: {
      const Column& c = *cols[k.col];
      if (DictUsable(k, cols)) {
        RunDictLeaf(k, c, nullptr, scan);
        return;
      }
      const uint8_t* vd = c.validity_data();
      const std::string* d = c.data_string();
      const std::string& cst = k.str_const;
      DispatchCmp(k.cmp, [&](auto cmp) {
        if (!vd) {
          scan([&](uint64_t r) { return cmp(d[r], cst); });
        } else {
          scan([&](uint64_t r) { return vd[r] && cmp(d[r], cst); });
        }
      });
      return;
    }
    case CompiledKernel::Op::kCmpNumCols: {
      const Column& a = *cols[k.col];
      const Column& b = *cols[k.col2];
      const uint8_t* va = a.validity_data();
      const uint8_t* vb = b.validity_data();
      auto with_getters = [&](auto geta, auto getb) {
        DispatchCmp(k.cmp, [&](auto cmp) {
          if (!va && !vb) {
            scan([&](uint64_t r) { return cmp(geta(r), getb(r)); });
          } else if (va != nullptr && vb != nullptr) {
            scan([&](uint64_t r) {
              return bool(((va[r] & vb[r]) != 0) & cmp(geta(r), getb(r)));
            });
          } else {
            const uint8_t* v = va != nullptr ? va : vb;
            scan([&](uint64_t r) {
              return bool((v[r] != 0) & cmp(geta(r), getb(r)));
            });
          }
        });
      };
      bool ad = a.type() == LogicalType::kDouble;
      bool bd = b.type() == LogicalType::kDouble;
      if (ad && bd) {
        const double* da = a.data_double();
        const double* db = b.data_double();
        with_getters([da](uint64_t r) { return da[r]; },
                     [db](uint64_t r) { return db[r]; });
      } else if (ad) {
        const double* da = a.data_double();
        const int64_t* db = b.data_int64();
        with_getters([da](uint64_t r) { return da[r]; },
                     [db](uint64_t r) { return static_cast<double>(db[r]); });
      } else if (bd) {
        const int64_t* da = a.data_int64();
        const double* db = b.data_double();
        with_getters([da](uint64_t r) { return static_cast<double>(da[r]); },
                     [db](uint64_t r) { return db[r]; });
      } else {
        const int64_t* da = a.data_int64();
        const int64_t* db = b.data_int64();
        with_getters([da](uint64_t r) { return static_cast<double>(da[r]); },
                     [db](uint64_t r) { return static_cast<double>(db[r]); });
      }
      return;
    }
    case CompiledKernel::Op::kCmpStrCols: {
      const Column& a = *cols[k.col];
      const Column& b = *cols[k.col2];
      if (DictUsable(k, cols)) {
        RunDictLeaf(k, a, &b, scan);
        return;
      }
      const uint8_t* va = a.validity_data();
      const uint8_t* vb = b.validity_data();
      const std::string* da = a.data_string();
      const std::string* db = b.data_string();
      DispatchCmp(k.cmp, [&](auto cmp) {
        if (!va && !vb) {
          scan([&](uint64_t r) { return cmp(da[r], db[r]); });
        } else {
          scan([&](uint64_t r) {
            return (!va || va[r]) && (!vb || vb[r]) && cmp(da[r], db[r]);
          });
        }
      });
      return;
    }
    case CompiledKernel::Op::kInListNum: {
      const Column& c = *cols[k.col];
      const uint8_t* vd = c.validity_data();
      const bool neg = k.negate;
      const std::vector<double>& list = k.num_list;
      // A NaN probe value is Compare-equal to every numeric candidate in
      // the row path, so it matches any non-empty list (`v != v` test).
      auto probe = [&list](double v) {
        return v != v || std::binary_search(list.begin(), list.end(), v);
      };
      if (c.type() == LogicalType::kDouble) {
        const double* d = c.data_double();
        scan([&](uint64_t r) {
          return (!vd || vd[r]) && probe(d[r]) != neg;
        });
      } else {
        const int64_t* d = c.data_int64();
        scan([&](uint64_t r) {
          return (!vd || vd[r]) && probe(static_cast<double>(d[r])) != neg;
        });
      }
      return;
    }
    case CompiledKernel::Op::kInListStr: {
      const Column& c = *cols[k.col];
      if (DictUsable(k, cols)) {
        RunDictLeaf(k, c, nullptr, scan);
        return;
      }
      const uint8_t* vd = c.validity_data();
      const std::string* d = c.data_string();
      const bool neg = k.negate;
      const std::vector<std::string>& list = k.str_list;
      scan([&](uint64_t r) {
        return (!vd || vd[r]) &&
               std::binary_search(list.begin(), list.end(), d[r]) != neg;
      });
      return;
    }
    case CompiledKernel::Op::kStartsWith: {
      const Column& c = *cols[k.col];
      if (DictUsable(k, cols)) {
        RunDictLeaf(k, c, nullptr, scan);
        return;
      }
      const uint8_t* vd = c.validity_data();
      const std::string* d = c.data_string();
      const bool neg = k.negate;
      scan([&](uint64_t r) {
        return (!vd || vd[r]) &&
               relgo::StartsWith(d[r], k.str_const) != neg;
      });
      return;
    }
    case CompiledKernel::Op::kContains: {
      const Column& c = *cols[k.col];
      if (DictUsable(k, cols)) {
        RunDictLeaf(k, c, nullptr, scan);
        return;
      }
      const uint8_t* vd = c.validity_data();
      const std::string* d = c.data_string();
      const bool neg = k.negate;
      scan([&](uint64_t r) {
        return (!vd || vd[r]) && relgo::Contains(d[r], k.str_const) != neg;
      });
      return;
    }
    case CompiledKernel::Op::kIsNull: {
      const uint8_t* vd = cols[k.col]->validity_data();
      if (!vd) return;  // all valid: nothing passes
      scan([&](uint64_t r) { return !vd[r]; });
      return;
    }
    case CompiledKernel::Op::kIsNotNull: {
      const uint8_t* vd = cols[k.col]->validity_data();
      if (!vd) {
        scan([](uint64_t) { return true; });
      } else {
        scan([&](uint64_t r) { return vd[r] != 0; });
      }
      return;
    }
    case CompiledKernel::Op::kBoolCol: {
      const Column& c = *cols[k.col];
      const uint8_t* vd = c.validity_data();
      const int64_t* d = c.data_int64();
      const bool neg = k.negate;
      if (!vd) {
        scan([&](uint64_t r) { return (d[r] != 0) != neg; });
      } else {
        scan([&](uint64_t r) { return vd[r] && (d[r] != 0) != neg; });
      }
      return;
    }
    case CompiledKernel::Op::kAllRows:
      scan([](uint64_t) { return true; });
      return;
    case CompiledKernel::Op::kNoRows:
      return;
  }
}

}  // namespace

int CompiledPredicate::AddLeaf(CompiledKernel k) {
  Node n;
  n.kind = Node::Kind::kLeaf;
  n.leaf = std::move(k);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int CompiledPredicate::Lower(const Expr& expr, const Schema& schema,
                             bool negated) {
  using Kind = Expr::Kind;
  // Resolves a bound column-ref child against the schema; -1 on anything
  // else (the caller then falls back).
  auto col_index = [&](const Expr& e) -> int {
    if (e.kind() != Kind::kColumnRef) return -1;
    int idx = e.bound_index();
    if (idx < 0 || idx >= static_cast<int>(schema.num_columns())) return -1;
    return idx;
  };
  auto col_type = [&](int idx) { return schema.column(idx).type; };
  // Dictionary of a string column, when the table-aware Compile was used
  // and the flag is on; nullptr otherwise (payload lowering only).
  auto col_dict = [&](int idx) -> const storage::StringDictionary* {
    if (!use_dict_ || table_ == nullptr) return nullptr;
    if (idx >= static_cast<int>(table_->num_columns())) return nullptr;
    const Column& c = table_->column(idx);
    if (c.type() != LogicalType::kString) return nullptr;
    return c.dictionary();
  };
  auto make_const = [&](bool pass) {
    CompiledKernel k;
    k.op = pass ? CompiledKernel::Op::kAllRows : CompiledKernel::Op::kNoRows;
    return AddLeaf(k);
  };

  switch (expr.kind()) {
    case Kind::kNot:
      return Lower(*expr.children()[0], schema, !negated);
    case Kind::kAnd:
    case Kind::kOr: {
      // Kleene De Morgan: NOT(a AND b) == NOT a OR NOT b under SQL
      // three-valued logic, so negation distributes to the children.
      bool is_and = (expr.kind() == Kind::kAnd) != negated;
      int l = Lower(*expr.children()[0], schema, negated);
      if (l < 0) return -1;
      int r = Lower(*expr.children()[1], schema, negated);
      if (r < 0) return -1;
      Node n;
      n.kind = is_and ? Node::Kind::kAnd : Node::Kind::kOr;
      n.children = {l, r};
      nodes_.push_back(std::move(n));
      return static_cast<int>(nodes_.size()) - 1;
    }
    case Kind::kCompare: {
      const Expr& le = *expr.children()[0];
      const Expr& re = *expr.children()[1];
      CompareOp op = negated ? NegateOp(expr.compare_op())
                             : expr.compare_op();
      // Constant-vs-constant folds at compile time.
      if (le.kind() == Kind::kConstant && re.kind() == Kind::kConstant) {
        if (le.constant().is_null() || re.constant().is_null()) {
          return make_const(false);
        }
        return make_const(ApplyOp(op, le.constant().Compare(re.constant())));
      }
      // Normalize constant-vs-column to column-vs-constant.
      const Expr* ce = &le;
      const Expr* ke = &re;
      if (le.kind() == Kind::kConstant) {
        std::swap(ce, ke);
        op = MirrorOp(op);
      }
      int ci = col_index(*ce);
      if (ci < 0) return -1;
      LogicalType ct = col_type(ci);
      if (ke->kind() == Kind::kConstant) {
        const Value& cv = ke->constant();
        if (cv.is_null()) return make_const(false);
        CompiledKernel k;
        k.cmp = op;
        k.col = ci;
        if (IsNumericType(ct) && IsNumericValue(cv)) {
          k.op = CompiledKernel::Op::kCmpNumConst;
          k.num_const = PromoteValue(cv);
        } else if (ct == LogicalType::kString &&
                   cv.type() == LogicalType::kString) {
          k.op = CompiledKernel::Op::kCmpStrConst;
          k.str_const = cv.string_value();
          if (const storage::StringDictionary* dict = col_dict(ci)) {
            // Dictionary lowering: translate the constant to a code at
            // compile time. The dictionary covers every string of the
            // compile-time column (null placeholders included), so an
            // absent constant folds: no row can equal it.
            if (op == CompareOp::kEq || op == CompareOp::kNe) {
              int32_t code = dict->Find(k.str_const);
              if (code < 0) {
                if (op == CompareOp::kEq) return make_const(false);
                CompiledKernel e;
                e.op = CompiledKernel::Op::kIsNotNull;
                e.col = ci;
                return AddLeaf(std::move(e));
              }
              k.dict_mode = CompiledKernel::DictMode::kCodeCmp;
              k.dict = dict;
              k.code_cmp = op;
              k.code_const = code;
            } else if (dict->sorted) {
              // Sorted dictionary: code order == lexicographic order,
              // so a range becomes an integer compare against the
              // constant's insertion position. With pos =
              // lower_bound(const) and ub = pos + (const present):
              // s < c <=> code < pos, s <= c <=> code < ub, and the
              // complements for >= / >.
              auto lb = std::lower_bound(dict->values.begin(),
                                         dict->values.end(), k.str_const);
              auto pos = static_cast<int32_t>(lb - dict->values.begin());
              int32_t ub =
                  pos + (lb != dict->values.end() && *lb == k.str_const);
              k.dict_mode = CompiledKernel::DictMode::kCodeCmp;
              k.dict = dict;
              switch (op) {
                case CompareOp::kLt:
                  k.code_cmp = CompareOp::kLt;
                  k.code_const = pos;
                  break;
                case CompareOp::kGe:
                  k.code_cmp = CompareOp::kGe;
                  k.code_const = pos;
                  break;
                case CompareOp::kLe:
                  k.code_cmp = CompareOp::kLt;
                  k.code_const = ub;
                  break;
                case CompareOp::kGt:
                  k.code_cmp = CompareOp::kGe;
                  k.code_const = ub;
                  break;
                default:
                  break;  // unreachable: kEq/kNe handled above
              }
            } else {
              // Unsorted (post-append) dictionary: evaluate the range
              // once per distinct value into a pass bitmap — O(distinct)
              // at compile, one byte load per row.
              k.dict_mode = CompiledKernel::DictMode::kCodeBits;
              k.dict = dict;
              k.code_bits.resize(dict->values.size());
              DispatchCmp(op, [&](auto cmpf) {
                for (size_t c = 0; c < dict->values.size(); ++c) {
                  k.code_bits[c] = cmpf(dict->values[c], k.str_const);
                }
              });
            }
          }
        } else if (ct == LogicalType::kNull) {
          return -1;
        } else {
          // Incomparable types: Value::Compare orders by type tag, so
          // the outcome is fixed for every non-null row.
          if (!ApplyOp(op, TypeTagCompare(ct, cv.type()))) {
            return make_const(false);
          }
          k.op = CompiledKernel::Op::kIsNotNull;
        }
        return AddLeaf(std::move(k));
      }
      int ci2 = col_index(*ke);
      if (ci2 < 0) return -1;
      LogicalType ct2 = col_type(ci2);
      CompiledKernel k;
      k.cmp = op;
      k.col = ci;
      k.col2 = ci2;
      if (IsNumericType(ct) && IsNumericType(ct2)) {
        k.op = CompiledKernel::Op::kCmpNumCols;
      } else if (ct == LogicalType::kString && ct2 == LogicalType::kString) {
        k.op = CompiledKernel::Op::kCmpStrCols;
        const storage::StringDictionary* dict = col_dict(ci);
        if (dict != nullptr && dict == col_dict(ci2)) {
          // Same shared dictionary on both sides: equal strings <=>
          // equal codes; a sorted dictionary carries the full ordering.
          if (op == CompareOp::kEq || op == CompareOp::kNe ||
              dict->sorted) {
            k.dict_mode = CompiledKernel::DictMode::kCodeCols;
            k.dict = dict;
            k.code_cmp = op;
          }
        }
      } else if (ct == LogicalType::kNull || ct2 == LogicalType::kNull) {
        return -1;
      } else {
        // Fixed type-tag outcome; rows still need both sides non-null.
        if (!ApplyOp(op, TypeTagCompare(ct, ct2))) return make_const(false);
        CompiledKernel ka;
        ka.op = CompiledKernel::Op::kIsNotNull;
        ka.col = ci;
        CompiledKernel kb;
        kb.op = CompiledKernel::Op::kIsNotNull;
        kb.col = ci2;
        Node n;
        n.kind = Node::Kind::kAnd;
        n.children = {AddLeaf(std::move(ka)), AddLeaf(std::move(kb))};
        nodes_.push_back(std::move(n));
        return static_cast<int>(nodes_.size()) - 1;
      }
      return AddLeaf(std::move(k));
    }
    case Kind::kStartsWith:
    case Kind::kContains: {
      int ci = col_index(*expr.children()[0]);
      if (ci < 0) return -1;
      if (col_type(ci) != LogicalType::kString) {
        // Row path yields NULL for non-string input, false either way.
        return make_const(false);
      }
      CompiledKernel k;
      k.op = expr.kind() == Kind::kStartsWith
                 ? CompiledKernel::Op::kStartsWith
                 : CompiledKernel::Op::kContains;
      k.col = ci;
      k.str_const = expr.string_arg();
      k.negate = negated;
      if (const storage::StringDictionary* dict = col_dict(ci)) {
        // Substring scans hit every row; against a dictionary the match
        // runs once per distinct value into a pass bitmap (negation
        // baked in), one byte load per row after that.
        k.dict_mode = CompiledKernel::DictMode::kCodeBits;
        k.dict = dict;
        k.code_bits.resize(dict->values.size());
        for (size_t c = 0; c < dict->values.size(); ++c) {
          bool m = expr.kind() == Kind::kStartsWith
                       ? relgo::StartsWith(dict->values[c], k.str_const)
                       : relgo::Contains(dict->values[c], k.str_const);
          k.code_bits[c] = m != k.negate;
        }
      }
      return AddLeaf(std::move(k));
    }
    case Kind::kInList: {
      int ci = col_index(*expr.children()[0]);
      if (ci < 0) return -1;
      LogicalType ct = col_type(ci);
      CompiledKernel k;
      k.col = ci;
      k.negate = negated;
      if (IsNumericType(ct)) {
        // Only numeric candidates can ever match (Value::Compare treats
        // cross-family pairs as incomparable, hence never equal).
        for (const Value& v : expr.in_list()) {
          if (IsNumericValue(v)) k.num_list.push_back(PromoteValue(v));
        }
        // A NaN candidate is Compare-equal to every numeric probe, so
        // the list matches all non-null rows (it also cannot be sorted).
        for (double v : k.num_list) {
          if (v != v) {
            CompiledKernel e;
            e.op = negated ? CompiledKernel::Op::kNoRows
                           : CompiledKernel::Op::kIsNotNull;
            e.col = ci;
            return AddLeaf(std::move(e));
          }
        }
        std::sort(k.num_list.begin(), k.num_list.end());
        k.num_list.erase(std::unique(k.num_list.begin(), k.num_list.end()),
                         k.num_list.end());
        if (k.num_list.empty()) {
          CompiledKernel e;
          e.op = negated ? CompiledKernel::Op::kIsNotNull
                         : CompiledKernel::Op::kNoRows;
          e.col = ci;
          return AddLeaf(std::move(e));
        }
        k.op = CompiledKernel::Op::kInListNum;
      } else if (ct == LogicalType::kString) {
        for (const Value& v : expr.in_list()) {
          if (v.type() == LogicalType::kString) {
            k.str_list.push_back(v.string_value());
          }
        }
        std::sort(k.str_list.begin(), k.str_list.end());
        k.str_list.erase(std::unique(k.str_list.begin(), k.str_list.end()),
                         k.str_list.end());
        if (k.str_list.empty()) {
          CompiledKernel e;
          e.op = negated ? CompiledKernel::Op::kIsNotNull
                         : CompiledKernel::Op::kNoRows;
          e.col = ci;
          return AddLeaf(std::move(e));
        }
        k.op = CompiledKernel::Op::kInListStr;
        if (const storage::StringDictionary* dict = col_dict(ci)) {
          // Probe set -> per-code pass bitmap: the sorted-list binary
          // search runs once per distinct value instead of once per row.
          k.dict_mode = CompiledKernel::DictMode::kCodeBits;
          k.dict = dict;
          k.code_bits.resize(dict->values.size());
          for (size_t c = 0; c < dict->values.size(); ++c) {
            bool in = std::binary_search(k.str_list.begin(),
                                         k.str_list.end(), dict->values[c]);
            k.code_bits[c] = in != k.negate;
          }
        }
      } else {
        return -1;
      }
      return AddLeaf(std::move(k));
    }
    case Kind::kIsNull: {
      const Expr& child = *expr.children()[0];
      if (child.kind() == Kind::kConstant) {
        return make_const(child.constant().is_null() != negated);
      }
      int ci = col_index(child);
      if (ci < 0 || col_type(ci) == LogicalType::kNull) return -1;
      CompiledKernel k;
      k.op = negated ? CompiledKernel::Op::kIsNotNull
                     : CompiledKernel::Op::kIsNull;
      k.col = ci;
      return AddLeaf(std::move(k));
    }
    case Kind::kColumnRef: {
      int ci = col_index(expr);
      if (ci < 0) return -1;
      if (col_type(ci) == LogicalType::kBool) {
        CompiledKernel k;
        k.op = CompiledKernel::Op::kBoolCol;
        k.col = ci;
        k.negate = negated;
        return AddLeaf(std::move(k));
      }
      // Non-bool bare reference: EvaluateBool's type check rejects every
      // row; under negation the row path is undefined, so fall back.
      return negated ? -1 : make_const(false);
    }
    case Kind::kConstant: {
      const Value& v = expr.constant();
      if (v.is_null()) return make_const(false);
      if (v.type() != LogicalType::kBool) {
        return negated ? -1 : make_const(false);
      }
      return make_const(v.bool_value() != negated);
    }
  }
  return -1;
}

std::unique_ptr<CompiledPredicate> CompiledPredicate::Compile(
    const Expr& expr, const Schema& schema) {
  return Compile(expr, schema, /*table=*/nullptr,
                 /*use_dictionaries=*/false);
}

std::unique_ptr<CompiledPredicate> CompiledPredicate::Compile(
    const Expr& expr, const Schema& schema, const storage::Table* table,
    bool use_dictionaries) {
  std::unique_ptr<CompiledPredicate> p(new CompiledPredicate());
  p->table_ = table;
  p->use_dict_ = use_dictionaries;
  p->root_ = p->Lower(expr, schema, /*negated=*/false);
  if (p->root_ < 0) return nullptr;
  return p;
}

void CompiledPredicate::EvalDense(int node, const Column* const* columns,
                                  uint64_t begin, uint64_t end,
                                  std::vector<uint64_t>* out) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Node::Kind::kLeaf:
      RunLeaf(n.leaf, columns, [&](auto pred) {
        ScanRange(begin, end, pred, out);
      });
      return;
    case Node::Kind::kAnd: {
      std::vector<uint64_t> acc;
      EvalDense(n.children[0], columns, begin, end, &acc);
      std::vector<uint64_t> next;
      for (size_t i = 1; i < n.children.size() && !acc.empty(); ++i) {
        next.clear();
        EvalSelected(n.children[i], columns, acc, &next);
        acc.swap(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return;
    }
    case Node::Kind::kOr: {
      std::vector<uint64_t> acc;
      EvalDense(n.children[0], columns, begin, end, &acc);
      std::vector<uint64_t> tmp;
      std::vector<uint64_t> merged;
      for (size_t i = 1; i < n.children.size(); ++i) {
        tmp.clear();
        EvalDense(n.children[i], columns, begin, end, &tmp);
        UnionSelections(acc, tmp, &merged);
        acc.swap(merged);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return;
    }
  }
}

void CompiledPredicate::EvalSelected(int node, const Column* const* columns,
                                     const std::vector<uint64_t>& in,
                                     std::vector<uint64_t>* out) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Node::Kind::kLeaf:
      RunLeaf(n.leaf, columns, [&](auto pred) {
        ScanSelected(in, pred, out);
      });
      return;
    case Node::Kind::kAnd: {
      std::vector<uint64_t> acc;
      EvalSelected(n.children[0], columns, in, &acc);
      std::vector<uint64_t> next;
      for (size_t i = 1; i < n.children.size() && !acc.empty(); ++i) {
        next.clear();
        EvalSelected(n.children[i], columns, acc, &next);
        acc.swap(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return;
    }
    case Node::Kind::kOr: {
      std::vector<uint64_t> acc;
      EvalSelected(n.children[0], columns, in, &acc);
      std::vector<uint64_t> tmp;
      std::vector<uint64_t> merged;
      for (size_t i = 1; i < n.children.size(); ++i) {
        tmp.clear();
        EvalSelected(n.children[i], columns, in, &tmp);
        UnionSelections(acc, tmp, &merged);
        acc.swap(merged);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return;
    }
  }
}

void CompiledPredicate::FilterRange(const Column* const* columns,
                                    uint64_t begin, uint64_t end,
                                    std::vector<uint64_t>* out_sel) const {
  if (begin >= end) return;
  EvalDense(root_, columns, begin, end, out_sel);
}

void CompiledPredicate::FilterSelected(const Column* const* columns,
                                       const std::vector<uint64_t>& in,
                                       std::vector<uint64_t>* out_sel) const {
  EvalSelected(root_, columns, in, out_sel);
}

void CompiledPredicate::FilterBitmap(const Column* const* columns,
                                     uint64_t num_rows,
                                     std::vector<uint8_t>* out) const {
  out->assign(num_rows, 0);
  if (nodes_[root_].kind == Node::Kind::kLeaf) {
    // Single-leaf programs write the bitmap densely: `out[r] = pred(r)`
    // has no data-dependent store position, so the widest compare
    // kernels auto-vectorize where the selection-building ScanRange
    // (push_back) cannot (verified with -fopt-info-vec; see
    // docs/ARCHITECTURE.md "Dictionary-encoded strings").
    // By-value captures and __restrict__ matter: the uint8_t stores
    // would otherwise alias the validity bytes (char-typed under TBAA)
    // and the by-reference loop bound, forcing reloads per iteration.
    uint8_t* const o = out->data();
    const uint64_t n = num_rows;
    RunLeaf(nodes_[root_].leaf, columns, [o, n](auto pred) {
      // Copy the closure fields to true locals: the closure lives in
      // the caller's frame, and the char-typed ro[r] stores would
      // otherwise be assumed to clobber the bound each iteration.
      uint8_t* __restrict__ ro = o;
      const uint64_t nn = n;
      for (uint64_t r = 0; r < nn; ++r) ro[r] = pred(r) ? 1 : 0;
    });
    return;
  }
  std::vector<uint64_t> sel;
  FilterRange(columns, 0, num_rows, &sel);
  for (uint64_t r : sel) (*out)[r] = 1;
}

void CompiledPredicate::FilterTable(const storage::Table& table,
                                    uint64_t begin, uint64_t end,
                                    std::vector<uint64_t>* out_sel) const {
  std::vector<const Column*> cols(table.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = &table.column(i);
  FilterRange(cols.data(), begin, end, out_sel);
}

}  // namespace vector
}  // namespace exec
}  // namespace relgo
