#ifndef RELGO_EXEC_VECTOR_COMPILED_EXPR_H_
#define RELGO_EXEC_VECTOR_COMPILED_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/expression.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace relgo {
namespace exec {
namespace vector {

/// One lowered leaf kernel of a compiled predicate: a type-specialized
/// operation over a column payload span (see kernels.h for the ABI).
/// Nodes above leaves are AND/OR combinators over selection vectors.
struct CompiledKernel {
  enum class Op : uint8_t {
    kCmpNumConst,   // numeric-payload column vs promoted double constant
    kCmpStrConst,   // string column vs string constant
    kCmpNumCols,    // numeric-payload column vs numeric-payload column
    kCmpStrCols,    // string column vs string column
    kInListNum,     // numeric column IN sorted double probe set
    kInListStr,     // string column IN sorted string probe set
    kStartsWith,    // string column prefix match
    kContains,      // string column substring match
    kIsNull,        // pass rows with invalid slots
    kIsNotNull,     // pass rows with valid slots
    kBoolCol,       // bare bool column reference as predicate
    kAllRows,       // constant TRUE
    kNoRows,        // constant FALSE / NULL / type-incompatible compare
  };

  Op op = Op::kNoRows;
  storage::CompareOp cmp = storage::CompareOp::kEq;
  /// Negation baked into the leaf (NOT is pushed to leaves during
  /// lowering via Kleene-logic De Morgan; compare leaves instead flip
  /// their operator, so `negate` only applies to the match-style ops:
  /// kInList*, kStartsWith, kContains, kBoolCol).
  bool negate = false;
  int col = -1;   // bound index of the (left) input column
  int col2 = -1;  // bound index of the right column (kCmp*Cols)
  double num_const = 0.0;
  std::string str_const;
  std::vector<double> num_list;       // sorted, deduplicated
  std::vector<std::string> str_list;  // sorted, deduplicated

  /// Dictionary lowering of the string ops (set when compiled against a
  /// table whose column carries a storage::StringDictionary and
  /// ExecutionOptions::dictionary_encoding is on). The payload fields
  /// above stay fully populated: the kernel runner re-checks `dict`
  /// against each batch column and falls back to the payload compare
  /// when a derived column dropped the dictionary.
  enum class DictMode : uint8_t {
    kNone,      ///< no dictionary lowering; payload kernel only
    kCodeCmp,   ///< codes[r] `code_cmp` code_const (validity-gated)
    kCodeCols,  ///< codes[r] `code_cmp` codes2[r] (same shared dict)
    kCodeBits,  ///< code_bits[codes[r]] (negation pre-baked into bits)
  };
  DictMode dict_mode = DictMode::kNone;
  const storage::StringDictionary* dict = nullptr;
  storage::CompareOp code_cmp = storage::CompareOp::kEq;
  int32_t code_const = 0;
  std::vector<uint8_t> code_bits;  ///< indexed by code; 1 == row passes
};

/// A bound predicate tree lowered to a flat program of typed kernels.
///
/// The program is a node arena: leaves run one CompiledKernel over a row
/// range or an existing selection; kAnd chains children as successive
/// selection refinements; kOr unions child selections. Evaluation output
/// is always an ascending selection vector of rows where the original
/// expression's `EvaluateBool` is true — semantics are bit-identical to
/// the row-at-a-time path, including NULL collapse at the filter
/// boundary, numeric comparison via double promotion (Value::Compare),
/// and deterministic ordering of incomparable types.
///
/// `Compile` returns nullptr for any tree it cannot lower (the fallback
/// contract): callers must keep the row-at-a-time loop as the fallback.
class CompiledPredicate {
 public:
  /// Lowers `expr` against `schema`. `expr` must already be bound to
  /// `schema` (bound_index resolved). Returns nullptr when any part of
  /// the tree is outside the lowerable subset.
  static std::unique_ptr<CompiledPredicate> Compile(
      const storage::Expr& expr, const storage::Schema& schema);

  /// As above, additionally lowering string predicates onto int32
  /// dictionary codes where `table`'s columns carry dictionaries and
  /// `use_dictionaries` (ExecutionOptions::dictionary_encoding) is set.
  /// `table` must be the table the predicate filters — or the ancestor
  /// every filtered batch derives from: the constant-not-in-dictionary
  /// folds assume filtered rows draw their strings from the
  /// compile-time column's value set.
  static std::unique_ptr<CompiledPredicate> Compile(
      const storage::Expr& expr, const storage::Schema& schema,
      const storage::Table* table, bool use_dictionaries);

  /// Appends the passing rows of [begin, end) to `*out_sel` (ascending).
  /// `columns[i]` must match the compile-time schema layout.
  void FilterRange(const storage::Column* const* columns, uint64_t begin,
                   uint64_t end, std::vector<uint64_t>* out_sel) const;

  /// Refines an ascending selection: appends passing rows of `in` to
  /// `*out_sel`.
  void FilterSelected(const storage::Column* const* columns,
                      const std::vector<uint64_t>& in,
                      std::vector<uint64_t>* out_sel) const;

  /// Evaluates rows [0, num_rows) into a byte bitmap (1 == pass).
  void FilterBitmap(const storage::Column* const* columns, uint64_t num_rows,
                    std::vector<uint8_t>* out) const;

  /// Convenience over a Table: appends passing rows of [begin, end).
  void FilterTable(const storage::Table& table, uint64_t begin, uint64_t end,
                   std::vector<uint64_t>* out_sel) const;

 private:
  struct Node {
    enum class Kind : uint8_t { kLeaf, kAnd, kOr };
    Kind kind = Kind::kLeaf;
    CompiledKernel leaf;
    std::vector<int> children;  // arena indices (kAnd / kOr)
  };

  CompiledPredicate() = default;

  /// Lowers one subtree; returns the arena index or -1 when not
  /// lowerable. `negated` pushes NOT down (Kleene De Morgan).
  int Lower(const storage::Expr& expr, const storage::Schema& schema,
            bool negated);
  int AddLeaf(CompiledKernel k);

  void EvalDense(int node, const storage::Column* const* columns,
                 uint64_t begin, uint64_t end,
                 std::vector<uint64_t>* out) const;
  void EvalSelected(int node, const storage::Column* const* columns,
                    const std::vector<uint64_t>& in,
                    std::vector<uint64_t>* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  /// Compile-time dictionary context (see the table-aware Compile).
  const storage::Table* table_ = nullptr;
  bool use_dict_ = false;
};

}  // namespace vector
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_VECTOR_COMPILED_EXPR_H_
