#ifndef RELGO_EXEC_VECTOR_KERNELS_H_
#define RELGO_EXEC_VECTOR_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "storage/column.h"

namespace relgo {
namespace exec {
namespace vector {

/// -- Kernel ABI --------------------------------------------------------------
///
/// The vectorized layer exchanges data in exactly three shapes, chosen so
/// the same format can later serve as the spill / shard-transport
/// interchange format (ROADMAP: out-of-core + distributed items):
///
///  1. Typed payload spans: `const int64_t*` / `const double*` /
///     `const std::string*` obtained from `Column::data_int64()` etc.
///     int64, bool and date share the int64 payload (days since epoch for
///     dates, 0/1 for bools), mirroring the storage layout byte for byte.
///  2. Null bitmaps: `const uint8_t*` validity bytes (1 == valid) from
///     `Column::validity_data()`, or nullptr when every row is valid —
///     kernels hoist the nullptr check out of their inner loops so the
///     common all-valid path stays branch-light.
///  3. Selection vectors: `std::vector<uint64_t>` of passing row ids in
///     strictly ascending order. Every kernel either produces one from a
///     dense row range or refines an existing one; combinators are set
///     operations that preserve the ascending invariant.
///
/// All kernels in this header are semantics-free plumbing: typed scan
/// loops and ordered-set combinators. Predicate semantics (which rows
/// pass) live in compiled_expr.*, which must match row-at-a-time
/// `Expr::EvaluateBool` bit for bit.

/// Appends rows of [begin, end) satisfying `pred` to `*out` (ascending).
template <typename Pred>
inline void ScanRange(uint64_t begin, uint64_t end, Pred pred,
                      std::vector<uint64_t>* out) {
  for (uint64_t r = begin; r < end; ++r) {
    if (pred(r)) out->push_back(r);
  }
}

/// Appends rows of the (ascending) selection `in` satisfying `pred` to
/// `*out`; the refinement preserves ascending order.
template <typename Pred>
inline void ScanSelected(const std::vector<uint64_t>& in, Pred pred,
                         std::vector<uint64_t>* out) {
  for (uint64_t r : in) {
    if (pred(r)) out->push_back(r);
  }
}

/// Merges two ascending, duplicate-free selections into their union.
inline void UnionSelections(const std::vector<uint64_t>& a,
                            const std::vector<uint64_t>& b,
                            std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

}  // namespace vector
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_VECTOR_KERNELS_H_
