#include "exec/vector/typed_keys.h"

#include <cstring>

namespace relgo {
namespace exec {
namespace vector {

namespace {

constexpr char kTagNull = 0;
constexpr char kTagValue = 1;
/// Dictionary-coded string value: 4-byte int32 code into the pinned
/// dictionary. Disjoint from kTagValue, so a coded string can never
/// byte-collide with a payload-encoded one.
constexpr char kTagCode = 2;

void AppendFixed64(std::string* out, int64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

int64_t ReadFixed64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendLength(std::string* out, uint32_t n) {
  char buf[4];
  std::memcpy(buf, &n, sizeof(buf));
  out->append(buf, sizeof(buf));
}

uint32_t ReadLength(const char* p) {
  uint32_t n;
  std::memcpy(&n, p, sizeof(n));
  return n;
}

void AppendFixed32(std::string* out, int32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

int32_t ReadFixed32(const char* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

KeyEncoder::KeyEncoder(std::vector<LogicalType> types, bool use_dictionaries)
    : types_(std::move(types)), use_dict_(use_dictionaries) {
  if (!use_dict_) return;
  pinned_.assign(types_.size(), nullptr);
  pin_once_.resize(types_.size());
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i] == LogicalType::kString) {
      pin_once_[i] = std::make_unique<std::once_flag>();
    }
  }
}

std::unique_ptr<KeyEncoder> KeyEncoder::Make(
    const std::vector<LogicalType>& types, bool use_dictionaries) {
  for (LogicalType t : types) {
    switch (t) {
      case LogicalType::kBool:
      case LogicalType::kInt64:
      case LogicalType::kDate:
      case LogicalType::kString:
      case LogicalType::kNull:  // every row encodes as the NULL tag
        break;
      case LogicalType::kDouble:
        // NaN is Compare-equal to every numeric and +0.0 == -0.0;
        // neither survives byte encoding. Boxed fallback.
        return nullptr;
      default:
        return nullptr;
    }
  }
  return std::unique_ptr<KeyEncoder>(
      new KeyEncoder(types, use_dictionaries));
}

void KeyEncoder::Encode(const storage::Column* const* cols, uint64_t row,
                        EncodedGroupKey* key) const {
  key->bytes.clear();
  size_t h = kHashSeed;
  for (size_t i = 0; i < types_.size(); ++i) {
    const storage::Column& col = *cols[i];
    if (types_[i] == LogicalType::kNull || !col.is_valid(row)) {
      key->bytes.push_back(kTagNull);
      h = HashCombine(h, kNullHash);
      continue;
    }
    key->bytes.push_back(kTagValue);
    switch (types_[i]) {
      case LogicalType::kBool: {
        bool v = col.int_at(row) != 0;
        key->bytes.push_back(v ? 1 : 0);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kInt64: {
        int64_t v = col.int_at(row);
        AppendFixed64(&key->bytes, v);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kDate: {
        // Mirror GetValue's boxing: truncate to the 32-bit day number,
        // then hash the widened int64 exactly as Value::Hash does.
        auto v = static_cast<int64_t>(static_cast<int32_t>(col.int_at(row)));
        AppendFixed64(&key->bytes, v);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kString: {
        const std::string& s = col.string_at(row);
        if (use_dict_) {
          std::call_once(*pin_once_[i],
                         [&] { pinned_[i] = col.dictionary(); });
          const storage::StringDictionary* dict = pinned_[i];
          if (dict != nullptr) {
            // Same dictionary: read the row's code straight off the
            // column; foreign/no dictionary: translate through the
            // pinned one (absent strings keep the byte encoding below).
            int32_t code = col.dictionary() == dict ? col.code_at(row)
                                                    : dict->Find(s);
            if (code >= 0) {
              key->bytes.back() = kTagCode;
              AppendFixed32(&key->bytes, code);
              h = HashCombine(h, TypedHash(static_cast<int64_t>(code)));
              break;
            }
          }
        }
        AppendLength(&key->bytes, static_cast<uint32_t>(s.size()));
        key->bytes.append(s);
        h = HashCombine(h, TypedHash(s));
        break;
      }
      default:
        break;  // unreachable: Make() rejected these types
    }
  }
  key->hash = h;
}

void KeyEncoder::Decode(const EncodedGroupKey& key,
                        std::vector<Value>* out) const {
  out->clear();
  out->reserve(types_.size());
  const char* p = key.bytes.data();
  for (size_t i = 0; i < types_.size(); ++i) {
    LogicalType t = types_[i];
    char tag = *p++;
    if (tag == kTagNull) {
      out->push_back(Value::Null());
      continue;
    }
    if (tag == kTagCode) {
      // Dictionary-coded string: resolve against the pinned dictionary
      // (the encoder that produced this key pinned it before encoding).
      int32_t code = ReadFixed32(p);
      p += 4;
      out->push_back(Value::String(pinned_[i]->values[code]));
      continue;
    }
    switch (t) {
      case LogicalType::kBool:
        out->push_back(Value::Bool(*p++ != 0));
        break;
      case LogicalType::kInt64:
        out->push_back(Value::Int(ReadFixed64(p)));
        p += 8;
        break;
      case LogicalType::kDate:
        out->push_back(Value::Date(static_cast<int32_t>(ReadFixed64(p))));
        p += 8;
        break;
      case LogicalType::kString: {
        uint32_t n = ReadLength(p);
        p += 4;
        out->push_back(Value::String(std::string(p, n)));
        p += n;
        break;
      }
      default:
        out->push_back(Value::Null());
        break;
    }
  }
}

}  // namespace vector
}  // namespace exec
}  // namespace relgo
