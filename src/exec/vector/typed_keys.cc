#include "exec/vector/typed_keys.h"

#include <cstring>

namespace relgo {
namespace exec {
namespace vector {

namespace {

constexpr char kTagNull = 0;
constexpr char kTagValue = 1;

void AppendFixed64(std::string* out, int64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

int64_t ReadFixed64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendLength(std::string* out, uint32_t n) {
  char buf[4];
  std::memcpy(buf, &n, sizeof(buf));
  out->append(buf, sizeof(buf));
}

uint32_t ReadLength(const char* p) {
  uint32_t n;
  std::memcpy(&n, p, sizeof(n));
  return n;
}

}  // namespace

std::unique_ptr<KeyEncoder> KeyEncoder::Make(
    const std::vector<LogicalType>& types) {
  for (LogicalType t : types) {
    switch (t) {
      case LogicalType::kBool:
      case LogicalType::kInt64:
      case LogicalType::kDate:
      case LogicalType::kString:
      case LogicalType::kNull:  // every row encodes as the NULL tag
        break;
      case LogicalType::kDouble:
        // NaN is Compare-equal to every numeric and +0.0 == -0.0;
        // neither survives byte encoding. Boxed fallback.
        return nullptr;
      default:
        return nullptr;
    }
  }
  return std::unique_ptr<KeyEncoder>(new KeyEncoder(types));
}

void KeyEncoder::Encode(const storage::Column* const* cols, uint64_t row,
                        EncodedGroupKey* key) const {
  key->bytes.clear();
  size_t h = kHashSeed;
  for (size_t i = 0; i < types_.size(); ++i) {
    const storage::Column& col = *cols[i];
    if (types_[i] == LogicalType::kNull || !col.is_valid(row)) {
      key->bytes.push_back(kTagNull);
      h = HashCombine(h, kNullHash);
      continue;
    }
    key->bytes.push_back(kTagValue);
    switch (types_[i]) {
      case LogicalType::kBool: {
        bool v = col.int_at(row) != 0;
        key->bytes.push_back(v ? 1 : 0);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kInt64: {
        int64_t v = col.int_at(row);
        AppendFixed64(&key->bytes, v);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kDate: {
        // Mirror GetValue's boxing: truncate to the 32-bit day number,
        // then hash the widened int64 exactly as Value::Hash does.
        auto v = static_cast<int64_t>(static_cast<int32_t>(col.int_at(row)));
        AppendFixed64(&key->bytes, v);
        h = HashCombine(h, TypedHash(v));
        break;
      }
      case LogicalType::kString: {
        const std::string& s = col.string_at(row);
        AppendLength(&key->bytes, static_cast<uint32_t>(s.size()));
        key->bytes.append(s);
        h = HashCombine(h, TypedHash(s));
        break;
      }
      default:
        break;  // unreachable: Make() rejected these types
    }
  }
  key->hash = h;
}

void KeyEncoder::Decode(const EncodedGroupKey& key,
                        std::vector<Value>* out) const {
  out->clear();
  out->reserve(types_.size());
  const char* p = key.bytes.data();
  for (LogicalType t : types_) {
    if (*p++ == kTagNull) {
      out->push_back(Value::Null());
      continue;
    }
    switch (t) {
      case LogicalType::kBool:
        out->push_back(Value::Bool(*p++ != 0));
        break;
      case LogicalType::kInt64:
        out->push_back(Value::Int(ReadFixed64(p)));
        p += 8;
        break;
      case LogicalType::kDate:
        out->push_back(Value::Date(static_cast<int32_t>(ReadFixed64(p))));
        p += 8;
        break;
      case LogicalType::kString: {
        uint32_t n = ReadLength(p);
        p += 4;
        out->push_back(Value::String(std::string(p, n)));
        p += n;
        break;
      }
      default:
        out->push_back(Value::Null());
        break;
    }
  }
}

}  // namespace vector
}  // namespace exec
}  // namespace relgo
