#ifndef RELGO_EXEC_VECTOR_TYPED_KEYS_H_
#define RELGO_EXEC_VECTOR_TYPED_KEYS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/value.h"
#include "storage/column.h"

namespace relgo {
namespace exec {
namespace vector {

// ---------------------------------------------------------------------------
// Encoded group keys
// ---------------------------------------------------------------------------

/// A group-by key encoded as a byte string read straight from column
/// payload spans: per key column one tag byte (0 = NULL, 1 = value)
/// followed by a fixed- or length-prefixed payload. Byte equality
/// coincides with the boxed GroupKey's Value-vector equality, so the
/// aggregate hash maps can key on these without constructing a Value per
/// row. The hash is chained from the typed common/hash.h overloads during
/// encoding — no second pass over the bytes.
struct EncodedGroupKey {
  std::string bytes;
  size_t hash = kHashSeed;

  bool operator==(const EncodedGroupKey& other) const {
    return bytes == other.bytes;
  }
};

struct EncodedGroupKeyHash {
  size_t operator()(const EncodedGroupKey& k) const { return k.hash; }
};

/// Encodes / decodes group keys for a fixed sequence of key column types.
///
/// Make() refuses (returns nullptr) when any key column is kDouble:
/// Value equality routes through Value::Compare, under which NaN compares
/// equal to every numeric and +0.0 == -0.0 — neither is representable as
/// byte equality. Callers must then keep the boxed GroupKey path. The
/// remaining types are exact, with one deliberate exception: two int64
/// keys beyond 2^53 that alias under double promotion are distinct here
/// but "equal" to Value::Compare — the boxed map's hash (exact
/// std::hash<int64_t>) already disagrees with its equality for such keys,
/// so that regime has no well-defined grouping to preserve.
class KeyEncoder {
 public:
  /// `types[i]` is the logical type of the i-th key column. Returns
  /// nullptr when some type cannot preserve Value equality byte-for-byte.
  ///
  /// With `use_dictionaries` (ExecutionOptions::dictionary_encoding) a
  /// string key column encodes through its dictionary where possible:
  /// the first row encoded pins the column's dictionary (call_once, so
  /// concurrent pipeline workers agree), and every string present in
  /// the pinned dictionary encodes as a fixed 4-byte code under its own
  /// tag — constant-size bytes and an int32 hash instead of
  /// length-prefixed payload bytes. Strings outside the pinned
  /// dictionary (foreign batch, dropped encoding) keep the byte
  /// encoding; the two tag spaces are disjoint, so byte equality still
  /// coincides with string equality and Decode reconstructs the exact
  /// GetValue boxing either way.
  static std::unique_ptr<KeyEncoder> Make(
      const std::vector<LogicalType>& types, bool use_dictionaries = false);

  size_t num_cols() const { return types_.size(); }

  /// Encodes row `row` of the key columns `cols` (cols[i] must have type
  /// types_[i]) into `*key`, overwriting it. Thread-safe (const,
  /// stateless).
  void Encode(const storage::Column* const* cols, uint64_t row,
              EncodedGroupKey* key) const;

  /// Reconstructs the boxed key row; each Value matches what
  /// Column::GetValue would have produced for the encoded row.
  void Decode(const EncodedGroupKey& key, std::vector<Value>* out) const;

 private:
  KeyEncoder(std::vector<LogicalType> types, bool use_dictionaries);

  std::vector<LogicalType> types_;
  bool use_dict_ = false;
  /// Per key column: the dictionary pinned by the first Encode of that
  /// column (nullptr until pinned, or when the column has none).
  /// Encoding is a pure function of (pinned dictionary, string), so
  /// whichever worker pins first, every row encodes consistently.
  mutable std::vector<const storage::StringDictionary*> pinned_;
  mutable std::vector<std::unique_ptr<std::once_flag>> pin_once_;
};

// ---------------------------------------------------------------------------
// Typed aggregate gathering
// ---------------------------------------------------------------------------

/// Typed view of one aggregate input column: replaces the per-row
/// `column.GetValue(r)` boxing in the GROUP BY update loops with payload
/// span reads. A Value is only constructed when a running MIN/MAX
/// actually improves. Works against any state struct with the engines'
/// AggState shape (`Value min, max; double sum; int64_t isum;`); the
/// caller bumps `count` itself (it is unconditional, nulls included).
///
/// Comparison semantics are exactly the boxed loop's: Value::Compare
/// promotes every numeric (int64, date, bool) through double, so the
/// min/max tests below compare doubles even for integer payloads, and a
/// NaN neither replaces nor is replaced once a double min/max is set.
class AggColumnView {
 public:
  AggColumnView() = default;

  explicit AggColumnView(const storage::Column* col)
      : type_(col->type()), valid_(col->validity_data()) {
    switch (type_) {
      case LogicalType::kInt64:
      case LogicalType::kBool:
      case LogicalType::kDate:
        ints_ = col->data_int64();
        break;
      case LogicalType::kDouble:
        doubles_ = col->data_double();
        break;
      case LogicalType::kString:
        strings_ = col->data_string();
        break;
      case LogicalType::kNull:
        break;  // every row reads as NULL — Update is a no-op
    }
  }

  template <typename AggState>
  void Update(uint64_t row, AggState* st) const {
    if (valid_ != nullptr && valid_[row] == 0) return;
    switch (type_) {
      case LogicalType::kInt64: {
        int64_t v = ints_[row];
        st->isum += v;
        double d = static_cast<double>(v);
        if (st->min.is_null() ||
            d < static_cast<double>(st->min.int_value())) {
          st->min = Value::Int(v);
        }
        if (st->max.is_null() ||
            static_cast<double>(st->max.int_value()) < d) {
          st->max = Value::Int(v);
        }
        break;
      }
      case LogicalType::kDate: {
        // Mirror GetValue's boxing: the stored payload is truncated to
        // the 32-bit day number before any comparison.
        auto v = static_cast<int32_t>(ints_[row]);
        double d = static_cast<double>(v);
        if (st->min.is_null() ||
            d < static_cast<double>(st->min.int_value())) {
          st->min = Value::Date(v);
        }
        if (st->max.is_null() ||
            static_cast<double>(st->max.int_value()) < d) {
          st->max = Value::Date(v);
        }
        break;
      }
      case LogicalType::kBool: {
        bool v = ints_[row] != 0;
        double d = v ? 1.0 : 0.0;
        if (st->min.is_null() || d < (st->min.bool_value() ? 1.0 : 0.0)) {
          st->min = Value::Bool(v);
        }
        if (st->max.is_null() || (st->max.bool_value() ? 1.0 : 0.0) < d) {
          st->max = Value::Bool(v);
        }
        break;
      }
      case LogicalType::kDouble: {
        double d = doubles_[row];
        st->sum += d;
        if (st->min.is_null() || d < st->min.double_value()) {
          st->min = Value::Double(d);
        }
        if (st->max.is_null() || st->max.double_value() < d) {
          st->max = Value::Double(d);
        }
        break;
      }
      case LogicalType::kString: {
        const std::string& s = strings_[row];
        if (st->min.is_null() || s.compare(st->min.string_value()) < 0) {
          st->min = Value::String(s);
        }
        if (st->max.is_null() || st->max.string_value().compare(s) < 0) {
          st->max = Value::String(s);
        }
        break;
      }
      case LogicalType::kNull:
        break;
    }
  }

 private:
  LogicalType type_ = LogicalType::kNull;
  const uint8_t* valid_ = nullptr;
  const int64_t* ints_ = nullptr;
  const double* doubles_ = nullptr;
  const std::string* strings_ = nullptr;
};

// ---------------------------------------------------------------------------
// Typed sort-key comparison
// ---------------------------------------------------------------------------

/// Three-way typed twin of Value::Compare for two slots of columns that
/// share a LogicalType (the same schema position of two batches, or one
/// column against itself). Returns the sign of
/// `a.GetValue(ar).Compare(b.GetValue(br))` without boxing either side:
/// NULLs order first, numerics promote through double (so NaN is "equal"
/// to every double and never establishes an order), strings compare
/// lexicographically.
/// `use_dictionaries` (ExecutionOptions::dictionary_encoding) enables
/// the string fast path: when both slots share the same *sorted*
/// dictionary, code order coincides with lexicographic order, so one
/// int32 compare replaces the byte compare — sign-identical by
/// construction. Any other dictionary state falls back to the payload.
inline int TypedColumnCompare(const storage::Column& a, uint64_t ar,
                              const storage::Column& b, uint64_t br,
                              bool use_dictionaries = false) {
  bool an = !a.is_valid(ar), bn = !b.is_valid(br);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  if (use_dictionaries && a.type() == LogicalType::kString) {
    const storage::StringDictionary* d = a.dictionary();
    if (d != nullptr && d == b.dictionary() && d->sorted) {
      int32_t ac = a.code_at(ar), bc = b.code_at(br);
      return ac < bc ? -1 : (bc < ac ? 1 : 0);
    }
  }
  switch (a.type()) {
    case LogicalType::kInt64: {
      auto ad = static_cast<double>(a.int_at(ar));
      auto bd = static_cast<double>(b.int_at(br));
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kDate: {
      auto ad = static_cast<double>(static_cast<int32_t>(a.int_at(ar)));
      auto bd = static_cast<double>(static_cast<int32_t>(b.int_at(br)));
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kBool: {
      double ad = a.int_at(ar) != 0 ? 1.0 : 0.0;
      double bd = b.int_at(br) != 0 ? 1.0 : 0.0;
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kDouble: {
      double ad = a.double_at(ar), bd = b.double_at(br);
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kString: {
      int c = a.string_at(ar).compare(b.string_at(br));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case LogicalType::kNull:
      return 0;
  }
  return 0;
}

/// Typed twin of `a.GetValue(ar).Compare(v)` where `v` was previously
/// boxed from the same schema position (so it is NULL or shares `a`'s
/// type). Lets the TopK heap fence test read the incoming batch through
/// spans while the retained heap rows stay boxed.
inline int TypedColumnValueCompare(const storage::Column& a, uint64_t ar,
                                   const Value& v) {
  bool an = !a.is_valid(ar), bn = v.is_null();
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  switch (a.type()) {
    case LogicalType::kInt64: {
      auto ad = static_cast<double>(a.int_at(ar));
      auto bd = static_cast<double>(v.int_value());
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kDate: {
      auto ad = static_cast<double>(static_cast<int32_t>(a.int_at(ar)));
      auto bd = static_cast<double>(v.int_value());
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kBool: {
      double ad = a.int_at(ar) != 0 ? 1.0 : 0.0;
      double bd = v.bool_value() ? 1.0 : 0.0;
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kDouble: {
      double ad = a.double_at(ar), bd = v.double_value();
      return ad < bd ? -1 : (bd < ad ? 1 : 0);
    }
    case LogicalType::kString: {
      int c = a.string_at(ar).compare(v.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case LogicalType::kNull:
      return 0;
  }
  return 0;
}

}  // namespace vector
}  // namespace exec
}  // namespace relgo

#endif  // RELGO_EXEC_VECTOR_TYPED_KEYS_H_
