#include "graph/graph_index.h"

#include <algorithm>
#include <numeric>

namespace relgo {
namespace graph {

Status GraphIndex::Build(const storage::Catalog& catalog,
                         const RgMapping& mapping) {
  edges_.assign(mapping.num_edge_labels(), EdgeIndexData());
  for (size_t e = 0; e < mapping.num_edge_labels(); ++e) {
    const EdgeMapping& em = mapping.edge_mapping(static_cast<int>(e));
    RELGO_ASSIGN_OR_RETURN(auto edge_table, catalog.GetTable(em.table));

    const VertexMapping& src_vm =
        mapping.vertex_mapping(mapping.FindVertexLabel(em.src_label));
    const VertexMapping& dst_vm =
        mapping.vertex_mapping(mapping.FindVertexLabel(em.dst_label));
    RELGO_ASSIGN_OR_RETURN(auto src_table, catalog.GetTable(src_vm.table));
    RELGO_ASSIGN_OR_RETURN(auto dst_table, catalog.GetTable(dst_vm.table));

    RELGO_ASSIGN_OR_RETURN(const auto* src_key,
                           src_table->GetKeyIndex(src_vm.key_column));
    RELGO_ASSIGN_OR_RETURN(const auto* dst_key,
                           dst_table->GetKeyIndex(dst_vm.key_column));

    const storage::Column* src_fk = edge_table->FindColumn(em.src_key_column);
    const storage::Column* dst_fk = edge_table->FindColumn(em.dst_key_column);
    if (src_fk == nullptr || dst_fk == nullptr) {
      return Status::InvalidArgument("edge table " + em.table +
                                     " missing FK columns");
    }

    EdgeIndexData& data = edges_[e];
    uint64_t n = edge_table->num_rows();
    data.src_rowids.resize(n);
    data.dst_rowids.resize(n);
    for (uint64_t r = 0; r < n; ++r) {
      auto sit = src_key->find(src_fk->int_at(r));
      auto dit = dst_key->find(dst_fk->int_at(r));
      if (sit == src_key->end() || dit == dst_key->end()) {
        return Status::InvalidArgument(
            "dangling FK in edge table " + em.table +
            ": lambda functions must be total (row " + std::to_string(r) +
            ")");
      }
      data.src_rowids[r] = sit->second;
      data.dst_rowids[r] = dit->second;
    }
    BuildCsr(data.src_rowids, data.dst_rowids, src_table->num_rows(),
             &data.out);
    BuildCsr(data.dst_rowids, data.src_rowids, dst_table->num_rows(),
             &data.in);
  }
  built_ = true;
  return Status::OK();
}

void GraphIndex::BuildCsr(const std::vector<uint64_t>& from,
                          const std::vector<uint64_t>& to,
                          uint64_t num_vertices, Csr* csr) {
  uint64_t m = from.size();
  csr->offsets.assign(num_vertices + 1, 0);
  for (uint64_t i = 0; i < m; ++i) csr->offsets[from[i] + 1]++;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    csr->offsets[v + 1] += csr->offsets[v];
  }
  csr->neighbors.resize(m);
  csr->edges.resize(m);
  std::vector<uint64_t> cursor(csr->offsets.begin(), csr->offsets.end() - 1);
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t pos = cursor[from[i]]++;
    csr->neighbors[pos] = to[i];
    csr->edges[pos] = i;
  }
  // Sort each adjacency list by (neighbor, edge) so EXPAND_INTERSECT can use
  // linear merges and results are deterministic.
  for (uint64_t v = 0; v < num_vertices; ++v) {
    uint64_t begin = csr->offsets[v];
    uint64_t end = csr->offsets[v + 1];
    std::vector<std::pair<uint64_t, uint64_t>> buf;
    buf.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      buf.emplace_back(csr->neighbors[i], csr->edges[i]);
    }
    std::sort(buf.begin(), buf.end());
    for (uint64_t i = begin; i < end; ++i) {
      csr->neighbors[i] = buf[i - begin].first;
      csr->edges[i] = buf[i - begin].second;
    }
  }
}

AdjacencyList GraphIndex::Neighbors(int edge_label, Direction dir,
                                    uint64_t vertex_row) const {
  const Csr& csr =
      dir == Direction::kOut ? edges_[edge_label].out : edges_[edge_label].in;
  AdjacencyList list;
  if (vertex_row + 1 >= csr.offsets.size()) return list;
  uint64_t begin = csr.offsets[vertex_row];
  uint64_t end = csr.offsets[vertex_row + 1];
  list.neighbors = csr.neighbors.data() + begin;
  list.edges = csr.edges.data() + begin;
  list.size = end - begin;
  return list;
}

double GraphIndex::AverageDegree(int edge_label, Direction dir) const {
  const Csr& csr =
      dir == Direction::kOut ? edges_[edge_label].out : edges_[edge_label].in;
  if (csr.offsets.size() <= 1) return 0.0;
  return static_cast<double>(csr.neighbors.size()) /
         static_cast<double>(csr.offsets.size() - 1);
}

size_t GraphIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& data : edges_) {
    bytes += (data.src_rowids.size() + data.dst_rowids.size()) * 8;
    for (const Csr* csr : {&data.out, &data.in}) {
      bytes +=
          (csr->offsets.size() + csr->neighbors.size() + csr->edges.size()) *
          8;
    }
  }
  return bytes;
}

}  // namespace graph
}  // namespace relgo
