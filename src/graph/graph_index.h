#ifndef RELGO_GRAPH_GRAPH_INDEX_H_
#define RELGO_GRAPH_GRAPH_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/rg_mapping.h"
#include "storage/catalog.h"

namespace relgo {
namespace graph {

/// A borrowed view of one vertex's adjacency: parallel arrays of neighbor
/// vertex row ids and the edge row ids connecting to them, sorted by
/// neighbor row id (enabling linear-merge intersection in
/// EXPAND_INTERSECT).
struct AdjacencyList {
  const uint64_t* neighbors = nullptr;
  const uint64_t* edges = nullptr;
  size_t size = 0;
};

/// The GRainDB-style graph index of Sec 3.2.1, built per edge label.
///
/// * EV-index: for each edge tuple, the row ids of its source and target
///   vertex tuples (the "pid_rowid"/"mid_rowid" columns of Fig 5a).
/// * VE-index: CSR adjacency from each vertex tuple to its incident edge
///   tuples and neighbor vertex tuples (Fig 5b), for both directions.
///
/// The index materializes only row ids — never the graph itself — so it
/// adds no storage for properties and stays consistent with the relational
/// tables it is derived from.
class GraphIndex {
 public:
  /// Builds the index for all edge mappings. Fails if any FK value does not
  /// resolve to a vertex tuple (totality of lambda functions).
  Status Build(const storage::Catalog& catalog, const RgMapping& mapping);

  bool built() const { return built_; }

  /// EV-index lookups: endpoint vertex row ids of edge `edge_row`.
  uint64_t EdgeSource(int edge_label, uint64_t edge_row) const {
    return edges_[edge_label].src_rowids[edge_row];
  }
  uint64_t EdgeTarget(int edge_label, uint64_t edge_row) const {
    return edges_[edge_label].dst_rowids[edge_row];
  }

  /// VE-index lookup: adjacency of vertex `vertex_row` along `edge_label`
  /// in direction `dir` (kOut: vertex is source; kIn: vertex is target).
  AdjacencyList Neighbors(int edge_label, Direction dir,
                          uint64_t vertex_row) const;

  /// Degree of `vertex_row` along `edge_label` in direction `dir`.
  uint64_t Degree(int edge_label, Direction dir, uint64_t vertex_row) const {
    const Csr& csr = dir == Direction::kOut ? edges_[edge_label].out
                                            : edges_[edge_label].in;
    if (vertex_row + 1 >= csr.offsets.size()) return 0;
    return csr.offsets[vertex_row + 1] - csr.offsets[vertex_row];
  }

  uint64_t NumEdges(int edge_label) const {
    return edges_[edge_label].src_rowids.size();
  }

  /// Average out-/in-degree of the endpoint vertex table for `edge_label`.
  double AverageDegree(int edge_label, Direction dir) const;

  /// Total bytes consumed by the index (reported by dataset statistics).
  size_t MemoryBytes() const;

 private:
  struct Csr {
    std::vector<uint64_t> offsets;  // size = |V| + 1
    std::vector<uint64_t> neighbors;
    std::vector<uint64_t> edges;
  };
  struct EdgeIndexData {
    std::vector<uint64_t> src_rowids;  // EV-index
    std::vector<uint64_t> dst_rowids;
    Csr out;  // VE-index on the source vertex table
    Csr in;   // VE-index on the target vertex table
  };

  static void BuildCsr(const std::vector<uint64_t>& from,
                       const std::vector<uint64_t>& to, uint64_t num_vertices,
                       Csr* csr);

  std::vector<EdgeIndexData> edges_;
  bool built_ = false;
};

}  // namespace graph
}  // namespace relgo

#endif  // RELGO_GRAPH_GRAPH_INDEX_H_
