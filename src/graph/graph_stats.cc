#include "graph/graph_stats.h"

#include <numeric>

namespace relgo {
namespace graph {

Status GraphStats::Build(const storage::Catalog& catalog,
                         const RgMapping& mapping, const GraphIndex& index) {
  size_t nv = mapping.num_vertex_labels();
  size_t ne = mapping.num_edge_labels();
  vertex_counts_.assign(nv, 0);
  edge_counts_.assign(ne, 0);
  avg_out_degree_.assign(ne, 0.0);
  avg_in_degree_.assign(ne, 0.0);

  for (size_t v = 0; v < nv; ++v) {
    RELGO_ASSIGN_OR_RETURN(
        auto table, catalog.GetTable(mapping.vertex_mapping(v).table));
    vertex_counts_[v] = table->num_rows();
  }
  for (size_t e = 0; e < ne; ++e) {
    RELGO_ASSIGN_OR_RETURN(auto table,
                           catalog.GetTable(mapping.edge_mapping(e).table));
    edge_counts_[e] = table->num_rows();
    avg_out_degree_[e] = index.AverageDegree(static_cast<int>(e),
                                             Direction::kOut);
    avg_in_degree_[e] =
        index.AverageDegree(static_cast<int>(e), Direction::kIn);
  }
  return Status::OK();
}

uint64_t GraphStats::TotalVertices() const {
  return std::accumulate(vertex_counts_.begin(), vertex_counts_.end(),
                         uint64_t{0});
}

uint64_t GraphStats::TotalEdges() const {
  return std::accumulate(edge_counts_.begin(), edge_counts_.end(),
                         uint64_t{0});
}

}  // namespace graph
}  // namespace relgo
