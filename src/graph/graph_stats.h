#ifndef RELGO_GRAPH_GRAPH_STATS_H_
#define RELGO_GRAPH_GRAPH_STATS_H_

#include <vector>

#include "graph/graph_index.h"
#include "graph/rg_mapping.h"
#include "storage/catalog.h"

namespace relgo {
namespace graph {

/// Low-order graph statistics: label cardinalities and average degrees.
///
/// These are the statistics available to every optimizer mode (including
/// the graph-agnostic baselines). High-order sub-pattern statistics live in
/// optimizer/glogue.h and are exclusive to the graph-aware modes.
class GraphStats {
 public:
  Status Build(const storage::Catalog& catalog, const RgMapping& mapping,
               const GraphIndex& index);

  uint64_t NumVertices(int vertex_label) const {
    return vertex_counts_[vertex_label];
  }
  uint64_t NumEdges(int edge_label) const { return edge_counts_[edge_label]; }

  /// Average number of edges of `edge_label` per tuple of the source
  /// (kOut) / target (kIn) vertex table.
  double AverageDegree(int edge_label, Direction dir) const {
    return dir == Direction::kOut ? avg_out_degree_[edge_label]
                                  : avg_in_degree_[edge_label];
  }

  uint64_t TotalVertices() const;
  uint64_t TotalEdges() const;

 private:
  std::vector<uint64_t> vertex_counts_;
  std::vector<uint64_t> edge_counts_;
  std::vector<double> avg_out_degree_;
  std::vector<double> avg_in_degree_;
};

}  // namespace graph
}  // namespace relgo

#endif  // RELGO_GRAPH_GRAPH_STATS_H_
