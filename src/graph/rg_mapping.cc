#include "graph/rg_mapping.h"

#include <sstream>

namespace relgo {
namespace graph {

Status RgMapping::AddVertexTable(const std::string& table,
                                 const std::string& key_column,
                                 const std::string& label) {
  std::string l = label.empty() ? table : label;
  if (vertex_label_ids_.count(l)) {
    return Status::AlreadyExists("vertex label '" + l + "' already mapped");
  }
  vertex_label_ids_[l] = static_cast<int>(vertex_mappings_.size());
  vertex_mappings_.push_back({l, table, key_column});
  return Status::OK();
}

Status RgMapping::AddEdgeTable(const std::string& table,
                               const std::string& src_label,
                               const std::string& src_key_column,
                               const std::string& dst_label,
                               const std::string& dst_key_column,
                               const std::string& label) {
  std::string l = label.empty() ? table : label;
  if (edge_label_ids_.count(l)) {
    return Status::AlreadyExists("edge label '" + l + "' already mapped");
  }
  if (!vertex_label_ids_.count(src_label)) {
    return Status::NotFound("unknown source vertex label '" + src_label + "'");
  }
  if (!vertex_label_ids_.count(dst_label)) {
    return Status::NotFound("unknown target vertex label '" + dst_label + "'");
  }
  edge_label_ids_[l] = static_cast<int>(edge_mappings_.size());
  edge_mappings_.push_back(
      {l, table, src_label, src_key_column, dst_label, dst_key_column});
  return Status::OK();
}

int RgMapping::FindVertexLabel(const std::string& label) const {
  auto it = vertex_label_ids_.find(label);
  return it == vertex_label_ids_.end() ? -1 : it->second;
}

int RgMapping::FindEdgeLabel(const std::string& label) const {
  auto it = edge_label_ids_.find(label);
  return it == edge_label_ids_.end() ? -1 : it->second;
}

int RgMapping::EdgeSrcLabelId(int edge_label_id) const {
  return FindVertexLabel(edge_mappings_[edge_label_id].src_label);
}

int RgMapping::EdgeDstLabelId(int edge_label_id) const {
  return FindVertexLabel(edge_mappings_[edge_label_id].dst_label);
}

std::vector<int> RgMapping::IncidentEdgeLabels(int vertex_label_id,
                                               Direction dir) const {
  std::vector<int> out;
  for (size_t e = 0; e < edge_mappings_.size(); ++e) {
    int endpoint = dir == Direction::kOut
                       ? EdgeSrcLabelId(static_cast<int>(e))
                       : EdgeDstLabelId(static_cast<int>(e));
    if (endpoint == vertex_label_id) out.push_back(static_cast<int>(e));
  }
  return out;
}

Status RgMapping::Validate(const storage::Catalog& catalog) const {
  for (const auto& vm : vertex_mappings_) {
    RELGO_ASSIGN_OR_RETURN(auto table, catalog.GetTable(vm.table));
    int key = table->schema().FindColumn(vm.key_column);
    if (key < 0) {
      return Status::InvalidArgument("vertex table " + vm.table +
                                     " lacks key column " + vm.key_column);
    }
    if (table->schema().column(key).type != LogicalType::kInt64) {
      return Status::InvalidArgument("vertex key " + vm.key_column +
                                     " must be int64");
    }
  }
  for (const auto& em : edge_mappings_) {
    RELGO_ASSIGN_OR_RETURN(auto table, catalog.GetTable(em.table));
    for (const std::string* col : {&em.src_key_column, &em.dst_key_column}) {
      int idx = table->schema().FindColumn(*col);
      if (idx < 0) {
        return Status::InvalidArgument("edge table " + em.table +
                                       " lacks FK column " + *col);
      }
      if (table->schema().column(idx).type != LogicalType::kInt64) {
        return Status::InvalidArgument("edge FK " + *col + " must be int64");
      }
    }
    // Totality of the lambda functions: each FK value must resolve to a
    // vertex tuple. Verified during index construction as well; here we
    // sample-check the key indexes exist.
    const VertexMapping& src = vertex_mappings_[FindVertexLabel(em.src_label)];
    RELGO_ASSIGN_OR_RETURN(auto src_table, catalog.GetTable(src.table));
    auto key_index = src_table->GetKeyIndex(src.key_column);
    if (!key_index.ok()) return key_index.status();
  }
  return Status::OK();
}

std::string RgMapping::ToString() const {
  std::ostringstream os;
  os << "CREATE PROPERTY GRAPH\n  VERTEX TABLES (";
  for (size_t i = 0; i < vertex_mappings_.size(); ++i) {
    if (i) os << ", ";
    os << vertex_mappings_[i].table << " KEY(" << vertex_mappings_[i].key_column
       << ") LABEL " << vertex_mappings_[i].label;
  }
  os << ")\n  EDGE TABLES (";
  for (size_t i = 0; i < edge_mappings_.size(); ++i) {
    if (i) os << ", ";
    const auto& em = edge_mappings_[i];
    os << em.table << " SOURCE KEY(" << em.src_key_column << ") REFERENCES "
       << em.src_label << " DESTINATION KEY(" << em.dst_key_column
       << ") REFERENCES " << em.dst_label << " LABEL " << em.label;
  }
  os << ")";
  return os.str();
}

}  // namespace graph
}  // namespace relgo
