#ifndef RELGO_GRAPH_RG_MAPPING_H_
#define RELGO_GRAPH_RG_MAPPING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"

namespace relgo {
namespace graph {

/// Direction of traversal along an edge relation.
enum class Direction { kOut = 0, kIn = 1 };

inline Direction Reverse(Direction d) {
  return d == Direction::kOut ? Direction::kIn : Direction::kOut;
}

/// Mapping of one relational table to a vertex label (Sec 2.1).
///
/// Every tuple of `table` becomes one vertex whose identifier is the tuple's
/// row id; `key_column` is the primary key through which edge tables
/// reference it (the codomain of the lambda functions).
struct VertexMapping {
  std::string label;
  std::string table;
  std::string key_column;
};

/// Mapping of one relational table to an edge label.
///
/// `src_key_column`/`dst_key_column` are the foreign-key attributes realizing
/// the total functions lambda_s / lambda_t from edge tuples to source/target
/// vertex tuples.
struct EdgeMapping {
  std::string label;
  std::string table;
  std::string src_label;
  std::string src_key_column;
  std::string dst_label;
  std::string dst_key_column;
};

/// RGMapping: the relations-to-graph mapping defined in Sec 2.1 of the
/// paper, equivalent to a SQL/PGQ `CREATE PROPERTY GRAPH` statement.
///
/// Labels are assigned dense integer ids (vertex and edge label spaces are
/// separate) used throughout the pattern/optimizer layers.
class RgMapping {
 public:
  /// Declares a vertex table. The label defaults to the table name.
  Status AddVertexTable(const std::string& table,
                        const std::string& key_column,
                        const std::string& label = "");

  /// Declares an edge table connecting two previously declared vertex labels.
  Status AddEdgeTable(const std::string& table,
                      const std::string& src_label,
                      const std::string& src_key_column,
                      const std::string& dst_label,
                      const std::string& dst_key_column,
                      const std::string& label = "");

  size_t num_vertex_labels() const { return vertex_mappings_.size(); }
  size_t num_edge_labels() const { return edge_mappings_.size(); }

  const VertexMapping& vertex_mapping(int label_id) const {
    return vertex_mappings_[label_id];
  }
  const EdgeMapping& edge_mapping(int label_id) const {
    return edge_mappings_[label_id];
  }

  /// Label-id lookups; -1 when unknown.
  int FindVertexLabel(const std::string& label) const;
  int FindEdgeLabel(const std::string& label) const;

  /// Dense label id of an edge's endpoint labels.
  int EdgeSrcLabelId(int edge_label_id) const;
  int EdgeDstLabelId(int edge_label_id) const;

  /// Edge labels whose source (kOut) or target (kIn) vertex label is
  /// `vertex_label_id`; used by the optimizer to enumerate expansions.
  std::vector<int> IncidentEdgeLabels(int vertex_label_id,
                                      Direction dir) const;

  /// Verifies that all referenced tables/columns exist with usable types and
  /// that every FK value resolves (totality of lambda_s / lambda_t).
  Status Validate(const storage::Catalog& catalog) const;

  std::string ToString() const;

 private:
  std::vector<VertexMapping> vertex_mappings_;
  std::vector<EdgeMapping> edge_mappings_;
  std::unordered_map<std::string, int> vertex_label_ids_;
  std::unordered_map<std::string, int> edge_label_ids_;
};

}  // namespace graph
}  // namespace relgo

#endif  // RELGO_GRAPH_RG_MAPPING_H_
