#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace relgo {
namespace obs {

namespace {

/// First finite bucket's upper bound: 1 µs.
constexpr double kMinUpperMs = 1e-3;
/// log2 of the bucket growth factor 2^(1/4).
constexpr double kLog2Growth = 0.25;

}  // namespace

double BucketUpperMs(int i) {
  if (i < 0) i = 0;
  if (i >= kHistogramBuckets) i = kHistogramBuckets - 1;
  return kMinUpperMs * std::exp2(i * kLog2Growth);
}

int BucketIndexForMs(double v) {
  if (!(v > kMinUpperMs)) return 0;  // also catches NaN and v <= 0
  // Smallest i with upper(i) >= v, i.e. ceil(log2(v / kMinUpperMs) * 4).
  // The 1e-9 slack keeps exact boundary values (v == upper(i) up to
  // floating-point round-trip) in bucket i instead of spilling to i+1.
  double idx = std::ceil(std::log2(v / kMinUpperMs) / kLog2Growth - 1e-9);
  if (idx >= kHistogramBuckets) return kHistogramBuckets;  // overflow
  return static_cast<int>(idx);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i <= kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return BucketUpperMs(std::min(i, kHistogramBuckets - 1));
    }
  }
  return BucketUpperMs(kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum_ms += s.sum_ms.load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  for (const auto& collect : collectors_) collect(&snap);
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  return RenderSnapshotText(Snapshot());
}

std::string RenderSnapshotText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot.counters) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty deltas (see header)
      cumulative += h.buckets[i];
      os << name << "_bucket{le=\""
         << StrFormat("%.6g", BucketUpperMs(i)) << "\"} " << cumulative
         << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum " << StrFormat("%.6f", h.sum_ms) << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

double PercentileOfSorted(const std::vector<double>& sorted_ascending,
                          double q) {
  if (sorted_ascending.empty()) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  size_t rank =
      static_cast<size_t>(std::ceil(q * sorted_ascending.size()));
  if (rank == 0) rank = 1;
  return sorted_ascending[rank - 1];
}

}  // namespace obs
}  // namespace relgo
