#ifndef RELGO_OBS_METRICS_H_
#define RELGO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace relgo {
namespace obs {

// ---------------------------------------------------------------------------
// Process-wide metrics primitives (ROADMAP serving tier / PR 6).
//
// Design rules, in order:
//  1. recording is wait-free and allocation-free — one relaxed atomic add
//     on a thread-sharded slot, so client threads, pool workers and the
//     harness can all record without serializing on each other;
//  2. reading is exact — Value()/Snapshot() sum the shards, so totals are
//     never sampled or approximated (only percentiles are bucketized);
//  3. snapshots are plain mergeable values — fleets of registries (or the
//     same registry over time) combine by addition, associatively.
// ---------------------------------------------------------------------------

/// Shard count of counters and histograms. Threads hash onto shards, so
/// contention drops ~kShards-fold without per-thread registration.
inline constexpr int kMetricShards = 16;

/// The recording thread's shard, hashed once per thread.
inline size_t ShardIndex() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kMetricShards;
  return shard;
}

/// Monotonic counter, thread-sharded (see file comment).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Exact total over all shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-value gauge (queue depth, cache bytes, pool threads). A single
/// atomic: gauges are written from one site at a time (e.g. under the
/// scheduler mutex), so sharding would only blur the "current value"
/// semantics.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// ---------------------------------------------------------------------------
// Log-scale latency histogram.
// ---------------------------------------------------------------------------

/// Finite buckets of the latency histograms: bucket i covers
/// (BucketUpperMs(i-1), BucketUpperMs(i)] with upper bounds growing by
/// 2^(1/4) (≤ ~19% relative quantile error) from 1 µs; bucket 127 tops out
/// around 60 min, far past every timeout in the repo. Index kHistogramBuckets
/// is the overflow bucket.
inline constexpr int kHistogramBuckets = 128;

/// Upper bound (inclusive) of finite bucket `i`, in milliseconds.
double BucketUpperMs(int i);

/// Bucket index of value `v` ms: the smallest finite bucket whose upper
/// bound is >= v, or kHistogramBuckets (overflow) past the last one.
/// Values <= 0 land in bucket 0. Exact on bucket boundaries: recording
/// BucketUpperMs(i) lands in bucket i, so distributions made of boundary
/// values have exact percentiles.
int BucketIndexForMs(double v);

/// Mergeable point-in-time view of one histogram; plain data.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets + 1> buckets{};  // [128] = overflow
  uint64_t count = 0;
  double sum_ms = 0.0;

  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum_ms += other.sum_ms;
  }

  /// Nearest-rank percentile, q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(q * count)-th smallest recorded value (0 when
  /// empty). Overflow values report the last finite bound — a documented
  /// floor, not a measurement.
  double Percentile(double q) const;

  double MeanMs() const { return count == 0 ? 0.0 : sum_ms / count; }
};

/// Fixed-bucket log-scale latency histogram, thread-sharded like Counter.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double ms) {
    Shard& s = shards_[ShardIndex()];
    s.buckets[BucketIndexForMs(ms)].fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20; a relaxed CAS loop on a
    // sharded slot is contention-free enough here.
    double cur = s.sum_ms.load(std::memory_order_relaxed);
    while (!s.sum_ms.compare_exchange_weak(cur, cur + ms,
                                           std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets + 1> buckets{};
    std::atomic<double> sum_ms{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Mergeable snapshot of a whole registry. Counters and histograms merge
/// by addition; gauges merge by addition too (a merged snapshot reads as
/// the fleet total), keeping Merge associative and commutative across all
/// three kinds.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);

  uint64_t CounterValue(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t GaugeValue(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
  const HistogramSnapshot* FindHistogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

/// Process-wide metrics registry (one per Database): names map to
/// counters/gauges/histograms with stable addresses, so instrumented code
/// resolves a metric once and records through the pointer forever.
///
/// External subsystems that already maintain their own counters (the scan
/// cache's lifetime Stats) register a *collector* instead of mirroring
/// values into registry metrics: collectors are invoked at Snapshot() /
/// RenderText() time and pull from the one true source, so the snapshot
/// can never drift from the subsystem's own accounting (obs_test pins
/// this for the scan cache).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create; the returned reference is stable for the
  /// registry's lifetime. Name kinds are disjoint namespaces — asking for
  /// a counter named like an existing gauge creates a separate metric.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Pull-style metrics source, called under the registry lock at every
  /// Snapshot(); must not call back into this registry.
  using Collector = std::function<void(MetricsSnapshot*)>;
  void AddCollector(Collector fn);

  MetricsSnapshot Snapshot() const;

  /// Prometheus-style text exposition of Snapshot(): "# TYPE" headers,
  /// cumulative `_bucket{le="..."}` lines (zero-delta buckets elided; the
  /// `+Inf` bucket always present), `_sum` / `_count` per histogram.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Collector> collectors_;
};

/// Renders a snapshot in the RenderText() format (shared by registry and
/// merged-fleet snapshots).
std::string RenderSnapshotText(const MetricsSnapshot& snapshot);

/// Exact nearest-rank percentile of an ascending-sorted sample vector
/// (q in [0, 1]; 0 on empty input). The harness uses this for the fig13
/// tail-latency fields, where raw samples are available and bucketization
/// would be a needless approximation.
double PercentileOfSorted(const std::vector<double>& sorted_ascending,
                          double q);

}  // namespace obs
}  // namespace relgo

#endif  // RELGO_OBS_METRICS_H_
