#include "obs/slow_query_log.h"

#include <cstdio>

namespace relgo {
namespace obs {

void SlowQueryLog::set_echo(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  echo_ = on;
}

void SlowQueryLog::Record(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (echo_) std::fprintf(stderr, "%s\n", line.c_str());
  records_.push_back(std::move(line));
  while (records_.size() > max_records_) records_.pop_front();
}

std::vector<std::string> SlowQueryLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(records_.begin(), records_.end());
}

uint64_t SlowQueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace obs
}  // namespace relgo
