#ifndef RELGO_OBS_SLOW_QUERY_LOG_H_
#define RELGO_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace relgo {
namespace obs {

/// Bounded in-memory slow-query log, owned by Database. A query whose
/// optimization + execution time crosses ExecutionOptions::slow_query_ms
/// is recorded as one structured line (key=value pairs composed by the
/// Database — query name, mode, engine, timings, rows, cache hits,
/// status), ring-buffered so a misbehaving workload cannot grow the log
/// without bound. `total()` keeps counting past evictions. Optionally
/// echoes each record to stderr for interactive runs.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultMaxRecords = 256;

  explicit SlowQueryLog(size_t max_records = kDefaultMaxRecords)
      : max_records_(max_records) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Echo records to stderr as they arrive (off by default: tests and
  /// benches read records() instead of scraping output).
  void set_echo(bool on);

  void Record(std::string line);

  /// Copies of the retained records, oldest first.
  std::vector<std::string> records() const;

  /// Lifetime record count (monotonic; unaffected by ring eviction).
  uint64_t total() const;

  void Clear();

 private:
  const size_t max_records_;
  mutable std::mutex mu_;
  bool echo_ = false;
  uint64_t total_ = 0;
  std::deque<std::string> records_;
};

}  // namespace obs
}  // namespace relgo

#endif  // RELGO_OBS_SLOW_QUERY_LOG_H_
