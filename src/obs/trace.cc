#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace relgo {
namespace obs {

double TraceNowMs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void TraceRecorder::Record(
    const char* name, const char* cat, double start_ms,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.tid = query_id_;
  ev.ts_ms = start_ms;
  ev.dur_ms = TraceNowMs() - start_ms;
  if (ev.dur_ms < 0.0) ev.dur_ms = 0.0;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(events_);
}

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
  while (events_.size() > max_events_) events_.pop_front();
}

void TraceSink::Absorb(TraceRecorder* recorder, const std::string& label) {
  std::vector<TraceEvent> events = recorder->Take();
  TraceEvent name_meta;
  name_meta.name = "thread_name";
  name_meta.cat = "__metadata";
  name_meta.phase = 'M';
  name_meta.tid = recorder->query_id();
  name_meta.args.emplace_back("name", label);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(name_meta));
  for (auto& ev : events) events_.push_back(std::move(ev));
  while (events_.size() > max_events_) events_.pop_front();
}

namespace {

/// JSON string escaping (control chars, quotes, backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceSink::DumpJson() const {
  // The one permitted wall-clock read of the tracing subsystem: stamp the
  // export moment so relative steady timestamps can be anchored offline.
  long long exported_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"exported_unix_ms\": \"" << exported_unix_ms
     << "\", \"clock\": \"steady_clock us since process trace epoch\"},\n";
  os << "\"traceEvents\": [\n";
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << JsonEscape(ev.name) << "\", \"cat\": \""
       << JsonEscape(ev.cat) << "\", \"ph\": \"" << ev.phase
       << "\", \"pid\": 1, \"tid\": " << ev.tid;
    if (ev.phase == 'X') {
      os << StrFormat(", \"ts\": %.3f, \"dur\": %.3f", ev.ts_ms * 1000.0,
                      ev.dur_ms * 1000.0);
    }
    os << ", \"args\": {";
    for (size_t i = 0; i < ev.args.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << JsonEscape(ev.args[i].first) << "\": \""
         << JsonEscape(ev.args[i].second) << "\"";
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status TraceSink::WriteFile(const std::string& path) const {
  std::string json = DumpJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace obs
}  // namespace relgo
