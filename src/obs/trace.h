#ifndef RELGO_OBS_TRACE_H_
#define RELGO_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace relgo {
namespace obs {

/// Milliseconds since the process trace epoch — a steady_clock anchor
/// fixed on first use. Every span timestamp in the repo derives from this
/// (the same clock family as common::Timer): hot paths never read
/// system_clock; wall-clock context is stamped exactly once, at dump time
/// (TraceSink::DumpJson metadata).
double TraceNowMs();

/// One completed span (or metadata record) in Chrome trace-event terms:
/// rendered as a `ph:"X"` complete event on track `tid` (the query id),
/// with `ts`/`dur` carried here in milliseconds relative to the process
/// trace epoch.
struct TraceEvent {
  std::string name;  ///< "parse", "optimize", "pipeline_run", ...
  std::string cat;   ///< "query" or "pipeline"
  char phase = 'X';  ///< 'X' complete span; 'M' metadata (thread_name)
  uint64_t tid = 0;  ///< query id — one track per query
  double ts_ms = 0.0;
  double dur_ms = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-query span collector, stack-owned by Database::Run/RunProfiled for
/// the duration of one traced query and absorbed into the TraceSink at
/// the end. The execution context carries a pointer to it (null when
/// tracing is off — the same zero-cost-when-off discipline as the
/// profiler's QueryProfile*), so the engine records pipeline spans with
/// no branches beyond one null check.
///
/// Thread-safety: spans are recorded by the query's submitting thread
/// (pipelines run one at a time per query; morsel workers never record),
/// but Record is mutex-guarded anyway so future parallel-pipeline work
/// cannot silently race it.
class TraceRecorder {
 public:
  explicit TraceRecorder(uint64_t query_id) : query_id_(query_id) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  uint64_t query_id() const { return query_id_; }

  /// Records a span that started at `start_ms` (a TraceNowMs() reading)
  /// and ends now.
  void Record(const char* name, const char* cat, double start_ms,
              std::vector<std::pair<std::string, std::string>> args = {});

  /// Moves the collected events out (the recorder is then empty).
  std::vector<TraceEvent> Take();

 private:
  const uint64_t query_id_;
  std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Process-wide bounded span buffer, owned by Database: completed query
/// recorders are absorbed here, and DumpJson/WriteFile export everything
/// as Chrome trace-event JSON loadable by chrome://tracing (or Perfetto).
/// When the buffer is full the oldest events are dropped — tracing is a
/// flight recorder, not an unbounded log.
class TraceSink {
 public:
  static constexpr size_t kDefaultMaxEvents = 1 << 16;

  explicit TraceSink(size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Sink-level switch: when on, every Database query is traced even
  /// without ExecutionOptions::trace (and ParsePattern records parse
  /// spans, which have no per-query options to opt in through).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh query id (> 0) for a traced query's track.
  uint64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one event directly (parse spans, metadata).
  void Record(TraceEvent event);

  /// Moves a finished query's spans in, prepending a `thread_name`
  /// metadata record so the query's track is labeled `label` in the
  /// trace viewer.
  void Absorb(TraceRecorder* recorder, const std::string& label);

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}. `ts`/`dur`
  /// are exported in microseconds (the trace-event unit) relative to the
  /// process trace epoch; the wall-clock export moment is stamped once
  /// into `otherData.exported_unix_ms`.
  std::string DumpJson() const;

  Status WriteFile(const std::string& path) const;

  size_t size() const;
  void Clear();

 private:
  const size_t max_events_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
};

}  // namespace obs
}  // namespace relgo

#endif  // RELGO_OBS_TRACE_H_
