#include "optimizer/cardinality.h"

#include <algorithm>

namespace relgo {
namespace optimizer {

using graph::Direction;
using pattern::Bit;
using pattern::PatternGraph;
using pattern::PopCount;
using pattern::VSet;

CardinalityEstimator::CardinalityEstimator(
    const PatternGraph* p, const Glogue* glogue,
    const graph::GraphStats* gstats, const graph::RgMapping* mapping,
    const storage::Catalog* catalog, const TableStats* tstats,
    CardinalityOptions options, const StatsFeedback* feedback)
    : p_(p),
      glogue_(glogue),
      gstats_(gstats),
      mapping_(mapping),
      catalog_(catalog),
      options_(options),
      feedback_(feedback),
      has_corrections_(feedback != nullptr && !feedback->empty()) {
  vertex_sel_.assign(p_->num_vertices(), 1.0);
  for (int v = 0; v < p_->num_vertices(); ++v) {
    const auto& pred = p_->vertex(v).predicate;
    if (!pred) continue;
    auto table =
        catalog_->GetTable(mapping_->vertex_mapping(p_->vertex(v).label).table);
    if (table.ok()) {
      vertex_sel_[v] =
          tstats->SampledSelectivity(**table, pred, options.predicate_sample);
    }
  }
  edge_sel_.assign(p_->num_edges(), 1.0);
  for (int e = 0; e < p_->num_edges(); ++e) {
    const auto& pred = p_->edge(e).predicate;
    if (!pred) continue;
    auto table =
        catalog_->GetTable(mapping_->edge_mapping(p_->edge(e).label).table);
    if (table.ok()) {
      edge_sel_[e] =
          tstats->SampledSelectivity(**table, pred, options.predicate_sample);
    }
  }
}

double CardinalityEstimator::Estimate(VSet mask) const {
  auto it = memo_.find(mask);
  if (it != memo_.end()) return it->second;
  double card = Structural(mask);
  for (int v = 0; v < p_->num_vertices(); ++v) {
    if (mask & Bit(v)) card *= vertex_sel_[v];
  }
  for (int e : p_->InducedEdges(mask)) card *= edge_sel_[e];
  // Adaptive-statistics correction for this sub-pattern signature. The
  // emptiness snapshot keeps the non-adaptive path at its pre-feedback
  // cost (no signature building, no lookups) and estimates
  // bit-identical to the non-adaptive build.
  if (has_corrections_) {
    double factor = feedback_->Factor(MaskKey(mask));
    if (factor != 1.0) card *= factor;
  }
  card = std::max(card, 1e-3);
  memo_[mask] = card;
  return card;
}

const std::string& CardinalityEstimator::MaskKey(VSet mask) const {
  auto it = key_memo_.find(mask);
  if (it != key_memo_.end()) return it->second;
  return key_memo_[mask] = PatternFeedbackKey(p_->Induced(mask));
}

double CardinalityEstimator::Structural(VSet mask) const {
  auto it = structural_memo_.find(mask);
  if (it != structural_memo_.end()) return it->second;

  double result = -1.0;
  int n = PopCount(mask);

  if (n == 1) {
    int v = __builtin_ctz(mask);
    result = static_cast<double>(gstats_->NumVertices(p_->vertex(v).label));
  }

  if (result < 0 && options_.use_high_order && glogue_->built() && n <= 3) {
    // Strip predicates by re-deriving the induced typed pattern.
    PatternGraph sub = p_->Induced(mask);
    double looked = glogue_->Lookup(sub);
    if (looked >= 0) result = looked;
  }

  if (result < 0) {
    // Low-order extrapolation: remove the highest removable vertex.
    int pick = -1;
    for (int v = p_->num_vertices() - 1; v >= 0; --v) {
      if (!(mask & Bit(v))) continue;
      VSet rest = mask & ~Bit(v);
      if (rest != 0 && p_->IsConnectedInduced(rest)) {
        pick = v;
        break;
      }
    }
    if (pick < 0) {
      // Disconnected induced sub-pattern (possible during hypothetical
      // splits): product of components would be correct; approximate with
      // a large constant to discourage such shapes.
      result = 1e18;
    } else {
      VSet rest = mask & ~Bit(pick);
      double base = Structural(rest);

      // Edges between pick and rest, as (edge index, rest endpoint, dir
      // from the rest endpoint toward pick).
      struct Link {
        int edge;
        int rest_vertex;
        Direction dir;
      };
      std::vector<Link> links;
      for (int e : p_->IncidentEdges(pick)) {
        const auto& pe = p_->edge(e);
        int other = pe.src == pick ? pe.dst : pe.src;
        if (other == pick || !(rest & Bit(other))) continue;
        Direction dir =
            pe.src == pick ? Direction::kIn : Direction::kOut;
        links.push_back({e, other, dir});
      }
      if (links.empty()) {
        result = base * static_cast<double>(
                            gstats_->NumVertices(p_->vertex(pick).label));
      } else {
        // Triangle correction: exactly two links whose rest endpoints are
        // adjacent — GLogue knows the closing triangle's true frequency.
        bool corrected = false;
        if (options_.use_high_order && glogue_->built() &&
            links.size() == 2) {
          VSet tri_mask =
              Bit(pick) | Bit(links[0].rest_vertex) | Bit(links[1].rest_vertex);
          VSet base_mask = Bit(links[0].rest_vertex) |
                           Bit(links[1].rest_vertex);
          if (!p_->InducedEdges(base_mask).empty()) {
            double tri = glogue_->Lookup(p_->Induced(tri_mask));
            double pair = glogue_->Lookup(p_->Induced(base_mask));
            if (tri >= 0 && pair > 0) {
              result = base * (tri / pair);
              corrected = true;
            }
          }
        }
        if (!corrected) {
          // First link: average-degree expansion.
          const Link& first = links[0];
          double factor = gstats_->AverageDegree(p_->edge(first.edge).label,
                                                 first.dir);
          // Additional links: independence closing probabilities.
          double nv = std::max<double>(
              1.0, static_cast<double>(
                       gstats_->NumVertices(p_->vertex(pick).label)));
          for (size_t i = 1; i < links.size(); ++i) {
            double deg = gstats_->AverageDegree(p_->edge(links[i].edge).label,
                                                links[i].dir);
            factor *= std::min(1.0, deg / nv);
          }
          result = base * factor;
        }
      }
    }
  }

  result = std::max(result, 1e-3);
  structural_memo_[mask] = result;
  return result;
}

}  // namespace optimizer
}  // namespace relgo
