#ifndef RELGO_OPTIMIZER_CARDINALITY_H_
#define RELGO_OPTIMIZER_CARDINALITY_H_

#include <unordered_map>

#include "graph/graph_stats.h"
#include "optimizer/feedback.h"
#include "optimizer/glogue.h"
#include "optimizer/stats.h"
#include "pattern/pattern_graph.h"

namespace relgo {
namespace optimizer {

struct CardinalityOptions {
  /// When false, only low-order statistics (relation cardinalities and
  /// average degrees) are consulted — the degraded mode the paper notes
  /// RelGo still functions in, at reduced plan quality (Sec 4.3).
  bool use_high_order = true;
  size_t predicate_sample = 1024;
};

/// Estimates |M(P')| for sub-patterns of one query pattern, combining:
///  * GLogue high-order statistics for sub-patterns of <= k vertices
///    (including real triangle counts, the key to ranking wco plans);
///  * low-order extrapolation beyond k: average-degree expansion for the
///    first connecting edge, independence closing probabilities for
///    additional edges, with a triangle correction where GLogue covers the
///    closing shape;
///  * per-element predicate selectivities (sampled), so FilterIntoMatchRule
///    constraints reduce estimates before plan search (Sec 4.2.3).
class CardinalityEstimator {
 public:
  CardinalityEstimator(const pattern::PatternGraph* p, const Glogue* glogue,
                       const graph::GraphStats* gstats,
                       const graph::RgMapping* mapping,
                       const storage::Catalog* catalog,
                       const TableStats* tstats,
                       CardinalityOptions options = {},
                       const StatsFeedback* feedback = nullptr);

  /// Estimated matches of the induced sub-pattern on `mask`, including
  /// any adaptive-statistics correction recorded for its signature.
  /// Logically read-only; the memo caches are mutable.
  double Estimate(pattern::VSet mask) const;

  /// Sampled selectivity of vertex `v`'s predicate (1.0 if none).
  double VertexSelectivity(int v) const { return vertex_sel_[v]; }
  double EdgeSelectivity(int e) const { return edge_sel_[e]; }

  /// Feedback signature of the induced sub-pattern on `mask` — the key
  /// plan emission stamps on the sub-pattern's topmost node so executed
  /// actuals flow back to this estimate (memoized; see feedback.h).
  const std::string& MaskKey(pattern::VSet mask) const;

  /// Correction factor from the attached feedback sink (1.0 without one).
  /// Exposed so plan emission can correct derived estimates (e.g. the raw
  /// EXPAND_EDGE expansion) under their own composite keys.
  double CorrectionFactor(const std::string& key) const {
    return feedback_ == nullptr ? 1.0 : feedback_->Factor(key);
  }

 private:
  double Structural(pattern::VSet mask) const;

  const pattern::PatternGraph* p_;
  const Glogue* glogue_;
  const graph::GraphStats* gstats_;
  const graph::RgMapping* mapping_;
  const storage::Catalog* catalog_;
  CardinalityOptions options_;
  const StatsFeedback* feedback_;
  /// Snapshot of feedback_->empty() at construction (one estimator lives
  /// per optimization): false keeps Estimate() free of signature and
  /// lookup work on the non-adaptive path.
  bool has_corrections_ = false;
  std::vector<double> vertex_sel_;
  std::vector<double> edge_sel_;
  mutable std::unordered_map<pattern::VSet, double> memo_;
  mutable std::unordered_map<pattern::VSet, double> structural_memo_;
  mutable std::unordered_map<pattern::VSet, std::string> key_memo_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_CARDINALITY_H_
