#include "optimizer/feedback.h"

#include <algorithm>
#include <cmath>

#include "exec/profile.h"
#include "optimizer/glogue.h"
#include "pattern/pattern_graph.h"
#include "plan/physical_plan.h"

namespace relgo {
namespace optimizer {

double StatsFeedback::Factor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = corrections_.find(key);
  if (it == corrections_.end() || it->second.log_factor == 0.0) return 1.0;
  return std::exp(it->second.log_factor);
}

bool StatsFeedback::Observe(const std::string& key, double estimated,
                            double actual) {
  if (estimated <= 0.0 || key.empty()) return false;
  // Q-error clamps both sides to >= 1 row; mirror that here so an empty
  // actual against a fractional estimate doesn't register as a huge error.
  double ratio = std::max(actual, 1.0) / std::max(estimated, 1.0);
  double bound = std::max(options_.max_correction, 1.0);
  ratio = std::min(std::max(ratio, 1.0 / bound), bound);
  std::lock_guard<std::mutex> lock(mutex_);
  Correction& c = corrections_[key];
  // The estimate being observed already includes the current factor, so
  // `ratio` is the *residual* error: smooth the factor additively in log
  // space (f -> f * ratio^smoothing). The residual then shrinks by
  // (1 - smoothing) per warm-up -> feedback -> re-plan round — a plain
  // EMA toward the per-observation ratio would instead stall at half the
  // needed correction. The hard cap keeps the factor inside
  // [1/max_correction, max_correction] no matter how many rounds run.
  double cap = std::log(bound);
  c.log_factor += options_.smoothing * std::log(ratio);
  c.log_factor = std::min(std::max(c.log_factor, -cap), cap);
  ++c.observations;
  num_corrections_.store(corrections_.size(), std::memory_order_release);
  return true;
}

int StatsFeedback::Absorb(const plan::PhysicalOp& root,
                          const exec::QueryProfile& profile) {
  int absorbed = 0;
  for (const exec::EstimateObservation& obs :
       exec::CollectObservations(root, profile)) {
    if (Observe(obs.op->feedback_key, obs.estimated,
                static_cast<double>(obs.actual))) {
      ++absorbed;
    }
  }
  return absorbed;
}

int StatsFeedback::PushIntoGlogue(Glogue* glogue) {
  if (glogue == nullptr || !glogue->built()) return 0;
  int refined = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, correction] : corrections_) {
    if (correction.log_factor == 0.0) continue;
    // Structural pattern keys are "pat|<code>|" — the canonical code
    // contains no '|' and the constraint signature is empty.
    if (key.compare(0, 4, "pat|") != 0 || key.back() != '|') continue;
    std::string code = key.substr(4, key.size() - 5);
    if (glogue->RefineCode(code, std::exp(correction.log_factor))) {
      // The refinement now lives in the catalog; keep the observation
      // count but reset the local factor so it is not applied twice.
      correction.log_factor = 0.0;
      ++refined;
    }
  }
  return refined;
}

size_t StatsFeedback::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrections_.size();
}

void StatsFeedback::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  corrections_.clear();
  num_corrections_.store(0, std::memory_order_release);
}

std::vector<StatsFeedback::Entry> StatsFeedback::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(corrections_.size());
  for (const auto& [key, c] : corrections_) {
    out.push_back({key, std::exp(c.log_factor), c.observations});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return out;
}

std::string ConstraintSignature(const pattern::PatternGraph& induced) {
  // Constraints are rendered per *position* (plus label): two
  // same-labeled vertices with swapped predicates must not collide onto
  // one key — a correction learned for a filtered end-vertex would
  // contaminate the filtered-middle variant. The price is that
  // constraint-bearing keys are only shared between identically
  // constructed patterns (workload queries are, every run); purely
  // structural keys stay renaming-invariant and GLogue-pushable.
  std::vector<std::string> parts;
  for (int v = 0; v < induced.num_vertices(); ++v) {
    const auto& pv = induced.vertex(v);
    if (pv.predicate) {
      parts.push_back("v" + std::to_string(v) + "L" +
                      std::to_string(pv.label) + ":" +
                      pv.predicate->ToTemplateString());
    }
  }
  for (int e = 0; e < induced.num_edges(); ++e) {
    const auto& pe = induced.edge(e);
    if (pe.predicate) {
      parts.push_back("e" + std::to_string(e) + "L" +
                      std::to_string(pe.label) + ":" +
                      pe.predicate->ToTemplateString());
    }
  }
  for (const auto& [a, b] : induced.distinct_pairs()) {
    parts.push_back("ne" + std::to_string(std::min(a, b)) + "," +
                    std::to_string(std::max(a, b)));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) sig += "&";
    sig += parts[i];
  }
  return sig;
}

namespace {

/// Linear-time positional rendering of a typed pattern: vertex labels in
/// position order plus edge triples in index order. Deterministic for a
/// given construction order (workload queries are rebuilt identically
/// every run) but NOT renaming-invariant — used for patterns too large
/// for the factorial canonical code.
std::string PositionalCode(const pattern::PatternGraph& p) {
  std::string code;
  for (int v = 0; v < p.num_vertices(); ++v) {
    code += "v" + std::to_string(p.vertex(v).label) + ";";
  }
  for (int e = 0; e < p.num_edges(); ++e) {
    const auto& pe = p.edge(e);
    code += std::to_string(pe.src) + ">" + std::to_string(pe.dst) + ":" +
            std::to_string(pe.label) + ";";
  }
  return code;
}

}  // namespace

std::string PatternFeedbackKey(const pattern::PatternGraph& induced) {
  // Structural GLogue-sized patterns use the renaming-invariant
  // canonical code (its O(n!) cost is trivial at n <= 3, and
  // PushIntoGlogue requires it to address catalog entries). Everything
  // else — larger sub-patterns (canonicalizing 6-8 vertex patterns
  // inside the DP would dominate optimization time) and any
  // constraint-bearing pattern (the constraint signature is positional;
  // pairing it with a renaming-invariant code would let isomorphic
  // patterns with predicates on non-corresponding vertices share a key)
  // gets the linear positional code under the "patl|" prefix, which is
  // never pushed into GLogue.
  std::string sig = ConstraintSignature(induced);
  if (induced.num_vertices() <= 3 && sig.empty()) {
    return "pat|" + induced.CanonicalCode() + "|";
  }
  return "patl|" + PositionalCode(induced) + "|" + sig;
}

std::string ScanFeedbackKey(const std::string& table,
                            const storage::ExprPtr& filter, bool sampled) {
  // Template rendering ($<slot> instead of the bound constant) keys the
  // correction by predicate shape: all bindings of one parameterized
  // template share — and are corrected by — one feedback entry, matching
  // the value-insensitive estimate they share.
  return std::string(sampled ? "scan|s|" : "scan|h|") + table + "|" +
         (filter ? filter->ToTemplateString() : "");
}

}  // namespace optimizer
}  // namespace relgo
