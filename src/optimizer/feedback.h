#ifndef RELGO_OPTIMIZER_FEEDBACK_H_
#define RELGO_OPTIMIZER_FEEDBACK_H_

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/expression.h"

namespace relgo {

namespace pattern {
class PatternGraph;
}  // namespace pattern

namespace plan {
struct PhysicalOp;
}  // namespace plan

namespace exec {
class QueryProfile;
}  // namespace exec

namespace optimizer {

class Glogue;

/// Tuning knobs of the adaptive-statistics feedback loop.
struct FeedbackOptions {
  /// Exponential-smoothing weight of one observation (in log space):
  /// after observing actual `a` against the (already-corrected) estimate
  /// `e`, the stored correction factor moves from f to
  /// f * (a/e)^smoothing — a fraction of the *residual* error, so the
  /// estimate never overshoots the actual and the remaining log-error
  /// shrinks by (1 - smoothing) per warm-up -> feedback -> re-plan round.
  double smoothing = 0.5;
  /// Hard bound on the total correction: each observation's ratio a/e is
  /// clamped to [1/max_correction, max_correction] and the accumulated
  /// factor is capped to the same interval, so neither a single wild
  /// actual (empty intermediate, timeout remnant) nor many consistent
  /// ones can blow up the estimator.
  double max_correction = 1e4;
};

/// The feedback-driven statistics sink (ROADMAP "Adaptive feedback"):
/// consumes the per-operator estimate-vs-actual pairs of a profiled run
/// (exec::QueryProfile) and maintains bounded, exponentially smoothed
/// multiplicative corrections keyed by *estimator input signature* —
/// GLogue pattern signatures for graph operators, (table, predicate)
/// signatures for relational scans, join-graph signatures for join
/// outputs. The optimizers consult these factors on the next
/// optimization, so re-planning the same (or an overlapping) query
/// produces estimates closer to the measured truth and potentially a
/// different, better join order.
///
/// Keys are plain strings built by the helpers below; the emitting
/// optimizer stamps each plan node with the key its estimate came from
/// (plan::PhysicalOp::feedback_key), which is what ties an executed
/// node's actual cardinality back to its estimator input.
///
/// Thread-safety: the correction map itself is mutex-protected
/// (Factor/Observe/Absorb may run concurrently). The GLogue push-down
/// (PushIntoGlogue) mutates the shared, unsynchronized GLogue catalog,
/// so adaptive profiled runs must not execute concurrently with other
/// queries on the same Database — Database does not serialize this;
/// single-session use (tests, benches, the harness) satisfies it by
/// construction.
class StatsFeedback {
 public:
  explicit StatsFeedback(FeedbackOptions options = {}) : options_(options) {}

  /// Correction factor for `key`; exactly 1.0 when the key has never been
  /// observed (so an empty sink leaves every estimate bit-identical).
  double Factor(const std::string& key) const;

  /// Records one estimate-vs-actual observation under `key` (bounded
  /// exponential smoothing, see FeedbackOptions). Returns false when the
  /// pair is rejected (non-positive estimate or empty key).
  bool Observe(const std::string& key, double estimated, double actual);

  /// Walks a profiled plan and observes every node carrying a feedback
  /// key, a non-negative estimate and a measured actual cardinality.
  /// Returns the number of observations absorbed.
  int Absorb(const plan::PhysicalOp& root, const exec::QueryProfile& profile);

  /// Migrates corrections for *structural* pattern keys (no predicates,
  /// no distinct constraints — their actuals are true homomorphism
  /// counts) into the GLogue catalog itself: the stored |M(P')| is
  /// multiplied by the correction and the local factor resets to 1, so
  /// the refinement benefits every query containing that sub-pattern
  /// (including GLogue's sampled triangle counts, which execution
  /// feedback turns exact over time). Keys whose pattern GLogue does not
  /// track stay as local factors. Returns the number of counts refined.
  int PushIntoGlogue(Glogue* glogue);

  size_t size() const;
  /// Lock-free emptiness probe: the optimizers snapshot this once per
  /// optimization and skip all signature/correction work while the sink
  /// has never absorbed anything, so the non-adaptive paths stay at
  /// their pre-feedback cost.
  bool empty() const {
    return num_corrections_.load(std::memory_order_acquire) == 0;
  }
  void Clear();

  /// Snapshot of the current corrections (diagnostics, tests, demos).
  struct Entry {
    std::string key;
    double factor = 1.0;
    uint64_t observations = 0;
  };
  std::vector<Entry> Entries() const;

  const FeedbackOptions& options() const { return options_; }

 private:
  struct Correction {
    double log_factor = 0.0;
    uint64_t observations = 0;
  };

  FeedbackOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Correction> corrections_;
  std::atomic<size_t> num_corrections_{0};  ///< == corrections_.size()
};

// ---------------------------------------------------------------------------
// Key builders — the shared signature namespace of observers (plan
// emission) and consumers (estimators). Formats:
//   "pat|<canonical-code>|<constraint-sig>"   graph sub-pattern estimate
//   "scan|<table>|<predicate>"                relational scan selectivity
// Composite graph keys ("xe|", "vf|", "ev|") and relational join-mask
// keys ("rel|...") are derived from these by the emitting optimizers.
// ---------------------------------------------------------------------------

/// Sorted signature of the constraints of an induced sub-pattern:
/// vertex/edge predicates and distinct-pair constraints, rendered per
/// position + label (position-dependent on purpose — same-labeled
/// elements with different predicate placements must not share a key).
/// Empty iff the sub-pattern is purely structural, i.e. its match count
/// is a plain homomorphism count.
std::string ConstraintSignature(const pattern::PatternGraph& induced);

/// Feedback key of an induced sub-pattern's cardinality estimate. For
/// *structural* GLogue-sized patterns (<= 3 vertices, no constraints)
/// this is "pat|" + the renaming-invariant canonical code + "|" — the
/// only keys eligible for GLogue push-down. All other patterns (larger,
/// or carrying predicates/distinct pairs) use a linear positional code
/// under the "patl|" prefix: canonicalization is factorial, and the
/// constraint signature is positional, so the whole key must be too.
std::string PatternFeedbackKey(const pattern::PatternGraph& induced);

/// Feedback key of a relational scan's (table, pushed predicate)
/// selectivity, tagged with the base estimator that produced it
/// (`sampled`: Umbra-like reservoir sampling vs System-R heuristics) —
/// a correction is the *residual* of its base, so bases must never
/// share a key. A scan without a filter has no estimation error to
/// correct (base cardinalities are exact), so callers skip null filters.
std::string ScanFeedbackKey(const std::string& table,
                            const storage::ExprPtr& filter, bool sampled);

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_FEEDBACK_H_
