#include "optimizer/glogue.h"

#include <algorithm>

#include "common/timer.h"

namespace relgo {
namespace optimizer {

using graph::Direction;
using pattern::PatternGraph;

namespace {

/// One way an edge label can be anchored at a vertex label.
struct Incidence {
  int edge_label;
  Direction dir;          ///< kOut: anchor is the edge's source
  int anchor_label;       ///< vertex label at the anchor
  int other_label;        ///< vertex label at the far end
};

std::vector<Incidence> AllIncidences(const graph::RgMapping& mapping) {
  std::vector<Incidence> out;
  for (int e = 0; e < static_cast<int>(mapping.num_edge_labels()); ++e) {
    int src = mapping.EdgeSrcLabelId(e);
    int dst = mapping.EdgeDstLabelId(e);
    out.push_back({e, Direction::kOut, src, dst});
    out.push_back({e, Direction::kIn, dst, src});
  }
  return out;
}

/// Builds the wedge pattern: anchor vertex with two incident edges.
PatternGraph WedgePattern(const Incidence& a, const Incidence& b) {
  PatternGraph p;
  int center = p.AddVertex(a.anchor_label);
  int x = p.AddVertex(a.other_label);
  int y = p.AddVertex(b.other_label);
  if (a.dir == Direction::kOut) {
    p.AddEdge(a.edge_label, center, x);
  } else {
    p.AddEdge(a.edge_label, x, center);
  }
  if (b.dir == Direction::kOut) {
    p.AddEdge(b.edge_label, center, y);
  } else {
    p.AddEdge(b.edge_label, y, center);
  }
  return p;
}

/// Builds the triangle pattern closed by `ac` with legs `ab` (anchored at
/// a) and `bc` (anchored at b).
PatternGraph TrianglePattern(int ac_label, const Incidence& ab,
                             const Incidence& bc) {
  PatternGraph p;
  int a = p.AddVertex(ab.anchor_label);
  int b = p.AddVertex(ab.other_label);
  int c = p.AddVertex(bc.other_label);
  p.AddEdge(ac_label, a, c);
  if (ab.dir == Direction::kOut) {
    p.AddEdge(ab.edge_label, a, b);
  } else {
    p.AddEdge(ab.edge_label, b, a);
  }
  if (bc.dir == Direction::kOut) {
    p.AddEdge(bc.edge_label, b, c);
  } else {
    p.AddEdge(bc.edge_label, c, b);
  }
  return p;
}

/// Sum over common neighbors of the product of parallel-edge run lengths
/// (homomorphism count of the closing wedge).
uint64_t IntersectCount(const graph::AdjacencyList& l1,
                        const graph::AdjacencyList& l2) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < l1.size && j < l2.size) {
    uint64_t a = l1.neighbors[i], b = l2.neighbors[j];
    if (a < b) {
      ++i;
    } else if (b < a) {
      ++j;
    } else {
      size_t ri = i, rj = j;
      while (ri < l1.size && l1.neighbors[ri] == a) ++ri;
      while (rj < l2.size && l2.neighbors[rj] == a) ++rj;
      count += static_cast<uint64_t>(ri - i) * (rj - j);
      i = ri;
      j = rj;
    }
  }
  return count;
}

}  // namespace

Status Glogue::Build(const storage::Catalog& catalog,
                     const graph::RgMapping& mapping,
                     const graph::GraphIndex& index,
                     const graph::GraphStats& stats, GlogueOptions options) {
  Timer timer;
  cards_.clear();
  max_vertices_ = options.max_pattern_vertices;

  // -- 1-vertex patterns (exact). --------------------------------------------
  for (int v = 0; v < static_cast<int>(mapping.num_vertex_labels()); ++v) {
    PatternGraph p;
    p.AddVertex(v);
    cards_[p.CanonicalCode()] = static_cast<double>(stats.NumVertices(v));
  }
  if (max_vertices_ < 2) {
    built_ = true;
    build_time_ms_ = timer.ElapsedMillis();
    return Status::OK();
  }

  // -- Single-edge patterns (exact). ------------------------------------------
  for (int e = 0; e < static_cast<int>(mapping.num_edge_labels()); ++e) {
    PatternGraph p;
    int s = p.AddVertex(mapping.EdgeSrcLabelId(e));
    int t = p.AddVertex(mapping.EdgeDstLabelId(e));
    p.AddEdge(e, s, t);
    cards_[p.CanonicalCode()] = static_cast<double>(stats.NumEdges(e));
  }
  if (max_vertices_ < 3) {
    built_ = true;
    build_time_ms_ = timer.ElapsedMillis();
    return Status::OK();
  }

  std::vector<Incidence> incidences = AllIncidences(mapping);

  // -- Wedges: exact degree-product pass over the anchor vertex table. --------
  for (size_t i = 0; i < incidences.size(); ++i) {
    for (size_t j = i; j < incidences.size(); ++j) {
      const Incidence& a = incidences[i];
      const Incidence& b = incidences[j];
      if (a.anchor_label != b.anchor_label) continue;
      PatternGraph wedge = WedgePattern(a, b);
      std::string code = wedge.CanonicalCode();
      if (cards_.count(code)) continue;
      RELGO_ASSIGN_OR_RETURN(
          auto vtable,
          catalog.GetTable(mapping.vertex_mapping(a.anchor_label).table));
      double total = 0.0;
      for (uint64_t v = 0; v < vtable->num_rows(); ++v) {
        total += static_cast<double>(index.Degree(a.edge_label, a.dir, v)) *
                 static_cast<double>(index.Degree(b.edge_label, b.dir, v));
      }
      cards_[code] = total;
    }
  }

  // -- Triangles: sparsified counting over the closing edge. ------------------
  for (int ac = 0; ac < static_cast<int>(mapping.num_edge_labels()); ++ac) {
    int a_label = mapping.EdgeSrcLabelId(ac);
    int c_label = mapping.EdgeDstLabelId(ac);
    for (const Incidence& ab : incidences) {
      if (ab.anchor_label != a_label) continue;
      for (const Incidence& bc : incidences) {
        if (bc.anchor_label != ab.other_label) continue;
        if (bc.other_label != c_label) continue;
        PatternGraph tri = TrianglePattern(ac, ab, bc);
        std::string code = tri.CanonicalCode();
        if (cards_.count(code)) continue;

        uint64_t m = index.NumEdges(ac);
        if (m == 0) {
          cards_[code] = 0.0;
          continue;
        }
        uint64_t target =
            std::min<uint64_t>(options.max_sampled_edges,
                               std::max<uint64_t>(
                                   1, static_cast<uint64_t>(
                                          static_cast<double>(m) *
                                          options.sample_rate)));
        uint64_t stride = std::max<uint64_t>(1, m / target);
        double total = 0.0;
        uint64_t sampled = 0;
        // The b-side adjacency of c runs against bc's orientation.
        Direction c_dir =
            bc.dir == Direction::kOut ? Direction::kIn : Direction::kOut;
        for (uint64_t r = 0; r < m; r += stride) {
          ++sampled;
          uint64_t va = index.EdgeSource(ac, r);
          uint64_t vc = index.EdgeTarget(ac, r);
          graph::AdjacencyList l1 =
              index.Neighbors(ab.edge_label, ab.dir, va);
          graph::AdjacencyList l2 = index.Neighbors(bc.edge_label, c_dir, vc);
          total += static_cast<double>(IntersectCount(l1, l2));
        }
        cards_[code] =
            total * (static_cast<double>(m) / static_cast<double>(sampled));
      }
    }
  }

  built_ = true;
  build_time_ms_ = timer.ElapsedMillis();
  return Status::OK();
}

bool Glogue::RefineCode(const std::string& code, double factor) {
  auto it = cards_.find(code);
  if (it == cards_.end()) return false;
  factor = std::min(std::max(factor, 1e-4), 1e4);
  it->second = std::max(it->second * factor, 0.0);
  return true;
}

double Glogue::Lookup(const PatternGraph& p) const {
  if (p.num_vertices() > max_vertices_) return -1.0;
  auto it = cards_.find(p.CanonicalCode());
  return it == cards_.end() ? -1.0 : it->second;
}

}  // namespace optimizer
}  // namespace relgo
