#ifndef RELGO_OPTIMIZER_GLOGUE_H_
#define RELGO_OPTIMIZER_GLOGUE_H_

#include <string>
#include <unordered_map>

#include "graph/graph_index.h"
#include "graph/graph_stats.h"
#include "graph/rg_mapping.h"
#include "pattern/pattern_graph.h"
#include "storage/catalog.h"

namespace relgo {
namespace optimizer {

/// Construction parameters for the GLogue catalog.
struct GlogueOptions {
  /// Largest typed sub-pattern tracked (the paper uses k = 3).
  int max_pattern_vertices = 3;
  /// Closing-edge sampling rate for triangle counting — the adaptation of
  /// GLogS's graph sparsification (Sec 4.2.1) to the relational setting.
  double sample_rate = 0.1;
  /// Hard cap on sampled closing edges per triangle shape.
  uint64_t max_sampled_edges = 50'000;
};

/// GLogue: the high-order statistics catalog of GLogS, adapted to
/// RGMapping-defined graphs (Sec 4.2.1 "GLogue Construction").
///
/// Each entry maps the canonical code of a typed pattern with at most
/// `max_pattern_vertices` vertices to its (estimated) match cardinality
/// |M(P')| under homomorphism semantics:
///  * single-vertex and single-edge patterns: exact relation cardinalities;
///  * wedges (2-edge stars): exact via a degree-product pass over the
///    VE-index;
///  * triangles: sparsified counting — sample the closing edge, intersect
///    endpoint adjacency lists, scale by the sampling rate.
class Glogue {
 public:
  Status Build(const storage::Catalog& catalog,
               const graph::RgMapping& mapping,
               const graph::GraphIndex& index,
               const graph::GraphStats& stats, GlogueOptions options = {});

  /// Cardinality of the typed pattern (predicates ignored), or a negative
  /// value when the pattern exceeds k vertices / was not enumerated.
  double Lookup(const pattern::PatternGraph& p) const;

  /// Adaptive-statistics refinement (StatsFeedback::PushIntoGlogue):
  /// multiplies the stored count of the pattern with canonical code
  /// `code` by `factor` (clamped to [1e-4, 1e4] per call), moving the
  /// catalog toward execution-measured truth — e.g. turning sampled
  /// triangle counts exact. Returns false when the code is not tracked
  /// (pattern beyond k vertices, or a shape construction never
  /// enumerated), in which case the caller keeps its own correction.
  /// Not thread-safe against concurrent Lookup: adaptive-statistics
  /// absorption (the only caller) must not run while another thread
  /// optimizes against the same catalog.
  bool RefineCode(const std::string& code, double factor);

  bool built() const { return built_; }
  size_t size() const { return cards_.size(); }

  /// Build time in milliseconds (reported in dataset statistics).
  double build_time_ms() const { return build_time_ms_; }

 private:
  std::unordered_map<std::string, double> cards_;
  int max_vertices_ = 3;
  bool built_ = false;
  double build_time_ms_ = 0.0;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_GLOGUE_H_
