#include "optimizer/graph_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace relgo {
namespace optimizer {

using graph::Direction;
using pattern::Bit;
using pattern::PatternGraph;
using pattern::PopCount;
using pattern::VSet;
using plan::PhysicalOp;
using plan::PhysicalOpPtr;

namespace {

/// How one pattern edge connects a removed vertex back to the remaining
/// sub-pattern.
struct Link {
  int edge;             ///< pattern edge index
  int rest_vertex;      ///< endpoint inside the remaining mask
  Direction dir;        ///< kOut: rest_vertex is the edge's source
};

/// The decomposition decision recorded per DP state.
struct Choice {
  enum class Kind { kScan, kStar, kJoin } kind = Kind::kScan;
  int removed_vertex = -1;  ///< kStar
  VSet s1 = 0, s2 = 0;      ///< kJoin
};

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  Choice choice;
};

class PlanSearch {
 public:
  PlanSearch(const PatternGraph& p, const std::set<int>& needed_edges,
             const GraphOptimizerOptions& options,
             const graph::RgMapping* mapping,
             const storage::Catalog* catalog,
             const graph::GraphStats* gstats, const Glogue* glogue,
             const TableStats* tstats, const StatsFeedback* feedback)
      : p_(p),
        needed_edges_(needed_edges),
        options_(options),
        mapping_(mapping),
        gstats_(gstats),
        estimator_(&p, glogue, gstats, mapping, catalog, tstats,
                   {options.use_high_order, 1024}, feedback) {}

  Result<GraphPlanResult> Run() {
    VSet all = p_.AllVertices();
    RELGO_RETURN_NOT_OK(Solve(all));
    GraphPlanResult result;
    result.estimated_cardinality = estimator_.Estimate(all);
    result.estimated_cost = dp_[all].cost;
    RELGO_ASSIGN_OR_RETURN(result.root, Emit(all, {}));
    return result;
  }

 private:
  std::vector<Link> LinksOf(int v, VSet rest) const {
    std::vector<Link> links;
    for (int e : p_.IncidentEdges(v)) {
      const auto& pe = p_.edge(e);
      int other = pe.src == v ? pe.dst : pe.src;
      if (other == v || !(rest & Bit(other))) continue;
      links.push_back(
          {e, other, pe.src == v ? Direction::kIn : Direction::kOut});
    }
    return links;
  }

  double AvgDegree(const Link& link) const {
    return std::max(1e-3,
                    gstats_->AverageDegree(p_.edge(link.edge).label, link.dir));
  }

  /// Descriptor of pattern edge `e` for composite feedback keys: the
  /// index keeps keys unique within one plan, and the edge/endpoint
  /// labels keep a persisted correction from ever being applied to a
  /// differently-typed edge of another query whose mask happens to share
  /// the canonical code under a different numbering.
  std::string EdgeKeyPart(int e) const {
    const auto& pe = p_.edge(e);
    return std::to_string(e) + ":" + std::to_string(pe.label) + "," +
           std::to_string(p_.vertex(pe.src).label) + ">" +
           std::to_string(p_.vertex(pe.dst).label);
  }

  /// Cost of implementing the star/EI/join transition (Sec 4.2.1).
  double TransitionCost(VSet mask, VSet rest,
                        const std::vector<Link>& links) const {
    double card_rest = estimator_.Estimate(rest);
    double card_mask = estimator_.Estimate(mask);
    if (!options_.use_index) {
      // Hash joins throughout: probe/build the edge relation per link.
      double cost = 0.0;
      double intermediate = card_rest;
      for (size_t i = 0; i < links.size(); ++i) {
        double edges = static_cast<double>(
            gstats_->NumEdges(p_.edge(links[i].edge).label));
        if (i == 0) {
          intermediate = card_rest * AvgDegree(links[0]);
        } else {
          double nv = std::max(
              1.0, static_cast<double>(gstats_->NumVertices(
                       p_.vertex(p_.edge(links[i].edge).src ==
                                         links[i].rest_vertex
                                     ? p_.edge(links[i].edge).dst
                                     : p_.edge(links[i].edge).src)
                           .label)));
          intermediate *= std::min(1.0, AvgDegree(links[i]) / nv);
        }
        cost += edges + intermediate;
      }
      return cost + card_mask;
    }
    if (links.size() == 1) {
      // EXPAND(+GET_VERTEX): |M(P_l)| * avg degree.
      return card_rest * AvgDegree(links[0]) + card_mask;
    }
    if (options_.use_expand_intersect) {
      // EXPAND_INTERSECT: per-row work bounded by the smallest list.
      double min_d = std::numeric_limits<double>::infinity();
      for (const Link& l : links) min_d = std::min(min_d, AvgDegree(l));
      return card_rest * min_d + card_mask;
    }
    // Expand then verify each remaining leaf ("traditional multiple join").
    double cost = card_rest * AvgDegree(links[0]);
    double intermediate = card_rest * AvgDegree(links[0]);
    for (size_t i = 1; i < links.size(); ++i) {
      cost += intermediate;  // probing every intermediate row
      double nv = std::max(
          1.0,
          static_cast<double>(gstats_->NumVertices(
              p_.vertex(p_.edge(links[i].edge).src == links[i].rest_vertex
                            ? p_.edge(links[i].edge).dst
                            : p_.edge(links[i].edge).src)
                  .label)));
      intermediate *= std::min(1.0, AvgDegree(links[i]) / nv);
    }
    return cost + card_mask;
  }

  Status Solve(VSet root_mask) {
    if (p_.num_vertices() > options_.max_pattern_vertices) {
      return Status::InvalidArgument("pattern too large for plan search");
    }
    // Bottom-up over all masks (only connected induced ones get entries).
    VSet all = root_mask;
    for (VSet mask = 1; mask <= all; ++mask) {
      if ((mask & all) != mask) continue;
      if (!p_.IsConnectedInduced(mask)) continue;
      DpEntry entry;
      int n = PopCount(mask);
      if (n == 1) {
        int v = __builtin_ctz(mask);
        entry.cost = static_cast<double>(
            gstats_->NumVertices(p_.vertex(v).label));
        entry.choice.kind = Choice::Kind::kScan;
        dp_[mask] = entry;
        continue;
      }
      // Star removals.
      for (int v = 0; v < p_.num_vertices(); ++v) {
        if (!(mask & Bit(v))) continue;
        VSet rest = mask & ~Bit(v);
        if (rest == 0 || !p_.IsConnectedInduced(rest)) continue;
        auto it = dp_.find(rest);
        if (it == dp_.end()) continue;
        std::vector<Link> links = LinksOf(v, rest);
        if (links.empty()) continue;
        double cost = it->second.cost + TransitionCost(mask, rest, links);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.choice.kind = Choice::Kind::kStar;
          entry.choice.removed_vertex = v;
        }
      }
      // Binary joins: overlapping connected induced covers.
      if (n >= 3) {
        double card_mask = estimator_.Estimate(mask);
        for (VSet s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
          auto it1 = dp_.find(s1);
          if (it1 == dp_.end()) continue;
          VSet rest = mask & ~s1;
          if (rest == 0) continue;
          for (VSet t = s1; t != 0; t = (t - 1) & s1) {
            VSet s2 = rest | t;
            if (s2 == mask) continue;
            auto it2 = dp_.find(s2);
            if (it2 == dp_.end()) continue;
            if (!EdgesCovered(mask, s1, s2)) continue;
            double c1 = estimator_.Estimate(s1);
            double c2 = estimator_.Estimate(s2);
            double cost =
                it1->second.cost + it2->second.cost + c1 * c2 + card_mask;
            if (cost < entry.cost) {
              entry.cost = cost;
              entry.choice.kind = Choice::Kind::kJoin;
              entry.choice.s1 = s1;
              entry.choice.s2 = s2;
            }
          }
        }
      }
      if (!std::isfinite(entry.cost)) {
        return Status::Internal("no decomposition found for sub-pattern");
      }
      dp_[mask] = entry;
    }
    return Status::OK();
  }

  bool EdgesCovered(VSet mask, VSet s1, VSet s2) const {
    for (int e : p_.InducedEdges(mask)) {
      VSet ends = Bit(p_.edge(e).src) | Bit(p_.edge(e).dst);
      if ((ends & s1) != ends && (ends & s2) != ends) return false;
    }
    return true;
  }

  /// True when the binding of pattern edge `e` must exist in the output of
  /// the node for `mask` (pi-hat projection, edge predicate handling, or a
  /// parent join on shared edges).
  bool EdgeBindingNeeded(int e, const std::set<int>& extra) const {
    if (!options_.fuse_expand) return true;
    if (needed_edges_.count(e)) return true;
    if (extra.count(e)) return true;
    return false;
  }

  /// Wraps `op` with NOT_EQUAL filters for distinct pairs that become
  /// jointly bound at `mask` (and were not inside `child_masks`). The
  /// wrappers inherit the mask's cardinality estimate (the estimator
  /// already prices the whole sub-pattern, distinctness included).
  PhysicalOpPtr ApplyDistinct(PhysicalOpPtr op, VSet mask, double card,
                              std::vector<VSet> child_masks) const {
    for (const auto& [a, b] : p_.distinct_pairs()) {
      VSet pair = Bit(a) | Bit(b);
      if ((mask & pair) != pair) continue;
      bool in_child = false;
      for (VSet child : child_masks) {
        if ((child & pair) == pair) in_child = true;
      }
      if (in_child) continue;
      auto ne = std::make_unique<plan::PhysNotEqual>();
      ne->var_a = p_.VertexVarName(a);
      ne->var_b = p_.VertexVarName(b);
      ne->estimated_cardinality = card;
      ne->children.push_back(std::move(op));
      op = std::move(ne);
    }
    return op;
  }

  /// Recursively materializes the physical plan for `mask`.
  /// `required_edges` are edges whose bindings a parent join consumes.
  Result<PhysicalOpPtr> Emit(VSet mask,
                             const std::set<int>& required_edges) const {
    const DpEntry& entry = dp_.at(mask);
    double card = estimator_.Estimate(mask);

    switch (entry.choice.kind) {
      case Choice::Kind::kScan: {
        int v = __builtin_ctz(mask);
        auto scan = std::make_unique<plan::PhysScanVertex>();
        scan->vertex_label = p_.vertex(v).label;
        scan->var = p_.VertexVarName(v);
        scan->filter = p_.vertex(v).predicate;
        scan->estimated_cardinality = card;
        scan->estimated_cost = entry.cost;
        scan->feedback_key = estimator_.MaskKey(mask);
        return PhysicalOpPtr(std::move(scan));
      }
      case Choice::Kind::kStar: {
        int v = entry.choice.removed_vertex;
        VSet rest = mask & ~Bit(v);
        std::vector<Link> links = LinksOf(v, rest);
        // Pass down edge requirements that live inside `rest`.
        std::set<int> child_required;
        for (int e : required_edges) {
          VSet ends = Bit(p_.edge(e).src) | Bit(p_.edge(e).dst);
          if ((ends & rest) == ends) child_required.insert(e);
        }
        RELGO_ASSIGN_OR_RETURN(auto child, Emit(rest, child_required));
        double card_rest = estimator_.Estimate(rest);
        PhysicalOpPtr op;
        std::string to_var = p_.VertexVarName(v);

        if (links.size() == 1 ||
            (!options_.use_expand_intersect && options_.use_index) ||
            !options_.use_index) {
          // Single-edge expansion, then verify any remaining links.
          const Link& first = links[0];
          const auto& pe = p_.edge(first.edge);
          bool need_edge = EdgeBindingNeeded(first.edge, required_edges) ||
                           pe.predicate != nullptr;
          if (options_.use_index && need_edge) {
            auto ee = std::make_unique<plan::PhysExpandEdge>();
            ee->edge_label = pe.label;
            ee->dir = first.dir;
            ee->from_var = p_.VertexVarName(first.rest_vertex);
            ee->edge_var = p_.EdgeVarName(first.edge);
            ee->edge_filter = pe.predicate;
            // Raw expansion estimate, before GET_VERTEX applies vertex
            // constraints: |M(P_l)| * avg degree (Sec 4.2.1), corrected by
            // the extend-count feedback of this (sub-pattern, edge) pair.
            ee->feedback_key = "xe|" + estimator_.MaskKey(rest) + "|" +
                               EdgeKeyPart(first.edge) +
                               (first.dir == Direction::kOut ? ">" : "<");
            ee->estimated_cardinality =
                card_rest * AvgDegree(first) *
                estimator_.CorrectionFactor(ee->feedback_key);
            ee->children.push_back(std::move(child));
            auto gv = std::make_unique<plan::PhysGetVertex>();
            gv->edge_label = pe.label;
            gv->dir = first.dir;
            gv->edge_var = p_.EdgeVarName(first.edge);
            gv->to_var = to_var;
            gv->vertex_filter = p_.vertex(v).predicate;
            gv->children.push_back(std::move(ee));
            gv->estimated_cardinality = card;
            op = std::move(gv);
          } else {
            auto ex = std::make_unique<plan::PhysExpand>();
            ex->edge_label = pe.label;
            ex->dir = first.dir;
            ex->from_var = p_.VertexVarName(first.rest_vertex);
            ex->to_var = to_var;
            ex->edge_var = need_edge ? p_.EdgeVarName(first.edge) : "";
            ex->vertex_filter = p_.vertex(v).predicate;
            ex->use_index = options_.use_index;
            ex->children.push_back(std::move(child));
            ex->estimated_cardinality = card;
            op = std::move(ex);
            if (pe.predicate) {
              auto vf = std::make_unique<plan::PhysVertexFilter>();
              vf->var = p_.EdgeVarName(first.edge);
              vf->is_edge = true;
              vf->label = pe.label;
              vf->predicate = pe.predicate;
              vf->feedback_key = "vf|" + estimator_.MaskKey(mask) + "|e" +
                                 EdgeKeyPart(first.edge);
              vf->estimated_cardinality =
                  card * estimator_.CorrectionFactor(vf->feedback_key);
              vf->children.push_back(std::move(op));
              op = std::move(vf);
            }
          }
          for (size_t i = 1; i < links.size(); ++i) {
            const auto& pe_i = p_.edge(links[i].edge);
            bool need_e = EdgeBindingNeeded(links[i].edge, required_edges) ||
                          pe_i.predicate != nullptr;
            auto ev = std::make_unique<plan::PhysEdgeVerify>();
            ev->edge_label = pe_i.label;
            ev->dir = links[i].dir;
            ev->src_var = p_.VertexVarName(links[i].rest_vertex);
            ev->dst_var = to_var;
            ev->edge_var = need_e ? p_.EdgeVarName(links[i].edge) : "";
            ev->use_index = options_.use_index;
            // Intermediate closures are approximated by the star's final
            // estimate (each verify only shrinks the relation further);
            // the per-node feedback factor learns this closure's residual.
            ev->feedback_key =
                "ev|" + estimator_.MaskKey(mask) + "|e" +
                EdgeKeyPart(links[i].edge) +
                (links[i].dir == Direction::kOut ? ">" : "<");
            ev->estimated_cardinality =
                card * estimator_.CorrectionFactor(ev->feedback_key);
            ev->children.push_back(std::move(op));
            op = std::move(ev);
            if (pe_i.predicate) {
              auto vf = std::make_unique<plan::PhysVertexFilter>();
              vf->var = p_.EdgeVarName(links[i].edge);
              vf->is_edge = true;
              vf->label = pe_i.label;
              vf->predicate = pe_i.predicate;
              vf->feedback_key = "vf|" + estimator_.MaskKey(mask) + "|e" +
                                 EdgeKeyPart(links[i].edge);
              vf->estimated_cardinality =
                  card * estimator_.CorrectionFactor(vf->feedback_key);
              vf->children.push_back(std::move(op));
              op = std::move(vf);
            }
          }
        } else {
          // EXPAND_INTERSECT over all links.
          auto ei = std::make_unique<plan::PhysExpandIntersect>();
          ei->to_var = to_var;
          ei->vertex_filter = p_.vertex(v).predicate;
          std::vector<std::pair<int, storage::ExprPtr>> edge_preds;
          for (const Link& l : links) {
            const auto& pe = p_.edge(l.edge);
            ei->edge_labels.push_back(pe.label);
            ei->dirs.push_back(l.dir);
            ei->from_vars.push_back(p_.VertexVarName(l.rest_vertex));
            bool need_e = EdgeBindingNeeded(l.edge, required_edges) ||
                          pe.predicate != nullptr;
            ei->edge_vars.push_back(need_e ? p_.EdgeVarName(l.edge) : "");
            if (pe.predicate) {
              edge_preds.emplace_back(l.edge, pe.predicate);
            }
          }
          ei->children.push_back(std::move(child));
          ei->estimated_cardinality = card;
          op = std::move(ei);
          for (auto& [e, pred] : edge_preds) {
            auto vf = std::make_unique<plan::PhysVertexFilter>();
            vf->var = p_.EdgeVarName(e);
            vf->is_edge = true;
            vf->label = p_.edge(e).label;
            vf->predicate = pred;
            vf->feedback_key = "vf|" + estimator_.MaskKey(mask) + "|e" +
                               EdgeKeyPart(e);
            vf->estimated_cardinality =
                card * estimator_.CorrectionFactor(vf->feedback_key);
            vf->children.push_back(std::move(op));
            op = std::move(vf);
          }
        }
        op->estimated_cost = entry.cost;
        PhysicalOpPtr out = ApplyDistinct(std::move(op), mask, card, {rest});
        // The sub-pattern's topmost node is the one whose actual equals
        // |M(P')| — it carries the mask signature (overriding any
        // intermediate composite key) and the estimator's estimate.
        out->feedback_key = estimator_.MaskKey(mask);
        out->estimated_cardinality = card;
        return out;
      }
      case Choice::Kind::kJoin: {
        VSet s1 = entry.choice.s1, s2 = entry.choice.s2;
        VSet overlap = s1 & s2;
        // Shared elements: overlap vertices plus overlap-induced edges
        // (Eq 2 joins on Vo and Eo) — children must bind those edges.
        std::vector<int> shared_edges = p_.InducedEdges(overlap);
        std::set<int> req1, req2;
        for (int e : shared_edges) {
          req1.insert(e);
          req2.insert(e);
        }
        for (int e : required_edges) {
          VSet ends = Bit(p_.edge(e).src) | Bit(p_.edge(e).dst);
          if ((ends & s1) == ends) {
            req1.insert(e);
          } else {
            req2.insert(e);
          }
        }
        RELGO_ASSIGN_OR_RETURN(auto left, Emit(s1, req1));
        RELGO_ASSIGN_OR_RETURN(auto right, Emit(s2, req2));
        auto join = std::make_unique<plan::PhysPatternJoin>();
        for (int v = 0; v < p_.num_vertices(); ++v) {
          if (overlap & Bit(v)) {
            join->common_vars.push_back(p_.VertexVarName(v));
          }
        }
        for (int e : shared_edges) {
          join->common_vars.push_back(p_.EdgeVarName(e));
        }
        join->children.push_back(std::move(left));
        join->children.push_back(std::move(right));
        join->estimated_cardinality = card;
        join->estimated_cost = entry.cost;
        PhysicalOpPtr out = ApplyDistinct(PhysicalOpPtr(std::move(join)),
                                          mask, card, {s1, s2});
        out->feedback_key = estimator_.MaskKey(mask);
        out->estimated_cardinality = card;
        return out;
      }
    }
    return Status::Internal("unreachable");
  }

  const PatternGraph& p_;
  std::set<int> needed_edges_;
  GraphOptimizerOptions options_;
  const graph::RgMapping* mapping_;
  const graph::GraphStats* gstats_;
  CardinalityEstimator estimator_;
  std::unordered_map<VSet, DpEntry> dp_;
};

}  // namespace

Result<GraphPlanResult> GraphOptimizer::Optimize(
    const PatternGraph& p, const std::set<int>& needed_edges,
    const GraphOptimizerOptions& options) const {
  if (p.num_vertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (!p.IsConnectedInduced(p.AllVertices())) {
    return Status::InvalidArgument("pattern must be connected");
  }
  PlanSearch search(p, needed_edges, options, mapping_, catalog_, gstats_,
                    glogue_, tstats_, feedback_);
  return search.Run();
}

}  // namespace optimizer
}  // namespace relgo
