#ifndef RELGO_OPTIMIZER_GRAPH_OPTIMIZER_H_
#define RELGO_OPTIMIZER_GRAPH_OPTIMIZER_H_

#include <set>

#include "optimizer/cardinality.h"
#include "plan/physical_plan.h"

namespace relgo {
namespace optimizer {

/// Controls which physical implementations the graph plan search may use;
/// the RelGo ablation variants of Sec 5.2 flip these.
struct GraphOptimizerOptions {
  /// Graph index available: EXPAND/EXPAND_INTERSECT over CSR. When false
  /// (RelGoHash), every operation lowers to hash joins (Case II reduction).
  bool use_index = true;
  /// Allow EXPAND_INTERSECT for complete stars (RelGoNoEI sets false and
  /// lowers stars to expand + edge-verify "traditional multiple joins").
  bool use_expand_intersect = true;
  /// TrimAndFuseRule's physical half: fuse EXPAND_EDGE + GET_VERTEX into
  /// EXPAND whenever the edge binding is not needed downstream.
  bool fuse_expand = true;
  /// Consult GLogue high-order statistics (else low-order only).
  bool use_high_order = true;
  /// Safety bound for the decomposition DP.
  int max_pattern_vertices = 14;
};

/// The optimized graph sub-plan for M(P): a binding-table producer plus
/// the optimizer's cardinality/cost estimates (consumed by the outer
/// relational optimizer when it places SCAN_GRAPH_TABLE).
struct GraphPlanResult {
  plan::PhysicalOpPtr root;
  double estimated_cardinality = 0.0;
  double estimated_cost = 0.0;
};

/// Cost-based top-down search over decomposition trees (Sec 3.1.2 +
/// Sec 4.2.1, adapting GLogS).
///
/// Every DP state is a connected *induced* sub-pattern (a vertex bitmask of
/// the query pattern). Transitions:
///  * star removal — the right child is a complete star MMC rooted at the
///    removed vertex; lowered to EXPAND(+GET_VERTEX) for single edges and
///    EXPAND_INTERSECT for k >= 2 (worst-case optimal);
///  * binary join — two overlapping connected induced sub-patterns covering
///    all edges; lowered to PATTERN_JOIN (hash) on shared vertices *and*
///    shared edges (Eq 2's join on Vo, Eo).
///
/// Costs follow Sec 4.2.1: |M(P_l)| * avg-degree for expansions,
/// |M(P_l)| * min-degree for intersections, cardinality products for hash
/// joins, with cardinalities from the CardinalityEstimator (GLogue-backed).
class GraphOptimizer {
 public:
  /// `feedback` (optional) is the adaptive-statistics sink consulted by
  /// the cardinality estimator; emitted nodes are stamped with their
  /// estimator signatures so profiled actuals can flow back into it.
  GraphOptimizer(const graph::RgMapping* mapping,
                 const storage::Catalog* catalog,
                 const graph::GraphStats* gstats, const Glogue* glogue,
                 const TableStats* tstats,
                 const StatsFeedback* feedback = nullptr)
      : mapping_(mapping),
        catalog_(catalog),
        gstats_(gstats),
        glogue_(glogue),
        tstats_(tstats),
        feedback_(feedback) {}

  /// Computes the minimum-cost physical plan for M(P). `needed_edges` lists
  /// pattern edge indexes whose bindings must survive into the output
  /// binding table (because pi-hat projects them or a predicate needs
  /// them); with fuse_expand, all other edge bindings are trimmed.
  Result<GraphPlanResult> Optimize(const pattern::PatternGraph& p,
                                   const std::set<int>& needed_edges,
                                   const GraphOptimizerOptions& options) const;

 private:
  const graph::RgMapping* mapping_;
  const storage::Catalog* catalog_;
  const graph::GraphStats* gstats_;
  const Glogue* glogue_;
  const TableStats* tstats_;
  const StatsFeedback* feedback_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_GRAPH_OPTIMIZER_H_
