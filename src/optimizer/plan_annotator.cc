#include "optimizer/plan_annotator.h"

#include <algorithm>

namespace relgo {
namespace optimizer {

using plan::OpKind;
using plan::PhysicalOp;

namespace {

double ChildEstimate(const PhysicalOp& op, size_t i) {
  if (i >= op.children.size()) return -1.0;
  return op.children[i]->estimated_cardinality;
}

/// Fallback cardinality for one node whose emitter left the sentinel.
double FallbackCardinality(const PhysicalOp& op,
                           const storage::Catalog* catalog,
                           const TableStats* tstats) {
  double child = ChildEstimate(op, 0);
  switch (op.kind) {
    case OpKind::kScanTable: {
      const auto& scan = static_cast<const plan::PhysScanTable&>(op);
      auto table = catalog->GetTable(scan.table);
      if (!table.ok()) return -1.0;
      double base = static_cast<double>((*table)->num_rows());
      if (scan.filter) {
        // Heuristic base selectivity with any adaptive correction layered
        // on by TableStats (identical to the heuristic when no feedback
        // has been absorbed).
        base *= tstats->CorrectedSelectivity(**table, scan.filter, false);
      }
      return std::max(base, 1.0);
    }
    case OpKind::kLimit: {
      auto limit = static_cast<const plan::PhysLimit&>(op).limit;
      if (child < 0) return limit < 0 ? -1.0 : static_cast<double>(limit);
      return limit < 0 ? child
                       : std::min(child, static_cast<double>(limit));
    }
    case OpKind::kHashAggregate: {
      const auto& agg = static_cast<const plan::PhysHashAggregate&>(op);
      if (agg.group_by.empty()) return 1.0;
      // Fixed 10% grouping-factor heuristic; no NDV statistics survive to
      // this layer for derived columns.
      return child < 0 ? -1.0 : std::max(child * 0.1, 1.0);
    }
    case OpKind::kHashJoin:
    case OpKind::kPatternJoin: {
      // PK-FK heuristic: each probe row matches about one build row.
      double left = ChildEstimate(op, 0);
      double right = ChildEstimate(op, 1);
      if (left < 0) return right;
      if (right < 0) return left;
      return std::max(left, right);
    }
    default:
      // Filters, projections, sorts, expansions, bridges: propagate the
      // child's estimate (conservative; exact for cardinality-preserving
      // ops, an upper bound for filters).
      return child;
  }
}

void Annotate(PhysicalOp* op, const storage::Catalog* catalog,
              const TableStats* tstats) {
  for (auto& child : op->children) Annotate(child.get(), catalog, tstats);
  if (op->estimated_cardinality < 0) {
    op->estimated_cardinality = FallbackCardinality(*op, catalog, tstats);
    // Filtered scans priced here (fixed chains that bypassed the join
    // planner, e.g. GdbmsSim's) still participate in selectivity
    // feedback: stamp the scan's estimator signature.
    if (op->kind == OpKind::kScanTable) {
      const auto& scan = static_cast<const plan::PhysScanTable&>(*op);
      if (scan.filter && op->feedback_key.empty()) {
        // The fallback estimator above is the heuristic one.
        op->feedback_key = ScanFeedbackKey(scan.table, scan.filter, false);
      }
    }
  }
  if (op->estimated_cost < 0) {
    double cost = std::max(op->estimated_cardinality, 0.0);
    for (const auto& child : op->children) {
      cost += std::max(child->estimated_cost, 0.0);
    }
    op->estimated_cost = cost;
  }
}

}  // namespace

void AnnotatePlanEstimates(PhysicalOp* root, const storage::Catalog* catalog,
                           const TableStats* tstats) {
  Annotate(root, catalog, tstats);
}

}  // namespace optimizer
}  // namespace relgo
