#ifndef RELGO_OPTIMIZER_PLAN_ANNOTATOR_H_
#define RELGO_OPTIMIZER_PLAN_ANNOTATOR_H_

#include "graph/rg_mapping.h"
#include "optimizer/stats.h"
#include "plan/physical_plan.h"
#include "storage/catalog.h"

namespace relgo {
namespace optimizer {

/// Fills every estimated_cardinality / estimated_cost still holding the
/// -1 sentinel, so EXPLAIN and EXPLAIN ANALYZE never render "est=-1" and
/// per-operator Q-error is defined for the whole plan. The cost-based
/// emission paths (graph DP, relational DP/greedy) annotate their nodes
/// precisely; this pass covers the rest — output-clause post-ops
/// (ORDER BY / LIMIT / PROJECT / FILTER / HASH_AGGREGATE), GdbmsSim's
/// fixed-order join chain, and NAIVE_MATCH — with documented propagation
/// heuristics:
///
///  * SCAN_TABLE           base rows x heuristic filter selectivity
///  * FILTER / VERTEX_FILTER / NOT_EQUAL / EDGE_VERIFY
///                         child estimate (conservative upper bound)
///  * PROJECT / ORDER_BY / SCAN_GRAPH_TABLE / GET_VERTEX
///                         child estimate (cardinality-preserving or
///                         already constrained by the child)
///  * LIMIT                min(child, limit)
///  * HASH_AGGREGATE       1 when ungrouped, else 10% of the input
///  * joins                max of the children (PK-FK heuristic)
///  * expansions           child (no degree statistics at this layer)
///
/// Costs accumulate C_out-style: cost(op) = sum(children costs) + est(op)
/// wherever the emitting optimizer did not set one.
void AnnotatePlanEstimates(plan::PhysicalOp* root,
                           const storage::Catalog* catalog,
                           const TableStats* tstats);

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_PLAN_ANNOTATOR_H_
