#include "optimizer/plan_cache.h"

#include <functional>
#include <utility>

namespace relgo {
namespace optimizer {

namespace {

using storage::Expr;
using storage::ExprPtr;

/// Structurally rebuilds an expression tree, delegating every constant
/// leaf to `on_constant`. Column references are rebuilt unbound (callers
/// re-Bind), every other node keeps its shape and arguments.
ExprPtr RebuildExpr(const ExprPtr& e,
                    const std::function<ExprPtr(const Expr&)>& on_constant) {
  switch (e->kind()) {
    case Expr::Kind::kColumnRef:
      return Expr::Column(e->column_name());
    case Expr::Kind::kConstant:
      return on_constant(*e);
    case Expr::Kind::kCompare:
      return Expr::Compare(e->compare_op(),
                           RebuildExpr(e->children()[0], on_constant),
                           RebuildExpr(e->children()[1], on_constant));
    case Expr::Kind::kAnd:
      return Expr::And(RebuildExpr(e->children()[0], on_constant),
                       RebuildExpr(e->children()[1], on_constant));
    case Expr::Kind::kOr:
      return Expr::Or(RebuildExpr(e->children()[0], on_constant),
                      RebuildExpr(e->children()[1], on_constant));
    case Expr::Kind::kNot:
      return Expr::Not(RebuildExpr(e->children()[0], on_constant));
    case Expr::Kind::kStartsWith:
      return Expr::StartsWith(RebuildExpr(e->children()[0], on_constant),
                              e->string_arg());
    case Expr::Kind::kContains:
      return Expr::Contains(RebuildExpr(e->children()[0], on_constant),
                            e->string_arg());
    case Expr::Kind::kInList:
      return Expr::InList(RebuildExpr(e->children()[0], on_constant),
                          e->in_list());
    case Expr::Kind::kIsNull:
      return Expr::IsNull(RebuildExpr(e->children()[0], on_constant));
  }
  return e->Clone();
}

/// Applies `fn` to every expression slot of `q`, in the deterministic
/// order that defines parameter-slot numbering: pattern vertices, pattern
/// edges, join scan filters, WHERE.
void TransformQueryExprs(plan::SpjmQuery* q,
                         const std::function<ExprPtr(const ExprPtr&)>& fn) {
  pattern::PatternGraph& p = q->pattern;
  for (int i = 0; i < p.num_vertices(); ++i) {
    if (p.vertex(i).predicate) {
      p.vertex(i).predicate = fn(p.vertex(i).predicate);
    }
  }
  for (int i = 0; i < p.num_edges(); ++i) {
    if (p.edge(i).predicate) p.edge(i).predicate = fn(p.edge(i).predicate);
  }
  for (auto& j : q->joins) {
    if (j.scan_filter) j.scan_filter = fn(j.scan_filter);
  }
  if (q->where) q->where = fn(q->where);
}

void CollectExprParams(const ExprPtr& e,
                       std::unordered_map<int, Value>* out) {
  if (!e) return;
  if (e->kind() == Expr::Kind::kConstant && e->param_slot() >= 0) {
    (*out)[e->param_slot()] = e->constant();
  }
  for (const auto& child : e->children()) CollectExprParams(child, out);
}

std::string ExprSig(const ExprPtr& e) {
  return e ? e->ToTemplateString() : "";
}

}  // namespace

ParameterizedQuery ParameterizeQuery(const plan::SpjmQuery& query) {
  ParameterizedQuery out;
  out.query = query;
  auto slot_constant = [&out](const Expr& c) -> ExprPtr {
    const Value& v = c.constant();
    if (v.type() == LogicalType::kBool || v.type() == LogicalType::kNull) {
      // Structural literals (the empty-conjunction TRUE) stay literal:
      // slotting them would let a binding change the plan shape.
      return Expr::Constant(v);
    }
    int slot = static_cast<int>(out.defaults.size());
    out.defaults.push_back(v);
    return Expr::Param(slot, v);
  };
  TransformQueryExprs(&out.query, [&slot_constant](const ExprPtr& e) {
    return RebuildExpr(e, slot_constant);
  });
  return out;
}

Result<plan::SpjmQuery> BindTemplate(const ParameterizedQuery& t,
                                     const std::vector<Value>& params) {
  if (params.size() != t.defaults.size()) {
    return Status::InvalidArgument(
        "template '" + t.query.name + "' takes " +
        std::to_string(t.defaults.size()) + " parameter(s), got " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].type() != t.defaults[i].type()) {
      return Status::InvalidArgument(
          "template '" + t.query.name + "' parameter $" + std::to_string(i) +
          " type mismatch");
    }
  }
  plan::SpjmQuery bound = t.query;
  auto substitute = [&params](const Expr& c) -> ExprPtr {
    if (c.param_slot() >= 0) {
      return Expr::Param(c.param_slot(), params[c.param_slot()]);
    }
    return Expr::Constant(c.constant());
  };
  TransformQueryExprs(&bound, [&substitute](const ExprPtr& e) {
    return RebuildExpr(e, substitute);
  });
  return bound;
}

std::string TemplateSignature(const plan::SpjmQuery& query,
                              OptimizerMode mode) {
  std::string sig = "mode=";
  sig += ModeName(mode);
  const pattern::PatternGraph& p = query.pattern;
  sig += "|pattern:";
  for (int i = 0; i < p.num_vertices(); ++i) {
    const pattern::PatternVertex& v = p.vertex(i);
    sig += "v" + std::to_string(i) + ":" + std::to_string(v.label) + ":" +
           v.name + "[" + ExprSig(v.predicate) + "];";
  }
  for (int i = 0; i < p.num_edges(); ++i) {
    const pattern::PatternEdge& e = p.edge(i);
    sig += "e" + std::to_string(i) + ":" + std::to_string(e.label) + ":" +
           std::to_string(e.src) + "->" + std::to_string(e.dst) + ":" +
           e.name + "[" + ExprSig(e.predicate) + "];";
  }
  for (const auto& [a, b] : p.distinct_pairs()) {
    sig += "d" + std::to_string(a) + "!=" + std::to_string(b) + ";";
  }
  sig += "|cols:";
  for (const auto& g : query.graph_projections) {
    sig += g.var + "." + g.column + " AS " + g.output_name + ";";
  }
  sig += "|joins:";
  for (const auto& j : query.joins) {
    sig += j.table + " " + j.alias + " ON " + j.left_column + "=" +
           j.right_column + "[" + ExprSig(j.scan_filter) + "];";
  }
  sig += "|where:" + ExprSig(query.where);
  sig += "|select:";
  for (const auto& [src, out] : query.select) {
    sig += src + " AS " + out + ";";
  }
  sig += "|group:";
  for (const auto& g : query.group_by) sig += g + ";";
  sig += "|agg:";
  for (const auto& a : query.aggregates) {
    sig += std::to_string(static_cast<int>(a.func)) + "(" + a.input_column +
           ") AS " + a.output_name + ";";
  }
  sig += "|order:";
  for (const auto& k : query.order_by) {
    sig += k.column + (k.ascending ? " ASC;" : " DESC;");
  }
  sig += "|limit:" + std::to_string(query.limit);
  return sig;
}

std::unordered_map<int, Value> CollectBoundParams(
    const plan::SpjmQuery& query) {
  std::unordered_map<int, Value> out;
  const pattern::PatternGraph& p = query.pattern;
  for (int i = 0; i < p.num_vertices(); ++i) {
    CollectExprParams(p.vertex(i).predicate, &out);
  }
  for (int i = 0; i < p.num_edges(); ++i) {
    CollectExprParams(p.edge(i).predicate, &out);
  }
  for (const auto& j : query.joins) CollectExprParams(j.scan_filter, &out);
  CollectExprParams(query.where, &out);
  return out;
}

storage::ExprPtr RebindExpr(const storage::ExprPtr& e,
                            const std::unordered_map<int, Value>& params) {
  if (!e) return nullptr;
  return RebuildExpr(e, [&params](const Expr& c) -> ExprPtr {
    if (c.param_slot() >= 0) {
      auto it = params.find(c.param_slot());
      if (it != params.end()) return Expr::Param(c.param_slot(), it->second);
    }
    return c.param_slot() >= 0 ? Expr::Param(c.param_slot(), c.constant())
                               : Expr::Constant(c.constant());
  });
}

std::shared_ptr<const plan::PhysicalOp> PlanCache::Get(const std::string& key,
                                                       uint64_t stats_epoch,
                                                       uint64_t data_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->stats_epoch != stats_epoch ||
      it->second->data_version != data_version) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->plan;
}

void PlanCache::Put(const std::string& key, uint64_t stats_epoch,
                    uint64_t data_version,
                    std::shared_ptr<const plan::PhysicalOp> plan) {
  if (capacity_ == 0 || !plan) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->stats_epoch = stats_epoch;
    it->second->data_version = data_version;
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, stats_epoch, data_version, std::move(plan)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace optimizer
}  // namespace relgo
