#ifndef RELGO_OPTIMIZER_PLAN_CACHE_H_
#define RELGO_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/query_optimizer.h"
#include "plan/physical_plan.h"
#include "plan/spjm_query.h"

namespace relgo {
namespace optimizer {

/// A query template: an SpjmQuery whose eligible constants have been
/// replaced by parameter slots ($0, $1, ...), plus the default value each
/// slot was extracted from. Bind concrete constants with BindTemplate;
/// every binding shares one TemplateSignature, so every binding reuses one
/// cached plan.
struct ParameterizedQuery {
  plan::SpjmQuery query;
  std::vector<Value> defaults;  ///< per-slot values, in slot order
};

/// Extracts a template from `query`: every non-bool, non-null constant in
/// the pattern predicates, join scan filters and WHERE clause becomes a
/// parameter slot (slot order: pattern vertices, pattern edges, joins,
/// where — left to right within each expression). Bool/null constants are
/// structural (e.g. the empty-conjunction TRUE) and stay literal; IN-list
/// members and STARTS WITH / CONTAINS string arguments are part of the
/// template shape and are not slotted.
ParameterizedQuery ParameterizeQuery(const plan::SpjmQuery& query);

/// Binds one constant per slot into a copy of the template. Fails when the
/// arity or any value's LogicalType differs from the template's defaults.
/// Bound constants keep their slot annotation, so the optimizer estimates
/// them value-insensitively — a fresh optimize of the bound query produces
/// the same plan as rebinding the cached template plan.
Result<plan::SpjmQuery> BindTemplate(const ParameterizedQuery& t,
                                     const std::vector<Value>& params);

/// Canonical cache key of (query shape, optimizer mode): renders the
/// pattern, projections, joins, predicates (via Expr::ToTemplateString, so
/// parameter slots erase their bound values), output clause and mode name
/// into one deterministic string. Two bindings of one template map to the
/// same signature; a plain unparameterized query gets a value-rendered
/// signature (exact-match caching).
std::string TemplateSignature(const plan::SpjmQuery& query,
                              OptimizerMode mode);

/// Slot -> currently-bound constant for every parameterized constant in
/// `query`'s expressions; empty for unparameterized queries.
std::unordered_map<int, Value> CollectBoundParams(const plan::SpjmQuery& query);

/// Deep-copies `e`, substituting `params[slot]` at each slotted constant
/// whose slot is present in the map (absent slots keep their value).
/// Resolved column indexes are dropped — callers re-Bind, per the
/// clone-before-Bind discipline.
storage::ExprPtr RebindExpr(const storage::ExprPtr& e,
                            const std::unordered_map<int, Value>& params);

/// Process-wide cache of optimized physical plans, keyed by
/// TemplateSignature and validated against the owning Database's stats
/// epoch and catalog data version. Invalidation is exact, never timed: an
/// entry dies when adaptive feedback taught the estimator something (epoch
/// bump) or the data changed under it (table version bump). Count-based
/// LRU; internally synchronized.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< capacity pressure
    uint64_t invalidations = 0;  ///< stale epoch / data version
    uint64_t Lookups() const { return hits + misses; }
    double HitRate() const {
      return Lookups() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(Lookups());
    }
  };

  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached plan for `key` if present and still valid against
  /// (stats_epoch, data_version); otherwise records a miss. A present but
  /// stale entry is erased and additionally counted as an invalidation.
  std::shared_ptr<const plan::PhysicalOp> Get(const std::string& key,
                                              uint64_t stats_epoch,
                                              uint64_t data_version);

  /// Publishes a plan under `key`. Callers only publish after the plan
  /// executed successfully (the same no-publish-on-failure chokepoint the
  /// scan cache uses), so a cancelled or faulted query never seeds the
  /// cache. Re-publishing an existing key overwrites it.
  void Put(const std::string& key, uint64_t stats_epoch,
           uint64_t data_version,
           std::shared_ptr<const plan::PhysicalOp> plan);

  void Clear();
  Stats stats() const;
  size_t entries() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    uint64_t stats_epoch = 0;
    uint64_t data_version = 0;
    std::shared_ptr<const plan::PhysicalOp> plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_PLAN_CACHE_H_
