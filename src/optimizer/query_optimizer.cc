#include "optimizer/query_optimizer.h"

#include "common/timer.h"
#include "optimizer/cardinality.h"
#include "optimizer/plan_annotator.h"

namespace relgo {
namespace optimizer {

using plan::PhysicalOpPtr;
using plan::SpjmQuery;
using storage::Expr;

const char* ModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kDuckDB:
      return "DuckDB";
    case OptimizerMode::kGRainDB:
      return "GRainDB";
    case OptimizerMode::kUmbraLike:
      return "UmbraPlans";
    case OptimizerMode::kRelGo:
      return "RelGo";
    case OptimizerMode::kRelGoHash:
      return "RelGoHash";
    case OptimizerMode::kRelGoNoEI:
      return "RelGoNoEI";
    case OptimizerMode::kRelGoNoRule:
      return "RelGoNoRule";
    case OptimizerMode::kRelGoNoFuse:
      return "RelGoNoFuse";
    case OptimizerMode::kRelGoLowOrder:
      return "RelGoLowOrd";
    case OptimizerMode::kGdbmsSim:
      return "GdbmsSim";
  }
  return "?";
}

bool ModeUsesIndex(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kDuckDB:
    case OptimizerMode::kRelGoHash:
      return false;
    default:
      return true;
  }
}

Result<OptimizeResult> QueryOptimizer::Optimize(const SpjmQuery& query,
                                                OptimizerMode mode) const {
  Timer timer;
  OptimizeResult result;
  switch (mode) {
    case OptimizerMode::kDuckDB: {
      RelOptimizerOptions options;
      options.use_graph_index = false;
      RELGO_ASSIGN_OR_RETURN(result.plan,
                             relational_optimizer_.PlanAgnostic(query,
                                                                options));
      break;
    }
    case OptimizerMode::kGRainDB: {
      RelOptimizerOptions options;
      options.use_graph_index = true;
      RELGO_ASSIGN_OR_RETURN(result.plan,
                             relational_optimizer_.PlanAgnostic(query,
                                                                options));
      break;
    }
    case OptimizerMode::kUmbraLike: {
      RelOptimizerOptions options;
      options.use_graph_index = true;
      options.sampled_selectivity = true;
      RELGO_ASSIGN_OR_RETURN(result.plan,
                             relational_optimizer_.PlanAgnostic(query,
                                                                options));
      break;
    }
    case OptimizerMode::kRelGo:
    case OptimizerMode::kRelGoHash:
    case OptimizerMode::kRelGoNoEI:
    case OptimizerMode::kRelGoNoRule:
    case OptimizerMode::kRelGoNoFuse:
    case OptimizerMode::kRelGoLowOrder: {
      RELGO_ASSIGN_OR_RETURN(result.plan, OptimizeConverged(query, mode));
      break;
    }
    case OptimizerMode::kGdbmsSim: {
      RELGO_ASSIGN_OR_RETURN(result.plan, OptimizeGdbmsSim(query));
      break;
    }
  }
  result.optimization_ms = timer.ElapsedMillis();
  // EXPLAIN/Q-error bookkeeping, deliberately outside the timed window:
  // it is not planning work (GdbmsSim in particular plans nothing, so its
  // reported optimization time must not include estimator sampling).
  if (mode == OptimizerMode::kGdbmsSim) {
    AnnotateNaiveMatch(query, result.plan.get());
  }
  // Every emission path leaves some nodes (output-clause post-ops, fixed
  // join chains) without estimates; fill them so EXPLAIN/EXPLAIN ANALYZE
  // never render the -1 sentinel and Q-error is defined plan-wide.
  AnnotatePlanEstimates(result.plan.get(), catalog_, tstats_);
  return result;
}

void QueryOptimizer::AnnotateNaiveMatch(const SpjmQuery& query,
                                        plan::PhysicalOp* op) const {
  if (op->kind == plan::OpKind::kNaiveMatch) {
    CardinalityEstimator estimator(&query.pattern, glogue_, gstats_,
                                   mapping_, catalog_, tstats_, {},
                                   feedback_);
    pattern::VSet all = query.pattern.AllVertices();
    op->estimated_cardinality = estimator.Estimate(all);
    op->feedback_key = estimator.MaskKey(all);
    return;
  }
  for (auto& child : op->children) AnnotateNaiveMatch(query, child.get());
}

Result<PhysicalOpPtr> QueryOptimizer::OptimizeConverged(
    SpjmQuery query, OptimizerMode mode) const {
  bool rules = mode != OptimizerMode::kRelGoNoRule;
  bool fuse = rules && mode != OptimizerMode::kRelGoNoFuse;

  // Heuristic rules run before graph optimization so pushed constraints
  // participate in cost recalculation (Sec 4.2.3).
  if (rules) {
    ApplyFilterIntoMatchRule(&query);
    if (fuse) ApplyTrimRule(&query);
  }
  std::set<int> needed_edges = NeededEdgeBindings(query);

  GraphOptimizerOptions gopts;
  gopts.use_index = mode != OptimizerMode::kRelGoHash;
  gopts.use_expand_intersect = mode != OptimizerMode::kRelGoNoEI &&
                               mode != OptimizerMode::kRelGoHash;
  gopts.fuse_expand = fuse;
  gopts.use_high_order = mode != OptimizerMode::kRelGoLowOrder;
  RELGO_ASSIGN_OR_RETURN(
      auto graph_plan,
      graph_optimizer_.Optimize(query.pattern, needed_edges, gopts));

  RelOptimizerOptions ropts;
  ropts.use_graph_index = mode != OptimizerMode::kRelGoHash;
  return relational_optimizer_.PlanWithGraphLeaf(query, std::move(graph_plan),
                                                 ropts);
}

Result<PhysicalOpPtr> QueryOptimizer::OptimizeGdbmsSim(
    SpjmQuery query) const {
  // A prototype GDBMS pushes filters into matching but explores no join
  // orders: the pattern runs through the backtracking matcher as-is.
  ApplyFilterIntoMatchRule(&query);
  ApplyTrimRule(&query);

  auto match = std::make_unique<plan::PhysNaiveMatch>();
  match->pattern = query.pattern;

  auto sgt = std::make_unique<plan::PhysScanGraphTable>();
  sgt->projections = query.graph_projections;
  for (int v = 0; v < query.pattern.num_vertices(); ++v) {
    sgt->vertex_var_labels.emplace_back(query.pattern.VertexVarName(v),
                                        query.pattern.vertex(v).label);
  }
  for (int e = 0; e < query.pattern.num_edges(); ++e) {
    sgt->edge_var_labels.emplace_back(query.pattern.EdgeVarName(e),
                                      query.pattern.edge(e).label);
  }
  sgt->children.push_back(std::move(match));
  PhysicalOpPtr root = std::move(sgt);

  // Relational joins in declaration order, left-deep, hash only.
  for (const auto& j : query.joins) {
    auto scan = std::make_unique<plan::PhysScanTable>();
    scan->table = j.table;
    scan->alias = j.alias;
    scan->filter = j.scan_filter;
    auto join = std::make_unique<plan::PhysHashJoin>();
    join->left_keys = {j.left_column};
    join->right_keys = {j.alias + "." + j.right_column};
    join->children.push_back(std::move(root));
    join->children.push_back(std::move(scan));
    root = std::move(join);
  }
  if (query.where) {
    auto filter = std::make_unique<plan::PhysFilter>();
    filter->predicate = query.where;
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }
  if (!query.aggregates.empty()) {
    auto agg = std::make_unique<plan::PhysHashAggregate>();
    agg->group_by = query.group_by;
    agg->aggregates = query.aggregates;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
  }
  if (!query.select.empty()) {
    auto proj = std::make_unique<plan::PhysProject>();
    proj->columns = query.select;
    proj->children.push_back(std::move(root));
    root = std::move(proj);
  }
  if (!query.order_by.empty()) {
    auto order = std::make_unique<plan::PhysOrderBy>();
    order->keys = query.order_by;
    order->children.push_back(std::move(root));
    root = std::move(order);
  }
  if (query.limit >= 0) {
    auto limit = std::make_unique<plan::PhysLimit>();
    limit->limit = query.limit;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }
  return root;
}

}  // namespace optimizer
}  // namespace relgo
