#ifndef RELGO_OPTIMIZER_QUERY_OPTIMIZER_H_
#define RELGO_OPTIMIZER_QUERY_OPTIMIZER_H_

#include "optimizer/glogue.h"
#include "optimizer/graph_optimizer.h"
#include "optimizer/relational_optimizer.h"
#include "optimizer/rules.h"

namespace relgo {
namespace optimizer {

/// The systems compared in the paper's evaluation (Sec 5.1), realized as
/// optimizer modes over one shared storage/execution substrate:
///
///  * kDuckDB     — graph-agnostic transformation + DP join ordering with
///                  heuristic selectivities, hash joins only.
///  * kGRainDB    — the same optimizer, but predefined (rid) joins are
///                  substituted at emission wherever the order allows.
///  * kUmbraLike  — graph-agnostic with sampling-based selectivities and
///                  rid joins: an advanced relational optimizer that still
///                  lacks the graph view (wco plans never materialize, as
///                  observed for Umbra on these workloads).
///  * kRelGo      — the converged optimizer: heuristic rules, cost-based
///                  graph plan (GLogue), SCAN_GRAPH_TABLE bridging, outer
///                  relational DP.
///  * kRelGoHash  — RelGo's converged join ordering, index bypassed
///                  (every graph op lowered to hash joins).
///  * kRelGoNoEI  — RelGo without EXPAND_INTERSECT (stars become
///                  "traditional multiple joins").
///  * kRelGoNoRule— RelGo without FilterIntoMatchRule / TrimAndFuseRule.
///  * kGdbmsSim   — a prototype-GDBMS stand-in (the paper used Kùzu):
///                  backtracking matcher, fixed order, no cost model.
enum class OptimizerMode {
  kDuckDB,
  kGRainDB,
  kUmbraLike,
  kRelGo,
  kRelGoHash,
  kRelGoNoEI,
  kRelGoNoRule,
  kRelGoNoFuse,    ///< FilterIntoMatchRule on, TrimAndFuseRule off (Fig 8)
  kRelGoLowOrder,  ///< RelGo restricted to low-order statistics (Sec 4.3)
  kGdbmsSim,
};

const char* ModeName(OptimizerMode mode);

/// Whether plans from this mode require the graph index at execution.
bool ModeUsesIndex(OptimizerMode mode);

struct OptimizeResult {
  plan::PhysicalOpPtr plan;
  double optimization_ms = 0.0;
};

/// Front door of the optimization framework: applies the mode's rule set,
/// optimizes the matching operator, and plans the full SPJM query.
class QueryOptimizer {
 public:
  /// `feedback` (optional) is the adaptive-statistics sink threaded into
  /// both sub-optimizers; estimates consult its corrections (a no-op
  /// until Database absorbs a profiled run with adaptive_stats on).
  QueryOptimizer(const storage::Catalog* catalog,
                 const graph::RgMapping* mapping,
                 const graph::GraphStats* gstats, const Glogue* glogue,
                 const TableStats* tstats,
                 const StatsFeedback* feedback = nullptr)
      : catalog_(catalog),
        mapping_(mapping),
        gstats_(gstats),
        glogue_(glogue),
        tstats_(tstats),
        feedback_(feedback),
        graph_optimizer_(mapping, catalog, gstats, glogue, tstats, feedback),
        relational_optimizer_(catalog, mapping, tstats, feedback) {}

  Result<OptimizeResult> Optimize(const plan::SpjmQuery& query,
                                  OptimizerMode mode) const;

 private:
  Result<plan::PhysicalOpPtr> OptimizeConverged(plan::SpjmQuery query,
                                                OptimizerMode mode) const;
  Result<plan::PhysicalOpPtr> OptimizeGdbmsSim(plan::SpjmQuery query) const;
  /// Prices the NAIVE_MATCH leaf of a GdbmsSim plan (EXPLAIN/Q-error
  /// bookkeeping; the mode itself plans nothing, so this runs outside the
  /// timed optimization window).
  void AnnotateNaiveMatch(const plan::SpjmQuery& query,
                          plan::PhysicalOp* op) const;

  const storage::Catalog* catalog_;
  const graph::RgMapping* mapping_;
  const graph::GraphStats* gstats_;
  const Glogue* glogue_;
  const TableStats* tstats_;
  const StatsFeedback* feedback_;
  GraphOptimizer graph_optimizer_;
  RelationalOptimizer relational_optimizer_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_QUERY_OPTIMIZER_H_
