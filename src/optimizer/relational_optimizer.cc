#include "optimizer/relational_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_set>

namespace relgo {
namespace optimizer {

using graph::Direction;
using plan::PhysicalOp;
using plan::PhysicalOpPtr;
using plan::SpjmQuery;
using storage::Expr;
using storage::ExprPtr;

namespace {

/// Strips "alias." from a qualified name when it carries that prefix.
bool StripPrefix(const std::string& qualified, const std::string& alias,
                 std::string* raw) {
  if (qualified.size() > alias.size() + 1 &&
      qualified.compare(0, alias.size(), alias) == 0 &&
      qualified[alias.size()] == '.') {
    *raw = qualified.substr(alias.size() + 1);
    return true;
  }
  return false;
}

/// Resolves qualified column names to (base table, raw column) for NDV and
/// selectivity estimation; understands both scan aliases and graph-table
/// projections.
class ColumnResolver {
 public:
  ColumnResolver(const std::vector<RelNode>* nodes,
                 const graph::RgMapping* mapping)
      : nodes_(nodes), mapping_(mapping) {}

  /// Returns true and fills table/raw column when `qualified` is traceable
  /// to a base table column of node `node`.
  bool Resolve(int node, const std::string& qualified, std::string* table,
               std::string* raw) const {
    const RelNode& n = (*nodes_)[node];
    if (n.kind == RelNode::Kind::kTableScan) {
      if (!StripPrefix(qualified, n.alias, raw)) return false;
      *table = n.table;
      return true;
    }
    for (const auto& proj : n.projections) {
      if (proj.output_name != qualified) continue;
      for (const auto& [var, label] : n.vertex_var_labels) {
        if (var == proj.var) {
          *table = mapping_->vertex_mapping(label).table;
          *raw = proj.column;
          return true;
        }
      }
      for (const auto& [var, label] : n.edge_var_labels) {
        if (var == proj.var) {
          *table = mapping_->edge_mapping(label).table;
          *raw = proj.column;
          return true;
        }
      }
    }
    return false;
  }

  /// Node index owning the qualified column; -1 when unknown.
  int Owner(const std::string& qualified) const {
    for (size_t i = 0; i < nodes_->size(); ++i) {
      const auto& cols = (*nodes_)[i].output_columns;
      if (std::find(cols.begin(), cols.end(), qualified) != cols.end()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

 private:
  const std::vector<RelNode>* nodes_;
  const graph::RgMapping* mapping_;
};

/// Selectivity of a predicate over a node's output, resolving column
/// references through the node (graph-table aware).
double NodePredicateSelectivity(const RelNode& node, int node_index,
                                const Expr& e, const ColumnResolver& resolver,
                                const TableStats& stats) {
  using Kind = Expr::Kind;
  switch (e.kind()) {
    case Kind::kCompare: {
      const auto& lhs = e.children()[0];
      const auto& rhs = e.children()[1];
      const Expr* col = nullptr;
      if (lhs->kind() == Kind::kColumnRef && rhs->kind() == Kind::kConstant) {
        col = lhs.get();
      } else if (rhs->kind() == Kind::kColumnRef &&
                 lhs->kind() == Kind::kConstant) {
        col = rhs.get();
      }
      if (e.compare_op() == storage::CompareOp::kEq && col != nullptr) {
        std::string table, raw;
        if (resolver.Resolve(node_index, col->column_name(), &table, &raw)) {
          return std::min(1.0, 1.0 / stats.DistinctCount(table, raw));
        }
        return 0.01;
      }
      return 1.0 / 3.0;
    }
    case Kind::kAnd:
      return NodePredicateSelectivity(node, node_index, *e.children()[0],
                                      resolver, stats) *
             NodePredicateSelectivity(node, node_index, *e.children()[1],
                                      resolver, stats);
    case Kind::kOr: {
      double a = NodePredicateSelectivity(node, node_index, *e.children()[0],
                                          resolver, stats);
      double b = NodePredicateSelectivity(node, node_index, *e.children()[1],
                                          resolver, stats);
      return std::min(1.0, a + b - a * b);
    }
    case Kind::kNot:
      return 1.0 - NodePredicateSelectivity(node, node_index,
                                            *e.children()[0], resolver, stats);
    case Kind::kStartsWith:
      return 0.05;
    case Kind::kContains:
      return 0.1;
    case Kind::kInList:
      return std::min(1.0, 0.01 * static_cast<double>(e.in_list().size()));
    default:
      return 0.5;
  }
}

/// Join-order search (DPsub with C_out, greedy fallback) + emission.
class JoinPlanner {
 public:
  JoinPlanner(std::vector<RelNode> nodes, std::vector<JoinEdgeSpec> edges,
              const RelOptimizerOptions& options, const TableStats* stats,
              const graph::RgMapping* mapping,
              const storage::Catalog* catalog,
              const StatsFeedback* feedback)
      : nodes_(std::move(nodes)),
        edges_(std::move(edges)),
        options_(options),
        stats_(stats),
        catalog_(catalog),
        feedback_(feedback),
        has_corrections_(feedback != nullptr && !feedback->empty()),
        resolver_(&nodes_, mapping) {}

  Status Prepare(const std::vector<std::string>& used_columns) {
    used_columns_ = used_columns;
    node_cards_.resize(nodes_.size());
    node_keys_.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      RELGO_RETURN_NOT_OK(PrepareNode(static_cast<int>(i)));
    }
    return Status::OK();
  }

  Result<PhysicalOpPtr> BuildJoinTree() {
    size_t n = nodes_.size();
    if (n == 1) return EmitLeaf(0);
    if (static_cast<int>(n) <= options_.dp_max_relations) {
      RELGO_RETURN_NOT_OK(RunDp());
      uint32_t all = (1u << n) - 1;
      if (!plans_.count(all)) {
        return Status::InvalidArgument(
            "join graph is disconnected (cross products unsupported)");
      }
      return EmitMask(all);
    }
    return BuildGreedy();
  }

 private:
  struct DpEntry {
    double cost = std::numeric_limits<double>::infinity();
    uint32_t split = 0;  // s1 of the winning (s1, s2) pair; 0 == leaf
  };

  Status PrepareNode(int i) {
    RelNode& node = nodes_[i];
    if (node.kind == RelNode::Kind::kTableScan) {
      RELGO_ASSIGN_OR_RETURN(auto table, catalog_->GetTable(node.table));
      double base = static_cast<double>(table->num_rows());
      double sel = 1.0;
      if (node.filter) {
        // CorrectedSelectivity layers the adaptive feedback factor for
        // this (table, predicate) over the mode's base estimator.
        sel = stats_->CorrectedSelectivity(*table, node.filter,
                                           options_.sampled_selectivity);
        node_keys_[i] = ScanFeedbackKey(node.table, node.filter,
                                        options_.sampled_selectivity);
      }
      node_cards_[i] = std::max(base * sel, 1e-3);
      // Fill output columns (pruned to used + join keys + $rid).
      node.output_columns.clear();
      bool emit_rid = NeedsRowId(i);
      if (emit_rid) node.output_columns.push_back(node.alias + ".$rid");
      for (const auto& def : table->schema().columns()) {
        std::string qualified = node.alias + "." + def.name;
        if (IsColumnUsed(qualified)) node.output_columns.push_back(qualified);
      }
    } else {
      double sel = 1.0;
      if (node.post_filter) {
        sel = NodePredicateSelectivity(node, i, *node.post_filter, resolver_,
                                       *stats_);
      }
      node_cards_[i] = std::max(node.graph_cardinality * sel, 1e-3);
      node.output_columns.clear();
      for (const auto& proj : node.projections) {
        node.output_columns.push_back(proj.output_name);
      }
    }
    return Status::OK();
  }

  bool NeedsRowId(int i) const {
    if (!options_.use_graph_index) return false;
    for (const auto& e : edges_) {
      if (e.edge_label >= 0 && (e.edge_node == i || e.vertex_node == i)) {
        return true;
      }
    }
    return false;
  }

  bool IsColumnUsed(const std::string& qualified) const {
    if (std::find(used_columns_.begin(), used_columns_.end(), qualified) !=
        used_columns_.end()) {
      return true;
    }
    for (const auto& e : edges_) {
      if (e.a_col == qualified || e.b_col == qualified) return true;
    }
    return false;
  }

  double EdgeSelectivity(const JoinEdgeSpec& e) const {
    double ndv_a = 1.0, ndv_b = 1.0;
    std::string table, raw;
    if (resolver_.Resolve(e.a, e.a_col, &table, &raw)) {
      ndv_a = stats_->DistinctCount(table, raw);
    }
    if (resolver_.Resolve(e.b, e.b_col, &table, &raw)) {
      ndv_b = stats_->DistinctCount(table, raw);
    }
    return 1.0 / std::max({ndv_a, ndv_b, 1.0});
  }

  double MaskCard(uint32_t mask) {
    auto it = card_memo_.find(mask);
    if (it != card_memo_.end()) return it->second;
    double card = 1.0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (mask >> i & 1u) card *= node_cards_[i];
    }
    for (const auto& e : edges_) {
      if ((mask >> e.a & 1u) && (mask >> e.b & 1u)) {
        card *= EdgeSelectivity(e);
      }
    }
    // Adaptive correction of the join-output estimate for this mask
    // signature (covers join-key distinct-count errors, which the
    // independence model above cannot see). Leaves are corrected at the
    // scan level already; the emptiness snapshot keeps the non-adaptive
    // DP free of signature work.
    if (has_corrections_ && __builtin_popcount(mask) >= 2) {
      double factor = feedback_->Factor(MaskKey(mask));
      if (factor != 1.0) card *= factor;
    }
    card = std::max(card, 1e-3);
    card_memo_[mask] = card;
    return card;
  }

  /// Stable feedback signature of a join-graph mask: sorted leaf
  /// signatures (base table + pushed predicate; the graph leaf by its
  /// residual filter) plus sorted join conditions internal to the mask,
  /// resolved to base-table columns where possible. Structurally
  /// symmetric sub-joins deliberately share one key, like canonical
  /// pattern codes — their true cardinalities are equal.
  const std::string& MaskKey(uint32_t mask) {
    auto it = mask_key_memo_.find(mask);
    if (it != mask_key_memo_.end()) return it->second;
    std::vector<std::string> leaves, conds;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!(mask >> i & 1u)) continue;
      const RelNode& n = nodes_[i];
      if (n.kind == RelNode::Kind::kTableScan) {
        leaves.push_back("t:" + n.table + ":" +
                         (n.filter ? n.filter->ToTemplateString() : ""));
      } else {
        leaves.push_back(
            "g:" + n.graph_signature + ":" +
            (n.post_filter ? n.post_filter->ToTemplateString() : ""));
      }
    }
    for (const auto& e : edges_) {
      if (!(mask >> e.a & 1u) || !(mask >> e.b & 1u)) continue;
      std::string table, raw;
      std::string sa = resolver_.Resolve(e.a, e.a_col, &table, &raw)
                           ? table + "." + raw
                           : e.a_col;
      std::string sb = resolver_.Resolve(e.b, e.b_col, &table, &raw)
                           ? table + "." + raw
                           : e.b_col;
      conds.push_back(sa <= sb ? sa + "=" + sb : sb + "=" + sa);
    }
    std::sort(leaves.begin(), leaves.end());
    std::sort(conds.begin(), conds.end());
    std::string key = "rel|";
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (i) key += ",";
      key += leaves[i];
    }
    key += "|";
    for (size_t i = 0; i < conds.size(); ++i) {
      if (i) key += ",";
      key += conds[i];
    }
    return mask_key_memo_[mask] = std::move(key);
  }

  bool Joinable(uint32_t s1, uint32_t s2) const {
    for (const auto& e : edges_) {
      bool a1 = s1 >> e.a & 1u, b1 = s1 >> e.b & 1u;
      bool a2 = s2 >> e.a & 1u, b2 = s2 >> e.b & 1u;
      if ((a1 && b2) || (b1 && a2)) return true;
    }
    return false;
  }

  Status RunDp() {
    size_t n = nodes_.size();
    uint32_t all = (1u << n) - 1;
    for (size_t i = 0; i < n; ++i) {
      DpEntry leaf;
      // Leaf constants (including the graph sub-plan's internal cost) are
      // shared by every complete plan, so they never change the argmin —
      // but they make the reported subtree costs meaningful.
      leaf.cost = LeafCost(static_cast<int>(i));
      leaf.split = 0;
      plans_[1u << i] = leaf;
    }
    for (uint32_t mask = 1; mask <= all; ++mask) {
      if (__builtin_popcount(mask) < 2) continue;
      DpEntry best;
      for (uint32_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
        uint32_t s2 = mask ^ s1;
        if (s1 > s2) continue;  // each unordered split once
        auto it1 = plans_.find(s1);
        auto it2 = plans_.find(s2);
        if (it1 == plans_.end() || it2 == plans_.end()) continue;
        if (!Joinable(s1, s2)) continue;
        double cost = it1->second.cost + it2->second.cost + MaskCard(mask);
        if (cost < best.cost) {
          best.cost = cost;
          best.split = s1;
        }
      }
      if (std::isfinite(best.cost)) plans_[mask] = best;
    }
    return Status::OK();
  }

  Result<PhysicalOpPtr> BuildGreedy() {
    // Each partition: (mask, plan, card, accumulated C_out cost).
    struct Part {
      uint32_t mask;
      PhysicalOpPtr op;
      double card;
      double cost;
    };
    std::vector<Part> parts;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      RELGO_ASSIGN_OR_RETURN(auto leaf, EmitLeaf(static_cast<int>(i)));
      parts.push_back({1u << i, std::move(leaf), node_cards_[i],
                       LeafCost(static_cast<int>(i))});
    }
    while (parts.size() > 1) {
      double best_card = std::numeric_limits<double>::infinity();
      int bi = -1, bj = -1;
      for (size_t i = 0; i < parts.size(); ++i) {
        for (size_t j = i + 1; j < parts.size(); ++j) {
          if (!Joinable(parts[i].mask, parts[j].mask)) continue;
          double card = MaskCard(parts[i].mask | parts[j].mask);
          if (card < best_card) {
            best_card = card;
            bi = static_cast<int>(i);
            bj = static_cast<int>(j);
          }
        }
      }
      if (bi < 0) {
        return Status::InvalidArgument(
            "join graph is disconnected (cross products unsupported)");
      }
      double joined_cost = parts[bi].cost + parts[bj].cost + best_card;
      RELGO_ASSIGN_OR_RETURN(
          auto joined,
          EmitJoin(parts[bi].mask, parts[bj].mask, std::move(parts[bi].op),
                   std::move(parts[bj].op), joined_cost));
      parts[bi].mask |= parts[bj].mask;
      parts[bi].op = std::move(joined);
      parts[bi].card = best_card;
      parts[bi].cost = joined_cost;
      parts.erase(parts.begin() + bj);
    }
    return std::move(parts[0].op);
  }

  /// C_out cost of one leaf: its (filtered) cardinality, plus the graph
  /// optimizer's internal plan cost for the SCAN_GRAPH_TABLE leaf.
  double LeafCost(int i) const {
    const RelNode& node = nodes_[i];
    double cost = node_cards_[i];
    if (node.kind == RelNode::Kind::kGraphTable) cost += node.graph_cost;
    return cost;
  }

  Result<PhysicalOpPtr> EmitLeaf(int i) {
    RelNode& node = nodes_[i];
    if (node.kind == RelNode::Kind::kTableScan) {
      auto scan = std::make_unique<plan::PhysScanTable>();
      scan->table = node.table;
      scan->alias = node.alias;
      scan->filter = node.filter;
      scan->emit_rowid = NeedsRowId(i);
      for (const auto& qualified : node.output_columns) {
        std::string raw;
        if (StripPrefix(qualified, node.alias, &raw) && raw != "$rid") {
          scan->projected_columns.push_back(raw);
        }
      }
      scan->estimated_cardinality = node_cards_[i];
      scan->estimated_cost = node_cards_[i];
      scan->feedback_key = node_keys_[i];
      return PhysicalOpPtr(std::move(scan));
    }
    auto sgt = std::make_unique<plan::PhysScanGraphTable>();
    sgt->projections = node.projections;
    sgt->vertex_var_labels = node.vertex_var_labels;
    sgt->edge_var_labels = node.edge_var_labels;
    sgt->children.push_back(std::move(node.graph_root));
    sgt->estimated_cardinality = node.graph_cardinality;
    sgt->estimated_cost = node.graph_cost + node.graph_cardinality;
    PhysicalOpPtr op = std::move(sgt);
    if (node.post_filter) {
      auto filter = std::make_unique<plan::PhysFilter>();
      filter->predicate = node.post_filter;
      filter->children.push_back(std::move(op));
      filter->estimated_cardinality = node_cards_[i];
      filter->estimated_cost = LeafCost(i);
      op = std::move(filter);
    }
    return op;
  }

  Result<PhysicalOpPtr> EmitMask(uint32_t mask) {
    const DpEntry& entry = plans_.at(mask);
    if (entry.split == 0) {
      return EmitLeaf(__builtin_ctz(mask));
    }
    uint32_t s1 = entry.split, s2 = mask ^ entry.split;
    RELGO_ASSIGN_OR_RETURN(auto left, EmitMask(s1));
    RELGO_ASSIGN_OR_RETURN(auto right, EmitMask(s2));
    return EmitJoin(s1, s2, std::move(left), std::move(right), entry.cost);
  }

  /// Crossing join conditions between two masks, oriented (s1 col, s2 col).
  std::vector<std::pair<const JoinEdgeSpec*, bool>> CrossingEdges(
      uint32_t s1, uint32_t s2) const {
    std::vector<std::pair<const JoinEdgeSpec*, bool>> out;
    for (const auto& e : edges_) {
      bool a1 = s1 >> e.a & 1u, b1 = s1 >> e.b & 1u;
      bool a2 = s2 >> e.a & 1u, b2 = s2 >> e.b & 1u;
      if (a1 && b2) out.emplace_back(&e, false);   // a-side on s1
      if (b1 && a2) out.emplace_back(&e, true);    // b-side on s1
    }
    return out;
  }

  Result<PhysicalOpPtr> EmitJoin(uint32_t s1, uint32_t s2, PhysicalOpPtr left,
                                 PhysicalOpPtr right, double subtree_cost) {
    auto crossing = CrossingEdges(s1, s2);
    if (crossing.empty()) return Status::Internal("no crossing join edges");
    double out_card = MaskCard(s1 | s2);

    // GRainDB-style predefined join: applicable when one side is a single
    // base-table leaf and the crossing condition is an EVJoin whose
    // counterpart lives on the other side. Join-result x join-result pairs
    // fall back to hash joins — exactly the missed-index case of Fig 12.
    // When both orientations are possible (leaf x leaf), the cheaper side
    // drives (streams rids) and the larger side is absorbed as the rid
    // target, mirroring GRainDB's sjoin semantics.
    if (options_.use_graph_index) {
      bool prefer_absorb_s2 = MaskCard(s1) <= MaskCard(s2);
      for (size_t ci = 0; ci < crossing.size(); ++ci) {
        const JoinEdgeSpec& e = *crossing[ci].first;
        if (e.edge_label < 0) continue;
        bool s2_is_leaf = __builtin_popcount(s2) == 1;
        bool s1_is_leaf = __builtin_popcount(s1) == 1;
        int s2_node = s2_is_leaf ? __builtin_ctz(s2) : -1;
        int s1_node = s1_is_leaf ? __builtin_ctz(s1) : -1;

        // Each candidate: absorb a leaf node, driving from the other side.
        struct Candidate {
          int absorbed;
          bool vertex_fetch;
          bool child_is_left;
        };
        std::vector<Candidate> candidates;
        if (s2_is_leaf && s2_node == e.vertex_node &&
            nodes_[e.vertex_node].kind == RelNode::Kind::kTableScan &&
            (s1 >> e.edge_node & 1u)) {
          candidates.push_back({e.vertex_node, true, true});
        }
        if (s1_is_leaf && s1_node == e.vertex_node &&
            nodes_[e.vertex_node].kind == RelNode::Kind::kTableScan &&
            (s2 >> e.edge_node & 1u)) {
          candidates.push_back({e.vertex_node, true, false});
        }
        if (s2_is_leaf && s2_node == e.edge_node &&
            nodes_[e.edge_node].kind == RelNode::Kind::kTableScan &&
            (s1 >> e.vertex_node & 1u)) {
          candidates.push_back({e.edge_node, false, true});
        }
        if (s1_is_leaf && s1_node == e.edge_node &&
            nodes_[e.edge_node].kind == RelNode::Kind::kTableScan &&
            (s2 >> e.vertex_node & 1u)) {
          candidates.push_back({e.edge_node, false, false});
        }
        if (candidates.empty()) continue;
        // Prefer absorbing the side the cost model thinks is larger.
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](const Candidate& a, const Candidate& b) {
                           bool a_pref = a.child_is_left == prefer_absorb_s2;
                           bool b_pref = b.child_is_left == prefer_absorb_s2;
                           return a_pref > b_pref;
                         });
        int absorbed = candidates[0].absorbed;
        bool vertex_fetch = candidates[0].vertex_fetch;
        PhysicalOpPtr child = candidates[0].child_is_left ? std::move(left)
                                                          : std::move(right);

        RelNode& anode = nodes_[absorbed];
        PhysicalOpPtr op;
        if (vertex_fetch) {
          auto rj = std::make_unique<plan::PhysRidLookupJoin>();
          rj->edge_label = e.edge_label;
          rj->dir = e.vertex_side;
          rj->edge_rowid_column =
              nodes_[e.edge_node].alias + ".$rid";
          rj->vertex_alias = anode.alias;
          rj->vertex_filter = anode.filter;
          rj->emit_vertex_rowid = NeedsRowId(absorbed);
          for (const auto& qualified : anode.output_columns) {
            std::string raw;
            if (StripPrefix(qualified, anode.alias, &raw) && raw != "$rid") {
              rj->vertex_columns.push_back(raw);
            }
          }
          rj->children.push_back(std::move(child));
          rj->estimated_cardinality = out_card;
          rj->estimated_cost = subtree_cost;
          op = std::move(rj);
        } else {
          auto rj = std::make_unique<plan::PhysRidExpandJoin>();
          rj->edge_label = e.edge_label;
          rj->dir = e.vertex_side;
          rj->vertex_rowid_column = nodes_[e.vertex_node].alias + ".$rid";
          rj->edge_alias = anode.alias;
          rj->edge_filter = anode.filter;
          rj->emit_edge_rowid = NeedsRowId(absorbed);
          for (const auto& qualified : anode.output_columns) {
            std::string raw;
            if (StripPrefix(qualified, anode.alias, &raw) && raw != "$rid") {
              rj->edge_columns.push_back(raw);
            }
          }
          rj->children.push_back(std::move(child));
          rj->estimated_cardinality = out_card;
          rj->estimated_cost = subtree_cost;
          op = std::move(rj);
        }
        // Remaining crossing conditions become a residual filter.
        std::vector<ExprPtr> residual;
        for (size_t cj = 0; cj < crossing.size(); ++cj) {
          if (cj == ci) continue;
          const JoinEdgeSpec& r = *crossing[cj].first;
          residual.push_back(Expr::ColumnsEq(r.a_col, r.b_col));
        }
        if (!residual.empty()) {
          auto filter = std::make_unique<plan::PhysFilter>();
          filter->predicate = Expr::And(residual);
          filter->children.push_back(std::move(op));
          filter->estimated_cardinality = out_card;
          filter->estimated_cost = subtree_cost;
          op = std::move(filter);
        }
        // The join's topmost node (after any residual filter) produces
        // the mask's rows — stamp the mask signature for feedback.
        op->feedback_key = MaskKey(s1 | s2);
        return op;
      }
    }

    // Hash join on all crossing conditions.
    auto hj = std::make_unique<plan::PhysHashJoin>();
    for (const auto& [e, flipped] : crossing) {
      hj->left_keys.push_back(flipped ? e->b_col : e->a_col);
      hj->right_keys.push_back(flipped ? e->a_col : e->b_col);
    }
    hj->children.push_back(std::move(left));
    hj->children.push_back(std::move(right));
    hj->estimated_cardinality = out_card;
    hj->estimated_cost = subtree_cost;
    hj->feedback_key = MaskKey(s1 | s2);
    return PhysicalOpPtr(std::move(hj));
  }

  std::vector<RelNode> nodes_;
  std::vector<JoinEdgeSpec> edges_;
  RelOptimizerOptions options_;
  const TableStats* stats_;
  const storage::Catalog* catalog_;
  const StatsFeedback* feedback_;
  bool has_corrections_;  ///< feedback non-empty at planner construction
  ColumnResolver resolver_;
  std::vector<std::string> used_columns_;
  std::vector<double> node_cards_;
  std::vector<std::string> node_keys_;  ///< scan feedback keys per leaf
  std::unordered_map<uint32_t, DpEntry> plans_;
  std::unordered_map<uint32_t, double> card_memo_;
  std::unordered_map<uint32_t, std::string> mask_key_memo_;
};

/// Collects every qualified column the output clause references.
std::vector<std::string> CollectUsedColumns(
    const SpjmQuery& query, const std::vector<ExprPtr>& residual) {
  std::vector<std::string> used;
  auto add_expr = [&](const ExprPtr& e) {
    if (e) e->CollectColumns(&used);
  };
  for (const auto& [src, _] : query.select) used.push_back(src);
  for (const auto& g : query.group_by) used.push_back(g);
  for (const auto& a : query.aggregates) {
    if (!a.input_column.empty()) used.push_back(a.input_column);
  }
  for (const auto& k : query.order_by) used.push_back(k.column);
  for (const auto& j : query.joins) used.push_back(j.left_column);
  for (const auto& e : residual) add_expr(e);
  return used;
}

/// Appends the SPJ-side relational joins of the query as join-graph nodes.
Status AppendRelationalJoins(const SpjmQuery& query,
                             const graph::RgMapping* mapping,
                             std::vector<RelNode>* nodes,
                             std::vector<JoinEdgeSpec>* edges) {
  (void)mapping;
  for (const auto& j : query.joins) {
    RelNode node;
    node.kind = RelNode::Kind::kTableScan;
    node.alias = j.alias;
    node.table = j.table;
    node.filter = j.scan_filter;
    int b = static_cast<int>(nodes->size());
    nodes->push_back(std::move(node));

    // Resolve the owner of the left column among all earlier nodes.
    int owner = -1;
    for (int i = 0; i < b; ++i) {
      const RelNode& n = (*nodes)[i];
      if (n.kind == RelNode::Kind::kTableScan) {
        std::string raw;
        if (StripPrefix(j.left_column, n.alias, &raw)) owner = i;
      } else {
        for (const auto& proj : n.projections) {
          if (proj.output_name == j.left_column) owner = i;
        }
      }
    }
    if (owner < 0) {
      return Status::InvalidArgument("join column '" + j.left_column +
                                     "' does not resolve to any input");
    }
    JoinEdgeSpec spec;
    spec.a = owner;
    spec.b = b;
    spec.a_col = j.left_column;
    spec.b_col = j.alias + "." + j.right_column;
    edges->push_back(std::move(spec));
  }
  return Status::OK();
}

/// Rename map from custom pi-hat output names back to "var.column"
/// defaults, used by the flattened (graph-agnostic) path.
std::unordered_map<std::string, std::string> ProjectionRenames(
    const SpjmQuery& query) {
  std::unordered_map<std::string, std::string> renames;
  for (const auto& proj : query.graph_projections) {
    std::string internal = proj.var + "." + proj.column;
    if (proj.output_name != internal) renames[proj.output_name] = internal;
  }
  return renames;
}

std::string ApplyRename(
    const std::string& name,
    const std::unordered_map<std::string, std::string>& renames) {
  auto it = renames.find(name);
  return it == renames.end() ? name : it->second;
}

}  // namespace

Status RelationalOptimizer::FlattenPattern(
    const SpjmQuery& query, std::vector<RelNode>* nodes,
    std::vector<JoinEdgeSpec>* edges,
    std::vector<ExprPtr>* conjuncts) const {
  const pattern::PatternGraph& p = query.pattern;
  std::vector<int> vertex_node(p.num_vertices(), -1);

  for (int v = 0; v < p.num_vertices(); ++v) {
    const graph::VertexMapping& vm =
        mapping_->vertex_mapping(p.vertex(v).label);
    RelNode node;
    node.kind = RelNode::Kind::kTableScan;
    node.alias = p.VertexVarName(v);
    node.table = vm.table;
    node.filter = p.vertex(v).predicate;
    vertex_node[v] = static_cast<int>(nodes->size());
    nodes->push_back(std::move(node));
  }

  for (int e = 0; e < p.num_edges(); ++e) {
    const auto& pe = p.edge(e);
    const graph::EdgeMapping& em = mapping_->edge_mapping(pe.label);
    const graph::VertexMapping& src_vm =
        mapping_->vertex_mapping(mapping_->EdgeSrcLabelId(pe.label));
    const graph::VertexMapping& dst_vm =
        mapping_->vertex_mapping(mapping_->EdgeDstLabelId(pe.label));

    bool identity_src =
        em.table == src_vm.table && em.src_key_column == src_vm.key_column;
    if (identity_src) {
      // FK edge folded into the source vertex relation (Example 4's
      // redundant-relation elimination): a single EVJoin to the target.
      JoinEdgeSpec spec;
      spec.a = vertex_node[pe.src];
      spec.b = vertex_node[pe.dst];
      spec.a_col = p.VertexVarName(pe.src) + "." + em.dst_key_column;
      spec.b_col = p.VertexVarName(pe.dst) + "." + dst_vm.key_column;
      spec.edge_label = pe.label;
      spec.edge_node = vertex_node[pe.src];
      spec.vertex_node = vertex_node[pe.dst];
      spec.vertex_side = Direction::kIn;  // target side of the edge
      edges->push_back(std::move(spec));
      if (pe.predicate) {
        // The edge predicate constrains the source relation directly.
        RelNode& src_node = (*nodes)[vertex_node[pe.src]];
        src_node.filter = src_node.filter
                              ? Expr::And(src_node.filter, pe.predicate)
                              : pe.predicate;
      }
      continue;
    }

    RelNode node;
    node.kind = RelNode::Kind::kTableScan;
    node.alias = p.EdgeVarName(e);
    node.table = em.table;
    node.filter = pe.predicate;
    int edge_idx = static_cast<int>(nodes->size());
    nodes->push_back(std::move(node));

    JoinEdgeSpec src_spec;
    src_spec.a = edge_idx;
    src_spec.b = vertex_node[pe.src];
    src_spec.a_col = p.EdgeVarName(e) + "." + em.src_key_column;
    src_spec.b_col = p.VertexVarName(pe.src) + "." + src_vm.key_column;
    src_spec.edge_label = pe.label;
    src_spec.edge_node = edge_idx;
    src_spec.vertex_node = vertex_node[pe.src];
    src_spec.vertex_side = Direction::kOut;
    edges->push_back(std::move(src_spec));

    JoinEdgeSpec dst_spec;
    dst_spec.a = edge_idx;
    dst_spec.b = vertex_node[pe.dst];
    dst_spec.a_col = p.EdgeVarName(e) + "." + em.dst_key_column;
    dst_spec.b_col = p.VertexVarName(pe.dst) + "." + dst_vm.key_column;
    dst_spec.edge_label = pe.label;
    dst_spec.edge_node = edge_idx;
    dst_spec.vertex_node = vertex_node[pe.dst];
    dst_spec.vertex_side = Direction::kIn;
    edges->push_back(std::move(dst_spec));
  }

  // Distinct pairs become key inequalities over the flattened relations.
  for (const auto& [a, b] : p.distinct_pairs()) {
    const graph::VertexMapping& vma =
        mapping_->vertex_mapping(p.vertex(a).label);
    const graph::VertexMapping& vmb =
        mapping_->vertex_mapping(p.vertex(b).label);
    conjuncts->push_back(Expr::Compare(
        storage::CompareOp::kNe,
        Expr::Column(p.VertexVarName(a) + "." + vma.key_column),
        Expr::Column(p.VertexVarName(b) + "." + vmb.key_column)));
  }
  return Status::OK();
}

Result<PhysicalOpPtr> RelationalOptimizer::Plan(
    std::vector<RelNode> nodes, std::vector<JoinEdgeSpec> edges,
    std::vector<ExprPtr> conjuncts, const SpjmQuery& query,
    const RelOptimizerOptions& options) const {
  // Push single-node conjuncts into node filters.
  std::vector<ExprPtr> residual;
  for (auto& conjunct : conjuncts) {
    std::vector<std::string> cols;
    conjunct->CollectColumns(&cols);
    int owner = -1;
    bool single = !cols.empty();
    for (const auto& col : cols) {
      int node = -1;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].kind == RelNode::Kind::kTableScan) {
          std::string raw;
          if (StripPrefix(col, nodes[i].alias, &raw)) {
            node = static_cast<int>(i);
          }
        } else {
          for (const auto& proj : nodes[i].projections) {
            if (proj.output_name == col) node = static_cast<int>(i);
          }
        }
      }
      if (node < 0 || (owner >= 0 && node != owner)) {
        single = false;
        break;
      }
      owner = node;
    }
    if (single && owner >= 0) {
      RelNode& node = nodes[owner];
      if (node.kind == RelNode::Kind::kTableScan) {
        // Rebase qualified references onto raw column names.
        std::unordered_map<std::string, std::string> rename;
        for (const auto& col : cols) {
          std::string raw;
          if (StripPrefix(col, node.alias, &raw)) rename[col] = raw;
        }
        ExprPtr rebased = conjunct->CloneRenamed(rename);
        node.filter =
            node.filter ? Expr::And(node.filter, rebased) : rebased;
      } else {
        node.post_filter = node.post_filter
                               ? Expr::And(node.post_filter, conjunct)
                               : conjunct;
      }
    } else {
      residual.push_back(conjunct);
    }
  }

  std::vector<std::string> used = CollectUsedColumns(query, residual);

  JoinPlanner planner(std::move(nodes), std::move(edges), options, stats_,
                      mapping_, catalog_, feedback_);
  RELGO_RETURN_NOT_OK(planner.Prepare(used));
  RELGO_ASSIGN_OR_RETURN(auto root, planner.BuildJoinTree());

  if (!residual.empty()) {
    auto filter = std::make_unique<plan::PhysFilter>();
    filter->predicate = Expr::And(residual);
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }

  // Output clause: aggregate, project, order, limit.
  if (!query.aggregates.empty()) {
    auto agg = std::make_unique<plan::PhysHashAggregate>();
    agg->group_by = query.group_by;
    agg->aggregates = query.aggregates;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
  }
  if (!query.select.empty()) {
    auto proj = std::make_unique<plan::PhysProject>();
    proj->columns = query.select;
    proj->children.push_back(std::move(root));
    root = std::move(proj);
  }
  if (!query.order_by.empty()) {
    auto order = std::make_unique<plan::PhysOrderBy>();
    order->keys = query.order_by;
    order->children.push_back(std::move(root));
    root = std::move(order);
  }
  if (query.limit >= 0) {
    auto limit = std::make_unique<plan::PhysLimit>();
    limit->limit = query.limit;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }
  return root;
}

Result<PhysicalOpPtr> RelationalOptimizer::PlanAgnostic(
    const SpjmQuery& query, const RelOptimizerOptions& options) const {
  std::vector<RelNode> nodes;
  std::vector<JoinEdgeSpec> edges;
  std::vector<ExprPtr> conjuncts;
  RELGO_RETURN_NOT_OK(FlattenPattern(query, &nodes, &edges, &conjuncts));

  // Rewrite custom pi-hat output names to their flattened equivalents.
  auto renames = ProjectionRenames(query);
  SpjmQuery rewritten = query;
  rewritten.pattern = query.pattern;  // untouched
  if (rewritten.where) {
    rewritten.where = rewritten.where->CloneRenamed(renames);
  }
  for (auto& [src, _] : rewritten.select) src = ApplyRename(src, renames);
  for (auto& g : rewritten.group_by) g = ApplyRename(g, renames);
  for (auto& a : rewritten.aggregates) {
    a.input_column = ApplyRename(a.input_column, renames);
  }
  for (auto& k : rewritten.order_by) k.column = ApplyRename(k.column, renames);
  for (auto& j : rewritten.joins) {
    j.left_column = ApplyRename(j.left_column, renames);
  }

  RELGO_RETURN_NOT_OK(
      AppendRelationalJoins(rewritten, mapping_, &nodes, &edges));
  if (rewritten.where) {
    Expr::SplitConjuncts(rewritten.where, &conjuncts);
  }
  return Plan(std::move(nodes), std::move(edges), std::move(conjuncts),
              rewritten, options);
}

Result<PhysicalOpPtr> RelationalOptimizer::PlanWithGraphLeaf(
    const SpjmQuery& query, GraphPlanResult graph_plan,
    const RelOptimizerOptions& options) const {
  const pattern::PatternGraph& p = query.pattern;
  std::vector<RelNode> nodes;
  RelNode gnode;
  gnode.kind = RelNode::Kind::kGraphTable;
  gnode.alias = "$graph";
  gnode.graph_root = std::move(graph_plan.root);
  gnode.projections = query.graph_projections;
  gnode.graph_cardinality = graph_plan.estimated_cardinality;
  gnode.graph_cost = graph_plan.estimated_cost;
  gnode.graph_signature = PatternFeedbackKey(p);
  for (int v = 0; v < p.num_vertices(); ++v) {
    gnode.vertex_var_labels.emplace_back(p.VertexVarName(v),
                                         p.vertex(v).label);
  }
  for (int e = 0; e < p.num_edges(); ++e) {
    gnode.edge_var_labels.emplace_back(p.EdgeVarName(e), p.edge(e).label);
  }
  nodes.push_back(std::move(gnode));

  std::vector<JoinEdgeSpec> edges;
  RELGO_RETURN_NOT_OK(AppendRelationalJoins(query, mapping_, &nodes, &edges));

  std::vector<ExprPtr> conjuncts;
  if (query.where) Expr::SplitConjuncts(query.where, &conjuncts);
  return Plan(std::move(nodes), std::move(edges), std::move(conjuncts), query,
              options);
}

}  // namespace optimizer
}  // namespace relgo
