#ifndef RELGO_OPTIMIZER_RELATIONAL_OPTIMIZER_H_
#define RELGO_OPTIMIZER_RELATIONAL_OPTIMIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_stats.h"
#include "optimizer/graph_optimizer.h"
#include "optimizer/stats.h"
#include "plan/physical_plan.h"
#include "plan/spjm_query.h"

namespace relgo {
namespace optimizer {

/// Options for the relational (join-order) optimizer.
struct RelOptimizerOptions {
  /// Substitute eligible hash joins with GRainDB predefined joins
  /// (RID_JOIN / RID_EXPAND_JOIN) at physical emission. Join *ordering* is
  /// index-agnostic either way, mirroring GRainDB's design where the
  /// DuckDB optimizer is reused unchanged (Sec 4.1).
  bool use_graph_index = false;
  /// Sampling-based scan selectivities (the Umbra-like mode); otherwise
  /// System-R style heuristics (DuckDB-like).
  bool sampled_selectivity = false;
  /// Exact DP (DPsub) bound; larger join graphs fall back to a greedy
  /// min-cardinality heuristic.
  int dp_max_relations = 14;
};

/// One leaf of the join graph: a base-table scan or the encapsulated
/// SCAN_GRAPH_TABLE produced by the graph optimizer.
struct RelNode {
  enum class Kind { kTableScan, kGraphTable };
  Kind kind = Kind::kTableScan;
  std::string alias;

  // kTableScan:
  std::string table;
  storage::ExprPtr filter;  ///< pushed predicate over raw columns

  // kGraphTable:
  plan::PhysicalOpPtr graph_root;  ///< binding-table producer (moved in)
  std::vector<plan::GraphProjection> projections;
  std::vector<std::pair<std::string, int>> vertex_var_labels;
  std::vector<std::pair<std::string, int>> edge_var_labels;
  storage::ExprPtr post_filter;  ///< residual filter over projected columns
  double graph_cardinality = 0.0;
  double graph_cost = 0.0;  ///< graph optimizer's cost for graph_root
  /// Feedback signature of the matched pattern (PatternFeedbackKey) —
  /// distinguishes different queries' graph leaves inside persisted
  /// join-mask correction keys.
  std::string graph_signature;

  /// Qualified output column names this node exposes.
  std::vector<std::string> output_columns;
};

/// An equi-join predicate between two join-graph nodes. When the predicate
/// is one side of an EVJoin (Eq 3), the rid-join metadata identifies the
/// edge mapping so GRainDB-mode emission can use the graph index.
struct JoinEdgeSpec {
  int a = -1, b = -1;
  std::string a_col, b_col;  ///< qualified names on each side

  int edge_label = -1;  ///< >= 0: this is an EVJoin of that edge label
  int edge_node = -1;   ///< node index of the edge-relation side
  int vertex_node = -1; ///< node index of the vertex-relation side
  /// RID_JOIN direction: kOut when the vertex is the edge's source.
  graph::Direction vertex_side = graph::Direction::kOut;
};

/// DP/greedy join-order optimizer with C_out cost, plus physical plan
/// emission (hash joins, or predefined rid-joins when the other side is a
/// base scan and the index applies — the order-sensitivity GRainDB
/// exhibits in Fig 12).
class RelationalOptimizer {
 public:
  /// `feedback` (optional) is the adaptive-statistics sink: scan and
  /// join-output estimates consult its correction factors and emitted
  /// nodes are stamped with their signatures (PhysicalOp::feedback_key).
  RelationalOptimizer(const storage::Catalog* catalog,
                      const graph::RgMapping* mapping,
                      const TableStats* stats,
                      const StatsFeedback* feedback = nullptr)
      : catalog_(catalog),
        mapping_(mapping),
        stats_(stats),
        feedback_(feedback) {}

  /// Graph-agnostic planning of a full SPJM query: the matching operator is
  /// flattened via Lemma 1 into vertex/edge relation scans plus EVJoins,
  /// then join-ordered together with the query's relational joins.
  Result<plan::PhysicalOpPtr> PlanAgnostic(
      const plan::SpjmQuery& query, const RelOptimizerOptions& options) const;

  /// Converged planning: the graph sub-plan enters the join graph as one
  /// SCAN_GRAPH_TABLE leaf; only the relational component is join-ordered.
  Result<plan::PhysicalOpPtr> PlanWithGraphLeaf(
      const plan::SpjmQuery& query, GraphPlanResult graph_plan,
      const RelOptimizerOptions& options) const;

  /// Lemma-1 flattening exposed for tests: fills nodes/edges/conjuncts for
  /// the pattern of `query` (aliases = pattern variable names).
  Status FlattenPattern(const plan::SpjmQuery& query,
                        std::vector<RelNode>* nodes,
                        std::vector<JoinEdgeSpec>* edges,
                        std::vector<storage::ExprPtr>* conjuncts) const;

 private:
  Result<plan::PhysicalOpPtr> Plan(std::vector<RelNode> nodes,
                                   std::vector<JoinEdgeSpec> edges,
                                   std::vector<storage::ExprPtr> conjuncts,
                                   const plan::SpjmQuery& query,
                                   const RelOptimizerOptions& options) const;

  const storage::Catalog* catalog_;
  const graph::RgMapping* mapping_;
  const TableStats* stats_;
  const StatsFeedback* feedback_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_RELATIONAL_OPTIMIZER_H_
