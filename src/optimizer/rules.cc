#include "optimizer/rules.h"

#include <unordered_map>
#include <unordered_set>

namespace relgo {
namespace optimizer {

using plan::SpjmQuery;
using storage::Expr;
using storage::ExprPtr;

int ApplyFilterIntoMatchRule(SpjmQuery* query) {
  if (!query->where) return 0;

  // Output name -> (pattern var, raw column).
  std::unordered_map<std::string, std::pair<std::string, std::string>> origin;
  for (const auto& proj : query->graph_projections) {
    origin[proj.output_name] = {proj.var, proj.column};
  }

  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(query->where, &conjuncts);

  std::vector<ExprPtr> kept;
  int pushed = 0;
  for (const auto& conjunct : conjuncts) {
    std::vector<std::string> cols;
    conjunct->CollectColumns(&cols);
    std::string var;
    bool single_var = !cols.empty();
    for (const auto& col : cols) {
      auto it = origin.find(col);
      if (it == origin.end()) {
        single_var = false;
        break;
      }
      if (var.empty()) {
        var = it->second.first;
      } else if (var != it->second.first) {
        single_var = false;
        break;
      }
    }
    if (!single_var) {
      kept.push_back(conjunct);
      continue;
    }
    // Rewrite projected names to the element's raw attribute names and
    // attach as a pattern constraint.
    std::unordered_map<std::string, std::string> rename;
    for (const auto& col : cols) rename[col] = origin[col].second;
    ExprPtr constraint = conjunct->CloneRenamed(rename);
    if (query->pattern.AddConstraint(var, constraint).ok()) {
      ++pushed;
    } else {
      kept.push_back(conjunct);
    }
  }
  query->where = kept.empty() ? nullptr : Expr::And(kept);
  return pushed;
}

int ApplyTrimRule(SpjmQuery* query) {
  std::unordered_set<std::string> used;
  auto add = [&](const std::string& name) { used.insert(name); };
  for (const auto& [src, _] : query->select) add(src);
  for (const auto& g : query->group_by) add(g);
  for (const auto& a : query->aggregates) {
    if (!a.input_column.empty()) add(a.input_column);
  }
  for (const auto& k : query->order_by) add(k.column);
  for (const auto& j : query->joins) add(j.left_column);
  if (query->where) {
    std::vector<std::string> cols;
    query->where->CollectColumns(&cols);
    for (const auto& c : cols) add(c);
  }

  int trimmed = 0;
  std::vector<plan::GraphProjection> survivors;
  for (auto& proj : query->graph_projections) {
    if (used.count(proj.output_name)) {
      survivors.push_back(std::move(proj));
    } else {
      ++trimmed;
    }
  }
  // COUNT(*)-style queries consume no attribute at all; keep one projection
  // so the flattened graph relation retains its row multiplicity.
  if (survivors.empty() && !query->graph_projections.empty()) {
    survivors.push_back(std::move(query->graph_projections.front()));
    --trimmed;
  }
  query->graph_projections = std::move(survivors);
  return trimmed;
}

std::set<int> NeededEdgeBindings(const SpjmQuery& query) {
  std::set<int> needed;
  for (const auto& proj : query.graph_projections) {
    int e = query.pattern.FindEdge(proj.var);
    if (e >= 0) needed.insert(e);
  }
  return needed;
}

}  // namespace optimizer
}  // namespace relgo
