#ifndef RELGO_OPTIMIZER_RULES_H_
#define RELGO_OPTIMIZER_RULES_H_

#include <set>

#include "plan/spjm_query.h"

namespace relgo {
namespace optimizer {

/// FilterIntoMatchRule (Sec 4.2.3): moves selection conjuncts that only
/// reference pi-hat projections of a single pattern element into that
/// element's constraint set, so the graph optimizer can exploit them
/// during cost recalculation (sigma_Psi(pi-hat M(P)) ==
/// sigma_Psi'(pi-hat M((P, {d_v})))).
///
/// Returns the number of conjuncts pushed.
int ApplyFilterIntoMatchRule(plan::SpjmQuery* query);

/// The field-trim half of TrimAndFuseRule (Sec 4.2.3): removes pi-hat
/// projections whose output is consumed by no downstream operator (final
/// select, aggregates, grouping, ordering, relational join keys, or the
/// residual selection). Returns the number of projections trimmed.
///
/// The fuse half (EXPAND_EDGE + GET_VERTEX -> EXPAND) is applied by the
/// graph optimizer during physical emission, driven by the edge-binding
/// need set computed by NeededEdgeBindings.
int ApplyTrimRule(plan::SpjmQuery* query);

/// Pattern edge indexes whose bindings must survive into the graph plan's
/// output: edges named by surviving pi-hat projections.
std::set<int> NeededEdgeBindings(const plan::SpjmQuery& query);

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_RULES_H_
