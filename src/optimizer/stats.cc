#include "optimizer/stats.h"

#include <algorithm>
#include <unordered_set>

namespace relgo {
namespace optimizer {

double TableStats::Cardinality(const std::string& table) const {
  auto t = catalog_->GetTable(table);
  return t.ok() ? static_cast<double>((*t)->num_rows()) : 0.0;
}

double TableStats::DistinctCount(const std::string& table,
                                 const std::string& column) const {
  std::string key = table + "." + column;
  {
    std::lock_guard<std::mutex> lock(distinct_mu_);
    auto cached = distinct_cache_.find(key);
    if (cached != distinct_cache_.end()) return cached->second;
  }

  auto t = catalog_->GetTable(table);
  if (!t.ok()) return 1.0;
  const storage::Column* col = (*t)->FindColumn(column);
  double result = 1.0;
  if (col != nullptr && col->type() == LogicalType::kInt64) {
    std::unordered_set<int64_t> seen;
    seen.reserve((*t)->num_rows());
    for (uint64_t r = 0; r < (*t)->num_rows(); ++r) {
      seen.insert(col->int_at(r));
    }
    result = std::max<double>(1.0, static_cast<double>(seen.size()));
  } else if (col != nullptr) {
    // Non-integer columns: assume moderately distinct.
    result = std::max(1.0, static_cast<double>((*t)->num_rows()) / 10.0);
  }
  std::lock_guard<std::mutex> lock(distinct_mu_);
  distinct_cache_[key] = result;
  return result;
}

namespace {

double HeuristicSelectivityExpr(const storage::Table& table,
                                const storage::Expr& e,
                                const TableStats& stats) {
  using storage::CompareOp;
  using Kind = storage::Expr::Kind;
  switch (e.kind()) {
    case Kind::kCompare: {
      // column <op> constant (either side).
      const auto& lhs = e.children()[0];
      const auto& rhs = e.children()[1];
      const storage::Expr* col = nullptr;
      if (lhs->kind() == Kind::kColumnRef && rhs->kind() == Kind::kConstant) {
        col = lhs.get();
      } else if (rhs->kind() == Kind::kColumnRef &&
                 lhs->kind() == Kind::kConstant) {
        col = rhs.get();
      }
      if (e.compare_op() == CompareOp::kEq && col != nullptr) {
        double ndv = stats.DistinctCount(table.name(), col->column_name());
        return std::min(1.0, 1.0 / ndv);
      }
      if (e.compare_op() == CompareOp::kNe) return 0.9;
      return 1.0 / 3.0;  // ranges: the classic System R guess
    }
    case Kind::kAnd:
      return HeuristicSelectivityExpr(table, *e.children()[0], stats) *
             HeuristicSelectivityExpr(table, *e.children()[1], stats);
    case Kind::kOr: {
      double a = HeuristicSelectivityExpr(table, *e.children()[0], stats);
      double b = HeuristicSelectivityExpr(table, *e.children()[1], stats);
      return std::min(1.0, a + b - a * b);
    }
    case Kind::kNot:
      return 1.0 -
             HeuristicSelectivityExpr(table, *e.children()[0], stats);
    case Kind::kStartsWith:
      return 0.05;
    case Kind::kContains:
      return 0.1;
    case Kind::kInList:
      return std::min(1.0, 0.01 * static_cast<double>(e.in_list().size()));
    case Kind::kIsNull:
      return 0.05;
    case Kind::kConstant:
      return 1.0;
    default:
      return 0.5;
  }
}

}  // namespace

double TableStats::HeuristicSelectivity(const storage::Table& table,
                                        const storage::ExprPtr& filter) const {
  if (!filter) return 1.0;
  return std::max(1e-9,
                  HeuristicSelectivityExpr(table, *filter, *this));
}

double TableStats::CorrectedSelectivity(const storage::Table& table,
                                        const storage::ExprPtr& filter,
                                        bool sampled) const {
  double sel = sampled ? SampledSelectivity(table, filter)
                       : HeuristicSelectivity(table, filter);
  if (feedback_ == nullptr || feedback_->empty() || !filter) return sel;
  double factor =
      feedback_->Factor(ScanFeedbackKey(table.name(), filter, sampled));
  if (factor == 1.0) return sel;
  return std::min(std::max(sel * factor, 1e-9), 1.0);
}

double TableStats::SampledSelectivity(const storage::Table& table,
                                      const storage::ExprPtr& filter,
                                      size_t sample_size) const {
  if (!filter) return 1.0;
  // Parameterized predicates are estimated value-insensitively: sampling
  // would make the estimate (and hence the plan) depend on the bound
  // constant, breaking the plan cache's generic-plan contract that every
  // binding of one template plans identically.
  if (filter->HasParam()) return HeuristicSelectivity(table, filter);
  if (table.num_rows() == 0) return 1.0;
  if (!filter->BindsTo(table.schema())) return 0.5;
  storage::ExprPtr bound = filter->Clone();
  if (!bound->Bind(table.schema()).ok()) return 0.5;

  uint64_t n = table.num_rows();
  uint64_t stride = std::max<uint64_t>(1, n / sample_size);
  uint64_t sampled = 0, hits = 0;
  for (uint64_t r = 0; r < n; r += stride) {
    ++sampled;
    if (bound->EvaluateBool(table, r)) ++hits;
  }
  // Laplace smoothing keeps zero-hit predicates from collapsing to 0.
  return std::max(1e-9, (static_cast<double>(hits) + 0.5) /
                            (static_cast<double>(sampled) + 1.0));
}

}  // namespace optimizer
}  // namespace relgo
