#ifndef RELGO_OPTIMIZER_STATS_H_
#define RELGO_OPTIMIZER_STATS_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "optimizer/feedback.h"
#include "storage/catalog.h"
#include "storage/expression.h"

namespace relgo {
namespace optimizer {

/// Low-order relational statistics: table cardinalities, per-column
/// distinct counts, and predicate selectivities.
///
/// Two selectivity estimation modes mirror the paper's baselines:
///  * heuristic (DuckDB/GRainDB-like): magic numbers per predicate shape,
///    1/ndv for equality;
///  * sampled (Umbra-like): evaluates the predicate on a reservoir sample,
///    capturing attribute value distributions (Sec 5.3.2 explains why this
///    sometimes beats RelGo's estimates).
class TableStats {
 public:
  explicit TableStats(const storage::Catalog* catalog) : catalog_(catalog) {}

  /// Rows in `table`; 0 when the table is unknown.
  double Cardinality(const std::string& table) const;

  /// Number of distinct values of an int64 column (exact, cached).
  /// Thread-safe: concurrent optimizations of different queries share the
  /// cache; racing threads may both compute a cold entry (same value).
  double DistinctCount(const std::string& table,
                       const std::string& column) const;

  /// Heuristic selectivity of `filter` against `table`.
  double HeuristicSelectivity(const storage::Table& table,
                              const storage::ExprPtr& filter) const;

  /// Sampling-based selectivity: evaluates `filter` on up to `sample_size`
  /// rows (deterministic stride sample).
  double SampledSelectivity(const storage::Table& table,
                            const storage::ExprPtr& filter,
                            size_t sample_size = 1024) const;

  /// Attaches the adaptive-statistics sink; null (the default) disables
  /// correction lookups entirely.
  void SetFeedback(const StatsFeedback* feedback) { feedback_ = feedback; }
  const StatsFeedback* feedback() const { return feedback_; }

  /// Scan selectivity with adaptive correction: the base estimate
  /// (sampled or heuristic per `sampled`) times the feedback factor
  /// stored under the scan's (table, predicate) key, clamped back into
  /// [1e-9, 1]. Identical to the base estimate when no feedback sink is
  /// attached or the key was never observed.
  double CorrectedSelectivity(const storage::Table& table,
                              const storage::ExprPtr& filter,
                              bool sampled) const;

 private:
  const storage::Catalog* catalog_;
  const StatsFeedback* feedback_ = nullptr;
  mutable std::mutex distinct_mu_;  ///< guards distinct_cache_
  mutable std::unordered_map<std::string, double> distinct_cache_;
};

}  // namespace optimizer
}  // namespace relgo

#endif  // RELGO_OPTIMIZER_STATS_H_
