#include "pattern/parser.h"

#include <cctype>

namespace relgo {
namespace pattern {

namespace {

/// Minimal recursive-descent scanner over the pattern text.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Peek(const std::string& token) {
    SkipSpace();
    return text_.compare(pos_, token.size(), token) == 0;
  }

  bool Consume(const std::string& token) {
    if (!Peek(token)) return false;
    pos_ += token.size();
    return true;
  }

  /// Reads an identifier [A-Za-z0-9_]*; may be empty.
  std::string Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  size_t position() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Status ParseError(const Scanner& s, const std::string& what) {
  return Status::InvalidArgument("pattern parse error at offset " +
                                 std::to_string(s.position()) + ": " + what);
}

}  // namespace

Result<PatternGraph> ParsePattern(const std::string& text,
                                  const graph::RgMapping& mapping) {
  PatternGraph pg;
  Scanner s(text);

  // Parses "(name:Label)" and returns the vertex position.
  auto parse_vertex = [&]() -> Result<int> {
    if (!s.Consume("(")) return ParseError(s, "expected '('");
    std::string name = s.Identifier();
    std::string label;
    if (s.Consume(":")) label = s.Identifier();
    if (!s.Consume(")")) return ParseError(s, "expected ')'");

    if (!name.empty()) {
      int existing = pg.FindVertex(name);
      if (existing >= 0) {
        if (!label.empty()) {
          int lid = mapping.FindVertexLabel(label);
          if (lid != pg.vertex(existing).label) {
            return ParseError(s, "vertex '" + name + "' re-declared with a "
                                 "different label");
          }
        }
        return existing;
      }
    }
    if (label.empty()) {
      return ParseError(s, "new vertex '" + name + "' needs a label");
    }
    int lid = mapping.FindVertexLabel(label);
    if (lid < 0) return ParseError(s, "unknown vertex label '" + label + "'");
    return pg.AddVertex(lid, name);
  };

  while (true) {
    RELGO_ASSIGN_OR_RETURN(int current, parse_vertex());
    // Chain of edges.
    while (s.Peek("-") || s.Peek("<-")) {
      bool backward = false;
      if (s.Consume("<-[")) {
        backward = true;
      } else if (s.Consume("-[")) {
        backward = false;
      } else {
        return ParseError(s, "expected '-[' or '<-['");
      }
      std::string ename = s.Identifier();
      std::string elabel;
      if (s.Consume(":")) elabel = s.Identifier();
      if (elabel.empty()) return ParseError(s, "edge needs a ':Label'");
      int elid = mapping.FindEdgeLabel(elabel);
      if (elid < 0) return ParseError(s, "unknown edge label '" + elabel + "'");
      if (backward) {
        if (!s.Consume("]-")) return ParseError(s, "expected ']-'");
      } else {
        if (!s.Consume("]->")) return ParseError(s, "expected ']->'");
      }
      RELGO_ASSIGN_OR_RETURN(int next, parse_vertex());

      int src = backward ? next : current;
      int dst = backward ? current : next;
      const auto& em = mapping.edge_mapping(elid);
      if (pg.vertex(src).label != mapping.FindVertexLabel(em.src_label) ||
          pg.vertex(dst).label != mapping.FindVertexLabel(em.dst_label)) {
        return ParseError(s, "edge label '" + elabel +
                                 "' does not connect these vertex labels");
      }
      pg.AddEdge(elid, src, dst, ename);
      current = next;
    }
    if (!s.Consume(",")) break;
  }
  if (!s.AtEnd()) return ParseError(s, "trailing input");
  if (pg.num_vertices() == 0) return ParseError(s, "empty pattern");
  if (!pg.IsConnectedInduced(pg.AllVertices())) {
    return Status::InvalidArgument("pattern must be connected");
  }
  return pg;
}

}  // namespace pattern
}  // namespace relgo
