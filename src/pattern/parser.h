#ifndef RELGO_PATTERN_PARSER_H_
#define RELGO_PATTERN_PARSER_H_

#include <string>

#include "graph/rg_mapping.h"
#include "pattern/pattern_graph.h"

namespace relgo {
namespace pattern {

/// Parses a SQL/PGQ-style MATCH pattern into a PatternGraph.
///
/// Grammar (whitespace-insensitive):
///
///   pattern := path ("," path)*
///   path    := vertex (edge vertex)*
///   vertex  := "(" [name] [":" Label] ")"
///   edge    := "-[" [name] [":" Label] "]->"      (forward)
///            | "<-[" [name] [":" Label] "]-"      (backward)
///
/// Example:
///   (p1:Person)-[:Knows]->(p2:Person), (p1)-[:Likes]->(m:Message),
///   (p2)-[:Likes]->(m)
///
/// A vertex mentioned again by name refers to the same pattern position;
/// its label may be omitted on later mentions. Labels resolve through the
/// RGMapping. Anonymous edges are allowed; anonymous vertices must carry a
/// label.
Result<PatternGraph> ParsePattern(const std::string& text,
                                  const graph::RgMapping& mapping);

}  // namespace pattern
}  // namespace relgo

#endif  // RELGO_PATTERN_PARSER_H_
