#include "pattern/pattern_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace relgo {
namespace pattern {

int PatternGraph::AddVertex(int label, std::string name) {
  int pos = static_cast<int>(vertices_.size());
  vertices_.push_back({label, std::move(name), nullptr});
  incident_.emplace_back();
  return pos;
}

int PatternGraph::AddEdge(int label, int src, int dst, std::string name) {
  int idx = static_cast<int>(edges_.size());
  edges_.push_back({label, src, dst, std::move(name), nullptr});
  incident_[src].push_back(idx);
  if (dst != src) incident_[dst].push_back(idx);
  return idx;
}

int PatternGraph::FindVertex(const std::string& name) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (!vertices_[i].name.empty() && vertices_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int PatternGraph::FindEdge(const std::string& name) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].name.empty() && edges_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status PatternGraph::AddConstraint(const std::string& element_name,
                                   storage::ExprPtr e) {
  int v = FindVertex(element_name);
  if (v >= 0) {
    vertices_[v].predicate = vertices_[v].predicate
                                 ? storage::Expr::And(vertices_[v].predicate,
                                                      std::move(e))
                                 : std::move(e);
    return Status::OK();
  }
  int edge = FindEdge(element_name);
  if (edge >= 0) {
    edges_[edge].predicate =
        edges_[edge].predicate
            ? storage::Expr::And(edges_[edge].predicate, std::move(e))
            : std::move(e);
    return Status::OK();
  }
  return Status::NotFound("no pattern element named '" + element_name + "'");
}

std::vector<int> PatternGraph::InducedEdges(VSet vertices) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if ((vertices & Bit(edges_[i].src)) && (vertices & Bit(edges_[i].dst))) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

bool PatternGraph::IsConnectedInduced(VSet vertices) const {
  if (vertices == 0) return false;
  int start = __builtin_ctz(vertices);
  VSet visited = Bit(start);
  std::vector<int> stack = {start};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int e : incident_[v]) {
      int other = edges_[e].src == v ? edges_[e].dst : edges_[e].src;
      if ((vertices & Bit(other)) && !(visited & Bit(other))) {
        visited |= Bit(other);
        stack.push_back(other);
      }
    }
  }
  return visited == vertices;
}

PatternGraph PatternGraph::Induced(VSet vertices,
                                   std::vector<int>* old_to_new) const {
  PatternGraph sub;
  std::vector<int> remap(vertices_.size(), -1);
  for (int v = 0; v < num_vertices(); ++v) {
    if (vertices & Bit(v)) {
      remap[v] = sub.AddVertex(vertices_[v].label, vertices_[v].name);
      sub.vertices_[remap[v]].predicate = vertices_[v].predicate;
    }
  }
  for (const auto& e : edges_) {
    if ((vertices & Bit(e.src)) && (vertices & Bit(e.dst))) {
      int idx = sub.AddEdge(e.label, remap[e.src], remap[e.dst], e.name);
      sub.edges_[idx].predicate = e.predicate;
    }
  }
  for (const auto& [a, b] : distinct_pairs_) {
    if ((vertices & Bit(a)) && (vertices & Bit(b))) {
      sub.AddDistinctPair(remap[a], remap[b]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return sub;
}

std::string PatternGraph::CanonicalCode() const {
  int n = num_vertices();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  std::string best;
  do {
    // perm[i] = new position of old vertex i.
    std::ostringstream os;
    // Vertex labels in new order.
    std::vector<int> labels(n);
    for (int old = 0; old < n; ++old) labels[perm[old]] = vertices_[old].label;
    for (int v = 0; v < n; ++v) os << "v" << labels[v] << ";";
    // Sorted edge triples.
    std::vector<std::string> edge_codes;
    for (const auto& e : edges_) {
      std::ostringstream ec;
      ec << perm[e.src] << ">" << perm[e.dst] << ":" << e.label;
      edge_codes.push_back(ec.str());
    }
    std::sort(edge_codes.begin(), edge_codes.end());
    for (const auto& ec : edge_codes) os << ec << ";";
    std::string code = os.str();
    if (best.empty() || code < best) best = std::move(code);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

std::string PatternGraph::ToString(const graph::RgMapping* mapping) const {
  std::ostringstream os;
  auto vertex_str = [&](int v) {
    std::string label = mapping != nullptr
                            ? mapping->vertex_mapping(vertices_[v].label).label
                            : std::to_string(vertices_[v].label);
    std::string name =
        vertices_[v].name.empty() ? "_" + std::to_string(v) : vertices_[v].name;
    return "(" + name + ":" + label + ")";
  };
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) os << ", ";
    const auto& e = edges_[i];
    std::string elabel = mapping != nullptr
                             ? mapping->edge_mapping(e.label).label
                             : std::to_string(e.label);
    os << vertex_str(e.src) << "-[" << e.name << ":" << elabel << "]->"
       << vertex_str(e.dst);
  }
  if (edges_.empty()) {
    for (int v = 0; v < num_vertices(); ++v) {
      if (v) os << ", ";
      os << vertex_str(v);
    }
  }
  return os.str();
}

}  // namespace pattern
}  // namespace relgo
