#ifndef RELGO_PATTERN_PATTERN_GRAPH_H_
#define RELGO_PATTERN_PATTERN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/rg_mapping.h"
#include "storage/expression.h"

namespace relgo {
namespace pattern {

/// A set of pattern-vertex positions, as a bitmask. Patterns are bounded to
/// 32 vertices, far above anything in the SQL/PGQ workloads (LDBC/JOB
/// patterns have <= 8).
using VSet = uint32_t;

inline int PopCount(VSet s) { return __builtin_popcount(s); }
inline VSet Bit(int i) { return VSet{1} << i; }

/// A typed pattern vertex. `predicate` carries constraints pushed in by
/// FilterIntoMatchRule (Sec 4.2.3), expressed over the columns of the
/// vertex's underlying relational table.
struct PatternVertex {
  int label = -1;            ///< vertex label id from RgMapping
  std::string name;          ///< variable name bound in the query ("p1")
  storage::ExprPtr predicate;  ///< optional constraint (may be null)
};

/// A typed, directed pattern edge between two pattern-vertex positions.
struct PatternEdge {
  int label = -1;  ///< edge label id from RgMapping
  int src = -1;    ///< source pattern-vertex position
  int dst = -1;    ///< target pattern-vertex position
  std::string name;  ///< variable name; empty when the edge is anonymous
  storage::ExprPtr predicate;
};

/// A connected pattern graph P(V_P, E_P) as defined in Sec 2.2.
///
/// Pattern matching uses homomorphism semantics: two pattern vertices may
/// map to the same data vertex. Vertices and edges are identified by their
/// positions (indexes), which the optimizer manipulates as bitmasks.
class PatternGraph {
 public:
  /// Adds a vertex; returns its position.
  int AddVertex(int label, std::string name = "");

  /// Adds a directed edge from position `src` to `dst`; returns its index.
  int AddEdge(int label, int src, int dst, std::string name = "");

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const PatternVertex& vertex(int i) const { return vertices_[i]; }
  PatternVertex& vertex(int i) { return vertices_[i]; }
  const PatternEdge& edge(int i) const { return edges_[i]; }
  PatternEdge& edge(int i) { return edges_[i]; }

  /// Position of the vertex named `name`, or -1.
  int FindVertex(const std::string& name) const;
  /// Index of the edge named `name`, or -1.
  int FindEdge(const std::string& name) const;

  /// Stable variable name of vertex `i`: its declared name, or "_v<i>".
  /// All plan layers (naive matcher, graph plans, agnostic flattening) use
  /// these names, so their outputs are comparable column-for-column.
  std::string VertexVarName(int i) const {
    return vertices_[i].name.empty() ? "_v" + std::to_string(i)
                                     : vertices_[i].name;
  }
  /// Stable variable name of edge `i`: its declared name, or "_e<i>".
  std::string EdgeVarName(int i) const {
    return edges_[i].name.empty() ? "_e" + std::to_string(i)
                                  : edges_[i].name;
  }

  /// Declares that two pattern vertices may not map to the same data vertex
  /// (the paper's all-distinct operator, Sec 3.1, restricted to a pair).
  void AddDistinctPair(int a, int b) { distinct_pairs_.emplace_back(a, b); }
  const std::vector<std::pair<int, int>>& distinct_pairs() const {
    return distinct_pairs_;
  }

  /// Attaches a constraint to a named vertex or edge (used by
  /// FilterIntoMatchRule and by query construction). The expression is
  /// ANDed with any existing predicate.
  Status AddConstraint(const std::string& element_name, storage::ExprPtr e);

  /// Edge indexes incident to vertex position `v`.
  const std::vector<int>& IncidentEdges(int v) const {
    return incident_[v];
  }

  /// All edges whose endpoints both lie in `vertices` — the edge set of the
  /// induced sub-pattern on `vertices`.
  std::vector<int> InducedEdges(VSet vertices) const;

  /// Whether the induced sub-pattern on `vertices` is connected (treating
  /// edges as undirected). The empty set is not connected.
  bool IsConnectedInduced(VSet vertices) const;

  /// Full-vertex mask of this pattern.
  VSet AllVertices() const {
    return num_vertices() >= 32 ? ~VSet{0}
                                : (VSet{1} << num_vertices()) - 1;
  }

  /// Builds the induced sub-pattern on `vertices`. `old_to_new` (optional)
  /// receives the position remapping, indexed by old position (-1 if
  /// dropped).
  PatternGraph Induced(VSet vertices, std::vector<int>* old_to_new = nullptr)
      const;

  /// Canonical string code invariant under vertex renumbering; usable as a
  /// GLogue key. Cost is O(n! * m); intended for small n (GLogue uses
  /// n <= 3, optimizer sub-patterns n <= 8).
  std::string CanonicalCode() const;

  /// A human-readable rendering, e.g. "(p1:Person)-[:Knows]->(p2:Person)".
  std::string ToString(const graph::RgMapping* mapping = nullptr) const;

 private:
  std::vector<PatternVertex> vertices_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<int>> incident_;
  std::vector<std::pair<int, int>> distinct_pairs_;
};

}  // namespace pattern
}  // namespace relgo

#endif  // RELGO_PATTERN_PATTERN_GRAPH_H_
