#include "pattern/search_space.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace relgo {
namespace pattern {

namespace {

/// Lemma-1 join graph: one node per pattern vertex (its vertex relation)
/// and one node per pattern edge (its edge relation); an edge relation is
/// joinable with the relations of its two endpoints (the EVJoins of Eq 3).
struct JoinGraph {
  int num_nodes = 0;
  std::vector<std::vector<int>> adj;

  explicit JoinGraph(const PatternGraph& p) {
    int n = p.num_vertices();
    int m = p.num_edges();
    num_nodes = n + m;
    adj.assign(num_nodes, {});
    for (int e = 0; e < m; ++e) {
      int enode = n + e;
      adj[enode].push_back(p.edge(e).src);
      adj[p.edge(e).src].push_back(enode);
      if (p.edge(e).dst != p.edge(e).src) {
        adj[enode].push_back(p.edge(e).dst);
        adj[p.edge(e).dst].push_back(enode);
      }
    }
  }

  /// Orders nodes along the chain when the join graph is a path; empty
  /// otherwise.
  std::vector<int> ChainOrder() const {
    std::vector<int> degree(num_nodes, 0);
    int endpoints = 0, start = -1;
    for (int i = 0; i < num_nodes; ++i) {
      degree[i] = static_cast<int>(adj[i].size());
      if (degree[i] > 2) return {};
      if (degree[i] <= 1) {
        ++endpoints;
        if (start < 0) start = i;
      }
    }
    if (num_nodes == 1) return {0};
    if (endpoints != 2) return {};  // a cycle or disconnected
    std::vector<int> order;
    order.reserve(num_nodes);
    int prev = -1, cur = start;
    while (order.size() < static_cast<size_t>(num_nodes)) {
      order.push_back(cur);
      int next = -1;
      for (int nb : adj[cur]) {
        if (nb != prev) {
          next = nb;
          break;
        }
      }
      if (next < 0) break;
      prev = cur;
      cur = next;
    }
    return order.size() == static_cast<size_t>(num_nodes) ? order
                                                          : std::vector<int>{};
  }
};

/// Interval DP over a chain join graph: plans(i,j) counts ordered binary
/// join trees over relations i..j; both operand orders are distinct plans.
double CountChainPlans(int n) {
  std::vector<std::vector<double>> dp(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) dp[i][i] = 1.0;
  for (int len = 2; len <= n; ++len) {
    for (int i = 0; i + len - 1 < n; ++i) {
      int j = i + len - 1;
      double total = 0.0;
      for (int k = i; k < j; ++k) {
        total += 2.0 * dp[i][k] * dp[k + 1][j];
      }
      dp[i][j] = total;
    }
  }
  return dp[0][n - 1];
}

/// Generic bitmask DP for arbitrary join graphs (bounded node count).
class GenericJoinCounter {
 public:
  explicit GenericJoinCounter(const JoinGraph& jg) : jg_(jg) {}

  double Count() {
    uint32_t all = (jg_.num_nodes >= 31) ? 0 : ((1u << jg_.num_nodes) - 1);
    return CountSet(all);
  }

 private:
  bool Connected(uint32_t set) const {
    if (set == 0) return false;
    int start = __builtin_ctz(set);
    uint32_t visited = 1u << start;
    std::vector<int> stack = {start};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int nb : jg_.adj[v]) {
        if ((set >> nb & 1u) && !(visited >> nb & 1u)) {
          visited |= 1u << nb;
          stack.push_back(nb);
        }
      }
    }
    return visited == set;
  }

  bool HasJoinEdge(uint32_t a, uint32_t b) const {
    for (int v = 0; v < jg_.num_nodes; ++v) {
      if (!(a >> v & 1u)) continue;
      for (int nb : jg_.adj[v]) {
        if (b >> nb & 1u) return true;
      }
    }
    return false;
  }

  double CountSet(uint32_t set) {
    if (__builtin_popcount(set) == 1) return 1.0;
    auto it = memo_.find(set);
    if (it != memo_.end()) return it->second;
    double total = 0.0;
    // Enumerate proper non-empty submasks; ordered pairs arise naturally
    // since both (s, set\s) and (set\s, s) are visited.
    for (uint32_t s = (set - 1) & set; s != 0; s = (s - 1) & set) {
      uint32_t rest = set ^ s;
      if (!Connected(s) || !Connected(rest)) continue;
      if (!HasJoinEdge(s, rest)) continue;  // no cross products
      total += CountSet(s) * CountSet(rest);
    }
    memo_[set] = total;
    return total;
  }

  const JoinGraph& jg_;
  std::unordered_map<uint32_t, double> memo_;
};

/// Counts decomposition trees for the graph-aware transformation.
///
/// Non-leaf tree nodes are connected *induced* sub-patterns. Two kinds of
/// decomposition steps exist (Sec 3.1.2):
///  * star removal — the right child is a complete star MMC (which may be
///    a non-induced sub-pattern, but only as a leaf; cf. Fig 3's note that
///    the wedge P2 cannot be an intermediate node);
///  * binary join of two connected induced proper sub-patterns whose edge
///    sets partition the parent's edges (shared vertices form the join
///    key). Shared-edge overlaps would duplicate work the star MMC already
///    expresses, so they are not part of the enumerated space.
class AwareCounter {
 public:
  explicit AwareCounter(const PatternGraph& p) : p_(p) {}

  double Count() { return CountMask(p_.AllVertices()); }

 private:
  double CountMask(VSet mask) {
    if (PopCount(mask) == 1) return 1.0;
    auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    double total = 0.0;

    // Option A: remove a vertex v; the right child is the complete star
    // rooted at v with leaves N(v) within mask (an MMC leaf), the left
    // child is the induced sub-pattern on mask \ {v}.
    for (int v = 0; v < p_.num_vertices(); ++v) {
      if (!(mask & Bit(v))) continue;
      VSet rest = mask & ~Bit(v);
      if (rest == 0) continue;
      if (!p_.IsConnectedInduced(rest)) continue;
      total += CountMask(rest);
    }

    // Option B: binary join with edge-disjoint induced children. Since
    // children are induced, edge-disjointness means the vertex overlap is
    // an independent set of the parent pattern.
    std::vector<int> mask_edges = p_.InducedEdges(mask);
    for (VSet s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
      if (!p_.IsConnectedInduced(s1)) continue;
      VSet rest = mask & ~s1;
      if (rest == 0) continue;  // s1 == mask excluded by the loop bounds
      for (VSet t = s1; t != 0; t = (t - 1) & s1) {
        VSet s2 = rest | t;
        if (s2 == mask) continue;
        if (!p_.IsConnectedInduced(s2)) continue;
        bool valid = true;
        for (int e : mask_edges) {
          VSet ends = Bit(p_.edge(e).src) | Bit(p_.edge(e).dst);
          bool in1 = (ends & s1) == ends;
          bool in2 = (ends & s2) == ends;
          if (in1 == in2) {  // uncovered or shared edge
            valid = false;
            break;
          }
        }
        if (!valid) continue;
        total += CountMask(s1) * CountMask(s2);
      }
    }
    memo_[mask] = total;
    return total;
  }

  const PatternGraph& p_;
  std::unordered_map<VSet, double> memo_;
};

}  // namespace

Result<double> CountAgnosticSearchSpace(const PatternGraph& p) {
  JoinGraph jg(p);
  std::vector<int> chain = jg.ChainOrder();
  if (!chain.empty()) return CountChainPlans(jg.num_nodes);
  if (jg.num_nodes > 20) {
    return Status::InvalidArgument(
        "graph-agnostic search space enumeration bounded to 20 relations "
        "for non-chain join graphs");
  }
  GenericJoinCounter counter(jg);
  return counter.Count();
}

Result<double> CountAwareSearchSpace(const PatternGraph& p) {
  if (p.num_vertices() > 20) {
    return Status::InvalidArgument("pattern too large to enumerate");
  }
  AwareCounter counter(p);
  return counter.Count();
}

}  // namespace pattern
}  // namespace relgo
