#ifndef RELGO_PATTERN_SEARCH_SPACE_H_
#define RELGO_PATTERN_SEARCH_SPACE_H_

#include "pattern/pattern_graph.h"

namespace relgo {
namespace pattern {

/// Exact enumerators for the optimizer search-space comparison of
/// Sec 3.1.3 / Fig 4a (Theorem 1).
///
/// Graph-agnostic space: the matching operator is flattened via Lemma 1
/// into a join over n vertex relations and m edge relations; the space is
/// the number of bushy join trees without cross products, counting
/// commutative variants (what a Volcano-style planner enumerates).
///
/// Graph-aware space: the number of valid decomposition trees, where every
/// tree node is a connected *induced* sub-pattern and leaves are MMCs
/// (single vertex or complete star rooted at a removed vertex).
///
/// Counts are returned as double: the agnostic space exceeds 10^15 for
/// 10-edge paths, matching the paper's Fig 4a scale.

/// Number of join trees explored by the graph-agnostic transformation.
/// Uses an O(n^3) interval DP when the Lemma-1 join graph is a chain
/// (e.g. path patterns); otherwise a bitmask DP bounded to 20 relations.
Result<double> CountAgnosticSearchSpace(const PatternGraph& p);

/// Number of decomposition trees explored by the graph-aware approach.
Result<double> CountAwareSearchSpace(const PatternGraph& p);

}  // namespace pattern
}  // namespace relgo

#endif  // RELGO_PATTERN_SEARCH_SPACE_H_
