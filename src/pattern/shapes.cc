#include "pattern/shapes.h"

namespace relgo {
namespace pattern {

PatternGraph MakePathPattern(int m, int vertex_label, int edge_label) {
  PatternGraph p;
  int prev = p.AddVertex(vertex_label, "v0");
  for (int i = 1; i <= m; ++i) {
    int next = p.AddVertex(vertex_label, "v" + std::to_string(i));
    p.AddEdge(edge_label, prev, next);
    prev = next;
  }
  return p;
}

PatternGraph MakeCyclePattern(int k, int vertex_label, int edge_label) {
  PatternGraph p;
  std::vector<int> vs;
  for (int i = 0; i < k; ++i) {
    vs.push_back(p.AddVertex(vertex_label, "v" + std::to_string(i)));
  }
  for (int i = 0; i < k; ++i) {
    p.AddEdge(edge_label, vs[i], vs[(i + 1) % k]);
  }
  return p;
}

PatternGraph MakeCliquePattern(int k, int vertex_label, int edge_label) {
  PatternGraph p;
  std::vector<int> vs;
  for (int i = 0; i < k; ++i) {
    vs.push_back(p.AddVertex(vertex_label, "v" + std::to_string(i)));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      p.AddEdge(edge_label, vs[i], vs[j]);
    }
  }
  return p;
}

PatternGraph MakeStarPattern(int k, int vertex_label, int edge_label) {
  PatternGraph p;
  int root = p.AddVertex(vertex_label, "root");
  for (int i = 0; i < k; ++i) {
    int leaf = p.AddVertex(vertex_label, "leaf" + std::to_string(i));
    p.AddEdge(edge_label, root, leaf);
  }
  return p;
}

}  // namespace pattern
}  // namespace relgo
