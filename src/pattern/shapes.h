#ifndef RELGO_PATTERN_SHAPES_H_
#define RELGO_PATTERN_SHAPES_H_

#include "pattern/pattern_graph.h"

namespace relgo {
namespace pattern {

/// Factory helpers for the pattern shapes used throughout the paper's
/// micro-benchmarks: paths (Fig 4a), and the cyclic shapes of QC1..3
/// (triangle, square, 4-clique) over a single self-referencing edge label
/// such as Person-Knows->Person.

/// A path with `m` edges (m+1 vertices), all with `vertex_label`, connected
/// by `edge_label` edges oriented forward.
PatternGraph MakePathPattern(int m, int vertex_label, int edge_label);

/// A directed cycle with `k` vertices.
PatternGraph MakeCyclePattern(int k, int vertex_label, int edge_label);

/// A complete directed graph on `k` vertices (i<j edges), e.g. 4-clique.
PatternGraph MakeCliquePattern(int k, int vertex_label, int edge_label);

/// A star with one root and `k` leaves (root -> leaf edges).
PatternGraph MakeStarPattern(int k, int vertex_label, int edge_label);

}  // namespace pattern
}  // namespace relgo

#endif  // RELGO_PATTERN_SHAPES_H_
