#include "plan/physical_plan.h"

#include <sstream>

#include "common/string_util.h"

namespace relgo {
namespace plan {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScanTable:
      return "SCAN_TABLE";
    case OpKind::kFilter:
      return "FILTER";
    case OpKind::kProject:
      return "PROJECTION";
    case OpKind::kHashJoin:
      return "HASH_JOIN";
    case OpKind::kRidLookupJoin:
      return "RID_JOIN";
    case OpKind::kRidExpandJoin:
      return "RID_EXPAND_JOIN";
    case OpKind::kHashAggregate:
      return "HASH_AGGREGATE";
    case OpKind::kOrderBy:
      return "ORDER_BY";
    case OpKind::kLimit:
      return "LIMIT";
    case OpKind::kScanVertex:
      return "SCAN";
    case OpKind::kExpandEdge:
      return "EXPAND_EDGE";
    case OpKind::kGetVertex:
      return "GET_VERTEX";
    case OpKind::kExpand:
      return "EXPAND";
    case OpKind::kExpandIntersect:
      return "EXPAND_INTERSECT";
    case OpKind::kEdgeVerify:
      return "EDGE_VERIFY";
    case OpKind::kPatternJoin:
      return "PATTERN_JOIN";
    case OpKind::kVertexFilter:
      return "VERTEX_FILTER";
    case OpKind::kNotEqual:
      return "NOT_EQUAL";
    case OpKind::kNaiveMatch:
      return "NAIVE_MATCH";
    case OpKind::kScanGraphTable:
      return "SCAN_GRAPH_TABLE";
  }
  return "?";
}

std::string PrintPlan(const PhysicalOp& op, int indent) {
  std::ostringstream os;
  for (int i = 0; i < indent; ++i) os << "  ";
  os << op.Describe();
  if (op.estimated_cardinality >= 0) {
    os << "  [est=" << StrFormat("%.0f", op.estimated_cardinality);
    if (op.estimated_cost >= 0) {
      os << " cost=" << StrFormat("%.0f", op.estimated_cost);
    }
    os << "]";
  }
  os << "\n";
  for (const auto& child : op.children) {
    os << PrintPlan(*child, indent + 1);
  }
  return os.str();
}

namespace {
std::string DirArrow(graph::Direction dir) {
  return dir == graph::Direction::kOut ? "->" : "<-";
}
}  // namespace

std::string PhysScanTable::Describe() const {
  std::string out = "SCAN_TABLE " + table;
  if (alias != table && !alias.empty()) out += " AS " + alias;
  if (filter) out += " (" + filter->ToString() + ")";
  return out;
}

std::string PhysFilter::Describe() const {
  return "FILTER (" + (predicate ? predicate->ToString() : "true") + ")";
}

std::string PhysProject::Describe() const {
  std::string out = "PROJECTION ";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    out += columns[i].first;
    if (columns[i].second != columns[i].first) {
      out += " AS " + columns[i].second;
    }
  }
  return out;
}

std::string PhysHashJoin::Describe() const {
  std::string out = "HASH_JOIN (";
  for (size_t i = 0; i < left_keys.size(); ++i) {
    if (i) out += " AND ";
    out += left_keys[i] + " = " + right_keys[i];
  }
  return out + ")";
}

std::string PhysRidLookupJoin::Describe() const {
  return "RID_JOIN " + edge_rowid_column + " " + DirArrow(dir) + " " +
         vertex_alias +
         (vertex_filter ? " (" + vertex_filter->ToString() + ")" : "");
}

std::string PhysRidExpandJoin::Describe() const {
  return "RID_EXPAND_JOIN " + vertex_rowid_column + " " + DirArrow(dir) +
         " " + edge_alias +
         (edge_filter ? " (" + edge_filter->ToString() + ")" : "");
}

std::string PhysHashAggregate::Describe() const {
  std::string out = "HASH_AGGREGATE ";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i) out += ", ";
    switch (aggregates[i].func) {
      case AggFunc::kCount:
        out += "COUNT";
        break;
      case AggFunc::kMin:
        out += "MIN";
        break;
      case AggFunc::kMax:
        out += "MAX";
        break;
      case AggFunc::kSum:
        out += "SUM";
        break;
    }
    out += "(" + (aggregates[i].input_column.empty()
                      ? "*"
                      : aggregates[i].input_column) +
           ")";
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + Join(group_by, ", ");
  }
  return out;
}

std::string PhysOrderBy::Describe() const {
  std::string out = "ORDER_BY ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ", ";
    out += keys[i].column + (keys[i].ascending ? " ASC" : " DESC");
  }
  return out;
}

std::string PhysLimit::Describe() const {
  return "LIMIT " + std::to_string(limit);
}

std::string PhysScanVertex::Describe() const {
  return "SCAN " + var + (filter ? " (" + filter->ToString() + ")" : "");
}

std::string PhysExpandEdge::Describe() const {
  return "EXPAND_EDGE " + from_var + " " + DirArrow(dir) + " [" + edge_var +
         "]";
}

std::string PhysGetVertex::Describe() const {
  return "GET_VERTEX [" + edge_var + "] " + DirArrow(dir) + " " + to_var +
         (vertex_filter ? " (" + vertex_filter->ToString() + ")" : "");
}

std::string PhysExpand::Describe() const {
  return std::string(use_index ? "EXPAND " : "EXPAND(hash) ") + from_var +
         " " + DirArrow(dir) + " " + to_var +
         (edge_var.empty() ? "" : " [" + edge_var + "]") +
         (vertex_filter ? " (" + vertex_filter->ToString() + ")" : "");
}

std::string PhysExpandIntersect::Describe() const {
  std::string out = "EXPAND_INTERSECT {";
  for (size_t i = 0; i < from_vars.size(); ++i) {
    if (i) out += ", ";
    out += from_vars[i] + " " + DirArrow(dirs[i]);
  }
  return out + "} " + to_var;
}

std::string PhysEdgeVerify::Describe() const {
  return "EDGE_VERIFY " + src_var + " " + DirArrow(dir) + " " + dst_var +
         (edge_var.empty() ? "" : " [" + edge_var + "]");
}

std::string PhysPatternJoin::Describe() const {
  return "PATTERN_JOIN on {" + Join(common_vars, ", ") + "}";
}

std::string PhysVertexFilter::Describe() const {
  return "VERTEX_FILTER " + var + " (" +
         (predicate ? predicate->ToString() : "true") + ")";
}

std::string PhysNotEqual::Describe() const {
  return "NOT_EQUAL " + var_a + " <> " + var_b;
}

std::string PhysNaiveMatch::Describe() const {
  return "NAIVE_MATCH " + pattern.ToString();
}

std::string PhysScanGraphTable::Describe() const {
  std::string out = "SCAN_GRAPH_TABLE COLUMNS(";
  for (size_t i = 0; i < projections.size(); ++i) {
    if (i) out += ", ";
    out += projections[i].var + "." + projections[i].column;
    if (projections[i].output_name !=
        projections[i].var + "." + projections[i].column) {
      out += " AS " + projections[i].output_name;
    }
  }
  return out + ")";
}

}  // namespace plan
}  // namespace relgo
