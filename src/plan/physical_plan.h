#ifndef RELGO_PLAN_PHYSICAL_PLAN_H_
#define RELGO_PLAN_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/rg_mapping.h"
#include "plan/spjm_query.h"
#include "storage/expression.h"

namespace relgo {
namespace plan {

/// Physical operator kinds. The first group operates on relational tables;
/// the second group on *binding tables* (intermediate graph relations whose
/// columns are vertex/edge row ids keyed by pattern variable name,
/// Sec 3.2.2); SCAN_GRAPH_TABLE bridges the two worlds.
enum class OpKind {
  // Relational operators.
  kScanTable,
  kFilter,
  kProject,
  kHashJoin,
  kRidLookupJoin,   ///< GRainDB predefined join: edge rowid -> endpoint tuple
  kRidExpandJoin,   ///< GRainDB predefined join: vertex rowid -> edge tuples
  kHashAggregate,
  kOrderBy,
  kLimit,
  // Graph (binding table) operators.
  kScanVertex,
  kExpandEdge,
  kGetVertex,
  kExpand,           ///< fused EXPAND_EDGE + GET_VERTEX (TrimAndFuseRule)
  kExpandIntersect,  ///< wco star join
  kEdgeVerify,       ///< closes one edge between two bound vertices
  kPatternJoin,      ///< hash join of two binding tables on shared vars
  kVertexFilter,     ///< predicate on a bound vertex's attributes
  kNotEqual,         ///< all-distinct constraint between two bound vars
  kNaiveMatch,       ///< backtracking matcher (GdbmsSim baseline)
  // Bridge.
  kScanGraphTable,   ///< encapsulated graph sub-plan + pi-hat projection
};

const char* OpKindName(OpKind kind);

/// Base class of the physical plan tree. Plans are pure data; execution
/// lives in exec/executor.*, which keeps the optimizer and the plan
/// printer free of engine dependencies.
struct PhysicalOp {
  explicit PhysicalOp(OpKind k) : kind(k) {}
  virtual ~PhysicalOp() = default;

  OpKind kind;
  std::vector<std::unique_ptr<PhysicalOp>> children;
  double estimated_cardinality = -1.0;  ///< optimizer estimate, for EXPLAIN
  /// Estimator-input signature this node's estimate was derived from
  /// (optimizer/feedback.h key namespace); empty when the node's estimate
  /// has no correctable statistics input. Adaptive-statistics feedback
  /// maps the node's measured actual cardinality back to this key.
  std::string feedback_key;
  /// Cumulative optimizer cost of the subtree rooted here (C_out-style:
  /// the sum of intermediate cardinalities the optimizer expects this
  /// subtree to materialize). -1 when the emitting path has no cost model;
  /// optimizer::AnnotatePlanEstimates fills such gaps before plans leave
  /// the optimizer.
  double estimated_cost = -1.0;

  /// One-line operator label for plan rendering, e.g.
  /// "HASH_JOIN(g.p1_place_id = place.id)".
  virtual std::string Describe() const { return OpKindName(kind); }
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Renders the plan tree with indentation (Fig 6 / Fig 12 style output).
std::string PrintPlan(const PhysicalOp& op, int indent = 0);

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

/// Scans a base table under an alias. Output columns are named
/// "alias.column". With `emit_rowid`, prepends the implicit row id column
/// "alias.$rid" used by the predefined-join operators.
struct PhysScanTable : PhysicalOp {
  PhysScanTable() : PhysicalOp(OpKind::kScanTable) {}
  std::string table;
  std::string alias;
  storage::ExprPtr filter;  ///< over the raw table schema; may be null
  std::vector<std::string> projected_columns;  ///< raw names; empty == all
  bool emit_rowid = false;
  std::string Describe() const override;
};

struct PhysFilter : PhysicalOp {
  PhysFilter() : PhysicalOp(OpKind::kFilter) {}
  storage::ExprPtr predicate;  ///< over the child's output schema
  std::string Describe() const override;
};

struct PhysProject : PhysicalOp {
  PhysProject() : PhysicalOp(OpKind::kProject) {}
  /// (source column, output name) pairs.
  std::vector<std::pair<std::string, std::string>> columns;
  std::string Describe() const override;
};

struct PhysHashJoin : PhysicalOp {
  PhysHashJoin() : PhysicalOp(OpKind::kHashJoin) {}
  /// Equi-join keys; children[0] (probe) columns vs children[1] (build).
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  std::string Describe() const override;
};

/// GRainDB-style predefined join, edge side driving: for each input row
/// carrying the edge row id column `edge_rowid_column`, fetches the
/// source/target (per `dir`) vertex tuple via the EV-index — no hash table.
struct PhysRidLookupJoin : PhysicalOp {
  PhysRidLookupJoin() : PhysicalOp(OpKind::kRidLookupJoin) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;  ///< kOut fetches source
  std::string edge_rowid_column;
  std::string vertex_alias;
  std::vector<std::string> vertex_columns;  ///< raw names; empty == all
  storage::ExprPtr vertex_filter;           ///< residual filter on the vertex
  bool emit_vertex_rowid = false;
  std::string Describe() const override;
};

/// GRainDB-style predefined join, vertex side driving: for each input row
/// carrying the vertex row id column, emits one output row per incident
/// edge via the VE-index (CSR).
struct PhysRidExpandJoin : PhysicalOp {
  PhysRidExpandJoin() : PhysicalOp(OpKind::kRidExpandJoin) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;  ///< kOut: vertex is source
  std::string vertex_rowid_column;
  std::string edge_alias;
  std::vector<std::string> edge_columns;
  storage::ExprPtr edge_filter;
  bool emit_edge_rowid = false;
  std::string Describe() const override;
};

struct PhysHashAggregate : PhysicalOp {
  PhysHashAggregate() : PhysicalOp(OpKind::kHashAggregate) {}
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  std::string Describe() const override;
};

struct PhysOrderBy : PhysicalOp {
  PhysOrderBy() : PhysicalOp(OpKind::kOrderBy) {}
  std::vector<SortKey> keys;
  std::string Describe() const override;
};

struct PhysLimit : PhysicalOp {
  PhysLimit() : PhysicalOp(OpKind::kLimit) {}
  int64_t limit = -1;
  std::string Describe() const override;
};

// ---------------------------------------------------------------------------
// Graph operators (binding tables: one int64 row-id column per bound var)
// ---------------------------------------------------------------------------

/// Entry point of every graph plan: scans the vertex relation of
/// `vertex_label`, emitting the row id of each tuple (optionally filtered)
/// as binding column `var`.
struct PhysScanVertex : PhysicalOp {
  PhysScanVertex() : PhysicalOp(OpKind::kScanVertex) {}
  int vertex_label = -1;
  std::string var;
  storage::ExprPtr filter;  ///< pushed-down constraint (FilterIntoMatchRule)
  std::string Describe() const override;
};

/// EXPAND_EDGE: for each row, looks up the VE-index of the vertex bound to
/// `from_var` and emits one row per adjacent edge, binding `edge_var`.
struct PhysExpandEdge : PhysicalOp {
  PhysExpandEdge() : PhysicalOp(OpKind::kExpandEdge) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;
  std::string from_var;
  std::string edge_var;
  storage::ExprPtr edge_filter;
  std::string Describe() const override;
};

/// GET_VERTEX: binds `to_var` to the other endpoint of the edge bound to
/// `edge_var`, via the EV-index.
struct PhysGetVertex : PhysicalOp {
  PhysGetVertex() : PhysicalOp(OpKind::kGetVertex) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;  ///< side being fetched
  std::string edge_var;
  std::string to_var;
  storage::ExprPtr vertex_filter;
  std::string Describe() const override;
};

/// Fused EXPAND (TrimAndFuseRule): neighbors directly, edge ids dropped.
/// When no graph index is available (RelGoHash), executes as a hash join
/// between the binding table and the edge relation (Case II reduction).
struct PhysExpand : PhysicalOp {
  PhysExpand() : PhysicalOp(OpKind::kExpand) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;
  std::string from_var;
  std::string to_var;
  std::string edge_var;  ///< empty when the edge binding was trimmed
  storage::ExprPtr vertex_filter;
  bool use_index = true;
  std::string Describe() const override;
};

/// EXPAND_INTERSECT (Case III): binds `to_var` to the common neighbors of
/// all `from_vars`, intersecting sorted adjacency lists in one pipelined
/// pass (the wco star join). Leaf i connects via edge_labels[i]/dirs[i]
/// (kOut means from_vars[i] -> to_var).
struct PhysExpandIntersect : PhysicalOp {
  PhysExpandIntersect() : PhysicalOp(OpKind::kExpandIntersect) {}
  std::vector<int> edge_labels;
  std::vector<graph::Direction> dirs;
  std::vector<std::string> from_vars;
  std::vector<std::string> edge_vars;  ///< empty strings when trimmed
  std::string to_var;
  storage::ExprPtr vertex_filter;
  std::string Describe() const override;
};

/// Closes one pattern edge between two already-bound vertices (used by the
/// RelGoNoEI variant, which replaces EXPAND_INTERSECT with a chain of
/// expand + verify joins).
struct PhysEdgeVerify : PhysicalOp {
  PhysEdgeVerify() : PhysicalOp(OpKind::kEdgeVerify) {}
  int edge_label = -1;
  graph::Direction dir = graph::Direction::kOut;  ///< kOut: src_var -> dst_var
  std::string src_var;
  std::string dst_var;
  std::string edge_var;  ///< empty == edge binding not needed
  bool use_index = true;
  std::string Describe() const override;
};

/// Natural join of two binding tables on their shared variables (Case I).
struct PhysPatternJoin : PhysicalOp {
  PhysPatternJoin() : PhysicalOp(OpKind::kPatternJoin) {}
  std::vector<std::string> common_vars;
  std::string Describe() const override;
};

/// Applies a predicate over the attributes of the vertex/edge tuple bound
/// to `var` (the element lives in table `table_label` space).
struct PhysVertexFilter : PhysicalOp {
  PhysVertexFilter() : PhysicalOp(OpKind::kVertexFilter) {}
  std::string var;
  bool is_edge = false;
  int label = -1;
  storage::ExprPtr predicate;
  std::string Describe() const override;
};

/// Enforces var_a != var_b (row ids), implementing the all-distinct
/// operator for isomorphism-style semantics (Sec 3.1).
struct PhysNotEqual : PhysicalOp {
  PhysNotEqual() : PhysicalOp(OpKind::kNotEqual) {}
  std::string var_a;
  std::string var_b;
  std::string Describe() const override;
};

/// Leaf operator running the reference backtracking matcher over the whole
/// pattern (fixed traversal order, no cost-based planning). This is the
/// execution model of the GdbmsSim baseline standing in for a prototype
/// native graph DBMS.
struct PhysNaiveMatch : PhysicalOp {
  PhysNaiveMatch() : PhysicalOp(OpKind::kNaiveMatch) {}
  pattern::PatternGraph pattern;
  std::string Describe() const override;
};

// ---------------------------------------------------------------------------
// Bridge
// ---------------------------------------------------------------------------

/// SCAN_GRAPH_TABLE (Sec 4.2.2): wraps the optimized graph sub-plan
/// (children[0], producing a binding table) and applies the pi-hat
/// projection to flatten graph elements into relational columns. To the
/// relational optimizer this is an ordinary scan.
struct PhysScanGraphTable : PhysicalOp {
  PhysScanGraphTable() : PhysicalOp(OpKind::kScanGraphTable) {}
  std::vector<GraphProjection> projections;
  /// Vars whose raw row id should be kept as column "var.$rid" (used when
  /// outer predefined joins consume them).
  std::vector<std::string> rowid_passthrough;
  /// var -> is_edge/label resolution for the projections.
  std::vector<std::pair<std::string, int>> vertex_var_labels;
  std::vector<std::pair<std::string, int>> edge_var_labels;
  std::string Describe() const override;
};

}  // namespace plan
}  // namespace relgo

#endif  // RELGO_PLAN_PHYSICAL_PLAN_H_
