#include "plan/plan_clone.h"

#include <memory>
#include <utility>

namespace relgo {
namespace plan {

namespace {

storage::ExprPtr Tx(const ExprTransform& transform,
                    const storage::ExprPtr& e) {
  return e ? transform(e) : nullptr;
}

}  // namespace

PhysicalOpPtr ClonePlan(const PhysicalOp& op, const ExprTransform& transform) {
  PhysicalOpPtr out;
  switch (op.kind) {
    case OpKind::kScanTable: {
      const auto& n = static_cast<const PhysScanTable&>(op);
      auto c = std::make_unique<PhysScanTable>();
      c->table = n.table;
      c->alias = n.alias;
      c->filter = Tx(transform, n.filter);
      c->projected_columns = n.projected_columns;
      c->emit_rowid = n.emit_rowid;
      out = std::move(c);
      break;
    }
    case OpKind::kFilter: {
      const auto& n = static_cast<const PhysFilter&>(op);
      auto c = std::make_unique<PhysFilter>();
      c->predicate = Tx(transform, n.predicate);
      out = std::move(c);
      break;
    }
    case OpKind::kProject: {
      const auto& n = static_cast<const PhysProject&>(op);
      auto c = std::make_unique<PhysProject>();
      c->columns = n.columns;
      out = std::move(c);
      break;
    }
    case OpKind::kHashJoin: {
      const auto& n = static_cast<const PhysHashJoin&>(op);
      auto c = std::make_unique<PhysHashJoin>();
      c->left_keys = n.left_keys;
      c->right_keys = n.right_keys;
      out = std::move(c);
      break;
    }
    case OpKind::kRidLookupJoin: {
      const auto& n = static_cast<const PhysRidLookupJoin&>(op);
      auto c = std::make_unique<PhysRidLookupJoin>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->edge_rowid_column = n.edge_rowid_column;
      c->vertex_alias = n.vertex_alias;
      c->vertex_columns = n.vertex_columns;
      c->vertex_filter = Tx(transform, n.vertex_filter);
      c->emit_vertex_rowid = n.emit_vertex_rowid;
      out = std::move(c);
      break;
    }
    case OpKind::kRidExpandJoin: {
      const auto& n = static_cast<const PhysRidExpandJoin&>(op);
      auto c = std::make_unique<PhysRidExpandJoin>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->vertex_rowid_column = n.vertex_rowid_column;
      c->edge_alias = n.edge_alias;
      c->edge_columns = n.edge_columns;
      c->edge_filter = Tx(transform, n.edge_filter);
      c->emit_edge_rowid = n.emit_edge_rowid;
      out = std::move(c);
      break;
    }
    case OpKind::kHashAggregate: {
      const auto& n = static_cast<const PhysHashAggregate&>(op);
      auto c = std::make_unique<PhysHashAggregate>();
      c->group_by = n.group_by;
      c->aggregates = n.aggregates;
      out = std::move(c);
      break;
    }
    case OpKind::kOrderBy: {
      const auto& n = static_cast<const PhysOrderBy&>(op);
      auto c = std::make_unique<PhysOrderBy>();
      c->keys = n.keys;
      out = std::move(c);
      break;
    }
    case OpKind::kLimit: {
      const auto& n = static_cast<const PhysLimit&>(op);
      auto c = std::make_unique<PhysLimit>();
      c->limit = n.limit;
      out = std::move(c);
      break;
    }
    case OpKind::kScanVertex: {
      const auto& n = static_cast<const PhysScanVertex&>(op);
      auto c = std::make_unique<PhysScanVertex>();
      c->vertex_label = n.vertex_label;
      c->var = n.var;
      c->filter = Tx(transform, n.filter);
      out = std::move(c);
      break;
    }
    case OpKind::kExpandEdge: {
      const auto& n = static_cast<const PhysExpandEdge&>(op);
      auto c = std::make_unique<PhysExpandEdge>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->from_var = n.from_var;
      c->edge_var = n.edge_var;
      c->edge_filter = Tx(transform, n.edge_filter);
      out = std::move(c);
      break;
    }
    case OpKind::kGetVertex: {
      const auto& n = static_cast<const PhysGetVertex&>(op);
      auto c = std::make_unique<PhysGetVertex>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->edge_var = n.edge_var;
      c->to_var = n.to_var;
      c->vertex_filter = Tx(transform, n.vertex_filter);
      out = std::move(c);
      break;
    }
    case OpKind::kExpand: {
      const auto& n = static_cast<const PhysExpand&>(op);
      auto c = std::make_unique<PhysExpand>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->from_var = n.from_var;
      c->to_var = n.to_var;
      c->edge_var = n.edge_var;
      c->vertex_filter = Tx(transform, n.vertex_filter);
      c->use_index = n.use_index;
      out = std::move(c);
      break;
    }
    case OpKind::kExpandIntersect: {
      const auto& n = static_cast<const PhysExpandIntersect&>(op);
      auto c = std::make_unique<PhysExpandIntersect>();
      c->edge_labels = n.edge_labels;
      c->dirs = n.dirs;
      c->from_vars = n.from_vars;
      c->edge_vars = n.edge_vars;
      c->to_var = n.to_var;
      c->vertex_filter = Tx(transform, n.vertex_filter);
      out = std::move(c);
      break;
    }
    case OpKind::kEdgeVerify: {
      const auto& n = static_cast<const PhysEdgeVerify&>(op);
      auto c = std::make_unique<PhysEdgeVerify>();
      c->edge_label = n.edge_label;
      c->dir = n.dir;
      c->src_var = n.src_var;
      c->dst_var = n.dst_var;
      c->edge_var = n.edge_var;
      c->use_index = n.use_index;
      out = std::move(c);
      break;
    }
    case OpKind::kPatternJoin: {
      const auto& n = static_cast<const PhysPatternJoin&>(op);
      auto c = std::make_unique<PhysPatternJoin>();
      c->common_vars = n.common_vars;
      out = std::move(c);
      break;
    }
    case OpKind::kVertexFilter: {
      const auto& n = static_cast<const PhysVertexFilter&>(op);
      auto c = std::make_unique<PhysVertexFilter>();
      c->var = n.var;
      c->is_edge = n.is_edge;
      c->label = n.label;
      c->predicate = Tx(transform, n.predicate);
      out = std::move(c);
      break;
    }
    case OpKind::kNotEqual: {
      const auto& n = static_cast<const PhysNotEqual&>(op);
      auto c = std::make_unique<PhysNotEqual>();
      c->var_a = n.var_a;
      c->var_b = n.var_b;
      out = std::move(c);
      break;
    }
    case OpKind::kNaiveMatch: {
      const auto& n = static_cast<const PhysNaiveMatch&>(op);
      auto c = std::make_unique<PhysNaiveMatch>();
      // PatternGraph's copy shares ExprPtr predicates with the source;
      // re-point each one through the transform so the copy owns its own
      // (possibly re-bound) constraint trees.
      c->pattern = n.pattern;
      for (int i = 0; i < c->pattern.num_vertices(); ++i) {
        c->pattern.vertex(i).predicate =
            Tx(transform, c->pattern.vertex(i).predicate);
      }
      for (int i = 0; i < c->pattern.num_edges(); ++i) {
        c->pattern.edge(i).predicate =
            Tx(transform, c->pattern.edge(i).predicate);
      }
      out = std::move(c);
      break;
    }
    case OpKind::kScanGraphTable: {
      const auto& n = static_cast<const PhysScanGraphTable&>(op);
      auto c = std::make_unique<PhysScanGraphTable>();
      c->projections = n.projections;
      c->rowid_passthrough = n.rowid_passthrough;
      c->vertex_var_labels = n.vertex_var_labels;
      c->edge_var_labels = n.edge_var_labels;
      out = std::move(c);
      break;
    }
  }
  for (const auto& child : op.children) {
    out->children.push_back(ClonePlan(*child, transform));
  }
  out->estimated_cardinality = op.estimated_cardinality;
  out->feedback_key = op.feedback_key;
  out->estimated_cost = op.estimated_cost;
  return out;
}

PhysicalOpPtr ClonePlan(const PhysicalOp& op) {
  return ClonePlan(
      op, [](const storage::ExprPtr& e) { return e->Clone(); });
}

}  // namespace plan
}  // namespace relgo
