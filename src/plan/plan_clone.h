#ifndef RELGO_PLAN_PLAN_CLONE_H_
#define RELGO_PLAN_PLAN_CLONE_H_

#include <functional>

#include "plan/physical_plan.h"

namespace relgo {
namespace plan {

/// Transform applied to every expression slot while cloning a plan.
/// Receives a non-null source expression and returns the expression for
/// the copy (typically `e->Clone()` with some constants substituted).
/// Null expression slots are copied as null without calling the transform.
using ExprTransform = std::function<storage::ExprPtr(const storage::ExprPtr&)>;

/// Deep-copies a physical plan tree, applying `transform` to every
/// expression the plan carries (scan filters, join residuals, vertex/edge
/// predicates, and the pattern constraints inside kNaiveMatch). Estimator
/// annotations (estimated_cardinality, estimated_cost, feedback_key) are
/// copied verbatim. The plan cache uses this to rebind a cached template
/// plan against a new set of constants without mutating the cached tree.
PhysicalOpPtr ClonePlan(const PhysicalOp& op, const ExprTransform& transform);

/// Plain deep copy: every expression is cloned unchanged.
PhysicalOpPtr ClonePlan(const PhysicalOp& op);

}  // namespace plan
}  // namespace relgo

#endif  // RELGO_PLAN_PLAN_CLONE_H_
