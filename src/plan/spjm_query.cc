#include "plan/spjm_query.h"

#include "storage/expression_parser.h"

namespace relgo {
namespace plan {

SpjmQueryBuilder& SpjmQueryBuilder::Where(const std::string& predicate_text) {
  auto parsed = storage::ParseExpression(predicate_text);
  if (!parsed.ok()) {
    if (status_.ok()) status_ = parsed.status();
    return *this;
  }
  return Where(std::move(*parsed));
}

}  // namespace plan
}  // namespace relgo
