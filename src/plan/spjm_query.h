#ifndef RELGO_PLAN_SPJM_QUERY_H_
#define RELGO_PLAN_SPJM_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern_graph.h"
#include "storage/expression.h"

namespace relgo {
namespace plan {

/// One column of the graph-calibrated projection operator (pi-hat, Sec 2.3):
/// extracts attribute `column` of the pattern element bound to `var` under
/// the output name `output_name` (the SQL/PGQ COLUMNS clause).
struct GraphProjection {
  std::string var;          ///< pattern vertex/edge variable name
  std::string column;       ///< attribute of the underlying table
  std::string output_name;  ///< name in the projected relational schema
};

/// A relational join of the SPJ component: joins the accumulated result
/// with table `table` (aliased `alias`) on `left_column = alias.right_column`.
struct RelationalJoin {
  std::string table;
  std::string alias;
  std::string left_column;   ///< column of the accumulated input schema
  std::string right_column;  ///< raw column of `table`
  storage::ExprPtr scan_filter;  ///< optional pushed filter on `table`
};

/// Aggregate functions supported by the evaluation workloads.
enum class AggFunc { kCount, kMin, kMax, kSum };

struct AggregateSpec {
  AggFunc func;
  std::string input_column;  ///< ignored for COUNT(*) (empty)
  std::string output_name;
};

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// The SPJM query skeleton of Eq. 1:
///
///   Q = pi_A ( sigma_Psi ( R1 JOIN ... JOIN Rm JOIN (pi-hat_A* M_G(P)) ) )
///
/// `pattern` is the matching operator's pattern P; `graph_projections` is
/// pi-hat; `joins` are the relational joins R1..Rm; `where` is sigma_Psi
/// evaluated over the joined schema; and the output clause is either
/// `select` or `aggregates` (+ optional ORDER BY / LIMIT, which the LDBC
/// interactive workload needs).
///
/// This struct *is* the logical plan in canonical SPJM form; optimizer
/// rules (FilterIntoMatchRule) rewrite it in place before planning.
struct SpjmQuery {
  std::string name;  ///< for benchmark reporting, e.g. "IC5-2"

  pattern::PatternGraph pattern;
  std::vector<GraphProjection> graph_projections;
  std::vector<RelationalJoin> joins;
  storage::ExprPtr where;  ///< may be null

  std::vector<std::pair<std::string, std::string>> select;  ///< (src, out)
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  std::vector<SortKey> order_by;
  int64_t limit = -1;  ///< -1 == no limit
};

/// Fluent builder producing SpjmQuery values; used by the workload suites
/// and examples.
class SpjmQueryBuilder {
 public:
  explicit SpjmQueryBuilder(std::string name) { query_.name = std::move(name); }

  SpjmQueryBuilder& Match(pattern::PatternGraph pattern) {
    query_.pattern = std::move(pattern);
    return *this;
  }
  /// COLUMNS(var.column AS output_name)
  SpjmQueryBuilder& Column(std::string var, std::string column,
                           std::string output_name = "") {
    if (output_name.empty()) output_name = var + "." + column;
    query_.graph_projections.push_back(
        {std::move(var), std::move(column), std::move(output_name)});
    return *this;
  }
  SpjmQueryBuilder& Join(std::string table, std::string alias,
                         std::string left_column, std::string right_column,
                         storage::ExprPtr scan_filter = nullptr) {
    query_.joins.push_back({std::move(table), std::move(alias),
                            std::move(left_column), std::move(right_column),
                            std::move(scan_filter)});
    return *this;
  }
  SpjmQueryBuilder& Where(storage::ExprPtr predicate) {
    query_.where = query_.where
                       ? storage::Expr::And(query_.where, std::move(predicate))
                       : std::move(predicate);
    return *this;
  }
  /// Textual WHERE clause, parsed with storage::ParseExpression; see
  /// expression_parser.h for the grammar. Parse failures are recorded in
  /// status() and leave the query unchanged.
  SpjmQueryBuilder& Where(const std::string& predicate_text);
  SpjmQueryBuilder& Where(const char* predicate_text) {
    return Where(std::string(predicate_text));
  }
  SpjmQueryBuilder& Select(std::string column, std::string out_name = "") {
    if (out_name.empty()) out_name = column;
    query_.select.emplace_back(std::move(column), std::move(out_name));
    return *this;
  }
  SpjmQueryBuilder& GroupBy(std::string column) {
    query_.group_by.push_back(std::move(column));
    return *this;
  }
  SpjmQueryBuilder& Aggregate(AggFunc func, std::string input,
                              std::string out_name) {
    query_.aggregates.push_back(
        {func, std::move(input), std::move(out_name)});
    return *this;
  }
  SpjmQueryBuilder& OrderBy(std::string column, bool ascending = true) {
    query_.order_by.push_back({std::move(column), ascending});
    return *this;
  }
  SpjmQueryBuilder& Limit(int64_t n) {
    query_.limit = n;
    return *this;
  }

  SpjmQuery Build() { return std::move(query_); }

  /// OK unless a textual clause failed to parse.
  const Status& status() const { return status_; }

 private:
  SpjmQuery query_;
  Status status_;
};

}  // namespace plan
}  // namespace relgo

#endif  // RELGO_PLAN_SPJM_QUERY_H_
