#include "storage/catalog.h"

#include <algorithm>

namespace relgo {
namespace storage {

Result<TablePtr> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_shared<Table>(name, std::move(schema));
  tables_[name] = table;
  return table;
}

Status Catalog::RegisterTable(TablePtr table) {
  if (!table) return Status::InvalidArgument("null table");
  if (tables_.count(table->name())) {
    return Status::AlreadyExists("table '" + table->name() + "' exists");
  }
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (!tables_.erase(name)) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t Catalog::TotalRows() const {
  uint64_t total = 0;
  for (const auto& [_, t] : tables_) total += t->num_rows();
  return total;
}

}  // namespace storage
}  // namespace relgo
