#ifndef RELGO_STORAGE_CATALOG_H_
#define RELGO_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace relgo {
namespace storage {

/// Name -> table registry for base relations.
class Catalog {
 public:
  /// Creates and registers an empty table; fails if the name exists.
  Result<TablePtr> CreateTable(const std::string& name, Schema schema);

  /// Registers an existing table object.
  Status RegisterTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const { return tables_.count(name); }
  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

  /// Sum of rows across all registered tables (used in dataset statistics).
  uint64_t TotalRows() const;

 private:
  std::unordered_map<std::string, TablePtr> tables_;
};

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_CATALOG_H_
