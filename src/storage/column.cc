#include "storage/column.h"

#include <algorithm>
#include <limits>

namespace relgo {
namespace storage {

void Column::AppendNull() {
  if (validity_.empty()) validity_.assign(size_, 1);
  switch (type_) {
    case LogicalType::kDouble:
      doubles_.push_back(0.0);
      break;
    case LogicalType::kString:
      strings_.emplace_back();
      // Codes are total: the null row carries the code of its ""
      // placeholder (consumers gate on validity first, so the code is
      // never interpreted as a value).
      if (dict_ != nullptr) AppendCodeFor(strings_.back());
      break;
    default:
      ints_.push_back(0);
      break;
  }
  validity_.push_back(0);
  ++size_;
}

void Column::BuildDictionary() {
  if (type_ != LogicalType::kString) return;
  auto dict = std::make_shared<StringDictionary>();
  dict->values.assign(strings_.begin(), strings_.end());
  std::sort(dict->values.begin(), dict->values.end());
  dict->values.erase(std::unique(dict->values.begin(), dict->values.end()),
                     dict->values.end());
  if (dict->values.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return;  // int32 code space exhausted; stay payload-only
  }
  dict->index.reserve(dict->values.size());
  for (int32_t c = 0; c < dict->size(); ++c) {
    dict->index.emplace(dict->values[c], c);
  }
  codes_.clear();
  codes_.reserve(strings_.size());
  for (const std::string& s : strings_) {
    codes_.push_back(dict->index.find(s)->second);
  }
  dict_ = std::move(dict);
  dict_owner_ = true;
}

void Column::AppendInts(const int64_t* data, uint64_t count) {
  assert(type_ == LogicalType::kInt64 || type_ == LogicalType::kBool ||
         type_ == LogicalType::kDate);
  ints_.insert(ints_.end(), data, data + count);
  if (!validity_.empty()) validity_.insert(validity_.end(), count, 1);
  size_ += count;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case LogicalType::kBool:
      if (v.type() != LogicalType::kBool) break;
      AppendInt(v.bool_value() ? 1 : 0);
      return Status::OK();
    case LogicalType::kInt64:
      if (v.type() != LogicalType::kInt64) break;
      AppendInt(v.int_value());
      return Status::OK();
    case LogicalType::kDate:
      if (v.type() != LogicalType::kDate && v.type() != LogicalType::kInt64)
        break;
      AppendInt(v.type() == LogicalType::kDate ? v.date_value()
                                               : v.int_value());
      return Status::OK();
    case LogicalType::kDouble:
      if (v.type() != LogicalType::kDouble && v.type() != LogicalType::kInt64)
        break;
      AppendDouble(v.type() == LogicalType::kDouble
                       ? v.double_value()
                       : static_cast<double>(v.int_value()));
      return Status::OK();
    case LogicalType::kString:
      if (v.type() != LogicalType::kString) break;
      AppendString(v.string_value());
      return Status::OK();
    case LogicalType::kNull:
      break;
  }
  return Status::InvalidArgument(
      std::string("type mismatch appending ") + LogicalTypeName(v.type()) +
      " into column of " + LogicalTypeName(type_));
}

Value Column::GetValue(uint64_t i) const {
  if (!is_valid(i)) return Value::Null();
  switch (type_) {
    case LogicalType::kBool:
      return Value::Bool(ints_[i] != 0);
    case LogicalType::kInt64:
      return Value::Int(ints_[i]);
    case LogicalType::kDate:
      return Value::Date(static_cast<int32_t>(ints_[i]));
    case LogicalType::kDouble:
      return Value::Double(doubles_[i]);
    case LogicalType::kString:
      return Value::String(strings_[i]);
    case LogicalType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

Column Column::Gather(const std::vector<uint64_t>& indices) const {
  Column out(type_);
  out.AdoptDictionary(*this);
  out.Reserve(indices.size());
  if (validity_.empty()) {
    // All-valid fast path: one type dispatch for the whole gather instead
    // of a per-row switch (this is the hottest loop of both engines).
    switch (type_) {
      case LogicalType::kDouble:
        for (uint64_t idx : indices) out.doubles_.push_back(doubles_[idx]);
        break;
      case LogicalType::kString:
        if (dict_ != nullptr) {
          // Codes travel with the payload so derived batches keep the
          // shared dictionary without re-hashing a single string.
          for (uint64_t idx : indices) {
            out.strings_.push_back(strings_[idx]);
            out.codes_.push_back(codes_[idx]);
          }
        } else {
          for (uint64_t idx : indices) out.strings_.push_back(strings_[idx]);
        }
        break;
      default:
        for (uint64_t idx : indices) out.ints_.push_back(ints_[idx]);
        break;
    }
    out.size_ = indices.size();
    return out;
  }
  for (uint64_t idx : indices) out.AppendFrom(*this, idx);
  return out;
}

Column Column::Slice(uint64_t begin, uint64_t count) const {
  Column out(type_);
  out.AppendRange(*this, begin, count);
  return out;
}

void Column::AppendRange(const Column& other, uint64_t begin,
                         uint64_t count) {
  if (count == 0) return;
  AdoptDictionary(other);
  uint64_t end = begin + count;
  // Validity: materialize our vector first if the incoming range carries
  // nulls and we were in the allocation-free all-valid state.
  bool other_has_nulls = !other.validity_.empty();
  if (other_has_nulls && validity_.empty()) validity_.assign(size_, 1);
  if (!validity_.empty()) {
    if (other_has_nulls) {
      validity_.insert(validity_.end(), other.validity_.begin() + begin,
                       other.validity_.begin() + end);
    } else {
      validity_.insert(validity_.end(), count, 1);
    }
  }
  switch (type_) {
    case LogicalType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      break;
    case LogicalType::kString:
      strings_.insert(strings_.end(), other.strings_.begin() + begin,
                      other.strings_.begin() + end);
      if (dict_ != nullptr) {
        if (dict_.get() == other.dict_.get()) {
          codes_.insert(codes_.end(), other.codes_.begin() + begin,
                        other.codes_.begin() + end);
        } else {
          // Foreign (or no) source dictionary: re-code row by row; a
          // miss on a non-owner drops our encoding and ends the loop.
          for (uint64_t i = begin; i < end && dict_ != nullptr; ++i) {
            AppendCodeFor(other.strings_[i]);
          }
        }
      }
      break;
    default:
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      break;
  }
  size_ += count;
}

void Column::AppendFrom(const Column& other, uint64_t row) {
  AdoptDictionary(other);
  if (!other.is_valid(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case LogicalType::kDouble:
      AppendDouble(other.doubles_[row]);
      break;
    case LogicalType::kString:
      if (dict_ != nullptr && dict_.get() == other.dict_.get()) {
        // Shared dictionary: copy the code instead of re-hashing.
        codes_.push_back(other.codes_[row]);
        strings_.push_back(other.strings_[row]);
        if (!validity_.empty()) validity_.push_back(1);
        ++size_;
      } else {
        AppendString(other.strings_[row]);
      }
      break;
    default:
      AppendInt(other.ints_[row]);
      break;
  }
}

void Column::Reserve(uint64_t n) {
  switch (type_) {
    case LogicalType::kDouble:
      doubles_.reserve(n);
      break;
    case LogicalType::kString:
      strings_.reserve(n);
      if (dict_ != nullptr) codes_.reserve(n);
      break;
    default:
      ints_.reserve(n);
      break;
  }
}

}  // namespace storage
}  // namespace relgo
