#ifndef RELGO_STORAGE_COLUMN_H_
#define RELGO_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace relgo {
namespace storage {

/// A shared per-column string dictionary: `values[code]` is the string of
/// `code`, `index` inverts it. `sorted` is true while `values` is strictly
/// ascending — then code order coincides with lexicographic order, which
/// the kernel/sort layers exploit (BuildDictionary always produces a
/// sorted dictionary; incremental appends of novel strings go to the end
/// and may clear the flag, never invalidating existing codes).
///
/// The dictionary is shared (via shared_ptr) between a base column and
/// every batch column derived from it through Gather/Slice/AppendRange/
/// AppendFrom. Only the owning base column may add entries (see
/// Column::AppendString); all other sharers treat it as immutable, so a
/// reader never meets a code it cannot resolve.
struct StringDictionary {
  std::vector<std::string> values;
  std::unordered_map<std::string, int32_t> index;
  bool sorted = true;

  int32_t size() const { return static_cast<int32_t>(values.size()); }

  /// Code of `s`, or -1 when absent.
  int32_t Find(const std::string& s) const {
    auto it = index.find(s);
    return it == index.end() ? -1 : it->second;
  }

  /// Code of `s`, appending a new entry when absent (owner-only path).
  int32_t GetOrAdd(const std::string& s) {
    auto it = index.find(s);
    if (it != index.end()) return it->second;
    int32_t code = size();
    if (sorted && code > 0 && !(values.back() < s)) sorted = false;
    values.push_back(s);
    index.emplace(s, code);
    return code;
  }
};

/// A typed, append-only column vector.
///
/// Integers, booleans and dates share a single int64 payload vector; doubles
/// and strings use dedicated payloads. Nulls are tracked by an optional
/// validity vector (empty means "all rows valid"), which keeps the common
/// non-null path allocation-free.
class Column {
 public:
  explicit Column(LogicalType type) : type_(type) {}

  LogicalType type() const { return type_; }
  uint64_t size() const { return size_; }

  /// Appends a typed value; the fast paths below skip Value boxing. Like
  /// AppendInts, they keep the validity bitmap aligned when an earlier
  /// AppendNull materialized it (all-valid columns pay no branch cost
  /// beyond the empty() check).
  void AppendInt(int64_t v) {
    ints_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendString(std::string v) {
    if (dict_ != nullptr) AppendCodeFor(v);
    strings_.push_back(std::move(v));
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendNull();

  /// Bulk-appends `count` int64 payload values (all valid). Valid for the
  /// int64-payload types (kInt64 / kBool / kDate).
  void AppendInts(const int64_t* data, uint64_t count);

  /// Appends a boxed value; must match the column type (or be NULL).
  Status AppendValue(const Value& v);

  /// Unchecked typed accessors for hot paths.
  int64_t int_at(uint64_t i) const { return ints_[i]; }
  double double_at(uint64_t i) const { return doubles_[i]; }
  const std::string& string_at(uint64_t i) const { return strings_[i]; }

  bool is_valid(uint64_t i) const {
    return validity_.empty() || validity_[i] != 0;
  }

  /// Typed payload spans for vectorized kernels (src/exec/vector/). The
  /// debug-mode assertions pin the payload/type contract: int64, bool and
  /// date share the int64 payload; doubles and strings have their own.
  /// Kernels must consult `validity_data()` (nullptr == all rows valid)
  /// before trusting any payload slot.
  const int64_t* data_int64() const {
    assert(type_ == LogicalType::kInt64 || type_ == LogicalType::kBool ||
           type_ == LogicalType::kDate);
    return ints_.data();
  }
  const double* data_double() const {
    assert(type_ == LogicalType::kDouble);
    return doubles_.data();
  }
  const std::string* data_string() const {
    assert(type_ == LogicalType::kString);
    return strings_.data();
  }
  /// Validity bytes (1 == valid); nullptr when every row is valid.
  const uint8_t* validity_data() const {
    return validity_.empty() ? nullptr : validity_.data();
  }

  /// Builds (or rebuilds) a sorted-unique dictionary over the current
  /// string payload — null rows included via their "" placeholder — and
  /// codes every row. No-op for non-string columns. Called by
  /// Database::Finalize for every base-table string column; this column
  /// becomes the dictionary's owner, so later appends of novel strings
  /// extend the shared dictionary in place (existing codes never move).
  /// Not safe concurrently with queries — the standard mutation contract.
  void BuildDictionary();

  /// Drops dictionary + codes; the string payload stays authoritative.
  /// Batch columns use this when fed strings outside their shared
  /// dictionary — every dictionary consumer falls back to payloads.
  void DropDictionary() {
    dict_.reset();
    codes_.clear();
    dict_owner_ = false;
  }

  /// The shared dictionary, or nullptr when this column is not encoded.
  /// Kernel-layer consumers compare this pointer against the one they
  /// captured at compile time before trusting any code.
  const StringDictionary* dictionary() const { return dict_.get(); }

  /// Dictionary codes aligned with size(). Null rows carry the code of
  /// their "" payload placeholder, so consumers must still consult
  /// `validity_data()` — exactly like the payload spans. Only valid
  /// while dictionary() != nullptr.
  const int32_t* data_codes() const {
    assert(dict_ != nullptr);
    return codes_.data();
  }
  int32_t code_at(uint64_t i) const { return codes_[i]; }

  /// Boxed accessor used by expression evaluation and result rendering.
  Value GetValue(uint64_t i) const;

  /// Builds a new column containing rows at `indices`, in order.
  Column Gather(const std::vector<uint64_t>& indices) const;

  /// Builds a new column containing the contiguous rows
  /// [begin, begin + count); bulk-copies payload vectors (morsel slicing).
  Column Slice(uint64_t begin, uint64_t count) const;

  /// Appends row `row` of `other` (same type) onto this column.
  void AppendFrom(const Column& other, uint64_t row);

  /// Appends the contiguous rows [begin, begin + count) of `other` (same
  /// type); bulk-copies payload vectors (batch concatenation).
  void AppendRange(const Column& other, uint64_t begin, uint64_t count);

  void Reserve(uint64_t n);

 private:
  /// Pushes the code of `v` (invariant: dict_ != nullptr). The owner
  /// extends the dictionary for novel strings; sharers drop encoding
  /// instead — they must never mutate the shared dictionary.
  void AppendCodeFor(const std::string& v) {
    if (dict_owner_) {
      codes_.push_back(dict_->GetOrAdd(v));
      return;
    }
    int32_t code = dict_->Find(v);
    if (code < 0) {
      DropDictionary();
      return;
    }
    codes_.push_back(code);
  }

  /// Shares `src`'s dictionary (read-only) when this column is still
  /// empty and unencoded — the batch-materialization entry point.
  void AdoptDictionary(const Column& src) {
    if (src.dict_ != nullptr && dict_ == nullptr && size_ == 0) {
      dict_ = src.dict_;
      dict_owner_ = false;
    }
  }

  LogicalType type_;
  uint64_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> validity_;  // empty == all valid
  /// Dictionary encoding (kString only): while dict_ is set, codes_ is
  /// aligned with size_ and dict_->values[codes_[i]] == strings_[i].
  std::shared_ptr<StringDictionary> dict_;
  std::vector<int32_t> codes_;
  bool dict_owner_ = false;  // only the owner may extend dict_
};

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_COLUMN_H_
