#ifndef RELGO_STORAGE_COLUMN_H_
#define RELGO_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace relgo {
namespace storage {

/// A typed, append-only column vector.
///
/// Integers, booleans and dates share a single int64 payload vector; doubles
/// and strings use dedicated payloads. Nulls are tracked by an optional
/// validity vector (empty means "all rows valid"), which keeps the common
/// non-null path allocation-free.
class Column {
 public:
  explicit Column(LogicalType type) : type_(type) {}

  LogicalType type() const { return type_; }
  uint64_t size() const { return size_; }

  /// Appends a typed value; the fast paths below skip Value boxing. Like
  /// AppendInts, they keep the validity bitmap aligned when an earlier
  /// AppendNull materialized it (all-valid columns pay no branch cost
  /// beyond the empty() check).
  void AppendInt(int64_t v) {
    ints_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendString(std::string v) {
    strings_.push_back(std::move(v));
    if (!validity_.empty()) validity_.push_back(1);
    ++size_;
  }
  void AppendNull();

  /// Bulk-appends `count` int64 payload values (all valid). Valid for the
  /// int64-payload types (kInt64 / kBool / kDate).
  void AppendInts(const int64_t* data, uint64_t count);

  /// Appends a boxed value; must match the column type (or be NULL).
  Status AppendValue(const Value& v);

  /// Unchecked typed accessors for hot paths.
  int64_t int_at(uint64_t i) const { return ints_[i]; }
  double double_at(uint64_t i) const { return doubles_[i]; }
  const std::string& string_at(uint64_t i) const { return strings_[i]; }

  bool is_valid(uint64_t i) const {
    return validity_.empty() || validity_[i] != 0;
  }

  /// Typed payload spans for vectorized kernels (src/exec/vector/). The
  /// debug-mode assertions pin the payload/type contract: int64, bool and
  /// date share the int64 payload; doubles and strings have their own.
  /// Kernels must consult `validity_data()` (nullptr == all rows valid)
  /// before trusting any payload slot.
  const int64_t* data_int64() const {
    assert(type_ == LogicalType::kInt64 || type_ == LogicalType::kBool ||
           type_ == LogicalType::kDate);
    return ints_.data();
  }
  const double* data_double() const {
    assert(type_ == LogicalType::kDouble);
    return doubles_.data();
  }
  const std::string* data_string() const {
    assert(type_ == LogicalType::kString);
    return strings_.data();
  }
  /// Validity bytes (1 == valid); nullptr when every row is valid.
  const uint8_t* validity_data() const {
    return validity_.empty() ? nullptr : validity_.data();
  }

  /// Boxed accessor used by expression evaluation and result rendering.
  Value GetValue(uint64_t i) const;

  /// Builds a new column containing rows at `indices`, in order.
  Column Gather(const std::vector<uint64_t>& indices) const;

  /// Builds a new column containing the contiguous rows
  /// [begin, begin + count); bulk-copies payload vectors (morsel slicing).
  Column Slice(uint64_t begin, uint64_t count) const;

  /// Appends row `row` of `other` (same type) onto this column.
  void AppendFrom(const Column& other, uint64_t row);

  /// Appends the contiguous rows [begin, begin + count) of `other` (same
  /// type); bulk-copies payload vectors (batch concatenation).
  void AppendRange(const Column& other, uint64_t begin, uint64_t count);

  void Reserve(uint64_t n);

 private:
  LogicalType type_;
  uint64_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> validity_;  // empty == all valid
};

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_COLUMN_H_
