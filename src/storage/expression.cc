#include "storage/expression.h"

#include <unordered_map>

#include "common/string_util.h"

namespace relgo {
namespace storage {

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr(Kind::kColumnRef));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Constant(Value v) {
  auto e = ExprPtr(new Expr(Kind::kConstant));
  e->value_ = std::move(v);
  return e;
}

ExprPtr Expr::Param(int slot, Value v) {
  auto e = ExprPtr(new Expr(Kind::kConstant));
  e->value_ = std::move(v);
  e->param_slot_ = slot;
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(Kind::kAnd));
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Constant(Value::Bool(true));
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(Kind::kOr));
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = ExprPtr(new Expr(Kind::kNot));
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::StartsWith(ExprPtr inner, std::string prefix) {
  auto e = ExprPtr(new Expr(Kind::kStartsWith));
  e->children_ = {std::move(inner)};
  e->string_arg_ = std::move(prefix);
  return e;
}

ExprPtr Expr::Contains(ExprPtr inner, std::string needle) {
  auto e = ExprPtr(new Expr(Kind::kContains));
  e->children_ = {std::move(inner)};
  e->string_arg_ = std::move(needle);
  return e;
}

ExprPtr Expr::InList(ExprPtr inner, std::vector<Value> values) {
  auto e = ExprPtr(new Expr(Kind::kInList));
  e->children_ = {std::move(inner)};
  e->in_list_ = std::move(values);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr inner) {
  auto e = ExprPtr(new Expr(Kind::kIsNull));
  e->children_ = {std::move(inner)};
  return e;
}

Status Expr::Bind(const Schema& schema) {
  if (kind_ == Kind::kColumnRef) {
    int idx = schema.FindColumn(name_);
    if (idx < 0) return Status::NotFound("unbound column '" + name_ + "'");
    bound_index_ = idx;
    return Status::OK();
  }
  for (auto& child : children_) {
    RELGO_RETURN_NOT_OK(child->Bind(schema));
  }
  return Status::OK();
}

bool Expr::BindsTo(const Schema& schema) const {
  if (kind_ == Kind::kColumnRef) return schema.FindColumn(name_) >= 0;
  for (const auto& child : children_) {
    if (!child->BindsTo(schema)) return false;
  }
  return true;
}

namespace {

/// Column-reference resolution over a Table row.
struct TableSrc {
  const Table* table;
  Value Get(uint64_t row, int index) const {
    return table->GetValue(row, static_cast<size_t>(index));
  }
};

/// Column-reference resolution over loose columns (vectorized batches).
struct ColumnsSrc {
  const class Column* const* columns;
  Value Get(uint64_t row, int index) const {
    return columns[index]->GetValue(row);
  }
};

}  // namespace

template <typename Src>
Value Expr::EvaluateImpl(const Src& src, uint64_t row) const {
  switch (kind_) {
    case Kind::kColumnRef:
      return src.Get(row, bound_index_);
    case Kind::kConstant:
      return value_;
    case Kind::kCompare: {
      Value l = children_[0]->EvaluateImpl(src, row);
      Value r = children_[1]->EvaluateImpl(src, row);
      if (l.is_null() || r.is_null()) return Value::Null();
      int c = l.Compare(r);
      switch (compare_op_) {
        case CompareOp::kEq:
          return Value::Bool(c == 0);
        case CompareOp::kNe:
          return Value::Bool(c != 0);
        case CompareOp::kLt:
          return Value::Bool(c < 0);
        case CompareOp::kLe:
          return Value::Bool(c <= 0);
        case CompareOp::kGt:
          return Value::Bool(c > 0);
        case CompareOp::kGe:
          return Value::Bool(c >= 0);
      }
      return Value::Null();
    }
    case Kind::kAnd: {
      Value l = children_[0]->EvaluateImpl(src, row);
      if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
      Value r = children_[1]->EvaluateImpl(src, row);
      if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case Kind::kOr: {
      Value l = children_[0]->EvaluateImpl(src, row);
      if (!l.is_null() && l.bool_value()) return Value::Bool(true);
      Value r = children_[1]->EvaluateImpl(src, row);
      if (!r.is_null() && r.bool_value()) return Value::Bool(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case Kind::kNot: {
      Value v = children_[0]->EvaluateImpl(src, row);
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.bool_value());
    }
    case Kind::kStartsWith: {
      Value v = children_[0]->EvaluateImpl(src, row);
      if (v.is_null() || v.type() != LogicalType::kString) return Value::Null();
      return Value::Bool(relgo::StartsWith(v.string_value(), string_arg_));
    }
    case Kind::kContains: {
      Value v = children_[0]->EvaluateImpl(src, row);
      if (v.is_null() || v.type() != LogicalType::kString) return Value::Null();
      return Value::Bool(relgo::Contains(v.string_value(), string_arg_));
    }
    case Kind::kInList: {
      Value v = children_[0]->EvaluateImpl(src, row);
      if (v.is_null()) return Value::Null();
      for (const auto& candidate : in_list_) {
        if (v == candidate) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Kind::kIsNull: {
      Value v = children_[0]->EvaluateImpl(src, row);
      return Value::Bool(v.is_null());
    }
  }
  return Value::Null();
}

Value Expr::Evaluate(const Table& table, uint64_t row) const {
  return EvaluateImpl(TableSrc{&table}, row);
}

Value Expr::Evaluate(const class Column* const* columns, uint64_t row) const {
  return EvaluateImpl(ColumnsSrc{columns}, row);
}

bool Expr::EvaluateBool(const Table& table, uint64_t row) const {
  Value v = Evaluate(table, row);
  return !v.is_null() && v.type() == LogicalType::kBool && v.bool_value();
}

bool Expr::EvaluateBool(const class Column* const* columns,
                        uint64_t row) const {
  Value v = Evaluate(columns, row);
  return !v.is_null() && v.type() == LogicalType::kBool && v.bool_value();
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == Kind::kColumnRef) {
    out->push_back(name_);
    return;
  }
  for (const auto& child : children_) child->CollectColumns(out);
}

bool Expr::HasParam() const {
  if (param_slot_ >= 0) return true;
  for (const auto& child : children_) {
    if (child->HasParam()) return true;
  }
  return false;
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr(kind_));
  e->name_ = name_;
  e->value_ = value_;
  e->param_slot_ = param_slot_;
  e->compare_op_ = compare_op_;
  e->string_arg_ = string_arg_;
  e->in_list_ = in_list_;
  for (const auto& child : children_) e->children_.push_back(child->Clone());
  return e;
}

ExprPtr Expr::CloneRenamed(
    const std::unordered_map<std::string, std::string>& rename) const {
  auto e = ExprPtr(new Expr(kind_));
  e->name_ = name_;
  if (kind_ == Kind::kColumnRef) {
    auto it = rename.find(name_);
    if (it != rename.end()) e->name_ = it->second;
  }
  e->value_ = value_;
  e->param_slot_ = param_slot_;
  e->compare_op_ = compare_op_;
  e->string_arg_ = string_arg_;
  e->in_list_ = in_list_;
  for (const auto& child : children_) {
    e->children_.push_back(child->CloneRenamed(rename));
  }
  return e;
}

void Expr::SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind_ == Kind::kAnd) {
    SplitConjuncts(expr->children_[0], out);
    SplitConjuncts(expr->children_[1], out);
    return;
  }
  out->push_back(expr);
}

std::string Expr::ToString() const { return ToStringImpl(false); }

std::string Expr::ToTemplateString() const { return ToStringImpl(true); }

std::string Expr::ToStringImpl(bool template_mode) const {
  switch (kind_) {
    case Kind::kColumnRef:
      return name_;
    case Kind::kConstant:
      if (template_mode && param_slot_ >= 0) {
        return "$" + std::to_string(param_slot_);
      }
      return value_.type() == LogicalType::kString
                 ? "'" + value_.ToString() + "'"
                 : value_.ToString();
    case Kind::kCompare: {
      const char* op = "=";
      switch (compare_op_) {
        case CompareOp::kEq:
          op = "=";
          break;
        case CompareOp::kNe:
          op = "<>";
          break;
        case CompareOp::kLt:
          op = "<";
          break;
        case CompareOp::kLe:
          op = "<=";
          break;
        case CompareOp::kGt:
          op = ">";
          break;
        case CompareOp::kGe:
          op = ">=";
          break;
      }
      return children_[0]->ToStringImpl(template_mode) + " " + op + " " +
             children_[1]->ToStringImpl(template_mode);
    }
    case Kind::kAnd:
      return "(" + children_[0]->ToStringImpl(template_mode) + " AND " +
             children_[1]->ToStringImpl(template_mode) + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToStringImpl(template_mode) + " OR " +
             children_[1]->ToStringImpl(template_mode) + ")";
    case Kind::kNot:
      return "NOT (" + children_[0]->ToStringImpl(template_mode) + ")";
    case Kind::kStartsWith:
      return children_[0]->ToStringImpl(template_mode) + " STARTS WITH '" +
             string_arg_ + "'";
    case Kind::kContains:
      return children_[0]->ToStringImpl(template_mode) + " CONTAINS '" +
             string_arg_ + "'";
    case Kind::kInList: {
      std::string out = children_[0]->ToStringImpl(template_mode) + " IN (";
      for (size_t i = 0; i < in_list_.size(); ++i) {
        if (i) out += ", ";
        out += in_list_[i].ToString();
      }
      return out + ")";
    }
    case Kind::kIsNull:
      return children_[0]->ToStringImpl(template_mode) + " IS NULL";
  }
  return "?";
}

}  // namespace storage
}  // namespace relgo
