#ifndef RELGO_STORAGE_EXPRESSION_H_
#define RELGO_STORAGE_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace relgo {
namespace storage {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Comparison operators for scalar predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Scalar expression tree evaluated against one row of a Table.
///
/// Expressions reference attributes by name and are *bound* to a concrete
/// schema before evaluation; binding resolves names to column indexes so the
/// evaluation loop does no string lookups. The same expression object can be
/// re-bound as it is pushed through the optimizer (filter pushdown,
/// FilterIntoMatchRule).
class Expr {
 public:
  enum class Kind {
    kColumnRef,
    kConstant,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kStartsWith,
    kContains,
    kInList,
    kIsNull,
  };

  // -- Factories ------------------------------------------------------------

  static ExprPtr Column(std::string name);
  static ExprPtr Constant(Value v);
  /// A constant annotated as parameter slot `slot` of a query template
  /// (optimizer/plan_cache.h): evaluation treats it as an ordinary
  /// constant holding the currently bound value, but the optimizer
  /// estimates it value-insensitively and feedback keys render it as
  /// "$<slot>", so every binding of one template plans identically.
  static ExprPtr Param(int slot, Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(std::vector<ExprPtr> conjuncts);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);
  static ExprPtr StartsWith(ExprPtr inner, std::string prefix);
  static ExprPtr Contains(ExprPtr inner, std::string needle);
  static ExprPtr InList(ExprPtr inner, std::vector<Value> values);
  static ExprPtr IsNull(ExprPtr inner);

  // Convenience comparison factories against a constant.
  static ExprPtr Eq(std::string column, Value v) {
    return Compare(CompareOp::kEq, Column(std::move(column)),
                   Constant(std::move(v)));
  }
  static ExprPtr ColumnsEq(std::string left, std::string right) {
    return Compare(CompareOp::kEq, Column(std::move(left)),
                   Column(std::move(right)));
  }

  // -- Introspection ----------------------------------------------------------

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const Value& constant() const { return value_; }
  CompareOp compare_op() const { return compare_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::string& string_arg() const { return string_arg_; }
  const std::vector<Value>& in_list() const { return in_list_; }

  /// Parameter slot of a kConstant created via Param (-1 for plain
  /// constants). Survives Clone/CloneRenamed so pushdown rewrites keep
  /// the template annotation.
  int param_slot() const { return param_slot_; }

  /// True when any constant in the tree carries a parameter slot.
  bool HasParam() const;

  /// Resolved column index after a successful Bind (-1 when unbound).
  /// Exposed so the vectorized lowerer (src/exec/vector/) can map a bound
  /// tree onto typed payload spans without re-resolving names.
  int bound_index() const { return bound_index_; }

  /// Resolves column references against `schema`. Fails when a referenced
  /// attribute is absent (callers use this to test applicability of
  /// pushdowns).
  Status Bind(const Schema& schema);

  /// True when every referenced attribute exists in `schema`.
  bool BindsTo(const Schema& schema) const;

  /// Evaluates against row `row` of `table`; Bind must have succeeded against
  /// the table's schema. Const and thread-safe once bound: concurrent
  /// evaluation over disjoint rows is allowed (pipeline engine workers).
  Value Evaluate(const Table& table, uint64_t row) const;

  /// Evaluates against a row of loose columns laid out per the bound schema
  /// (used by the vectorized engine, whose batches are not Tables).
  Value Evaluate(const class Column* const* columns, uint64_t row) const;

  /// Evaluates as a predicate; NULL results are treated as false (SQL
  /// three-valued logic collapsed at the filter boundary).
  bool EvaluateBool(const Table& table, uint64_t row) const;
  bool EvaluateBool(const class Column* const* columns, uint64_t row) const;

  /// Names of all attributes referenced anywhere in the tree.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Deep copy; used when a rule rewrites one branch of a shared plan.
  ExprPtr Clone() const;

  /// Deep copy with every column reference renamed through `rename`;
  /// unmapped names are kept. Used when predicates are pushed across
  /// projections that alias attributes.
  ExprPtr CloneRenamed(
      const std::unordered_map<std::string, std::string>& rename) const;

  /// Flattens a conjunction into its leaves ((a AND b) AND c -> [a,b,c]).
  static void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

  std::string ToString() const;

  /// Like ToString, but renders parameter-slotted constants as "$<slot>"
  /// instead of their currently bound value. Used for template signatures
  /// and feedback keys so every binding of one template maps to the same
  /// key; byte-identical to ToString for trees without parameters.
  std::string ToTemplateString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  std::string ToStringImpl(bool template_mode) const;

  /// Shared evaluation core; `Src::Get(row, index)` resolves a bound column
  /// reference. Instantiated for Table rows and loose column arrays.
  template <typename Src>
  Value EvaluateImpl(const Src& src, uint64_t row) const;

  Kind kind_;
  std::string name_;        // kColumnRef
  int bound_index_ = -1;    // kColumnRef after Bind
  Value value_;             // kConstant
  int param_slot_ = -1;     // kConstant created via Param
  CompareOp compare_op_ = CompareOp::kEq;
  std::string string_arg_;  // kStartsWith / kContains
  std::vector<Value> in_list_;
  std::vector<ExprPtr> children_;
};

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_EXPRESSION_H_
