#include "storage/expression_parser.h"

#include <cctype>

namespace relgo {
namespace storage {

namespace {

/// Token scanner over the predicate text.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Case-insensitive keyword match at a word boundary.
  bool ConsumeKeyword(const std::string& kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    size_t after = pos_ + kw.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;  // part of a longer identifier
    }
    pos_ = after;
    return true;
  }

  bool ConsumeSymbol(const std::string& sym) {
    SkipSpace();
    if (text_.compare(pos_, sym.size(), sym) != 0) return false;
    pos_ += sym.size();
    return true;
  }

  bool PeekSymbol(const std::string& sym) {
    SkipSpace();
    return text_.compare(pos_, sym.size(), sym) == 0;
  }

  /// Reads a (possibly dotted) identifier; empty when none.
  std::string Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '$')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Reads a single-quoted string literal (no escapes).
  Result<std::string> StringLiteral() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '\'') {
      return Status::InvalidArgument("expected string literal at offset " +
                                     std::to_string(pos_));
    }
    size_t end = text_.find('\'', pos_ + 1);
    if (end == std::string::npos) {
      return Status::InvalidArgument("unterminated string literal");
    }
    std::string out = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    return out;
  }

  /// Reads a numeric literal.
  Result<Value> NumberLiteral() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_float = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') is_float = true;
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(start));
    }
    std::string tok = text_.substr(start, pos_ - start);
    if (is_float) return Value::Double(std::stod(tok));
    return Value::Int(std::stoll(tok));
  }

  bool PeekNumber() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '+';
  }

  bool PeekString() {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == '\'';
  }

  size_t position() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Result<ExprPtr> Parse() {
    RELGO_ASSIGN_OR_RETURN(auto e, ParseOr());
    if (!lex_.AtEnd()) {
      return Status::InvalidArgument(
          "trailing input in predicate at offset " +
          std::to_string(lex_.position()));
    }
    return e;
  }

 private:
  Result<ExprPtr> ParseOr() {
    RELGO_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (lex_.ConsumeKeyword("OR")) {
      RELGO_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = Expr::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    RELGO_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (lex_.ConsumeKeyword("AND")) {
      RELGO_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      lhs = Expr::And(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (lex_.ConsumeKeyword("NOT")) {
      RELGO_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return Expr::Not(inner);
    }
    if (lex_.ConsumeSymbol("(")) {
      RELGO_ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!lex_.ConsumeSymbol(")")) {
        return Status::InvalidArgument("expected ')'");
      }
      return inner;
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParseOperand() {
    if (lex_.PeekString()) {
      RELGO_ASSIGN_OR_RETURN(auto s, lex_.StringLiteral());
      return Expr::Constant(Value::String(std::move(s)));
    }
    if (lex_.PeekNumber()) {
      RELGO_ASSIGN_OR_RETURN(auto v, lex_.NumberLiteral());
      return Expr::Constant(v);
    }
    if (lex_.ConsumeKeyword("DATE")) {
      RELGO_ASSIGN_OR_RETURN(auto s, lex_.StringLiteral());
      RELGO_ASSIGN_OR_RETURN(int32_t days, ParseDate(s));
      return Expr::Constant(Value::Date(days));
    }
    if (lex_.ConsumeKeyword("TRUE")) {
      return Expr::Constant(Value::Bool(true));
    }
    if (lex_.ConsumeKeyword("FALSE")) {
      return Expr::Constant(Value::Bool(false));
    }
    if (lex_.ConsumeKeyword("NULL")) {
      return Expr::Constant(Value::Null());
    }
    std::string ident = lex_.Identifier();
    if (ident.empty()) {
      return Status::InvalidArgument("expected operand at offset " +
                                     std::to_string(lex_.position()));
    }
    return Expr::Column(std::move(ident));
  }

  Result<ExprPtr> ParsePredicate() {
    RELGO_ASSIGN_OR_RETURN(auto lhs, ParseOperand());
    if (lex_.ConsumeKeyword("STARTS")) {
      if (!lex_.ConsumeKeyword("WITH")) {
        return Status::InvalidArgument("expected WITH after STARTS");
      }
      RELGO_ASSIGN_OR_RETURN(auto s, lex_.StringLiteral());
      return Expr::StartsWith(lhs, std::move(s));
    }
    if (lex_.ConsumeKeyword("CONTAINS")) {
      RELGO_ASSIGN_OR_RETURN(auto s, lex_.StringLiteral());
      return Expr::Contains(lhs, std::move(s));
    }
    if (lex_.ConsumeKeyword("IS")) {
      bool negated = lex_.ConsumeKeyword("NOT");
      if (!lex_.ConsumeKeyword("NULL")) {
        return Status::InvalidArgument("expected NULL after IS");
      }
      ExprPtr test = Expr::IsNull(lhs);
      return negated ? Expr::Not(test) : test;
    }
    if (lex_.ConsumeKeyword("IN")) {
      if (!lex_.ConsumeSymbol("(")) {
        return Status::InvalidArgument("expected '(' after IN");
      }
      std::vector<Value> values;
      do {
        RELGO_ASSIGN_OR_RETURN(auto operand, ParseOperand());
        if (operand->kind() != Expr::Kind::kConstant) {
          return Status::InvalidArgument("IN list must contain literals");
        }
        values.push_back(operand->constant());
      } while (lex_.ConsumeSymbol(","));
      if (!lex_.ConsumeSymbol(")")) {
        return Status::InvalidArgument("expected ')' closing IN list");
      }
      return Expr::InList(lhs, std::move(values));
    }
    // Comparison operators; longest symbols first.
    struct OpToken {
      const char* symbol;
      CompareOp op;
    };
    static const OpToken kOps[] = {
        {"<>", CompareOp::kNe}, {"!=", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
        {"=", CompareOp::kEq},  {"<", CompareOp::kLt},
        {">", CompareOp::kGt},
    };
    for (const auto& t : kOps) {
      if (lex_.ConsumeSymbol(t.symbol)) {
        RELGO_ASSIGN_OR_RETURN(auto rhs, ParseOperand());
        return Expr::Compare(t.op, lhs, rhs);
      }
    }
    return Status::InvalidArgument("expected comparison at offset " +
                                   std::to_string(lex_.position()));
  }

  Lexer lex_;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace storage
}  // namespace relgo
