#ifndef RELGO_STORAGE_EXPRESSION_PARSER_H_
#define RELGO_STORAGE_EXPRESSION_PARSER_H_

#include <string>

#include "storage/expression.h"

namespace relgo {
namespace storage {

/// Parses a SQL-style scalar predicate into an expression tree.
///
/// Grammar (case-insensitive keywords):
///
///   expr    := conj ("OR" conj)*
///   conj    := unary ("AND" unary)*
///   unary   := "NOT" unary | "(" expr ")" | predicate
///   predicate := operand cmp operand
///            | operand "STARTS" "WITH" string
///            | operand "CONTAINS" string
///            | operand "IS" "NULL"
///            | operand "IN" "(" literal ("," literal)* ")"
///   cmp     := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
///   operand := literal | column
///   literal := integer | float | 'string' | DATE 'YYYY-MM-DD'
///             | TRUE | FALSE | NULL
///   column  := identifier ("." identifier)*      e.g.  p1.name
///
/// Examples:
///   p.name = 'Tom' AND po.creationDate >= DATE '2012-01-01'
///   cn.country_code = '[us]' OR t.production_year > 2000
///   n.name STARTS WITH 'B'
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_EXPRESSION_PARSER_H_
