#include "storage/schema.h"

namespace relgo {
namespace storage {

Schema::Schema(std::vector<ColumnDef> columns) {
  for (auto& c : columns) {
    // Duplicate names in a constructor argument indicate a programming
    // error in workload definitions; keep first occurrence.
    (void)AddColumn(std::move(c));
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

Result<size_t> Schema::GetColumnIndex(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

Status Schema::AddColumn(ColumnDef def) {
  if (index_.count(def.name)) {
    return Status::AlreadyExists("duplicate column '" + def.name + "'");
  }
  index_[def.name] = columns_.size();
  columns_.push_back(std::move(def));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += LogicalTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace storage
}  // namespace relgo
