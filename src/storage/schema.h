#ifndef RELGO_STORAGE_SCHEMA_H_
#define RELGO_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace relgo {
namespace storage {

/// Definition of one attribute in a relational schema.
struct ColumnDef {
  std::string name;
  LogicalType type;
};

/// An ordered collection of attributes (Sec 2.1 of the paper).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the attribute named `name`, or -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Like FindColumn but returns a Status on failure.
  Result<size_t> GetColumnIndex(const std::string& name) const;

  /// Appends an attribute; names must be unique within a schema.
  Status AddColumn(ColumnDef def);

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_SCHEMA_H_
