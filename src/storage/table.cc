#include "storage/table.h"

#include <sstream>

namespace relgo {
namespace storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
}

const Column* Table::FindColumn(const std::string& name) const {
  int idx = schema_.FindColumn(name);
  return idx < 0 ? nullptr : &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    RELGO_RETURN_NOT_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  version_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(key_index_mu_);
  key_indexes_.clear();
  return Status::OK();
}

void Table::FinishBulkAppend() {
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  version_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(key_index_mu_);
  key_indexes_.clear();
}

Result<const std::unordered_map<int64_t, uint64_t>*> Table::GetKeyIndex(
    const std::string& column_name) const {
  std::lock_guard<std::mutex> lock(key_index_mu_);
  auto cached = key_indexes_.find(column_name);
  if (cached != key_indexes_.end()) return &cached->second;

  int idx = schema_.FindColumn(column_name);
  if (idx < 0) {
    return Status::NotFound("no column '" + column_name + "' in " + name_);
  }
  const Column& col = columns_[idx];
  if (col.type() != LogicalType::kInt64) {
    return Status::InvalidArgument("key index requires int64 column");
  }
  std::unordered_map<int64_t, uint64_t> index;
  index.reserve(num_rows_ * 2);
  for (uint64_t r = 0; r < num_rows_; ++r) {
    index[col.int_at(r)] = r;  // later duplicates win; keys are unique by use
  }
  auto [it, _] = key_indexes_.emplace(column_name, std::move(index));
  return &it->second;
}

std::string Table::ToString(uint64_t max_rows) const {
  std::ostringstream os;
  os << name_ << " " << schema_.ToString() << " rows=" << num_rows_ << "\n";
  uint64_t n = std::min<uint64_t>(num_rows_, max_rows);
  for (uint64_t r = 0; r < n; ++r) {
    os << "  [";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ", ";
      os << GetValue(r, c).ToString();
    }
    os << "]\n";
  }
  if (n < num_rows_) os << "  ... (" << (num_rows_ - n) << " more)\n";
  return os.str();
}

size_t Table::EstimatedRowBytes() const {
  size_t bytes = 0;
  for (const auto& def : schema_.columns()) {
    switch (def.type) {
      case LogicalType::kString:
        bytes += 24;
        break;
      default:
        bytes += 8;
        break;
    }
  }
  return bytes == 0 ? 8 : bytes;
}

}  // namespace storage
}  // namespace relgo
