#ifndef RELGO_STORAGE_TABLE_H_
#define RELGO_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace relgo {
namespace storage {

/// An in-memory columnar relation.
///
/// Tables serve double duty: base relations registered in the Catalog, and
/// materialized intermediate results produced by the executor. Row ids are
/// implicit (position), matching the paper's use of row ids as vertex/edge
/// identifiers in the graph index (Sec 3.2.1).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Column by attribute name; nullptr when absent.
  const Column* FindColumn(const std::string& name) const;

  /// Appends a full row of boxed values (arity must match the schema).
  Status AppendRow(const std::vector<Value>& values);

  /// Row-count bump for callers that append via typed column APIs directly;
  /// all columns must have equal sizes afterwards.
  void FinishBulkAppend();

  Value GetValue(uint64_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Unique-key hash index over an int64 column (primary keys): value -> row.
  /// Built lazily and cached; invalidated by appends. Thread-safe: the
  /// lazy build is serialized, so concurrent queries may race to the
  /// first lookup (returned pointers stay valid until the next append).
  Result<const std::unordered_map<int64_t, uint64_t>*> GetKeyIndex(
      const std::string& column_name) const;

  /// Monotonic mutation counter, bumped by every append. Consumed by the
  /// cross-query scan cache (exec::ScanCache) to drop selection vectors
  /// computed against older contents of this table.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Renders up to `max_rows` rows for debugging/examples.
  std::string ToString(uint64_t max_rows = 10) const;

  /// Rough per-row footprint in bytes, for memory accounting.
  size_t EstimatedRowBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  uint64_t num_rows_ = 0;
  std::atomic<uint64_t> version_{0};
  /// Serializes the lazy key-index build (concurrent queries hit the same
  /// base tables); mutation paths also take it so the cache clear cannot
  /// race a build.
  mutable std::mutex key_index_mu_;
  mutable std::unordered_map<std::string,
                             std::unordered_map<int64_t, uint64_t>>
      key_indexes_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace storage
}  // namespace relgo

#endif  // RELGO_STORAGE_TABLE_H_
