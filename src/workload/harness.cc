#include "workload/harness.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace relgo {
namespace workload {

std::string RunMeasurement::StatusOrMs(bool end_to_end) const {
  if (out_of_memory) return "OOM";
  if (timed_out) return "OT";
  if (failed) return "ERR";
  double ms = end_to_end ? TotalMs() : execution_ms;
  return StrFormat("%.2f", ms);
}

RunMeasurement Harness::Run(const WorkloadQuery& wq,
                            optimizer::OptimizerMode mode) const {
  RunMeasurement m;
  m.query = wq.query.name;
  m.mode = optimizer::ModeName(mode);

  double total_opt = 0.0, total_exec = 0.0;
  // Profiled warm-up: besides warming caches it feeds the estimate-vs-
  // actual loop, charging the Q-error fields. Profiling cost stays out of
  // the timed repetitions below.
  {
    auto warm = db_->RunProfiled(wq.query, mode, exec_options_);
    if (!warm.ok()) {
      m.out_of_memory = warm.status().code() == StatusCode::kOutOfMemory;
      m.timed_out = warm.status().code() == StatusCode::kTimeout;
      m.failed = !m.out_of_memory && !m.timed_out;
      m.error = warm.status().ToString();
      return m;
    }
    exec::QErrorSummary q = exec::SummarizeQError(*warm->plan, warm->profile);
    m.qerror_geomean = q.geomean;
    m.qerror_max = q.max_q;
    m.qerror_ops = q.ops;
    m.build_ms = warm->profile.build_ms();
    m.sort_ms = warm->profile.sort_ms();
  }
  // Timed repetitions; a failure on any run is terminal.
  for (int rep = 0; rep < repetitions_; ++rep) {
    auto result = db_->Run(wq.query, mode, exec_options_);
    if (!result.ok()) {
      m.out_of_memory = result.status().code() == StatusCode::kOutOfMemory;
      m.timed_out = result.status().code() == StatusCode::kTimeout;
      m.failed = !m.out_of_memory && !m.timed_out;
      m.error = result.status().ToString();
      return m;
    }
    total_opt += result->optimization_ms;
    total_exec += result->execution_ms;
    m.result_rows = result->table->num_rows();
  }
  m.optimization_ms = total_opt / repetitions_;
  m.execution_ms = total_exec / repetitions_;
  return m;
}

std::vector<RunMeasurement> Harness::RunGrid(
    const std::vector<WorkloadQuery>& queries,
    const std::vector<optimizer::OptimizerMode>& modes) const {
  std::vector<RunMeasurement> out;
  for (const auto& wq : queries) {
    for (auto mode : modes) {
      out.push_back(Run(wq, mode));
    }
  }
  return out;
}

namespace {

std::vector<std::string> OrderedQueries(
    const std::vector<RunMeasurement>& runs) {
  std::vector<std::string> queries;
  for (const auto& r : runs) {
    if (std::find(queries.begin(), queries.end(), r.query) == queries.end()) {
      queries.push_back(r.query);
    }
  }
  return queries;
}

std::vector<std::string> OrderedModes(
    const std::vector<RunMeasurement>& runs) {
  std::vector<std::string> modes;
  for (const auto& r : runs) {
    if (std::find(modes.begin(), modes.end(), r.mode) == modes.end()) {
      modes.push_back(r.mode);
    }
  }
  return modes;
}

const RunMeasurement* Find(const std::vector<RunMeasurement>& runs,
                           const std::string& query,
                           const std::string& mode) {
  for (const auto& r : runs) {
    if (r.query == query && r.mode == mode) return &r;
  }
  return nullptr;
}

}  // namespace

std::string Harness::FormatTable(const std::vector<RunMeasurement>& runs,
                                 bool end_to_end) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "query");
  for (const auto& m : modes) os << StrFormat("%14s", m.c_str());
  os << "\n";
  for (const auto& q : queries) {
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      const RunMeasurement* r = Find(runs, q, m);
      os << StrFormat("%14s",
                      r ? r->StatusOrMs(end_to_end).c_str() : "-");
    }
    os << "\n";
  }
  return os.str();
}

std::string Harness::FormatSpeedups(const std::vector<RunMeasurement>& runs,
                                    const std::string& baseline_mode) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "query");
  for (const auto& m : modes) {
    if (m != baseline_mode) os << StrFormat("%14s", m.c_str());
  }
  os << "\n";
  for (const auto& q : queries) {
    const RunMeasurement* base = Find(runs, q, baseline_mode);
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      if (m == baseline_mode) continue;
      const RunMeasurement* r = Find(runs, q, m);
      if (base == nullptr || r == nullptr || base->failed || r->failed ||
          r->timed_out || r->out_of_memory) {
        os << StrFormat("%14s", r && r->out_of_memory ? "OOM"
                                : r && r->timed_out   ? "OT"
                                                      : "-");
      } else if (base->timed_out || base->out_of_memory) {
        os << StrFormat("%14s", ">inf");
      } else {
        os << StrFormat("%13.2fx", base->execution_ms /
                                       std::max(r->execution_ms, 1e-3));
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string Harness::FormatQErrors(const std::vector<RunMeasurement>& runs) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "q-error");
  for (const auto& m : modes) os << StrFormat("%14s", m.c_str());
  os << "\n";
  for (const auto& q : queries) {
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      const RunMeasurement* r = Find(runs, q, m);
      if (r == nullptr || r->qerror_ops == 0) {
        os << StrFormat("%14s", "-");
      } else {
        os << StrFormat("%14s",
                        StrFormat("%.2f", r->qerror_geomean).c_str());
      }
    }
    os << "\n";
  }
  return os.str();
}

double Harness::AverageSpeedup(const std::vector<RunMeasurement>& runs,
                               const std::string& baseline_mode,
                               const std::string& mode) {
  double log_sum = 0.0;
  int n = 0;
  for (const auto& q : OrderedQueries(runs)) {
    const RunMeasurement* base = Find(runs, q, baseline_mode);
    const RunMeasurement* r = Find(runs, q, mode);
    if (base == nullptr || r == nullptr) continue;
    if (base->failed || base->timed_out || base->out_of_memory) continue;
    if (r->failed || r->timed_out || r->out_of_memory) continue;
    log_sum += std::log(std::max(base->execution_ms, 1e-3) /
                        std::max(r->execution_ms, 1e-3));
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / n);
}

}  // namespace workload
}  // namespace relgo
