#include "workload/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace relgo {
namespace workload {

std::string RunMeasurement::StatusOrMs(bool end_to_end) const {
  if (out_of_memory) return "OOM";
  if (timed_out) return "OT";
  if (failed) return "ERR";
  double ms = end_to_end ? TotalMs() : execution_ms;
  return StrFormat("%.2f", ms);
}

namespace {

/// Classifies a failed run into the OT/OOM/ERR reporting buckets.
void SetFailure(const Status& status, RunMeasurement* m) {
  m->out_of_memory = status.code() == StatusCode::kOutOfMemory;
  m->timed_out = status.code() == StatusCode::kTimeout;
  m->failed = !m->out_of_memory && !m->timed_out;
  m->error = status.ToString();
}

/// Charges Q-error fields off one profiled run. Breaker times are NOT
/// recorded here: they always describe the *first* profiled run, so an
/// adaptive measurement never mixes first-run Q-error with after-run
/// breaker timings of a potentially different plan.
void RecordQError(const ProfiledRunResult& run, double* geomean,
                  double* max_q, int* ops) {
  exec::QErrorSummary q = exec::SummarizeQError(*run.plan, run.profile);
  *geomean = q.geomean;
  *max_q = q.max_q;
  if (ops != nullptr) *ops = q.ops;
}

}  // namespace

bool Harness::TimedRepetitions(const WorkloadQuery& wq,
                               optimizer::OptimizerMode mode,
                               RunMeasurement* m) const {
  double total_opt = 0.0, total_exec = 0.0;
  // A failure on any run is terminal.
  for (int rep = 0; rep < repetitions_; ++rep) {
    auto result = db_->Run(wq.query, mode, exec_options_);
    if (!result.ok()) {
      SetFailure(result.status(), m);
      return false;
    }
    total_opt += result->optimization_ms;
    total_exec += result->execution_ms;
    m->result_rows = result->table->num_rows();
  }
  m->optimization_ms = total_opt / repetitions_;
  m->execution_ms = total_exec / repetitions_;
  return true;
}

RunMeasurement Harness::Run(const WorkloadQuery& wq,
                            optimizer::OptimizerMode mode) const {
  RunMeasurement m;
  m.query = wq.query.name;
  m.mode = optimizer::ModeName(mode);

  // Profiled warm-up: besides warming caches it feeds the estimate-vs-
  // actual loop, charging the Q-error fields. Profiling cost stays out of
  // the timed repetitions below.
  {
    auto warm = db_->RunProfiled(wq.query, mode, exec_options_);
    if (!warm.ok()) {
      SetFailure(warm.status(), &m);
      return m;
    }
    RecordQError(*warm, &m.qerror_geomean, &m.qerror_max, &m.qerror_ops);
    m.build_ms = warm->profile.build_ms();
    m.sort_ms = warm->profile.sort_ms();
    m.scan_cache_hits = warm->profile.scan_cache_hits();
  }
  TimedRepetitions(wq, mode, &m);
  return m;
}

RunMeasurement Harness::RunAdaptive(const WorkloadQuery& wq,
                                    optimizer::OptimizerMode mode,
                                    int feedback_rounds) const {
  RunMeasurement m;
  m.query = wq.query.name;
  m.mode = optimizer::ModeName(mode);
  m.feedback_rounds = std::max(feedback_rounds, 1);

  exec::ExecutionOptions adaptive = exec_options_;
  adaptive.adaptive_stats = true;

  // Round 0: baseline accuracy — and the first feedback absorption.
  {
    auto warm = db_->RunProfiled(wq.query, mode, adaptive);
    if (!warm.ok()) {
      SetFailure(warm.status(), &m);
      return m;
    }
    RecordQError(*warm, &m.qerror_geomean, &m.qerror_max, &m.qerror_ops);
    m.build_ms = warm->profile.build_ms();
    m.sort_ms = warm->profile.sort_ms();
  }
  // Further warm-up -> feedback rounds.
  for (int round = 1; round < m.feedback_rounds; ++round) {
    auto mid = db_->RunProfiled(wq.query, mode, adaptive);
    if (!mid.ok()) {
      SetFailure(mid.status(), &m);
      return m;
    }
  }
  // Re-planned accuracy after feedback (still adaptive: grids keep
  // accumulating corrections across queries).
  {
    auto after = db_->RunProfiled(wq.query, mode, adaptive);
    if (!after.ok()) {
      SetFailure(after.status(), &m);
      return m;
    }
    RecordQError(*after, &m.qerror_geomean_after, &m.qerror_max_after,
                 nullptr);
  }
  TimedRepetitions(wq, mode, &m);
  return m;
}

std::vector<RunMeasurement> Harness::RunAdaptiveGrid(
    const std::vector<WorkloadQuery>& queries,
    const std::vector<optimizer::OptimizerMode>& modes,
    int feedback_rounds) const {
  std::vector<RunMeasurement> out;
  for (const auto& wq : queries) {
    for (auto mode : modes) {
      // Reset keyed corrections between cells so every record's
      // qerror_geomean is a cold-corrections baseline and the
      // before -> after delta is attributable to this cell's own
      // feedback rounds. GLogue counts already refined by earlier cells
      // keep their execution-measured values (they move the catalog
      // toward truth and cannot be un-measured) — that part of the
      // baseline legitimately improves over the grid.
      db_->ResetAdaptiveStats();
      out.push_back(RunAdaptive(wq, mode, feedback_rounds));
    }
  }
  return out;
}

ConcurrentMeasurement Harness::RunConcurrent(
    const std::vector<WorkloadQuery>& mix, optimizer::OptimizerMode mode,
    int clients, int queries_per_client, const ChaosOptions& chaos) const {
  ConcurrentMeasurement m;
  m.mode = optimizer::ModeName(mode);
  m.clients = std::max(clients, 1);
  m.queries_per_client = std::max(queries_per_client, 0);
  if (mix.empty() || m.queries_per_client == 0) return m;

  exec::ScanCache::Stats before = db_->scan_cache().stats();
  optimizer::PlanCache::Stats pc_before = db_->plan_cache().stats();
  std::atomic<uint64_t> ok{0}, failed{0};
  std::atomic<uint64_t> cancelled{0}, rejected{0}, timed_out{0};
  // Per-client latency samples (no sharing during the storm — each client
  // appends to its own vector); merged and sorted once after the join.
  std::vector<std::vector<double>> client_latencies(
      static_cast<size_t>(m.clients));
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(m.clients);
  for (int c = 0; c < m.clients; ++c) {
    threads.emplace_back([&, c] {
      // Per-client stream: which iterations get a mid-flight cancel is a
      // pure function of (seed, client), so storms replay exactly.
      Rng rng(chaos.seed + static_cast<uint64_t>(c) * 0x9E3779B97F4A7C15ull);
      std::vector<double>& latencies = client_latencies[c];
      latencies.reserve(m.queries_per_client);
      for (int i = 0; i < m.queries_per_client; ++i) {
        const WorkloadQuery& wq = mix[(c + i) % mix.size()];
        bool chaos_cancel = chaos.cancel_fraction > 0.0 &&
                            rng.Chance(chaos.cancel_fraction);
        exec::ExecutionOptions options = exec_options_;
        std::atomic<uint64_t> query_id{0};
        std::atomic<bool> query_done{false};
        std::thread canceller;
        if (chaos_cancel) {
          options.query_id_out = &query_id;
          // The controller: waits for the database to export the query id
          // (which happens right before execution starts), then cancels.
          // `query_done` unblocks it when the query never reaches
          // execution (optimizer error, admission rejection).
          canceller = std::thread([&] {
            uint64_t id = 0;
            while ((id = query_id.load(std::memory_order_acquire)) == 0) {
              if (query_done.load(std::memory_order_acquire)) return;
              std::this_thread::yield();
            }
            db_->CancelQuery(id);
          });
        }
        Timer query_timer;
        auto result = db_->Run(wq.query, mode, options);
        if (chaos_cancel) {
          query_done.store(true, std::memory_order_release);
          canceller.join();
        }
        if (result.ok()) {
          latencies.push_back(query_timer.ElapsedMillis());
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
          switch (result.status().code()) {
            case StatusCode::kCancelled:
              cancelled.fetch_add(1, std::memory_order_relaxed);
              break;
            case StatusCode::kResourceExhausted:
              rejected.fetch_add(1, std::memory_order_relaxed);
              break;
            case StatusCode::kTimeout:
              timed_out.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  m.wall_ms = timer.ElapsedMillis();
  m.queries_ok = ok.load();
  m.queries_failed = failed.load();
  m.queries_cancelled = cancelled.load();
  m.queries_rejected = rejected.load();
  m.queries_timeout = timed_out.load();
  if (m.wall_ms > 0.0) m.qps = m.queries_ok * 1000.0 / m.wall_ms;

  std::vector<double> latencies;
  for (const auto& per_client : client_latencies) {
    latencies.insert(latencies.end(), per_client.begin(), per_client.end());
  }
  std::sort(latencies.begin(), latencies.end());
  m.latency_p50_ms = obs::PercentileOfSorted(latencies, 0.50);
  m.latency_p95_ms = obs::PercentileOfSorted(latencies, 0.95);
  m.latency_p99_ms = obs::PercentileOfSorted(latencies, 0.99);

  exec::ScanCache::Stats after = db_->scan_cache().stats();
  m.scan_cache_hits = after.hits - before.hits;
  m.scan_cache_misses = after.misses - before.misses;
  uint64_t lookups = m.scan_cache_hits + m.scan_cache_misses;
  if (lookups > 0) {
    m.cache_hit_rate = static_cast<double>(m.scan_cache_hits) / lookups;
  }
  optimizer::PlanCache::Stats pc_after = db_->plan_cache().stats();
  m.plan_cache_hits = pc_after.hits - pc_before.hits;
  m.plan_cache_misses = pc_after.misses - pc_before.misses;
  uint64_t pc_lookups = m.plan_cache_hits + m.plan_cache_misses;
  if (pc_lookups > 0) {
    m.plan_cache_hit_rate =
        static_cast<double>(m.plan_cache_hits) / pc_lookups;
  }
  return m;
}

HotTemplateMeasurement Harness::RunHotTemplates(
    const std::vector<WorkloadQuery>& templates, optimizer::OptimizerMode mode,
    int iterations) const {
  HotTemplateMeasurement m;
  m.mode = optimizer::ModeName(mode);
  m.templates = static_cast<int>(templates.size());
  m.iterations = std::max(iterations, 1);
  if (templates.empty()) return m;

  db_->ClearPlanCache();
  Timer timer;
  // Cold pass: every template plans from scratch (the cache was just
  // cleared), charging cold_optimization_ms.
  double cold_opt = 0.0;
  int cold_runs = 0;
  for (const auto& wq : templates) {
    auto result = db_->Run(wq.query, mode, exec_options_);
    if (!result.ok()) {
      m.queries_failed++;
      continue;
    }
    m.queries_ok++;
    cold_opt += result->optimization_ms;
    ++cold_runs;
  }
  // Warm rounds: steady-state traffic over the now-hot template set. The
  // hit counters are deltas over the warm phase only, so
  // plan_cache_hit_rate reads 100% when every warm run reuses its
  // template's plan (the cold pass necessarily misses).
  optimizer::PlanCache::Stats before = db_->plan_cache().stats();
  double warm_opt = 0.0, warm_exec = 0.0;
  int warm_runs = 0;
  for (int round = 0; round < m.iterations; ++round) {
    for (const auto& wq : templates) {
      auto result = db_->Run(wq.query, mode, exec_options_);
      if (!result.ok()) {
        m.queries_failed++;
        continue;
      }
      m.queries_ok++;
      warm_opt += result->optimization_ms;
      warm_exec += result->execution_ms;
      ++warm_runs;
    }
  }
  m.wall_ms = timer.ElapsedMillis();
  if (cold_runs > 0) m.cold_optimization_ms = cold_opt / cold_runs;
  if (warm_runs > 0) {
    m.warm_optimization_ms = warm_opt / warm_runs;
    m.warm_execution_ms = warm_exec / warm_runs;
  }
  if (m.wall_ms > 0.0) m.qps = m.queries_ok * 1000.0 / m.wall_ms;

  optimizer::PlanCache::Stats after = db_->plan_cache().stats();
  m.plan_cache_hits = after.hits - before.hits;
  m.plan_cache_misses = after.misses - before.misses;
  uint64_t lookups = m.plan_cache_hits + m.plan_cache_misses;
  if (lookups > 0) {
    m.plan_cache_hit_rate =
        static_cast<double>(m.plan_cache_hits) / lookups;
  }
  return m;
}

std::vector<RunMeasurement> Harness::RunGrid(
    const std::vector<WorkloadQuery>& queries,
    const std::vector<optimizer::OptimizerMode>& modes) const {
  std::vector<RunMeasurement> out;
  for (const auto& wq : queries) {
    for (auto mode : modes) {
      out.push_back(Run(wq, mode));
    }
  }
  return out;
}

namespace {

std::vector<std::string> OrderedQueries(
    const std::vector<RunMeasurement>& runs) {
  std::vector<std::string> queries;
  for (const auto& r : runs) {
    if (std::find(queries.begin(), queries.end(), r.query) == queries.end()) {
      queries.push_back(r.query);
    }
  }
  return queries;
}

std::vector<std::string> OrderedModes(
    const std::vector<RunMeasurement>& runs) {
  std::vector<std::string> modes;
  for (const auto& r : runs) {
    if (std::find(modes.begin(), modes.end(), r.mode) == modes.end()) {
      modes.push_back(r.mode);
    }
  }
  return modes;
}

const RunMeasurement* Find(const std::vector<RunMeasurement>& runs,
                           const std::string& query,
                           const std::string& mode) {
  for (const auto& r : runs) {
    if (r.query == query && r.mode == mode) return &r;
  }
  return nullptr;
}

}  // namespace

std::string Harness::FormatTable(const std::vector<RunMeasurement>& runs,
                                 bool end_to_end) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "query");
  for (const auto& m : modes) os << StrFormat("%14s", m.c_str());
  os << "\n";
  for (const auto& q : queries) {
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      const RunMeasurement* r = Find(runs, q, m);
      os << StrFormat("%14s",
                      r ? r->StatusOrMs(end_to_end).c_str() : "-");
    }
    os << "\n";
  }
  return os.str();
}

std::string Harness::FormatSpeedups(const std::vector<RunMeasurement>& runs,
                                    const std::string& baseline_mode) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "query");
  for (const auto& m : modes) {
    if (m != baseline_mode) os << StrFormat("%14s", m.c_str());
  }
  os << "\n";
  for (const auto& q : queries) {
    const RunMeasurement* base = Find(runs, q, baseline_mode);
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      if (m == baseline_mode) continue;
      const RunMeasurement* r = Find(runs, q, m);
      if (base == nullptr || r == nullptr || base->failed || r->failed ||
          r->timed_out || r->out_of_memory) {
        os << StrFormat("%14s", r && r->out_of_memory ? "OOM"
                                : r && r->timed_out   ? "OT"
                                                      : "-");
      } else if (base->timed_out || base->out_of_memory) {
        os << StrFormat("%14s", ">inf");
      } else {
        os << StrFormat("%13.2fx", base->execution_ms /
                                       std::max(r->execution_ms, 1e-3));
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string Harness::FormatQErrors(const std::vector<RunMeasurement>& runs) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "q-error");
  for (const auto& m : modes) os << StrFormat("%14s", m.c_str());
  os << "\n";
  for (const auto& q : queries) {
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      const RunMeasurement* r = Find(runs, q, m);
      if (r == nullptr || r->qerror_ops == 0) {
        os << StrFormat("%14s", "-");
      } else {
        os << StrFormat("%14s",
                        StrFormat("%.2f", r->qerror_geomean).c_str());
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string Harness::FormatAdaptiveQErrors(
    const std::vector<RunMeasurement>& runs) {
  auto queries = OrderedQueries(runs);
  auto modes = OrderedModes(runs);
  std::ostringstream os;
  os << StrFormat("%-10s", "q-error");
  for (const auto& m : modes) os << StrFormat("%16s", m.c_str());
  os << "\n";
  for (const auto& q : queries) {
    os << StrFormat("%-10s", q.c_str());
    for (const auto& m : modes) {
      const RunMeasurement* r = Find(runs, q, m);
      if (r != nullptr &&
          (r->out_of_memory || r->timed_out || r->failed)) {
        // A failed round leaves qerror_geomean_after at 0 (Q-error is
        // always >= 1); render the failure, not a bogus "->0.00".
        os << StrFormat("%16s", r->out_of_memory ? "OOM"
                                : r->timed_out   ? "OT"
                                                 : "ERR");
      } else if (r == nullptr || r->qerror_ops == 0 ||
                 r->feedback_rounds == 0 ||
                 r->qerror_geomean_after == 0.0) {
        os << StrFormat("%16s", "-");
      } else {
        std::string cell = StrFormat("%.2f->%.2f", r->qerror_geomean,
                                     r->qerror_geomean_after);
        os << StrFormat("%16s", cell.c_str());
      }
    }
    os << "\n";
  }
  return os.str();
}

double Harness::AverageSpeedup(const std::vector<RunMeasurement>& runs,
                               const std::string& baseline_mode,
                               const std::string& mode) {
  double log_sum = 0.0;
  int n = 0;
  for (const auto& q : OrderedQueries(runs)) {
    const RunMeasurement* base = Find(runs, q, baseline_mode);
    const RunMeasurement* r = Find(runs, q, mode);
    if (base == nullptr || r == nullptr) continue;
    if (base->failed || base->timed_out || base->out_of_memory) continue;
    if (r->failed || r->timed_out || r->out_of_memory) continue;
    log_sum += std::log(std::max(base->execution_ms, 1e-3) /
                        std::max(r->execution_ms, 1e-3));
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / n);
}

}  // namespace workload
}  // namespace relgo
