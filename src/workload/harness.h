#ifndef RELGO_WORKLOAD_HARNESS_H_
#define RELGO_WORKLOAD_HARNESS_H_

#include <string>
#include <vector>

#include "workload/ldbc.h"

namespace relgo {
namespace workload {

/// Outcome of one (query, optimizer mode) measurement.
struct RunMeasurement {
  std::string query;
  std::string mode;
  double optimization_ms = 0.0;
  double execution_ms = 0.0;
  uint64_t result_rows = 0;
  bool timed_out = false;       ///< reported as OT, like the paper
  bool out_of_memory = false;   ///< reported as OOM
  bool failed = false;
  std::string error;

  /// Estimator accuracy, measured on the profiled warm-up run (Sec 5
  /// style): geometric-mean and worst per-operator Q-error over all plan
  /// nodes carrying both an optimizer estimate and an actual cardinality.
  double qerror_geomean = 0.0;  ///< 0 == not measured (run failed)
  double qerror_max = 0.0;
  int qerror_ops = 0;

  /// Breaker serial-section accounting from the profiled warm-up (pipeline
  /// engine only; 0 on the materializing engine): wall time of hash-join
  /// hash-table construction and of sort/top-k sink finish.
  double build_ms = 0.0;
  double sort_ms = 0.0;

  /// Filtered scans the profiled warm-up replayed from the cross-query
  /// scan cache (0 when the cache is off or cold).
  uint64_t scan_cache_hits = 0;

  /// Adaptive-statistics loop results (RunAdaptive only; 0 otherwise):
  /// Q-error of the re-planned query after `feedback_rounds` warm-up ->
  /// feedback -> re-plan rounds, to compare against qerror_geomean /
  /// qerror_max (which always measure the *first* profiled run).
  double qerror_geomean_after = 0.0;
  double qerror_max_after = 0.0;
  int feedback_rounds = 0;

  double TotalMs() const { return optimization_ms + execution_ms; }
  /// "OT" / "OOM" / formatted milliseconds.
  std::string StatusOrMs(bool end_to_end) const;
};

/// Outcome of one multi-client throughput run (Harness::RunConcurrent):
/// N client threads replaying a query mix against one shared Database —
/// the concurrent-serving protocol the shared worker pool and the
/// cross-query scan cache exist for.
struct ConcurrentMeasurement {
  std::string mode;
  int clients = 0;
  int queries_per_client = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;  ///< any non-OK status (incl. OT/OOM)
  double wall_ms = 0.0;
  double qps = 0.0;  ///< completed (ok) queries per second of wall time
  /// Scan-cache activity during this run (deltas of the database cache's
  /// lifetime counters).
  uint64_t scan_cache_hits = 0;
  uint64_t scan_cache_misses = 0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses); 0 if no lookups
  /// Plan-cache activity during this run (deltas, like the scan-cache
  /// fields; all zero when ExecutionOptions::plan_cache is off).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  double plan_cache_hit_rate = 0.0;
  /// Per-query end-to-end latency tail over every completed (ok) query of
  /// the storm — the serving-tier metric QPS alone hides (ROADMAP: report
  /// tail latency, not just QPS). Exact nearest-rank percentiles over the
  /// raw per-query samples (obs::PercentileOfSorted), not bucketized.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Lifecycle breakdown of the failed queries (chaos storms and
  /// admission-capped runs; all zero in plain throughput runs):
  /// cancelled mid-flight, shed by admission control, timed out.
  uint64_t queries_cancelled = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_timeout = 0;
};

/// Outcome of Harness::RunHotTemplates: the serving-tier hot-template
/// sweep. A small set of templates is run once cold (plan cache cleared,
/// so every template optimizes) and then `iterations` more times each
/// (the steady state production traffic looks like), splitting mean
/// optimization time by phase — with the plan cache on, warm runs hit the
/// cache and warm_optimization_ms collapses toward 0 while execution is
/// bit-identical.
struct HotTemplateMeasurement {
  std::string mode;
  int templates = 0;   ///< distinct templates in the sweep
  int iterations = 0;  ///< warm repetitions per template
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  double cold_optimization_ms = 0.0;  ///< mean over the cold pass
  double warm_optimization_ms = 0.0;  ///< mean over all warm runs
  double warm_execution_ms = 0.0;     ///< mean over all ok warm runs
  /// Plan-cache activity during the WARM phase only (deltas of the
  /// database cache's lifetime counters taken around the warm rounds): the
  /// cold pass necessarily misses, so including it would cap the rate at
  /// iterations/(iterations+1) and hide warm-phase regressions.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  double plan_cache_hit_rate = 0.0;
  double wall_ms = 0.0;
  double qps = 0.0;  ///< completed (ok) queries per second of wall time
};

/// Chaos knob for Harness::RunConcurrent: deterministically cancels a
/// fraction of the storm's queries mid-flight (per-query controller
/// threads spin on ExecutionOptions::query_id_out, then call
/// Database::CancelQuery), exercising the cooperative-cancellation path
/// under real concurrency. Which queries are targeted is a pure function
/// of (seed, client, iteration), so a storm is reproducible.
struct ChaosOptions {
  double cancel_fraction = 0.0;  ///< [0,1] share of queries to cancel
  uint64_t seed = 42;            ///< picks the targeted queries
};

/// Benchmark harness mirroring the paper's protocol: warm-up run, then
/// `repetitions` timed runs averaged; OT/OOM handling; per-figure table
/// rendering.
class Harness {
 public:
  Harness(const Database* db, exec::ExecutionOptions exec_options = {},
          int repetitions = 3)
      : db_(db), exec_options_(exec_options), repetitions_(repetitions) {}

  /// Runs one query under one mode, averaging timed repetitions.
  RunMeasurement Run(const WorkloadQuery& wq,
                     optimizer::OptimizerMode mode) const;

  /// Runs a full (queries x modes) grid.
  std::vector<RunMeasurement> RunGrid(
      const std::vector<WorkloadQuery>& queries,
      const std::vector<optimizer::OptimizerMode>& modes) const;

  /// The adaptive-statistics protocol: a profiled first run (recorded as
  /// qerror_geomean/_max) whose actuals are absorbed into the database's
  /// StatsFeedback, `feedback_rounds - 1` further absorb rounds, then a
  /// re-planned profiled run recorded as qerror_*_after — followed by the
  /// usual timed repetitions (which re-plan with the refined statistics).
  /// Feedback persists on the database across calls, so repeated or
  /// overlapping queries keep benefiting.
  RunMeasurement RunAdaptive(const WorkloadQuery& wq,
                             optimizer::OptimizerMode mode,
                             int feedback_rounds = 2) const;

  /// Adaptive grid: RunAdaptive over (queries x modes), resetting keyed
  /// corrections between cells (Database::ResetAdaptiveStats) so each
  /// record's before/after pair measures that cell's own feedback gain
  /// rather than accumulated cross-query state.
  std::vector<RunMeasurement> RunAdaptiveGrid(
      const std::vector<WorkloadQuery>& queries,
      const std::vector<optimizer::OptimizerMode>& modes,
      int feedback_rounds = 2) const;

  /// Throughput protocol: `clients` threads each run
  /// `queries_per_client` queries round-robin over `mix` (offset by the
  /// client index so concurrent clients hit overlapping but staggered
  /// queries), all against this harness's Database — sharing its worker
  /// pool and scan cache — and the wall clock over the whole storm gives
  /// QPS. Scan-cache hit/miss deltas are read off the database cache's
  /// counters around the run, so run it on an otherwise idle database.
  ConcurrentMeasurement RunConcurrent(const std::vector<WorkloadQuery>& mix,
                                      optimizer::OptimizerMode mode,
                                      int clients,
                                      int queries_per_client,
                                      const ChaosOptions& chaos = {}) const;

  /// Hot-template sweep (ROADMAP serving tier): clears the plan cache,
  /// runs every template once cold, then `iterations` warm rounds over
  /// the set, reporting cold vs warm mean optimization time and the
  /// plan-cache hit/miss deltas. Honors this harness's ExecutionOptions —
  /// with plan_cache off the sweep measures the re-optimization baseline
  /// (the A/B the bench records). Run on an otherwise idle database, like
  /// RunConcurrent.
  HotTemplateMeasurement RunHotTemplates(
      const std::vector<WorkloadQuery>& templates,
      optimizer::OptimizerMode mode, int iterations) const;

  /// Renders a fixed-width table: one row per query, one column per mode,
  /// values as milliseconds (end-to-end when `end_to_end`).
  static std::string FormatTable(const std::vector<RunMeasurement>& runs,
                                 bool end_to_end);

  /// Renders speedups of each mode against `baseline_mode`
  /// (Time(baseline) / Time(mode), the paper's Fig 11 metric).
  static std::string FormatSpeedups(const std::vector<RunMeasurement>& runs,
                                    const std::string& baseline_mode);

  /// Renders per-(query, mode) geometric-mean Q-error — the estimator
  /// accuracy grid mirroring the paper's Sec 5 accuracy analysis.
  static std::string FormatQErrors(const std::vector<RunMeasurement>& runs);

  /// Renders the adaptive before -> after Q-error grid of RunAdaptive
  /// measurements ("2.41->1.18" per cell).
  static std::string FormatAdaptiveQErrors(
      const std::vector<RunMeasurement>& runs);

  /// Geometric-mean speedup of `mode` vs `baseline_mode` over queries where
  /// both completed.
  static double AverageSpeedup(const std::vector<RunMeasurement>& runs,
                               const std::string& baseline_mode,
                               const std::string& mode);

 private:
  /// Timed repetitions shared by Run and RunAdaptive; false on failure
  /// (with the failure recorded in `m`).
  bool TimedRepetitions(const WorkloadQuery& wq,
                        optimizer::OptimizerMode mode,
                        RunMeasurement* m) const;

  const Database* db_;
  exec::ExecutionOptions exec_options_;
  int repetitions_;
};

}  // namespace workload
}  // namespace relgo

#endif  // RELGO_WORKLOAD_HARNESS_H_
