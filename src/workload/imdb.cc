#include "workload/imdb.h"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace relgo {
namespace workload {

using plan::AggFunc;
using plan::SpjmQueryBuilder;
using storage::ColumnDef;
using storage::CompareOp;
using storage::Expr;
using storage::ExprPtr;
using storage::Schema;

namespace {

const char* kKindTypes[] = {"movie",    "tv series",      "video movie",
                            "video game", "episode",      "tv movie",
                            "tv mini series"};
const char* kInfoTypes[] = {"budget",        "rating",       "release dates",
                            "genres",        "votes",        "languages",
                            "runtimes",      "countries",    "taglines",
                            "trivia",        "top 250 rank", "height",
                            "birth notes",   "mini biography"};
const char* kCompanyTypes[] = {"production companies", "distributors",
                               "special effects companies",
                               "miscellaneous companies"};
const char* kRoleTypes[] = {"actor",    "actress",  "producer", "writer",
                            "director", "composer", "editor",
                            "cinematographer"};
const char* kLinkTypes[] = {"follows",        "followed by", "remake of",
                            "remade as",      "references",  "referenced in",
                            "spoofs",         "version of"};
const char* kCountryCodes[] = {"[us]", "[gb]", "[de]", "[fr]", "[jp]",
                               "[it]", "[in]", "[ca]", "[es]", "[se]"};
const char* kGenres[] = {"Drama",  "Comedy",   "Action",      "Horror",
                         "Sci-Fi", "Thriller", "Documentary", "Romance"};
// The first keywords are the named ones JOB predicates use.
const char* kNamedKeywords[] = {"character-name-in-title", "sequel",
                                "superhero",               "blood",
                                "violence",
                                "marvel-cinematic-universe"};

int64_t ArrayLen(const char* const* arr, size_t bytes) {
  (void)arr;
  return static_cast<int64_t>(bytes / sizeof(const char*));
}
#define ARRAY_LEN(a) ArrayLen(a, sizeof(a))

}  // namespace

Status GenerateImdb(Database* db, const ImdbOptions& options) {
  Rng rng(options.seed);
  // Per-link-table permutations keep skewed marginals while decorrelating
  // which titles/names are "popular" in each relationship.
  Permutation ci_title_perm(options.titles(), options.seed + 1);
  Permutation ci_name_perm(options.names(), options.seed + 2);
  Permutation mc_title_perm(options.titles(), options.seed + 3);
  Permutation mk_title_perm(options.titles(), options.seed + 4);
  Permutation mi_title_perm(options.titles(), options.seed + 5);
  Permutation midx_title_perm(options.titles(), options.seed + 6);
  Permutation an_name_perm(options.names(), options.seed + 7);
  Permutation pi_name_perm(options.names(), options.seed + 8);
  Permutation ml_title_perm(options.titles(), options.seed + 9);

  // ---- Dimension tables ----------------------------------------------------
  auto make_enum_table = [&](const char* name, const char* col,
                             const char* const* values,
                             int64_t n) -> Status {
    RELGO_ASSIGN_OR_RETURN(
        auto t, db->CreateTable(
                    name, Schema({ColumnDef{"id", LogicalType::kInt64},
                                  {col, LogicalType::kString}})));
    for (int64_t i = 0; i < n; ++i) {
      RELGO_RETURN_NOT_OK(
          t->AppendRow({Value::Int(i), Value::String(values[i])}));
    }
    return Status::OK();
  };
  RELGO_RETURN_NOT_OK(make_enum_table("kind_type", "kind", kKindTypes,
                                      ARRAY_LEN(kKindTypes)));
  RELGO_RETURN_NOT_OK(make_enum_table("info_type", "info", kInfoTypes,
                                      ARRAY_LEN(kInfoTypes)));
  RELGO_RETURN_NOT_OK(make_enum_table("company_type", "kind", kCompanyTypes,
                                      ARRAY_LEN(kCompanyTypes)));
  RELGO_RETURN_NOT_OK(make_enum_table("role_type", "role", kRoleTypes,
                                      ARRAY_LEN(kRoleTypes)));
  RELGO_RETURN_NOT_OK(make_enum_table("link_type", "link", kLinkTypes,
                                      ARRAY_LEN(kLinkTypes)));

  RELGO_ASSIGN_OR_RETURN(
      auto keyword,
      db->CreateTable("keyword",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"keyword", LogicalType::kString}})));
  for (int64_t i = 0; i < options.keywords(); ++i) {
    std::string kw = i < ARRAY_LEN(kNamedKeywords)
                         ? kNamedKeywords[i]
                         : "kw_" + std::to_string(i);
    RELGO_RETURN_NOT_OK(keyword->AppendRow({Value::Int(i), Value::String(kw)}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto company,
      db->CreateTable("company_name",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"name", LogicalType::kString},
                              {"country_code", LogicalType::kString}})));
  for (int64_t i = 0; i < options.companies(); ++i) {
    RELGO_RETURN_NOT_OK(company->AppendRow(
        {Value::Int(i), Value::String("studio_" + std::to_string(i)),
         Value::String(
             kCountryCodes[rng.Zipf(ARRAY_LEN(kCountryCodes), 1.0)])}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto char_name,
      db->CreateTable("char_name",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"name", LogicalType::kString}})));
  int64_t num_chars = options.names() / 2;
  for (int64_t i = 0; i < num_chars; ++i) {
    RELGO_RETURN_NOT_OK(char_name->AppendRow(
        {Value::Int(i), Value::String("char_" + std::to_string(i))}));
  }

  // ---- Entity tables -------------------------------------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto title,
      db->CreateTable("title",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"title", LogicalType::kString},
                              {"production_year", LogicalType::kInt64},
                              {"kind_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.titles(); ++i) {
    // Skew toward recent years, like the real IMDB snapshot.
    int64_t year = 2023 - rng.PowerLaw(0, 73, 1.6);
    char initial = static_cast<char>('A' + rng.Uniform(0, 25));
    RELGO_RETURN_NOT_OK(title->AppendRow(
        {Value::Int(i),
         Value::String(std::string(1, initial) + "_movie_" +
                       std::to_string(i)),
         Value::Int(year),
         Value::Int(rng.Zipf(ARRAY_LEN(kKindTypes), 1.0))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto name, db->CreateTable(
                     "name", Schema({ColumnDef{"id", LogicalType::kInt64},
                                     {"name", LogicalType::kString},
                                     {"gender", LogicalType::kString}})));
  for (int64_t i = 0; i < options.names(); ++i) {
    char initial = static_cast<char>('A' + rng.Uniform(0, 25));
    RELGO_RETURN_NOT_OK(name->AppendRow(
        {Value::Int(i),
         Value::String(std::string(1, initial) + "_person_" +
                       std::to_string(i)),
         Value::String(rng.Chance(0.45) ? "f" : "m")}));
  }

  // ---- Link tables (vertices that carry FK edges) --------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto cast_info,
      db->CreateTable("cast_info",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"role_id", LogicalType::kInt64},
                              {"person_role_id", LogicalType::kInt64},
                              {"nr_order", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.cast_info(); ++i) {
    RELGO_RETURN_NOT_OK(cast_info->AppendRow(
        {Value::Int(i),
         Value::Int(ci_name_perm[rng.Zipf(options.names(), 1.0)]),
         Value::Int(ci_title_perm[rng.Zipf(options.titles(), 1.0)]),
         Value::Int(rng.Zipf(ARRAY_LEN(kRoleTypes), 1.0)),
         Value::Int(rng.Uniform(0, num_chars - 1)),
         Value::Int(rng.Uniform(1, 50))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto movie_companies,
      db->CreateTable("movie_companies",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"company_id", LogicalType::kInt64},
                              {"company_type_id", LogicalType::kInt64},
                              {"note", LogicalType::kString}})));
  for (int64_t i = 0; i < options.movie_companies(); ++i) {
    RELGO_RETURN_NOT_OK(movie_companies->AppendRow(
        {Value::Int(i),
         Value::Int(mc_title_perm[rng.Zipf(options.titles(), 1.0)]),
         Value::Int(rng.Zipf(options.companies(), 1.0)),
         Value::Int(rng.Zipf(ARRAY_LEN(kCompanyTypes), 1.0)),
         Value::String(rng.Chance(0.3) ? "(co-production)" : "(presents)")}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto movie_keyword,
      db->CreateTable("movie_keyword",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"keyword_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.movie_keywords(); ++i) {
    RELGO_RETURN_NOT_OK(movie_keyword->AppendRow(
        {Value::Int(i),
         Value::Int(mk_title_perm[rng.Zipf(options.titles(), 1.0)]),
         Value::Int(rng.Zipf(options.keywords(), 1.0))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto movie_info,
      db->CreateTable("movie_info",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"info_type_id", LogicalType::kInt64},
                              {"info", LogicalType::kString}})));
  for (int64_t i = 0; i < options.movie_infos(); ++i) {
    int64_t itype = rng.Zipf(10, 1.0);  // first ten info types
    std::string info;
    if (std::string(kInfoTypes[itype]) == "genres") {
      info = kGenres[rng.Zipf(ARRAY_LEN(kGenres), 1.0)];
    } else if (std::string(kInfoTypes[itype]) == "budget") {
      info = "$" + std::to_string(rng.Uniform(1, 200)) + "000000";
    } else {
      info = "note_" + std::to_string(rng.Uniform(0, 500));
    }
    RELGO_RETURN_NOT_OK(movie_info->AppendRow(
        {Value::Int(i),
         Value::Int(mi_title_perm[rng.Zipf(options.titles(), 1.0)]),
         Value::Int(itype), Value::String(info)}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto movie_info_idx,
      db->CreateTable("movie_info_idx",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"info_type_id", LogicalType::kInt64},
                              {"info", LogicalType::kString}})));
  {
    int rating_type = 1;  // "rating"
    int votes_type = 4;   // "votes"
    for (int64_t i = 0; i < options.movie_info_idx(); ++i) {
      bool is_rating = rng.Chance(0.5);
      std::string info =
          is_rating
              ? StrFormat("%.1f", 1.0 + rng.NextDouble() * 8.9)
              : std::to_string(rng.Uniform(10, 500000));
      RELGO_RETURN_NOT_OK(movie_info_idx->AppendRow(
          {Value::Int(i),
           Value::Int(midx_title_perm[rng.Zipf(options.titles(), 1.0)]),
           Value::Int(is_rating ? rating_type : votes_type),
           Value::String(info)}));
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto aka_name,
      db->CreateTable("aka_name",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"name", LogicalType::kString}})));
  for (int64_t i = 0; i < options.aka_names(); ++i) {
    RELGO_RETURN_NOT_OK(aka_name->AppendRow(
        {Value::Int(i),
         Value::Int(an_name_perm[rng.Zipf(options.names(), 1.0)]),
         Value::String("aka_" + std::to_string(i))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto person_info,
      db->CreateTable("person_info",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"info_type_id", LogicalType::kInt64},
                              {"info", LogicalType::kString}})));
  for (int64_t i = 0; i < options.person_infos(); ++i) {
    int64_t itype = 11 + rng.Uniform(0, 2);  // height/birth notes/mini bio
    RELGO_RETURN_NOT_OK(person_info->AppendRow(
        {Value::Int(i),
         Value::Int(pi_name_perm[rng.Zipf(options.names(), 1.0)]),
         Value::Int(itype),
         Value::String("pinfo_" + std::to_string(rng.Uniform(0, 300)))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto movie_link,
      db->CreateTable("movie_link",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"movie_id", LogicalType::kInt64},
                              {"linked_movie_id", LogicalType::kInt64},
                              {"link_type_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.movie_links(); ++i) {
    RELGO_RETURN_NOT_OK(movie_link->AppendRow(
        {Value::Int(i),
         Value::Int(ml_title_perm[rng.Zipf(options.titles(), 1.0)]),
         Value::Int(rng.Uniform(0, options.titles() - 1)),
         Value::Int(rng.Zipf(ARRAY_LEN(kLinkTypes), 1.0))}));
  }

  // ---- RGMapping: every table is a vertex; FKs are identity edges. ---------
  for (const char* t :
       {"kind_type", "info_type", "company_type", "role_type", "link_type",
        "keyword", "company_name", "char_name", "title", "name", "cast_info",
        "movie_companies", "movie_keyword", "movie_info", "movie_info_idx",
        "aka_name", "person_info", "movie_link"}) {
    RELGO_RETURN_NOT_OK(db->AddVertexTable(t, "id"));
  }
  struct FkEdge {
    const char* table;
    const char* fk;
    const char* target;
    const char* label;
  };
  const FkEdge kEdges[] = {
      {"cast_info", "person_id", "name", "ci_name"},
      {"cast_info", "movie_id", "title", "ci_title"},
      {"cast_info", "role_id", "role_type", "ci_role"},
      {"cast_info", "person_role_id", "char_name", "ci_char"},
      {"movie_companies", "movie_id", "title", "mc_title"},
      {"movie_companies", "company_id", "company_name", "mc_company"},
      {"movie_companies", "company_type_id", "company_type", "mc_ctype"},
      {"movie_keyword", "movie_id", "title", "mk_title"},
      {"movie_keyword", "keyword_id", "keyword", "mk_keyword"},
      {"movie_info", "movie_id", "title", "mi_title"},
      {"movie_info", "info_type_id", "info_type", "mi_itype"},
      {"movie_info_idx", "movie_id", "title", "midx_title"},
      {"movie_info_idx", "info_type_id", "info_type", "midx_itype"},
      {"title", "kind_id", "kind_type", "t_kind"},
      {"aka_name", "person_id", "name", "an_name"},
      {"person_info", "person_id", "name", "pi_name"},
      {"person_info", "info_type_id", "info_type", "pi_itype"},
      {"movie_link", "movie_id", "title", "ml_movie"},
      {"movie_link", "linked_movie_id", "title", "ml_linked"},
      {"movie_link", "link_type_id", "link_type", "ml_ltype"},
  };
  for (const auto& e : kEdges) {
    RELGO_RETURN_NOT_OK(
        db->AddEdgeTable(e.table, e.table, "id", e.target, e.fk, e.label));
  }
  return db->Finalize();
}

// ---------------------------------------------------------------------------
// JOB-analog queries
// ---------------------------------------------------------------------------

namespace {

/// Compact builder for JOB-style queries: MATCH + WHERE + MIN aggregates.
/// All referenced "var.column" attributes are auto-added to the COLUMNS
/// clause so both the converged and flattened paths see them.
class JobBuilder {
 public:
  JobBuilder(const Database& db, std::string name, const std::string& text)
      : builder_(std::move(name)) {
    auto p = db.ParsePattern(text);
    if (!p.ok()) {
      std::fprintf(stderr, "JOB pattern error in %s: %s\n", text.c_str(),
                   p.status().ToString().c_str());
      std::abort();
    }
    builder_.Match(std::move(*p));
  }

  JobBuilder& Where(ExprPtr e) {
    std::vector<std::string> cols;
    e->CollectColumns(&cols);
    for (const auto& c : cols) Project(c);
    builder_.Where(std::move(e));
    return *this;
  }

  JobBuilder& Min(const std::string& var_col, const std::string& out) {
    Project(var_col);
    builder_.Aggregate(AggFunc::kMin, var_col, out);
    return *this;
  }

  WorkloadQuery Build(bool cyclic = false) {
    return {builder_.Build(), cyclic};
  }

 private:
  void Project(const std::string& var_col) {
    if (!seen_.insert(var_col).second) return;
    size_t dot = var_col.find('.');
    builder_.Column(var_col.substr(0, dot), var_col.substr(dot + 1));
  }

  SpjmQueryBuilder builder_;
  std::set<std::string> seen_;
};

ExprPtr SEq(const std::string& col, const char* v) {
  return Expr::Eq(col, Value::String(v));
}
ExprPtr YearGt(const std::string& col, int64_t y) {
  return Expr::Compare(CompareOp::kGt, Expr::Column(col),
                       Expr::Constant(Value::Int(y)));
}
ExprPtr YearBetween(const std::string& col, int64_t lo, int64_t hi) {
  return Expr::And(Expr::Compare(CompareOp::kGe, Expr::Column(col),
                                 Expr::Constant(Value::Int(lo))),
                   Expr::Compare(CompareOp::kLe, Expr::Column(col),
                                 Expr::Constant(Value::Int(hi))));
}
ExprPtr SGt(const std::string& col, const char* v) {
  return Expr::Compare(CompareOp::kGt, Expr::Column(col),
                       Expr::Constant(Value::String(v)));
}

// Pattern fragments shared by many JOB queries (all anchored on t:title).
const char* kKw = "(mk:movie_keyword)-[:mk_title]->(t:title), "
                  "(mk)-[:mk_keyword]->(k:keyword)";
const char* kCompany =
    "(mc:movie_companies)-[:mc_title]->(t:title), "
    "(mc)-[:mc_company]->(cn:company_name)";
const char* kCompanyTyped =
    "(mc:movie_companies)-[:mc_title]->(t:title), "
    "(mc)-[:mc_company]->(cn:company_name), "
    "(mc)-[:mc_ctype]->(ct:company_type)";
const char* kCast =
    "(ci:cast_info)-[:ci_title]->(t:title), (ci)-[:ci_name]->(n:name)";
const char* kInfo =
    "(mi:movie_info)-[:mi_title]->(t:title), "
    "(mi)-[:mi_itype]->(it:info_type)";
const char* kRating =
    "(midx:movie_info_idx)-[:midx_title]->(t:title), "
    "(midx)-[:midx_itype]->(it2:info_type)";

std::string Pat(std::initializer_list<const char*> parts) {
  std::string out;
  for (const char* p : parts) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

}  // namespace

std::vector<WorkloadQuery> JobQueries(const Database& db) {
  std::vector<WorkloadQuery> out;

  // JOB1: production companies of highly-voted movies.
  out.push_back(
      JobBuilder(db, "JOB1",
                 Pat({"(mc:movie_companies)-[:mc_title]->(t:title)",
                      "(mc)-[:mc_ctype]->(ct:company_type)", kRating}))
          .Where(SEq("ct.kind", "production companies"))
          .Where(SEq("it2.info", "votes"))
          .Where(Expr::Contains(Expr::Column("mc.note"), "co-production"))
          .Min("mc.note", "production_note")
          .Min("t.title", "movie_title")
          .Min("t.production_year", "movie_year")
          .Build());

  // JOB2: German companies on character-name-in-title movies.
  out.push_back(JobBuilder(db, "JOB2",
                           Pat({kKw, "(mc:movie_companies)-[:mc_title]->(t)",
                                "(mc)-[:mc_company]->(cn:company_name)"}))
                    .Where(SEq("cn.country_code", "[de]"))
                    .Where(SEq("k.keyword", "character-name-in-title"))
                    .Min("t.title", "movie_title")
                    .Build());

  // JOB3: recent sequels with a genre row.
  out.push_back(JobBuilder(db, "JOB3", Pat({kKw, kInfo}))
                    .Where(SEq("k.keyword", "sequel"))
                    .Where(SEq("it.info", "genres"))
                    .Where(SEq("mi.info", "Action"))
                    .Where(YearGt("t.production_year", 2005))
                    .Min("t.title", "movie_title")
                    .Build());

  // JOB4: well-rated sequels.
  out.push_back(JobBuilder(db, "JOB4", Pat({kKw, kRating}))
                    .Where(SEq("it2.info", "rating"))
                    .Where(SEq("k.keyword", "sequel"))
                    .Where(SGt("midx.info", "5.0"))
                    .Min("midx.info", "rating")
                    .Min("t.title", "movie_title")
                    .Build());

  // JOB5: typed production companies with genre rows.
  out.push_back(JobBuilder(db, "JOB5", Pat({kCompanyTyped, kInfo}))
                    .Where(SEq("ct.kind", "production companies"))
                    .Where(SEq("it.info", "genres"))
                    .Where(SEq("mi.info", "Drama"))
                    .Where(YearGt("t.production_year", 2000))
                    .Min("t.title", "typical_european_movie")
                    .Build());

  // JOB6: marvel movies and their cast.
  out.push_back(JobBuilder(db, "JOB6", Pat({kKw, kCast}))
                    .Where(SEq("k.keyword", "marvel-cinematic-universe"))
                    .Where(Expr::StartsWith(Expr::Column("n.name"), "D"))
                    .Where(YearGt("t.production_year", 2009))
                    .Min("k.keyword", "movie_keyword")
                    .Min("n.name", "actor_name")
                    .Min("t.title", "marvel_movie")
                    .Build());

  // JOB7: people with aka names and bios linked to movies.
  out.push_back(
      JobBuilder(db, "JOB7",
                 Pat({kCast, "(an:aka_name)-[:an_name]->(n)",
                      "(pi:person_info)-[:pi_name]->(n)",
                      "(pi)-[:pi_itype]->(it:info_type)"}))
          .Where(SEq("it.info", "mini biography"))
          .Where(Expr::StartsWith(Expr::Column("n.name"), "A"))
          .Where(YearBetween("t.production_year", 1980, 2010))
          .Min("n.name", "of_person")
          .Min("t.title", "biography_movie")
          .Build());

  // JOB8: actresses in US productions.
  out.push_back(
      JobBuilder(db, "JOB8",
                 Pat({kCast, "(ci)-[:ci_role]->(rt:role_type)", kCompany}))
          .Where(SEq("rt.role", "actress"))
          .Where(SEq("cn.country_code", "[us]"))
          .Min("n.name", "actress_name")
          .Min("t.title", "movie_title")
          .Build());

  // JOB9: actresses with aka names in US movies.
  out.push_back(
      JobBuilder(db, "JOB9",
                 Pat({kCast, "(ci)-[:ci_role]->(rt:role_type)",
                      "(an:aka_name)-[:an_name]->(n)", kCompany}))
          .Where(SEq("rt.role", "actress"))
          .Where(SEq("cn.country_code", "[us]"))
          .Where(YearGt("t.production_year", 1990))
          .Min("an.name", "alternative_name")
          .Min("t.title", "movie_title")
          .Build());

  // JOB10: uncredited character roles in typed productions.
  out.push_back(
      JobBuilder(db, "JOB10",
                 Pat({"(ci:cast_info)-[:ci_title]->(t:title)",
                      "(ci)-[:ci_char]->(chn:char_name)",
                      "(ci)-[:ci_role]->(rt:role_type)", kCompanyTyped}))
          .Where(SEq("rt.role", "actor"))
          .Where(SEq("ct.kind", "production companies"))
          .Where(SEq("cn.country_code", "[ca]"))
          .Min("chn.name", "character")
          .Min("t.title", "movie")
          .Build());

  // JOB11: linked movies of companies with keywords (adds movie_link).
  out.push_back(
      JobBuilder(db, "JOB11",
                 Pat({kKw, kCompanyTyped,
                      "(ml:movie_link)-[:ml_movie]->(t)",
                      "(ml)-[:ml_ltype]->(lt:link_type)"}))
          .Where(SEq("lt.link", "follows"))
          .Where(SEq("k.keyword", "sequel"))
          .Where(SEq("cn.country_code", "[gb]"))
          .Where(YearBetween("t.production_year", 1990, 2015))
          .Min("cn.name", "from_company")
          .Min("lt.link", "movie_link_type")
          .Min("t.title", "sequel_movie")
          .Build());

  // JOB12: rated dramas of production companies.
  out.push_back(JobBuilder(db, "JOB12", Pat({kCompanyTyped, kInfo, kRating}))
                    .Where(SEq("cn.country_code", "[us]"))
                    .Where(SEq("ct.kind", "production companies"))
                    .Where(SEq("it.info", "genres"))
                    .Where(SEq("mi.info", "Drama"))
                    .Where(SEq("it2.info", "rating"))
                    .Where(SGt("midx.info", "7.0"))
                    .Min("mi.info", "movie_budget")
                    .Min("midx.info", "movie_votes")
                    .Min("t.title", "movie_title")
                    .Build());

  // JOB13: rated movies of a kind with release info.
  out.push_back(
      JobBuilder(db, "JOB13",
                 Pat({kInfo, kRating, "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("it.info", "release dates"))
          .Where(SEq("it2.info", "rating"))
          .Min("mi.info", "release_date")
          .Min("midx.info", "rating")
          .Min("t.title", "german_movie")
          .Build());

  // JOB14: rated horror sequels of a kind.
  out.push_back(
      JobBuilder(db, "JOB14",
                 Pat({kKw, kInfo, kRating, "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("k.keyword", "blood"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Horror"))
          .Where(SEq("it2.info", "rating"))
          .Min("midx.info", "rating")
          .Min("t.title", "northern_dark_movie")
          .Build());

  // JOB15: US movies with keywords and internet info.
  out.push_back(JobBuilder(db, "JOB15", Pat({kKw, kCompany, kInfo}))
                    .Where(SEq("cn.country_code", "[us]"))
                    .Where(SEq("it.info", "release dates"))
                    .Where(YearGt("t.production_year", 2000))
                    .Min("mi.info", "release_date")
                    .Min("t.title", "internet_movie")
                    .Build());

  // JOB16: aka-named cast of keyworded company movies.
  out.push_back(
      JobBuilder(db, "JOB16",
                 Pat({kKw, kCast, "(an:aka_name)-[:an_name]->(n)",
                      kCompany}))
          .Where(SEq("cn.country_code", "[jp]"))
          .Where(SEq("k.keyword", "character-name-in-title"))
          .Min("an.name", "cool_actor_pseudonym")
          .Min("t.title", "series_named_after_char")
          .Build());

  // JOB17 — the paper's case study (Fig 12), verbatim shape.
  out.push_back(
      JobBuilder(db, "JOB17",
                 Pat({"(ci:cast_info)-[:ci_name]->(n:name)",
                      "(ci)-[:ci_title]->(t:title)", kKw, kCompany}))
          .Where(SEq("cn.country_code", "[us]"))
          .Where(SEq("k.keyword", "character-name-in-title"))
          .Where(Expr::StartsWith(Expr::Column("n.name"), "B"))
          .Min("n.name", "member_in_charnamed_american_movie")
          .Min("n.name", "a1")
          .Build());

  // JOB18: male writers of rated movies.
  out.push_back(
      JobBuilder(db, "JOB18",
                 Pat({kCast, "(ci)-[:ci_role]->(rt:role_type)", kRating}))
          .Where(SEq("rt.role", "writer"))
          .Where(SEq("n.gender", "m"))
          .Where(SEq("it2.info", "votes"))
          .Min("midx.info", "movie_votes")
          .Min("t.title", "movie_title")
          .Build());

  // JOB19: voiced characters in US movies with release info.
  out.push_back(
      JobBuilder(db, "JOB19",
                 Pat({kCast, "(ci)-[:ci_role]->(rt:role_type)", kCompany,
                      kInfo}))
          .Where(SEq("rt.role", "actress"))
          .Where(SEq("n.gender", "f"))
          .Where(SEq("cn.country_code", "[us]"))
          .Where(SEq("it.info", "release dates"))
          .Where(YearBetween("t.production_year", 2000, 2010))
          .Min("n.name", "voicing_actress")
          .Min("t.title", "voiced_movie")
          .Build());

  // JOB20: superhero movies of a kind with characters.
  out.push_back(
      JobBuilder(db, "JOB20",
                 Pat({kKw, "(t)-[:t_kind]->(kt:kind_type)",
                      "(ci:cast_info)-[:ci_title]->(t)",
                      "(ci)-[:ci_char]->(chn:char_name)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("k.keyword", "superhero"))
          .Where(YearGt("t.production_year", 2000))
          .Min("t.title", "complete_downey_ironman_movie")
          .Build());

  // JOB21: linked company movies with genre rows.
  out.push_back(
      JobBuilder(db, "JOB21",
                 Pat({kKw, kCompanyTyped, kInfo,
                      "(ml:movie_link)-[:ml_movie]->(t)",
                      "(ml)-[:ml_ltype]->(lt:link_type)"}))
          .Where(SEq("lt.link", "follows"))
          .Where(SEq("k.keyword", "sequel"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Comedy"))
          .Min("cn.name", "company_name")
          .Min("lt.link", "link_type")
          .Min("t.title", "western_follow_up")
          .Build());

  // JOB22: rated violent movies of western companies.
  out.push_back(
      JobBuilder(db, "JOB22",
                 Pat({kKw, kCompanyTyped, kInfo, kRating,
                      "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("k.keyword", "violence"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Thriller"))
          .Where(SEq("it2.info", "rating"))
          .Where(SEq("cn.country_code", "[de]"))
          .Min("cn.name", "movie_company")
          .Min("midx.info", "rating")
          .Min("t.title", "western_violent_movie")
          .Build());

  // JOB23: recent US movies of a kind with release info.
  out.push_back(
      JobBuilder(db, "JOB23",
                 Pat({kKw, kCompanyTyped, kInfo,
                      "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("cn.country_code", "[us]"))
          .Where(SEq("it.info", "release dates"))
          .Where(YearGt("t.production_year", 2010))
          .Min("kt.kind", "movie_kind")
          .Min("t.title", "complete_us_internet_movie"   )
          .Build());

  // JOB24: voiced action movies with characters and keywords.
  out.push_back(
      JobBuilder(db, "JOB24",
                 Pat({kKw, kCast, "(ci)-[:ci_role]->(rt:role_type)",
                      "(ci)-[:ci_char]->(chn:char_name)", kInfo}))
          .Where(SEq("rt.role", "actress"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Action"))
          .Where(SEq("k.keyword", "superhero"))
          .Min("chn.name", "voiced_char_name")
          .Min("n.name", "voicing_actress")
          .Min("t.title", "voiced_action_movie")
          .Build());

  // JOB25: male writers of violent horror movies.
  out.push_back(
      JobBuilder(db, "JOB25",
                 Pat({kKw, kCast, "(ci)-[:ci_role]->(rt:role_type)", kInfo}))
          .Where(SEq("rt.role", "writer"))
          .Where(SEq("n.gender", "m"))
          .Where(SEq("k.keyword", "blood"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Horror"))
          .Min("mi.info", "movie_budget")
          .Min("n.name", "male_writer")
          .Min("t.title", "violent_movie_title")
          .Build());

  // JOB26: rated superhero movies of a kind with characters.
  out.push_back(
      JobBuilder(db, "JOB26",
                 Pat({kKw, "(ci:cast_info)-[:ci_title]->(t:title)",
                      "(ci)-[:ci_char]->(chn:char_name)", kRating,
                      "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "movie"))
          .Where(SEq("k.keyword", "superhero"))
          .Where(SEq("it2.info", "rating"))
          .Where(SGt("midx.info", "6.0"))
          .Min("chn.name", "character_name")
          .Min("midx.info", "rating")
          .Min("t.title", "complete_hero_movie")
          .Build());

  // JOB27: linked comedies of typed western companies.
  out.push_back(
      JobBuilder(db, "JOB27",
                 Pat({kKw, kCompanyTyped, kInfo,
                      "(ml:movie_link)-[:ml_movie]->(t)",
                      "(ml)-[:ml_ltype]->(lt:link_type)"}))
          .Where(SEq("lt.link", "references"))
          .Where(SEq("k.keyword", "sequel"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Comedy"))
          .Where(SEq("ct.kind", "production companies"))
          .Min("cn.name", "producing_company")
          .Min("lt.link", "link_type")
          .Min("t.title", "complete_western_sequel")
          .Build());

  // JOB28: rated euro-company violent movies of a kind.
  out.push_back(
      JobBuilder(db, "JOB28",
                 Pat({kKw, kCompanyTyped, kInfo, kRating,
                      "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("kt.kind", "tv movie"))
          .Where(SEq("k.keyword", "violence"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Thriller"))
          .Where(SEq("it2.info", "votes"))
          .Where(SEq("cn.country_code", "[se]"))
          .Min("mi.info", "movie_budget")
          .Min("midx.info", "movie_votes")
          .Min("t.title", "movie_title")
          .Build());

  // JOB29: the big one — cast + aka + person info + keyword + company.
  out.push_back(
      JobBuilder(db, "JOB29",
                 Pat({kKw, kCast, "(ci)-[:ci_role]->(rt:role_type)",
                      "(ci)-[:ci_char]->(chn:char_name)",
                      "(pi:person_info)-[:pi_name]->(n)",
                      "(pi)-[:pi_itype]->(it:info_type)", kCompany}))
          .Where(SEq("rt.role", "actress"))
          .Where(SEq("it.info", "mini biography"))
          .Where(SEq("k.keyword", "superhero"))
          .Where(SEq("cn.country_code", "[us]"))
          .Min("chn.name", "voiced_char")
          .Min("n.name", "voicing_actress")
          .Min("t.title", "voiced_animation")
          .Build());

  // JOB30: male writers of violent/gory movies (Umbra-favoring query).
  out.push_back(
      JobBuilder(db, "JOB30",
                 Pat({kKw, kCast, "(ci)-[:ci_role]->(rt:role_type)", kInfo}))
          .Where(SEq("rt.role", "writer"))
          .Where(SEq("n.gender", "m"))
          .Where(SEq("k.keyword", "violence"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Horror"))
          .Where(YearGt("t.production_year", 2000))
          .Min("mi.info", "movie_budget")
          .Min("n.name", "writer")
          .Min("t.title", "gory_movie")
          .Build());

  // JOB31: rated gory movies from big studios.
  out.push_back(
      JobBuilder(db, "JOB31",
                 Pat({kKw, kCast, "(ci)-[:ci_role]->(rt:role_type)", kInfo,
                      kRating}))
          .Where(SEq("rt.role", "director"))
          .Where(SEq("k.keyword", "blood"))
          .Where(SEq("it.info", "genres"))
          .Where(SEq("mi.info", "Horror"))
          .Where(SEq("it2.info", "votes"))
          .Min("mi.info", "movie_budget")
          .Min("midx.info", "movie_votes")
          .Min("n.name", "writer")
          .Min("t.title", "violent_liongate_movie")
          .Build());

  // JOB32: keyworded movies linked to other movies.
  out.push_back(
      JobBuilder(db, "JOB32",
                 Pat({kKw, "(ml:movie_link)-[:ml_movie]->(t)",
                      "(ml)-[:ml_linked]->(t2:title)",
                      "(ml)-[:ml_ltype]->(lt:link_type)"}))
          .Where(SEq("k.keyword", "character-name-in-title"))
          .Min("lt.link", "link_type")
          .Min("t.title", "first_movie")
          .Min("t2.title", "second_movie")
          .Build());

  // JOB33: ratings of linked tv series from the same studios (cyclic-ish:
  // two titles, each with their own rating rows).
  out.push_back(
      JobBuilder(db, "JOB33",
                 Pat({"(ml:movie_link)-[:ml_movie]->(t:title)",
                      "(ml)-[:ml_linked]->(t2:title)",
                      "(ml)-[:ml_ltype]->(lt:link_type)",
                      "(midx:movie_info_idx)-[:midx_title]->(t)",
                      "(midx)-[:midx_itype]->(it2:info_type)",
                      "(midx2:movie_info_idx)-[:midx_title]->(t2)",
                      "(t)-[:t_kind]->(kt:kind_type)"}))
          .Where(SEq("lt.link", "follows"))
          .Where(SEq("it2.info", "rating"))
          .Where(SGt("midx.info", "7.0"))
          .Where(SEq("kt.kind", "tv series"))
          .Min("midx.info", "rating")
          .Min("midx2.info", "linked_rating")
          .Min("t.title", "series_title")
          .Min("t2.title", "linked_series_title")
          .Build());

  return out;
}

}  // namespace workload
}  // namespace relgo
