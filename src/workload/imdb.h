#ifndef RELGO_WORKLOAD_IMDB_H_
#define RELGO_WORKLOAD_IMDB_H_

#include <vector>

#include "workload/ldbc.h"

namespace relgo {
namespace workload {

/// Scale knobs for the IMDB-like generator behind the JOB-analog queries.
/// Row-count ratios follow the real IMDB snapshot (cast_info dominating,
/// small dimension tables); absolute sizes are laptop-scale.
struct ImdbOptions {
  double scale_factor = 1.0;
  uint64_t seed = 17;

  int64_t titles() const { return static_cast<int64_t>(12000 * scale_factor); }
  int64_t names() const { return static_cast<int64_t>(20000 * scale_factor); }
  int64_t cast_info() const {
    return static_cast<int64_t>(80000 * scale_factor);
  }
  int64_t companies() const {
    return static_cast<int64_t>(4000 * scale_factor);
  }
  int64_t movie_companies() const {
    return static_cast<int64_t>(30000 * scale_factor);
  }
  int64_t keywords() const { return 3000; }
  int64_t movie_keywords() const {
    return static_cast<int64_t>(45000 * scale_factor);
  }
  int64_t movie_infos() const {
    return static_cast<int64_t>(60000 * scale_factor);
  }
  int64_t movie_info_idx() const {
    return static_cast<int64_t>(15000 * scale_factor);
  }
  int64_t aka_names() const {
    return static_cast<int64_t>(8000 * scale_factor);
  }
  int64_t person_infos() const {
    return static_cast<int64_t>(20000 * scale_factor);
  }
  int64_t movie_links() const { return 2500; }
};

/// Materializes the IMDB-like database into `db` and finalizes it.
///
/// GRainDB-style modeling (and the paper's Fig 12): every base table is a
/// vertex table, and every foreign key becomes an identity edge, e.g.
/// (ci:cast_info)-[:ci_name]->(n:name), (mk:movie_keyword)-[:mk_title]->
/// (t:title). Many-to-many link tables (cast_info, movie_companies,
/// movie_keyword, ...) therefore act as both vertices and edge carriers.
Status GenerateImdb(Database* db, const ImdbOptions& options = {});

/// JOB1..33 analogs ("a" variants): join graphs and predicate shapes
/// mirror the Join Order Benchmark queries over the synthetic value
/// domains; every query aggregates with MIN like the originals.
std::vector<WorkloadQuery> JobQueries(const Database& db);

}  // namespace workload
}  // namespace relgo

#endif  // RELGO_WORKLOAD_IMDB_H_
