#include "workload/ldbc.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "common/hash.h"
#include "common/rng.h"

namespace relgo {
namespace workload {

using plan::AggFunc;
using plan::SpjmQueryBuilder;
using storage::ColumnDef;
using storage::Expr;
using storage::Schema;

namespace {

const char* kFirstNames[] = {
    "Jan",   "Jun",    "Joe",   "Jose",  "Jack",  "John",  "Jorge", "Jatin",
    "Karl",  "Ken",    "Kumar", "Lars",  "Lee",   "Li",    "Lin",   "Liz",
    "Maria", "Mehmet", "Mike",  "Nia",   "Olga",  "Omar",  "Otto",  "Pablo",
    "Petra", "Qi",     "Rahul", "Rosa",  "Sam",   "Sara",  "Tariq", "Tom",
    "Uma",   "Vera",   "Wang",  "Wei",   "Xu",    "Yang",  "Zhang", "Zoe"};
const char* kLastNames[] = {"Anand", "Bauer", "Chen",  "Diaz",  "Eco",
                            "Fong",  "Garcia", "Hoff",  "Ito",   "Jones",
                            "Kim",   "Lopez",  "Mora",  "Nagy",  "Okoye",
                            "Perez", "Qureshi", "Rossi", "Singh", "Tanaka"};

int32_t Date(const char* iso) { return *ParseDate(iso); }

int32_t RandomDate(Rng* rng, int32_t lo, int32_t hi) {
  return static_cast<int32_t>(rng->Uniform(lo, hi));
}

}  // namespace

Status GenerateLdbc(Database* db, const LdbcOptions& options) {
  Rng rng(options.seed);
  // Decorrelate popularity across relationships (see Permutation docs).
  Permutation post_creator_perm(options.persons(), options.seed + 1);
  Permutation comment_creator_perm(options.persons(), options.seed + 2);
  Permutation comment_post_perm(options.posts(), options.seed + 3);
  Permutation likes_post_perm(options.posts(), options.seed + 4);
  Permutation member_person_perm(options.persons(), options.seed + 5);
  Permutation knows_perm(options.persons(), options.seed + 6);
  Permutation post_forum_perm(options.forums(), options.seed + 7);
  const int32_t kEpochLo = Date("2010-01-01");
  const int32_t kEpochHi = Date("2013-12-31");
  const int64_t kNumFirst = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
  const int64_t kNumLast = sizeof(kLastNames) / sizeof(kLastNames[0]);

  // ---- Vertex tables --------------------------------------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto place, db->CreateTable(
                      "Place", Schema({ColumnDef{"id", LogicalType::kInt64},
                                       {"name", LogicalType::kString},
                                       {"type", LogicalType::kString},
                                       {"part_of", LogicalType::kInt64}})));
  // Countries first (part_of = self), then cities.
  for (int64_t c = 0; c < options.countries(); ++c) {
    RELGO_RETURN_NOT_OK(place->AppendRow(
        {Value::Int(c), Value::String("country_" + std::to_string(c)),
         Value::String("country"), Value::Int(c)}));
  }
  for (int64_t c = 0; c < options.cities(); ++c) {
    int64_t id = options.countries() + c;
    int64_t country = rng.Uniform(0, options.countries() - 1);
    RELGO_RETURN_NOT_OK(place->AppendRow(
        {Value::Int(id), Value::String("city_" + std::to_string(c)),
         Value::String("city"), Value::Int(country)}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto person,
      db->CreateTable("Person",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"firstName", LogicalType::kString},
                              {"lastName", LogicalType::kString},
                              {"birthday", LogicalType::kDate},
                              {"creationDate", LogicalType::kDate},
                              {"place_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.persons(); ++i) {
    int64_t city = options.countries() + rng.Zipf(options.cities(), 1.0);
    RELGO_RETURN_NOT_OK(person->AppendRow(
        {Value::Int(i), Value::String(kFirstNames[rng.Zipf(kNumFirst, 1.0)]),
         Value::String(kLastNames[rng.Uniform(0, kNumLast - 1)]),
         Value::Date(RandomDate(&rng, Date("1960-01-01"), Date("2000-12-31"))),
         Value::Date(RandomDate(&rng, kEpochLo, kEpochHi)),
         Value::Int(city)}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto tag_class,
      db->CreateTable("TagClass",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"name", LogicalType::kString}})));
  for (int64_t i = 0; i < options.tag_classes(); ++i) {
    RELGO_RETURN_NOT_OK(tag_class->AppendRow(
        {Value::Int(i), Value::String("tagclass_" + std::to_string(i))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto tag, db->CreateTable(
                    "Tag", Schema({ColumnDef{"id", LogicalType::kInt64},
                                   {"name", LogicalType::kString},
                                   {"class_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.tags(); ++i) {
    RELGO_RETURN_NOT_OK(tag->AppendRow(
        {Value::Int(i), Value::String("tag_" + std::to_string(i)),
         Value::Int(rng.Zipf(options.tag_classes(), 1.0))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto company,
      db->CreateTable("Company",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"name", LogicalType::kString},
                              {"country_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.companies(); ++i) {
    RELGO_RETURN_NOT_OK(company->AppendRow(
        {Value::Int(i), Value::String("company_" + std::to_string(i)),
         Value::Int(rng.Uniform(0, options.countries() - 1))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto forum,
      db->CreateTable("Forum",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"title", LogicalType::kString},
                              {"creationDate", LogicalType::kDate},
                              {"moderator_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.forums(); ++i) {
    RELGO_RETURN_NOT_OK(forum->AppendRow(
        {Value::Int(i), Value::String("forum_" + std::to_string(i)),
         Value::Date(RandomDate(&rng, kEpochLo, kEpochHi)),
         Value::Int(rng.Uniform(0, options.persons() - 1))}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto post,
      db->CreateTable("Post",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"content", LogicalType::kString},
                              {"length", LogicalType::kInt64},
                              {"creationDate", LogicalType::kDate},
                              {"creator_id", LogicalType::kInt64},
                              {"forum_id", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.posts(); ++i) {
    RELGO_RETURN_NOT_OK(post->AppendRow(
        {Value::Int(i), Value::String("post_" + std::to_string(i)),
         Value::Int(rng.Uniform(5, 2000)),
         Value::Date(RandomDate(&rng, kEpochLo, kEpochHi)),
         Value::Int(post_creator_perm[rng.Zipf(options.persons(), 1.0)]),
         Value::Int(post_forum_perm[rng.Zipf(options.forums(), 1.0)])}));
  }

  RELGO_ASSIGN_OR_RETURN(
      auto comment,
      db->CreateTable("Comment",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"content", LogicalType::kString},
                              {"creationDate", LogicalType::kDate},
                              {"creator_id", LogicalType::kInt64},
                              {"reply_of_post", LogicalType::kInt64}})));
  for (int64_t i = 0; i < options.comments(); ++i) {
    RELGO_RETURN_NOT_OK(comment->AppendRow(
        {Value::Int(i), Value::String("comment_" + std::to_string(i)),
         Value::Date(RandomDate(&rng, kEpochLo, kEpochHi)),
         Value::Int(comment_creator_perm[rng.Zipf(options.persons(), 1.0)]),
         Value::Int(comment_post_perm[rng.Zipf(options.posts(), 1.0)])}));
  }

  // ---- Many-to-many edge tables ---------------------------------------------
  RELGO_ASSIGN_OR_RETURN(
      auto knows,
      db->CreateTable("knows",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"p1", LogicalType::kInt64},
                              {"p2", LogicalType::kInt64},
                              {"creationDate", LogicalType::kDate}})));
  {
    std::unordered_set<std::pair<int64_t, int64_t>, PairHash> seen;
    int64_t target_pairs = static_cast<int64_t>(
        options.persons() * options.avg_knows_degree() / 2.0);
    int64_t next_id = 0;
    for (int64_t k = 0; k < target_pairs; ++k) {
      int64_t a = knows_perm[rng.Zipf(options.persons(), 1.0)];
      int64_t b = rng.Uniform(0, options.persons() - 1);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      if (!seen.insert({a, b}).second) continue;
      int32_t d = RandomDate(&rng, kEpochLo, kEpochHi);
      RELGO_RETURN_NOT_OK(knows->AppendRow(
          {Value::Int(next_id++), Value::Int(a), Value::Int(b),
           Value::Date(d)}));
      RELGO_RETURN_NOT_OK(knows->AppendRow(
          {Value::Int(next_id++), Value::Int(b), Value::Int(a),
           Value::Date(d)}));
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto likes,
      db->CreateTable("likes",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"post_id", LogicalType::kInt64},
                              {"creationDate", LogicalType::kDate}})));
  {
    std::unordered_set<std::pair<int64_t, int64_t>, PairHash> seen;
    int64_t target = static_cast<int64_t>(options.posts() *
                                          options.likes_per_post());
    int64_t next_id = 0;
    for (int64_t k = 0; k < target; ++k) {
      int64_t p = rng.Uniform(0, options.persons() - 1);
      int64_t po = likes_post_perm[rng.Zipf(options.posts(), 1.0)];
      if (!seen.insert({p, po}).second) continue;
      RELGO_RETURN_NOT_OK(likes->AppendRow(
          {Value::Int(next_id++), Value::Int(p), Value::Int(po),
           Value::Date(RandomDate(&rng, kEpochLo, kEpochHi))}));
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto has_interest,
      db->CreateTable("hasInterest",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"tag_id", LogicalType::kInt64}})));
  {
    int64_t next_id = 0;
    for (int64_t p = 0; p < options.persons(); ++p) {
      std::unordered_set<int64_t> mine;
      for (int64_t k = 0; k < options.interests_per_person(); ++k) {
        int64_t t = rng.Zipf(options.tags(), 1.0);
        if (!mine.insert(t).second) continue;
        RELGO_RETURN_NOT_OK(has_interest->AppendRow(
            {Value::Int(next_id++), Value::Int(p), Value::Int(t)}));
      }
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto has_member,
      db->CreateTable("hasMember",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"forum_id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"joinDate", LogicalType::kDate}})));
  {
    int64_t next_id = 0;
    for (int64_t f = 0; f < options.forums(); ++f) {
      std::unordered_set<int64_t> members;
      for (int64_t k = 0; k < options.members_per_forum(); ++k) {
        int64_t p = member_person_perm[rng.Zipf(options.persons(), 1.0)];
        if (!members.insert(p).second) continue;
        RELGO_RETURN_NOT_OK(has_member->AppendRow(
            {Value::Int(next_id++), Value::Int(f), Value::Int(p),
             Value::Date(RandomDate(&rng, kEpochLo, kEpochHi))}));
      }
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto has_tag,
      db->CreateTable("hasTag",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"post_id", LogicalType::kInt64},
                              {"tag_id", LogicalType::kInt64}})));
  {
    int64_t next_id = 0;
    for (int64_t po = 0; po < options.posts(); ++po) {
      std::unordered_set<int64_t> mine;
      for (int64_t k = 0; k < options.tags_per_post(); ++k) {
        int64_t t = rng.Zipf(options.tags(), 1.0);
        if (!mine.insert(t).second) continue;
        RELGO_RETURN_NOT_OK(has_tag->AppendRow(
            {Value::Int(next_id++), Value::Int(po), Value::Int(t)}));
      }
    }
  }

  RELGO_ASSIGN_OR_RETURN(
      auto work_at,
      db->CreateTable("workAt",
                      Schema({ColumnDef{"id", LogicalType::kInt64},
                              {"person_id", LogicalType::kInt64},
                              {"company_id", LogicalType::kInt64},
                              {"work_from", LogicalType::kInt64}})));
  for (int64_t p = 0; p < options.persons(); ++p) {
    RELGO_RETURN_NOT_OK(work_at->AppendRow(
        {Value::Int(p), Value::Int(p),
         Value::Int(rng.Uniform(0, options.companies() - 1)),
         Value::Int(rng.Uniform(1990, 2013))}));
  }

  // ---- RGMapping -----------------------------------------------------------
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Person", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Place", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Tag", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("TagClass", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Forum", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Post", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Comment", "id"));
  RELGO_RETURN_NOT_OK(db->AddVertexTable("Company", "id"));

  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("knows", "Person", "p1", "Person", "p2"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("likes", "Person", "person_id", "Post", "post_id"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("hasInterest", "Person", "person_id",
                                       "Tag", "tag_id"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("hasMember", "Forum", "forum_id",
                                       "Person", "person_id"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("hasTag", "Post", "post_id", "Tag", "tag_id"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("workAt", "Person", "person_id",
                                       "Company", "company_id"));
  // FK (identity) edges.
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Person", "Person", "id", "Place", "place_id",
                       "isLocatedIn"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("Post", "Post", "id", "Person",
                                       "creator_id", "hasCreator"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("Comment", "Comment", "id", "Person",
                                       "creator_id", "commentHasCreator"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("Comment", "Comment", "id", "Post",
                                       "reply_of_post", "replyOf"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Post", "Post", "id", "Forum", "forum_id", "inForum"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Tag", "Tag", "id", "TagClass", "class_id", "hasType"));
  RELGO_RETURN_NOT_OK(
      db->AddEdgeTable("Place", "Place", "id", "Place", "part_of",
                       "isPartOf"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("Company", "Company", "id", "Place",
                                       "country_id", "companyIsLocatedIn"));
  RELGO_RETURN_NOT_OK(db->AddEdgeTable("Forum", "Forum", "id", "Person",
                                       "moderator_id", "hasModerator"));
  return db->Finalize();
}

// ---------------------------------------------------------------------------
// Query suites
// ---------------------------------------------------------------------------

namespace {

/// Query parameters matching the generated value domains.
constexpr const char* kParamFirstName = "Jose";   // zipf-popular-ish
constexpr const char* kParamCountry = "country_3";
constexpr const char* kParamTagClass = "tagclass_2";
constexpr const char* kParamTag = "tag_5";

pattern::PatternGraph MustParse(const Database& db, const std::string& text) {
  auto p = db.ParsePattern(text);
  if (!p.ok()) {
    // Workload definitions are compiled-in; failing loudly here beats
    // propagating statuses through every query constructor.
    std::fprintf(stderr, "workload pattern error: %s\n",
                 p.status().ToString().c_str());
    std::abort();
  }
  return *p;
}

std::string KnowsChain(int hops) {
  std::string text = "(p:Person)";
  for (int i = 1; i <= hops; ++i) {
    std::string cur = i == hops ? "(f:Person)" :
        "(f" + std::to_string(i) + ":Person)";
    text += "-[:knows]->" + cur;
  }
  return text;
}

}  // namespace

std::vector<WorkloadQuery> LdbcInteractiveQueries(const Database& db) {
  std::vector<WorkloadQuery> out;
  auto date_ge = [](const char* col, const char* iso) {
    return Expr::Compare(storage::CompareOp::kGe, Expr::Column(col),
                         Expr::Constant(Value::Date(Date(iso))));
  };
  auto date_le = [](const char* col, const char* iso) {
    return Expr::Compare(storage::CompareOp::kLe, Expr::Column(col),
                         Expr::Constant(Value::Date(Date(iso))));
  };

  // IC1-l: friends up to l hops of a named person, with their city.
  for (int l = 1; l <= 3; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) + ", (f)-[:isLocatedIn]->(city:Place)");
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC1-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "firstName")
                 .Column("f", "lastName")
                 .Column("city", "name")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Select("f.firstName")
                 .Select("f.lastName")
                 .Select("city.name")
                 .OrderBy("f.lastName")
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC2: recent posts of friends.
  {
    auto pattern = MustParse(
        db,
        "(p:Person)-[:knows]->(f:Person), (po:Post)-[:hasCreator]->(f)");
    auto q = SpjmQueryBuilder("IC2")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "firstName")
                 .Column("po", "content")
                 .Column("po", "creationDate")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(date_le("po.creationDate", "2012-06-01"))
                 .Select("f.firstName")
                 .Select("po.content")
                 .Select("po.creationDate")
                 .OrderBy("po.creationDate", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC3-l: posts of friends located in a given country, in a date window.
  for (int l = 1; l <= 2; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) +
                ", (f)-[:isLocatedIn]->(city:Place)-[:isPartOf]->"
                "(country:Place), (po:Post)-[:hasCreator]->(f)");
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC3-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "id")
                 .Column("f", "firstName")
                 .Column("country", "name")
                 .Column("po", "creationDate")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(Expr::Eq("country.name", Value::String(kParamCountry)))
                 .Where(date_ge("po.creationDate", "2011-01-01"))
                 .Where(date_le("po.creationDate", "2012-12-31"))
                 .GroupBy("f.id")
                 .GroupBy("f.firstName")
                 .Aggregate(AggFunc::kCount, "", "postCount")
                 .OrderBy("postCount", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC4: tags on friends' recent posts.
  {
    auto pattern = MustParse(
        db,
        "(p:Person)-[:knows]->(f:Person), (po:Post)-[:hasCreator]->(f), "
        "(po)-[:hasTag]->(t:Tag)");
    auto q = SpjmQueryBuilder("IC4")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("t", "name")
                 .Column("po", "creationDate")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(date_ge("po.creationDate", "2012-01-01"))
                 .GroupBy("t.name")
                 .Aggregate(AggFunc::kCount, "", "postCount")
                 .OrderBy("postCount", false)
                 .Limit(10)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC5-l: forums that friends joined recently and posted in (cyclic).
  for (int l = 1; l <= 2; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) +
                ", (forum:Forum)-[hm:hasMember]->(f), "
                "(po:Post)-[:inForum]->(forum), (po)-[:hasCreator]->(f)");
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC5-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("hm", "joinDate")
                 .Column("forum", "title")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(date_ge("hm.joinDate", "2012-06-01"))
                 .GroupBy("forum.title")
                 .Aggregate(AggFunc::kCount, "", "postCount")
                 .OrderBy("postCount", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), true});
  }

  // IC6-l: tags co-occurring with a given tag on friends' posts.
  for (int l = 1; l <= 2; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) +
                ", (po:Post)-[:hasCreator]->(f), (po)-[:hasTag]->(t:Tag), "
                "(po)-[:hasTag]->(t2:Tag)");
    pattern.AddDistinctPair(pattern.FindVertex("t"), pattern.FindVertex("t2"));
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC6-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("t", "name")
                 .Column("t2", "name")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(Expr::Eq("t.name", Value::String(kParamTag)))
                 .GroupBy("t2.name")
                 .Aggregate(AggFunc::kCount, "", "postCount")
                 .OrderBy("postCount", false)
                 .Limit(10)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC7: people who like a named person's posts and know them (cyclic).
  {
    auto pattern = MustParse(
        db,
        "(po:Post)-[:hasCreator]->(p:Person), (f:Person)-[l:likes]->(po), "
        "(f)-[:knows]->(p)");
    auto q = SpjmQueryBuilder("IC7")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "firstName")
                 .Column("f", "lastName")
                 .Column("l", "creationDate")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Select("f.firstName")
                 .Select("f.lastName")
                 .Select("l.creationDate")
                 .OrderBy("l.creationDate", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), true});
  }

  // IC8: recent replies to a named person's posts.
  {
    auto pattern = MustParse(
        db,
        "(po:Post)-[:hasCreator]->(p:Person), "
        "(c:Comment)-[:replyOf]->(po), "
        "(c)-[:commentHasCreator]->(author:Person)");
    auto q = SpjmQueryBuilder("IC8")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("author", "firstName")
                 .Column("author", "lastName")
                 .Column("c", "creationDate")
                 .Column("c", "content")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Select("author.firstName")
                 .Select("author.lastName")
                 .Select("c.creationDate")
                 .Select("c.content")
                 .OrderBy("c.creationDate", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC9-l: older posts by friends within l hops.
  for (int l = 1; l <= 2; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) + ", (po:Post)-[:hasCreator]->(f)");
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC9-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "firstName")
                 .Column("po", "content")
                 .Column("po", "creationDate")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(date_le("po.creationDate", "2011-06-01"))
                 .Select("f.firstName")
                 .Select("po.content")
                 .Select("po.creationDate")
                 .OrderBy("po.creationDate", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC11-l: friends working at companies in a country since before Y.
  for (int l = 1; l <= 2; ++l) {
    auto pattern = MustParse(
        db, KnowsChain(l) +
                ", (f)-[w:workAt]->(co:Company)-"
                "[:companyIsLocatedIn]->(country:Place)");
    pattern.AddDistinctPair(pattern.FindVertex("p"), pattern.FindVertex("f"));
    auto q = SpjmQueryBuilder("IC11-" + std::to_string(l))
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "firstName")
                 .Column("co", "name")
                 .Column("w", "work_from")
                 .Column("country", "name")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(Expr::Eq("country.name", Value::String(kParamCountry)))
                 .Where(Expr::Compare(storage::CompareOp::kLt,
                                      Expr::Column("w.work_from"),
                                      Expr::Constant(Value::Int(2005))))
                 .Select("f.firstName")
                 .Select("co.name")
                 .Select("w.work_from")
                 .OrderBy("w.work_from")
                 .Limit(10)
                 .Build();
    out.push_back({std::move(q), false});
  }

  // IC12: experts — friends commenting on posts tagged under a tag class.
  {
    auto pattern = MustParse(
        db,
        "(p:Person)-[:knows]->(f:Person), "
        "(c:Comment)-[:commentHasCreator]->(f), "
        "(c)-[:replyOf]->(po:Post), (po)-[:hasTag]->(t:Tag), "
        "(t)-[:hasType]->(tc:TagClass)");
    auto q = SpjmQueryBuilder("IC12")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("f", "id")
                 .Column("f", "firstName")
                 .Column("tc", "name")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(Expr::Eq("tc.name", Value::String(kParamTagClass)))
                 .GroupBy("f.id")
                 .GroupBy("f.firstName")
                 .Aggregate(AggFunc::kCount, "", "replyCount")
                 .OrderBy("replyCount", false)
                 .Limit(20)
                 .Build();
    out.push_back({std::move(q), false});
  }

  return out;
}

std::vector<WorkloadQuery> LdbcRuleQueries(const Database& db) {
  std::vector<WorkloadQuery> out;

  // QR1 / QR2 — selective predicates phrased as post-match selections, the
  // shape FilterIntoMatchRule rescues (Fig 8).
  {
    auto pattern = MustParse(
        db, "(p:Person)-[:knows]->(f:Person)-[:knows]->(g:Person)");
    auto q = SpjmQueryBuilder("QR1")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("p", "lastName")
                 .Column("g", "firstName")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Where(Expr::Eq("p.lastName", Value::String("Chen")))
                 .Select("g.firstName")
                 .Build();
    out.push_back({std::move(q), false});
  }
  {
    auto pattern = MustParse(
        db,
        "(p:Person)-[:likes]->(po:Post)-[:hasTag]->(t:Tag)");
    auto q = SpjmQueryBuilder("QR2")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("po", "length")
                 .Column("t", "name")
                 .Where(Expr::Eq("t.name", Value::String(kParamTag)))
                 .Where(Expr::Compare(storage::CompareOp::kLt,
                                      Expr::Column("po.length"),
                                      Expr::Constant(Value::Int(50))))
                 .Select("p.firstName")
                 .Build();
    out.push_back({std::move(q), false});
  }

  // QR3 / QR4 — edge bindings projected in COLUMNS but unused downstream:
  // TrimAndFuseRule drops them and fuses the expansions (Fig 8).
  {
    auto pattern = MustParse(
        db, "(p:Person)-[k1:knows]->(f:Person)-[k2:knows]->(g:Person)");
    auto q = SpjmQueryBuilder("QR3")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("k1", "creationDate")
                 .Column("k2", "creationDate")
                 .Column("g", "firstName")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .Select("g.firstName")
                 .Build();
    out.push_back({std::move(q), false});
  }
  {
    auto pattern = MustParse(
        db,
        "(p:Person)-[l:likes]->(po:Post)-[ht:hasTag]->(t:Tag)");
    auto q = SpjmQueryBuilder("QR4")
                 .Match(std::move(pattern))
                 .Column("p", "firstName")
                 .Column("l", "creationDate")
                 .Column("ht", "id")
                 .Column("t", "name")
                 .Where(Expr::Eq("p.firstName", Value::String(kParamFirstName)))
                 .GroupBy("t.name")
                 .Aggregate(AggFunc::kCount, "", "cnt")
                 .Build();
    out.push_back({std::move(q), false});
  }
  return out;
}

std::vector<WorkloadQuery> LdbcCyclicQueries(const Database& db) {
  std::vector<WorkloadQuery> out;
  // QC1: triangle.
  {
    auto pattern = MustParse(
        db,
        "(a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), "
        "(a)-[:knows]->(c)");
    auto q = SpjmQueryBuilder("QC1")
                 .Match(std::move(pattern))
                 .Column("a", "id")
                 .Aggregate(AggFunc::kCount, "", "triangles")
                 .Build();
    out.push_back({std::move(q), true});
  }
  // QC2: square (4-cycle).
  {
    auto pattern = MustParse(
        db,
        "(a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), "
        "(a)-[:knows]->(d:Person)-[:knows]->(c)");
    auto q = SpjmQueryBuilder("QC2")
                 .Match(std::move(pattern))
                 .Column("a", "id")
                 .Aggregate(AggFunc::kCount, "", "squares")
                 .Build();
    out.push_back({std::move(q), true});
  }
  // QC3: 4-clique.
  {
    auto pattern = MustParse(
        db,
        "(a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), "
        "(a)-[:knows]->(c), (a)-[:knows]->(d:Person), "
        "(b)-[:knows]->(d), (c)-[:knows]->(d)");
    auto q = SpjmQueryBuilder("QC3")
                 .Match(std::move(pattern))
                 .Column("a", "id")
                 .Aggregate(AggFunc::kCount, "", "cliques")
                 .Build();
    out.push_back({std::move(q), true});
  }
  return out;
}

}  // namespace workload
}  // namespace relgo
