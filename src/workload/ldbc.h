#ifndef RELGO_WORKLOAD_LDBC_H_
#define RELGO_WORKLOAD_LDBC_H_

#include <vector>

#include "core/database.h"
#include "plan/spjm_query.h"

namespace relgo {
namespace workload {

/// Scale knobs for the LDBC SNB-like generator. scale_factor 1.0 yields
/// roughly 3k persons / ~400k total tuples — the laptop-scale stand-in for
/// the paper's LDBC10..100 server datasets (see DESIGN.md substitutions).
struct LdbcOptions {
  double scale_factor = 1.0;
  uint64_t seed = 20240252;

  int64_t persons() const { return static_cast<int64_t>(3000 * scale_factor); }
  int64_t forums() const { return persons() / 3; }
  int64_t posts() const { return persons() * 8; }
  int64_t comments() const { return posts() * 3 / 2; }
  int64_t tags() const { return 400; }
  int64_t tag_classes() const { return 20; }
  int64_t countries() const { return 30; }
  int64_t cities() const { return 240; }
  int64_t companies() const { return 600; }
  double avg_knows_degree() const { return 14.0; }
  double likes_per_post() const { return 2.0; }
  int64_t interests_per_person() const { return 5; }
  int64_t members_per_forum() const { return 25; }
  int64_t tags_per_post() const { return 2; }
};

/// Materializes the SNB-like social network into `db` (tables + RGMapping)
/// and finalizes it (index, statistics, GLogue).
///
/// Vertex labels: Person, Place, Tag, TagClass, Forum, Post, Comment,
/// Company. Many-to-many edge tables: knows, likes, hasInterest,
/// hasMember, hasTag, workAt. 1:N relationships are FK (identity) edges:
/// isLocatedIn (Person->Place), hasCreator (Post->Person),
/// commentHasCreator (Comment->Person), replyOf (Comment->Post),
/// inForum (Post->Forum), hasType (Tag->TagClass), isPartOf (Place->Place),
/// companyIsLocatedIn (Company->Place), hasModerator (Forum->Person).
Status GenerateLdbc(Database* db, const LdbcOptions& options = {});

/// A named benchmark query plus metadata the harness reports.
struct WorkloadQuery {
  plan::SpjmQuery query;
  bool cyclic = false;  ///< contains a cyclic pattern (IC7, QC*)
};

/// The 18 fixed-length IC query variants of the paper's evaluation
/// (IC1-1..3, 2, 3-1..2, 4, 5-1..2, 6-1..2, 7, 8, 9-1..2, 11-1..2, 12).
std::vector<WorkloadQuery> LdbcInteractiveQueries(const Database& db);

/// QR1..4 — the rule micro-benchmarks of Fig 8 (QR1/2 exercise
/// FilterIntoMatchRule, QR3/4 exercise TrimAndFuseRule).
std::vector<WorkloadQuery> LdbcRuleQueries(const Database& db);

/// QC1..3 — triangle / square / 4-clique over knows (Fig 9).
std::vector<WorkloadQuery> LdbcCyclicQueries(const Database& db);

}  // namespace workload
}  // namespace relgo

#endif  // RELGO_WORKLOAD_LDBC_H_
