// Tests of the parallel breakers: the in-pipeline TopKSink (ORDER BY /
// LIMIT / top-k replacing the materializing post-op path) and the
// partition-parallel JoinHashTable build. The materializing executor is
// the oracle throughout; parity is asserted on EXACT row order (not just
// bags), across 1/2/4 threads, because the morsel-ordered tie-break is
// part of the engine contract.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/executor.h"
#include "exec/join_hash_table.h"
#include "exec/pipeline/engine.h"
#include "fixtures.h"

namespace relgo {
namespace {

using exec::ExecutionContext;
using exec::ExecutionOptions;
using exec::Executor;
using exec::JoinHashTable;
using storage::ColumnDef;
using storage::Expr;
using storage::Schema;

/// Rows of `t` rendered in table order (order-sensitive, unlike
/// testing::SortedRows).
std::vector<std::string> RowsInOrder(const storage::Table& t) {
  std::vector<std::string> rows;
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c) row += "|";
      row += t.GetValue(r, c).ToString();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// A database whose "Item" table spans several morsels (kBatchRows = 2048)
/// with heavily duplicated sort keys, so the parallel breakers actually
/// fan out and tie-breaking is exercised at every chunk boundary.
class BreakerTest : public ::testing::Test {
 protected:
  static constexpr int64_t kItems = 6000;

  void SetUp() override {
    auto item = db_.CreateTable(
        "Item", Schema({ColumnDef{"id", LogicalType::kInt64},
                        ColumnDef{"grp", LogicalType::kInt64},
                        ColumnDef{"val", LogicalType::kInt64}}));
    ASSERT_TRUE(item.ok());
    auto grp_info = db_.CreateTable(
        "GrpInfo", Schema({ColumnDef{"gid", LogicalType::kInt64},
                           ColumnDef{"weight", LogicalType::kInt64}}));
    ASSERT_TRUE(grp_info.ok());
    for (int64_t i = 0; i < kItems; ++i) {
      // grp has only 7 distinct values (massive duplication); val has 97.
      ASSERT_TRUE((*item)
                      ->AppendRow({Value::Int(i), Value::Int(i % 7),
                                   Value::Int((i * 131) % 97)})
                      .ok());
    }
    // GrpInfo holds duplicate join keys too: three rows per gid.
    for (int64_t g = 0; g < 7; ++g) {
      for (int64_t dup = 0; dup < 3; ++dup) {
        ASSERT_TRUE(
            (*grp_info)
                ->AppendRow({Value::Int(g), Value::Int(g * 10 + dup)})
                .ok());
      }
    }
  }

  /// Oracle run + pipeline runs at 1/2/4 threads, asserting exact row
  /// order equality (and optionally row-budget charge parity).
  void ExpectExactParity(const plan::PhysicalOp& op,
                         bool check_charges = true) {
    ExecutionContext oracle_ctx(&db_.catalog(), &db_.mapping(), &db_.index());
    auto oracle = Executor::Run(op, &oracle_ctx);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (int threads : {1, 2, 4}) {
      ExecutionOptions options;
      options.engine = exec::EngineKind::kPipeline;
      options.num_threads = threads;
      ExecutionContext ctx(&db_.catalog(), &db_.mapping(), &db_.index(),
                           options);
      auto piped = exec::pipeline::Run(op, &ctx);
      ASSERT_TRUE(piped.ok())
          << "threads=" << threads << ": " << piped.status().ToString();
      EXPECT_EQ(RowsInOrder(**piped), RowsInOrder(**oracle))
          << "threads=" << threads;
      if (check_charges) {
        EXPECT_EQ(ctx.rows_produced(), oracle_ctx.rows_produced())
            << "row-budget charging diverged at threads=" << threads;
      }
    }
  }

  static std::unique_ptr<plan::PhysScanTable> ScanItems() {
    auto scan = std::make_unique<plan::PhysScanTable>();
    scan->table = "Item";
    scan->alias = "i";
    return scan;
  }

  static std::unique_ptr<plan::PhysOrderBy> OrderBy(
      plan::PhysicalOpPtr child, std::vector<plan::SortKey> keys) {
    auto order = std::make_unique<plan::PhysOrderBy>();
    order->keys = std::move(keys);
    order->children.push_back(std::move(child));
    return order;
  }

  static std::unique_ptr<plan::PhysLimit> Limit(plan::PhysicalOpPtr child,
                                                int64_t k) {
    auto limit = std::make_unique<plan::PhysLimit>();
    limit->limit = k;
    limit->children.push_back(std::move(child));
    return limit;
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// TopKSink
// ---------------------------------------------------------------------------

TEST_F(BreakerTest, OrderByWithoutLimitIsStableAcrossThreads) {
  // 6000 rows, 7 distinct keys: the parallel-merge sort must reproduce the
  // oracle's stable sort (ties resolved by original scan order) exactly.
  auto plan = OrderBy(ScanItems(), {{"i.grp", true}});
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, OrderByDescendingMultiKey) {
  auto plan = OrderBy(ScanItems(), {{"i.grp", false}, {"i.val", true}});
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, TopKWithDuplicateKeysMatchesStableSort) {
  // The cut at k = 100 lands inside a run of duplicate grp values; the
  // bounded per-worker heaps must keep exactly the rows the oracle's
  // stable sort keeps.
  auto plan = Limit(OrderBy(ScanItems(), {{"i.grp", true}}), 100);
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, TopKDescendingWithValTies) {
  auto plan =
      Limit(OrderBy(ScanItems(), {{"i.val", false}, {"i.grp", true}}), 37);
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, LimitLargerThanResultPassesEverythingThrough) {
  auto filtered = ScanItems();
  filtered->filter = Expr::Eq("id", Value::Int(17));
  auto plan = Limit(OrderBy(std::move(filtered), {{"i.val", true}}),
                    /*k=*/1000);
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, PlainLimitLargerThanResult) {
  auto plan = Limit(ScanItems(), kItems * 2);
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, LimitZeroYieldsEmptyResult) {
  // Plain LIMIT 0 early-exits before emitting a single morsel, so its
  // row-budget charges are legitimately lower than the oracle's full scan.
  ExpectExactParity(*Limit(ScanItems(), 0), /*check_charges=*/false);
  ExpectExactParity(*Limit(OrderBy(ScanItems(), {{"i.grp", true}}), 0));
}

TEST_F(BreakerTest, PlainLimitTakesFirstKInScanOrder) {
  // The early-exit path (profiling off) must still return exactly the
  // first k rows of the sequential scan order; row-budget charges may
  // legitimately differ (skipped morsels), so they are not compared.
  auto plan = Limit(ScanItems(), 100);
  ExpectExactParity(*plan, /*check_charges=*/false);
}

TEST_F(BreakerTest, TopKOverEmptyInput) {
  auto filtered = ScanItems();
  filtered->filter = Expr::Eq("id", Value::Int(-1));
  auto plan = Limit(OrderBy(std::move(filtered), {{"i.grp", true}}), 5);
  ExpectExactParity(*plan);
}

// ---------------------------------------------------------------------------
// Partition-parallel hash-join build
// ---------------------------------------------------------------------------

TEST_F(BreakerTest, TwoPhaseBuildMatchesSerialBuild) {
  auto table = *db_.catalog().GetTable("Item");
  std::vector<std::string> keys = {"grp"};

  JoinHashTable serial;
  ASSERT_TRUE(serial.Build(*table, keys).ok());

  // Simulate three workers claiming interleaved morsel-sized ranges (each
  // worker's ranges increasing, like the scheduler guarantees).
  JoinHashTable parallel;
  ASSERT_TRUE(parallel.BeginBuild(*table, keys).ok());
  std::vector<JoinHashTable::BuildPartial> partials(3);
  constexpr uint64_t kMorsel = 512;
  uint64_t n = table->num_rows();
  for (uint64_t begin = 0, m = 0; begin < n; begin += kMorsel, ++m) {
    parallel.PartitionRows(begin, std::min(kMorsel, n - begin),
                           &partials[m % 3]);
  }
  for (size_t p = 0; p < JoinHashTable::kNumPartitions; ++p) {
    parallel.FinalizePartition(p, &partials);
  }

  // Every key must probe to the identical match vector — same rows, same
  // order (bucket order is part of the engine-parity contract).
  auto probe_keys = *db_.catalog().GetTable("GrpInfo");
  std::vector<size_t> probe_cols = {0};  // gid
  for (uint64_t r = 0; r < probe_keys->num_rows(); ++r) {
    std::vector<uint64_t> expect, actual;
    serial.Probe(*probe_keys, probe_cols, r, &expect);
    parallel.Probe(*probe_keys, probe_cols, r, &actual);
    EXPECT_EQ(actual, expect) << "probe row " << r;
    EXPECT_FALSE(expect.empty());  // every gid exists in Item.grp
  }
}

TEST_F(BreakerTest, ParallelBuildJoinExactParity) {
  // Multi-morsel probe side (6000 rows) against a duplicated-key build
  // side: output must match the oracle row-for-row, including the order of
  // duplicate build matches per probe row.
  auto make_plan = [this]() {
    auto build = std::make_unique<plan::PhysScanTable>();
    build->table = "GrpInfo";
    build->alias = "g";
    auto join = std::make_unique<plan::PhysHashJoin>();
    join->left_keys = {"i.grp"};
    join->right_keys = {"g.gid"};
    join->children.push_back(ScanItems());
    join->children.push_back(std::move(build));
    return join;
  };
  ExpectExactParity(*make_plan());
}

TEST_F(BreakerTest, EmptyBuildSideYieldsEmptyJoin) {
  auto build = std::make_unique<plan::PhysScanTable>();
  build->table = "GrpInfo";
  build->alias = "g";
  build->filter = Expr::Eq("gid", Value::Int(-42));  // matches nothing
  auto join = std::make_unique<plan::PhysHashJoin>();
  join->left_keys = {"i.grp"};
  join->right_keys = {"g.gid"};
  join->children.push_back(ScanItems());
  join->children.push_back(std::move(build));
  ExpectExactParity(*join);
}

TEST_F(BreakerTest, TopKAboveParallelBuildJoin) {
  // The full tentpole in one plan: parallel build below, top-k sink above.
  auto build = std::make_unique<plan::PhysScanTable>();
  build->table = "GrpInfo";
  build->alias = "g";
  auto join = std::make_unique<plan::PhysHashJoin>();
  join->left_keys = {"i.grp"};
  join->right_keys = {"g.gid"};
  join->children.push_back(ScanItems());
  join->children.push_back(std::move(build));
  auto plan = Limit(
      OrderBy(std::move(join), {{"g.weight", false}, {"i.id", true}}), 25);
  ExpectExactParity(*plan);
}

TEST_F(BreakerTest, ProfiledTopKRecordsSortAndBuildTimes) {
  // The breaker satellites: QueryProfile must carry sort/build wall time
  // and both fused nodes' actual row counts.
  auto build = std::make_unique<plan::PhysScanTable>();
  build->table = "GrpInfo";
  build->alias = "g";
  auto join = std::make_unique<plan::PhysHashJoin>();
  join->left_keys = {"i.grp"};
  join->right_keys = {"g.gid"};
  join->children.push_back(ScanItems());
  join->children.push_back(std::move(build));
  const plan::PhysicalOp* join_node = join.get();
  auto order = OrderBy(std::move(join), {{"i.id", false}});
  const plan::PhysicalOp* order_node = order.get();
  auto plan = Limit(std::move(order), 10);

  ExecutionOptions options;
  options.engine = exec::EngineKind::kPipeline;
  options.num_threads = 4;
  ExecutionContext ctx(&db_.catalog(), &db_.mapping(), &db_.index(), options);
  exec::QueryProfile profile;
  ctx.EnableProfiling(&profile);
  auto result = exec::pipeline::Run(*plan, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->num_rows(), 10u);

  EXPECT_GT(profile.build_ms(), 0.0);
  EXPECT_GT(profile.sort_ms(), 0.0);
  const exec::OperatorProfile* order_prof = profile.Find(order_node);
  ASSERT_NE(order_prof, nullptr);
  EXPECT_EQ(order_prof->rows_out, kItems * 3u);  // 3 GrpInfo rows per item
  const exec::OperatorProfile* limit_prof = profile.Find(plan.get());
  ASSERT_NE(limit_prof, nullptr);
  EXPECT_EQ(limit_prof->rows_out, 10u);
  const exec::OperatorProfile* join_prof = profile.Find(join_node);
  ASSERT_NE(join_prof, nullptr);
  EXPECT_EQ(join_prof->rows_out, kItems * 3u);
}

}  // namespace
}  // namespace relgo
